#!/usr/bin/env python3
"""Validate Chrome trace_event JSON files emitted by obs::TraceSink.

Mirrors the C++ validator in src/obs/trace_sink.cpp (the two must agree;
tests/obs/trace_sink_test.cpp pins the C++ side, this script is what CI
runs against artifacts). Checked rules:

Structure
  - top level is an object with a "traceEvents" array

Per event
  - "name" (string), "ph" (one-char string), "pid" and "tid" (numbers)
    are required
  - "ts" (number) is required except for metadata events (ph "M")
  - complete events (ph "X") require a numeric "dur"
  - counter ("C") and metadata ("M") events require an "args" object
  - flow events (ph "s", "t", "f") and async events (ph "b", "n", "e")
    require an "id" (number or string)
  - async events additionally require a string "cat" (they are matched
    per (cat, id, name))

Cross-event bindings
  - a flow id must open with "s" before any "t"/"f" referencing it (in
    array order — TraceSink emits "s" before handing the id to another
    thread precisely so this holds), must not open twice while live,
    and must be closed by "f" by end of trace
  - async spans must balance: every "e" needs a prior unmatched "b"
    with the same (cat, id, name), and every "b" must be closed

Usage: validate_trace_json.py FILE [FILE...]
Exits non-zero on the first violation, printing the offending file,
event index, and rule.
"""

import json
import sys

FLOW_PHASES = {"s", "t", "f"}
ASYNC_PHASES = {"b", "n", "e"}


def reject_lone_surrogates(path, value, context="document"):
    """Python's json decodes \\uD800-style lone surrogates into unpaired
    surrogate code points instead of erroring; the C++ validator rejects
    them as malformed escapes. Walk every decoded string so the two sides
    keep agreeing."""
    if isinstance(value, str):
        for ch in value:
            if 0xD800 <= ord(ch) <= 0xDFFF:
                raise SystemExit(
                    f"{path}: lone surrogate in string of {context}")
    elif isinstance(value, dict):
        for key, item in value.items():
            reject_lone_surrogates(path, key, context)
            reject_lone_surrogates(path, item, context)
    elif isinstance(value, list):
        for item in value:
            reject_lone_surrogates(path, item, context)


def fail(path, index, message):
    raise SystemExit(f"{path}: event {index}: {message}")


def check_event(path, index, event):
    if not isinstance(event, dict):
        fail(path, index, "event is not an object")
    name = event.get("name")
    if not isinstance(name, str):
        fail(path, index, 'missing string "name"')
    ph = event.get("ph")
    if not isinstance(ph, str) or len(ph) != 1:
        fail(path, index, 'missing one-char string "ph"')
    for key in ("pid", "tid"):
        if isinstance(event.get(key), bool) or not isinstance(
                event.get(key), (int, float)):
            fail(path, index, f'missing numeric "{key}"')
    if ph != "M":
        if isinstance(event.get("ts"), bool) or not isinstance(
                event.get("ts"), (int, float)):
            fail(path, index, 'missing numeric "ts"')
    if ph == "X":
        if isinstance(event.get("dur"), bool) or not isinstance(
                event.get("dur"), (int, float)):
            fail(path, index, 'complete event missing numeric "dur"')
    if ph in ("C", "M"):
        if not isinstance(event.get("args"), dict):
            fail(path, index, f'"{ph}" event missing "args" object')
    if ph in FLOW_PHASES or ph in ASYNC_PHASES:
        event_id = event.get("id")
        if isinstance(event_id, bool) or not isinstance(
                event_id, (int, float, str)):
            fail(path, index, f'"{ph}" event missing "id"')
    if ph in ASYNC_PHASES:
        if not isinstance(event.get("cat"), str):
            fail(path, index, f'async "{ph}" event missing string "cat"')


def check_bindings(path, events):
    # flow id -> index of the live "s" event
    live_flows = {}
    # (cat, id, name) -> [depth, index of first unmatched "b"]
    async_spans = {}
    for index, event in enumerate(events):
        ph = event["ph"]
        if ph in FLOW_PHASES:
            flow_id = event["id"]
            if ph == "s":
                if flow_id in live_flows:
                    fail(path, index,
                         f'flow id {flow_id!r} opened twice without "f" '
                         f'(first at event {live_flows[flow_id]})')
                live_flows[flow_id] = index
            else:  # "t" or "f"
                if flow_id not in live_flows:
                    fail(path, index,
                         f'flow "{ph}" references id {flow_id!r} with no '
                         f'prior "s"')
                if ph == "f":
                    del live_flows[flow_id]
        elif ph in ASYNC_PHASES and ph != "n":
            key = (event["cat"], event["id"], event["name"])
            depth, first = async_spans.get(key, (0, index))
            if ph == "b":
                async_spans[key] = (depth + 1, first if depth else index)
            else:  # "e"
                if depth == 0:
                    fail(path, index,
                         f'async "e" for {key!r} with no matching "b"')
                async_spans[key] = (depth - 1, first)
    for flow_id, index in sorted(live_flows.items(), key=lambda kv: kv[1]):
        fail(path, index, f'flow id {flow_id!r} opened by "s" but never '
                          f'closed by "f"')
    for key, (depth, first) in sorted(async_spans.items(),
                                      key=lambda kv: kv[1][1]):
        if depth != 0:
            fail(path, first, f'async span {key!r} opened by "b" but never '
                              f'closed by "e"')


def validate(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            data = json.load(f)
        except ValueError as e:
            raise SystemExit(f"{path}: invalid JSON: {e}")
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: top-level value must be an object")
    reject_lone_surrogates(path, data)
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise SystemExit(f'{path}: missing "traceEvents" array')
    for index, event in enumerate(events):
        check_event(path, index, event)
    check_bindings(path, events)
    flows = sum(1 for e in events if e["ph"] == "s")
    print(f"{path}: OK ({len(events)} events, {flows} flows)")


def main(argv):
    if len(argv) < 2:
        raise SystemExit("usage: validate_trace_json.py FILE [FILE...]")
    for path in argv[1:]:
        validate(path)


if __name__ == "__main__":
    main(sys.argv)
