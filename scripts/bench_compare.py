#!/usr/bin/env python3
"""Compare two BENCH_*.json files (see bench/bench_json.hpp).

Two modes:

  Structural (--keys-only): both files must export exactly the same metric
  key set. Values are ignored. This is what CI runs — smoke-mode numbers on
  shared runners are meaningless, but a bench binary that silently drops a
  metric (or grows one nobody baselined) should fail the build.

  Value compare (default): every metric present in both files is diffed
  against a relative tolerance. Keys whose name ends in a counting suffix
  (_wakeups, _instants, _cycles, _end_time, ...) or that are workload
  descriptors must match exactly: they are deterministic event counts, and
  a drift there is a behavior change, not noise. Timing keys (everything
  else, typically *_ms and *_speedup) may drift within --tolerance.

Floors (--floor KEY=MIN, repeatable): assert CURRENT's value for KEY is
>= MIN. Floors express machine-dependent expectations (parallel speedup,
cache warm-up wins), so they are skipped — with a note — unless CURRENT
was a full run (smoke == 0) on a machine with hardware_threads >= 4.
A floor KEY missing from CURRENT is a failure when the gate is active.

Serial floors (--serial-floor KEY=MIN, repeatable): same assertion, but
for single-machine expectations that hold on any core count (e.g. the
bytecode optimizer's opt-over-unopt speedup). These skip only on smoke
runs — smoke workloads are too small for the ratio to mean anything —
and never on thread count.

Usage:
  bench_compare.py BASELINE CURRENT [--tolerance 0.5] [--keys-only]
                   [--floor KEY=MIN ...] [--serial-floor KEY=MIN ...]

Exit status: 0 = comparable, 1 = mismatch (details on stdout), 2 = usage.
"""

import argparse
import json
import sys

# Metric-name suffixes that denote deterministic counts: simulation event
# totals and workload shapes, not wall-clock measurements. These must be
# bit-equal between runs of the same code on any host.
EXACT_SUFFIXES = (
    "_wakeups",
    "_instants",
    "_cycles",
    "_end_time",
    "_iterations",
    "_count",
    "smoke",
)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict) or not data:
        raise SystemExit(f"{path}: not a non-empty flat JSON object")
    return data


def is_exact_key(key):
    return key.endswith(EXACT_SUFFIXES)


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="max relative drift for timing metrics (default 0.5 = 50%%)",
    )
    parser.add_argument(
        "--keys-only",
        action="store_true",
        help="compare metric key sets only (structural mode, used by CI)",
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="KEY=MIN",
        help="assert CURRENT[KEY] >= MIN (skipped on smoke runs and "
        "machines with < 4 hardware threads)",
    )
    parser.add_argument(
        "--serial-floor",
        action="append",
        default=[],
        metavar="KEY=MIN",
        help="assert CURRENT[KEY] >= MIN regardless of hardware threads "
        "(skipped only on smoke runs)",
    )
    args = parser.parse_args(argv[1:])

    base = load(args.baseline)
    cur = load(args.current)

    failures = []

    missing = sorted(set(base) - set(cur))
    added = sorted(set(cur) - set(base))
    for key in missing:
        failures.append(f"metric {key!r} present in baseline but missing now")
    for key in added:
        failures.append(
            f"metric {key!r} is new (not in baseline — re-baseline if intended)"
        )

    if not args.keys_only:
        for key in sorted(set(base) & set(cur)):
            # "smoke" flags which mode produced the file; a value compare
            # across modes would be meaningless, so it gates instead.
            if key == "smoke":
                if base[key] != cur[key]:
                    failures.append(
                        f"smoke mode differs (baseline {base[key]}, "
                        f"current {cur[key]}) — value compare needs same mode"
                    )
                continue
            b, c = float(base[key]), float(cur[key])
            if is_exact_key(key):
                if b != c:
                    failures.append(
                        f"count metric {key!r} changed: {b:g} -> {c:g}"
                    )
                continue
            ref = max(abs(b), abs(c))
            drift = 0.0 if ref == 0.0 else abs(c - b) / ref
            if drift > args.tolerance:
                failures.append(
                    f"timing metric {key!r} drifted {drift:.1%} "
                    f"(> {args.tolerance:.0%}): {b:g} -> {c:g}"
                )

    def check_floors(specs, flag, active, skip_note):
        if specs and not active:
            print(skip_note)
        for spec in specs:
            key, _, minimum = spec.partition("=")
            if not minimum:
                raise SystemExit(f"bad {flag} {spec!r}: expected KEY=MIN")
            if not active:
                continue
            if key not in cur:
                # One stable, grep-able line per violation (CI log triage
                # greps "^FLOOR-VIOLATION"), then the human-readable entry.
                print(f"FLOOR-VIOLATION key={key} measured=absent "
                      f"minimum={minimum}")
                failures.append(f"floor metric {key!r} missing from current")
            elif float(cur[key]) < float(minimum):
                print(f"FLOOR-VIOLATION key={key} measured={cur[key]:g} "
                      f"minimum={minimum}")
                failures.append(
                    f"floor violated: {key!r} = {cur[key]:g} < {minimum}"
                )

    if args.floor or args.serial_floor:
        smoke = cur.get("smoke", 0)
        threads = cur.get("hardware_threads", 0)
        check_floors(
            args.floor,
            "--floor",
            smoke == 0 and threads >= 4,
            f"floors skipped: smoke={smoke:g}, "
            f"hardware_threads={threads:g} (need smoke=0 and >= 4 threads)",
        )
        check_floors(
            args.serial_floor,
            "--serial-floor",
            smoke == 0,
            f"serial floors skipped: smoke={smoke:g} (need a full run)",
        )

    mode = "keys-only" if args.keys_only else f"tolerance {args.tolerance:.0%}"
    if failures:
        print(f"{args.baseline} vs {args.current} [{mode}]: MISMATCH")
        for line in failures:
            print(f"  {line}")
        return 1
    shared = len(set(base) & set(cur))
    print(f"{args.baseline} vs {args.current} [{mode}]: OK ({shared} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
