#!/usr/bin/env python3
"""Validate BENCH_*.json files emitted by the bench binaries.

Schema (see bench/bench_json.hpp): each file is a single flat JSON object
mapping metric names to finite numbers. Empty objects, nested values,
strings, booleans, NaN and infinities are all rejected, so CI catches a
bench binary that silently stops exporting its numbers.

Usage: validate_bench_json.py FILE [FILE...]
Exits non-zero on the first violation, printing the offending file/key.
"""

import json
import math
import sys


def validate(path: str) -> None:
    with open(path, "r", encoding="utf-8") as f:
        try:
            # parse_constant rejects the non-standard NaN/Infinity literals
            # Python's json module would otherwise accept silently.
            data = json.load(f, parse_constant=lambda c: (_ for _ in ()).throw(
                ValueError(f"non-finite constant {c!r}")))
        except ValueError as e:
            raise SystemExit(f"{path}: invalid JSON: {e}")

    if not isinstance(data, dict):
        raise SystemExit(f"{path}: top-level value must be an object, "
                         f"got {type(data).__name__}")
    if not data:
        raise SystemExit(f"{path}: object is empty (no metrics exported)")

    for key, value in data.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SystemExit(f"{path}: key {key!r} has non-numeric value "
                             f"{value!r}")
        if not math.isfinite(value):
            raise SystemExit(f"{path}: key {key!r} is not finite: {value!r}")

    print(f"{path}: OK ({len(data)} metrics)")


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
