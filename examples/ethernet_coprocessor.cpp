// Ethernet network coprocessor: the third Sec. 5 case study. A frame
// flows receive-buffer -> execution unit -> transmit-buffer through a
// shared buffer memory; interface synthesis merges the six cross-chip
// channels and the refined design is checked against the original.
//
// Also demonstrates protocol selection: the same system is refined with
// each of the four protocols and their wire/time costs are compared
// (the paper's Sec. 6 "incorporating protocols other than a full
// handshake needs to be studied").
//
// Run:  build/examples/ethernet_coprocessor
#include <cstdio>

#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "suite/ethernet_coprocessor.hpp"

using namespace ifsyn;

namespace {

struct ProtocolRun {
  const char* name;
  spec::ProtocolKind kind;
};

}  // namespace

int main() {
  std::printf("=== Ethernet coprocessor interface synthesis ===\n\n");

  const ProtocolRun protocols[] = {
      {"full-handshake", spec::ProtocolKind::kFullHandshake},
      {"half-handshake", spec::ProtocolKind::kHalfHandshake},
      {"fixed-delay(2)", spec::ProtocolKind::kFixedDelay},
      {"hardwired", spec::ProtocolKind::kHardwiredPort},
  };

  std::printf("%-16s %10s %10s %12s %14s\n", "protocol", "wires",
              "refined_t", "equivalent", "arb_wait(cyc)");

  for (const ProtocolRun& protocol : protocols) {
    spec::System original = suite::make_ethernet_coprocessor();
    spec::System refined = original.clone("eth_refined");

    core::SynthesisOptions options;
    options.protocol = protocol.kind;
    options.arbitrate =
        protocol.kind != spec::ProtocolKind::kHardwiredPort;
    core::InterfaceSynthesizer synth(options);
    Result<core::SynthesisReport> report = synth.run(refined);
    if (!report.is_ok()) {
      std::printf("%-16s synthesis failed: %s\n", protocol.name,
                  report.status().to_string().c_str());
      continue;
    }

    int wires = 0;
    for (const auto& bus : refined.buses()) wires += bus->total_wires();

    Result<core::EquivalenceReport> eq =
        core::check_equivalence(original, refined, 10'000'000);
    if (!eq.is_ok()) {
      std::printf("%-16s co-simulation failed: %s\n", protocol.name,
                  eq.status().to_string().c_str());
      continue;
    }
    std::uint64_t wait = 0;
    for (const auto& proc : eq->refined.processes) {
      wait += proc.bus_wait_cycles;
    }
    std::printf("%-16s %10d %10llu %12s %14llu\n", protocol.name, wires,
                static_cast<unsigned long long>(eq->refined_time),
                eq->equivalent ? "yes" : "NO",
                static_cast<unsigned long long>(wait));
  }

  std::printf("\nreference outputs: frame checksum %lld, transmit checksum "
              "%lld over %d-byte frames\n",
              suite::EthernetExpected::frame_checksum(),
              suite::EthernetExpected::transmit_checksum(),
              suite::EthernetExpected::kFrameBytes);
  return 0;
}
