// FLC explorer: interactive-style exploration of the paper's Sec. 5 case
// study -- the buswidth/performance trade-off (Fig. 7), designer
// constraints (Fig. 8), and the full fuzzy controller synthesized and
// co-simulated over its generated bus.
//
// Run:  build/examples/flc_explorer
#include <cstdio>

#include "bus/bus_generator.hpp"
#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "sim/interpreter.hpp"
#include "spec/analysis.hpp"
#include "suite/flc.hpp"

using namespace ifsyn;
using suite::FlcCalibration;

int main() {
  std::printf("=== FLC interface-synthesis explorer ===\n\n");

  // ---- the bus-B kernel: channels ch1, ch2 (Fig. 6) --------------------
  spec::System kernel = suite::make_flc_kernel();
  Status status = spec::annotate_channel_accesses(kernel);
  if (!status.is_ok()) {
    std::printf("annotation failed: %s\n", status.to_string().c_str());
    return 1;
  }
  estimate::PerformanceEstimator estimator(kernel);
  estimator.set_compute_cycles("EVAL_R3", FlcCalibration::kEvalR3ComputeCycles);
  estimator.set_compute_cycles("CONV_R2", FlcCalibration::kConvR2ComputeCycles);
  bus::BusGenerator generator(kernel, estimator);

  // ---- Fig. 7: execution time vs. buswidth ------------------------------
  std::printf("--- Performance vs. buswidth (Fig. 7) ---\n");
  std::printf("%8s %12s %12s\n", "width", "EVAL_R3", "CONV_R2");
  for (int w : {1, 2, 4, 6, 8, 12, 16, 20, 23, 24, 28}) {
    std::printf("%8d %12lld %12lld\n", w,
                estimator.execution_time("EVAL_R3", w,
                                         spec::ProtocolKind::kFullHandshake, 2),
                estimator.execution_time("CONV_R2", w,
                                         spec::ProtocolKind::kFullHandshake, 2));
  }
  std::printf("(curves flatten at 23 pins = 16 data + 7 address bits)\n\n");

  // ---- Fig. 8: three constraint-driven designs --------------------------
  struct Design {
    const char* name;
    std::vector<bus::BusConstraint> constraints;
  };
  const Design designs[] = {
      {"A", {bus::min_peak_rate("ch2", 10, 10)}},
      {"B",
       {bus::min_peak_rate("ch2", 10, 2), bus::min_bus_width(14, 1),
        bus::max_bus_width(17, 1)}},
      {"C",
       {bus::min_peak_rate("ch2", 10, 1), bus::min_bus_width(16, 5),
        bus::max_bus_width(16, 5)}},
  };
  std::printf("--- Constraint-driven bus designs (Fig. 8) ---\n");
  std::printf("%8s %10s %12s %14s\n", "design", "width", "rate(b/clk)",
              "reduction(%)");
  for (const Design& design : designs) {
    bus::BusGenOptions options;
    options.constraints = design.constraints;
    Result<bus::BusGenResult> result =
        generator.generate(*kernel.find_bus("B"), options);
    if (!result.is_ok()) {
      std::printf("%8s  infeasible: %s\n", design.name,
                  result.status().to_string().c_str());
      continue;
    }
    std::printf("%8s %10d %12.1f %14.1f\n", design.name,
                result->selected_width, result->selected_bus_rate,
                result->interconnect_reduction * 100.0);
  }
  std::printf("\n");

  // ---- the full controller, synthesized and simulated -------------------
  std::printf("--- Full FLC: synthesize all cross-chip traffic ---\n");
  spec::System original = suite::make_flc_full();
  spec::System refined = original.clone("flc_refined");
  core::SynthesisOptions synth_options;
  synth_options.arbitrate = true;
  core::InterfaceSynthesizer synth(synth_options);
  Result<core::SynthesisReport> report = synth.run(refined);
  if (!report.is_ok()) {
    std::printf("synthesis failed: %s\n", report.status().to_string().c_str());
    return 1;
  }
  std::printf("channels: %zu, buses after synthesis: %zu\n",
              refined.channels().size(), refined.buses().size());
  for (const core::BusReport& bus_report : report->buses) {
    std::printf("  %s: width %d (+%d ctrl, +%d id), reduction %.1f%%\n",
                bus_report.bus.c_str(),
                bus_report.generation.selected_width,
                bus_report.control_lines, bus_report.id_bits,
                bus_report.generation.interconnect_reduction * 100.0);
  }

  Result<core::EquivalenceReport> eq =
      core::check_equivalence(original, refined, 20'000'000);
  if (!eq.is_ok()) {
    std::printf("co-simulation failed: %s\n", eq.status().to_string().c_str());
    return 1;
  }
  sim::SimulationRun refined_run = sim::simulate(refined, 20'000'000);
  std::printf("controller output CTRL_OUT = %lld (expected %lld)\n",
              static_cast<long long>(
                  refined_run.interpreter->value_of("CTRL_OUT").get().to_int()),
              static_cast<long long>(suite::flc_expected_ctrl_out()));
  std::printf("equivalence: %s; refined run took %.1fx the original time\n",
              eq->equivalent ? "PASS" : "FAIL",
              eq->original_time
                  ? static_cast<double>(eq->refined_time) / eq->original_time
                  : 0.0);
  std::uint64_t arbitration_wait = 0;
  for (const auto& proc : eq->refined.processes) {
    arbitration_wait += proc.bus_wait_cycles;
  }
  std::printf("total arbitration waiting across processes: %llu cycles\n",
              static_cast<unsigned long long>(arbitration_wait));
  return eq->equivalent ? 0 : 1;
}
