// Quickstart: the paper's own walkthrough (Figs. 3-5), end to end.
//
// Builds the Fig. 3 system (behaviors P and Q sharing variables X and MEM
// across components), runs protocol generation for the 8-bit bus B, prints
// the generated VHDL (the HandShakeBus record, SendCH0/ReceiveCH0, the
// rewritten behaviors and the Xproc/MEMproc servers), and finally
// co-simulates original vs refined to show the refinement preserves
// functionality -- the "simulatable refined specification" the paper
// promises.
//
// Run:  build/examples/quickstart
#include <cstdio>

#include "codegen/vhdl_emitter.hpp"
#include "core/equivalence.hpp"
#include "protocol/protocol_generator.hpp"
#include "spec/printer.hpp"
#include "suite/fig3_example.hpp"

using namespace ifsyn;

int main() {
  std::printf("=== ifsyn quickstart: protocol generation for Fig. 3 ===\n\n");

  // ---- 1. the partitioned specification --------------------------------
  spec::System original = suite::make_fig3_system();
  std::printf("--- Original (partitioned) specification ---\n%s\n",
              spec::print_system(original).c_str());

  // ---- 2. protocol generation (Sec. 4, steps 1-5) ----------------------
  spec::System refined = original.clone("fig3_refined");
  protocol::ProtocolGenOptions options;
  options.protocol = spec::ProtocolKind::kFullHandshake;
  options.arbitrate = true;  // P and Q overlap on the bus
  protocol::ProtocolGenerator generator(options);
  Status status = generator.generate_all(refined);
  if (!status.is_ok()) {
    std::printf("protocol generation failed: %s\n",
                status.to_string().c_str());
    return 1;
  }

  const spec::BusGroup* bus = refined.find_bus("B");
  std::printf("--- Generated bus structure ---\n");
  std::printf("bus B: %d data lines, %d control lines, %d ID lines "
              "(%d wires total), protocol %s\n\n",
              bus->width, bus->control_lines, bus->id_bits,
              bus->total_wires(), protocol_kind_name(bus->protocol));

  // ---- 3. the refined specification as VHDL (Figs. 4-5) ----------------
  codegen::VhdlEmitter emitter;
  std::printf("--- Bus declaration (Fig. 4 top) ---\n%s\n",
              emitter.emit_bus_declarations(refined).c_str());
  std::printf("--- Generated procedures for channel CH0 (Fig. 4) ---\n");
  std::printf("%s\n",
              emitter.emit_procedure(*refined.find_procedure("SendCH0"))
                  .c_str());
  std::printf("%s\n",
              emitter.emit_procedure(*refined.find_procedure("ServeCH0"))
                  .c_str());
  std::printf("--- Rewritten behavior P (Fig. 5 left) ---\n%s\n",
              emitter.emit_process(*refined.find_process("P")).c_str());
  std::printf("--- Generated variable processes (Fig. 5 right) ---\n%s\n%s\n",
              emitter.emit_process(*refined.find_process("Xproc")).c_str(),
              emitter.emit_process(*refined.find_process("MEMproc")).c_str());

  // ---- 4. co-simulate original vs refined -------------------------------
  Result<core::EquivalenceReport> eq =
      core::check_equivalence(original, refined);
  if (!eq.is_ok()) {
    std::printf("co-simulation failed: %s\n", eq.status().to_string().c_str());
    return 1;
  }
  std::printf("--- Co-simulation ---\n");
  std::printf("original finished at t=%llu, refined at t=%llu "
              "(communication cost: %.1fx)\n",
              static_cast<unsigned long long>(eq->original_time),
              static_cast<unsigned long long>(eq->refined_time),
              eq->original_time
                  ? static_cast<double>(eq->refined_time) / eq->original_time
                  : 0.0);
  std::printf("functional equivalence: %s\n",
              eq->equivalent ? "PASS (X, MEM identical in both runs)"
                             : "FAIL");
  for (const std::string& mismatch : eq->mismatches) {
    std::printf("  mismatch: %s\n", mismatch.c_str());
  }
  return eq->equivalent ? 0 : 1;
}
