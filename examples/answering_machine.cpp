// Answering machine: one of the paper's three Sec. 5 case studies.
// Partitioned controller/memory design with five mixed-size channels;
// synthesizes the bus, prints the width exploration, and verifies the
// refined machine still records the expected message.
//
// Run:  build/examples/answering_machine
#include <cstdio>

#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "sim/interpreter.hpp"
#include "suite/answering_machine.hpp"

using namespace ifsyn;

int main() {
  std::printf("=== Answering machine interface synthesis ===\n\n");

  spec::System original = suite::make_answering_machine();
  std::printf("channels derived from the partition:\n");
  for (const auto& ch : original.channels()) {
    std::printf("  %-4s %-12s %-5s %-8s %2dd+%da bits, %lld accesses\n",
                ch->name.c_str(), ch->accessor.c_str(),
                ch->is_read() ? "reads" : "writes", ch->variable.c_str(),
                ch->data_bits, ch->addr_bits,
                static_cast<long long>(ch->accesses));
  }

  spec::System refined = original.clone("am_refined");
  core::SynthesisOptions options;
  options.arbitrate = true;
  core::InterfaceSynthesizer synth(options);
  Result<core::SynthesisReport> report = synth.run(refined);
  if (!report.is_ok()) {
    std::printf("synthesis failed: %s\n", report.status().to_string().c_str());
    return 1;
  }

  std::printf("\nbus exploration (feasibility per Eq. 1):\n");
  for (const core::BusReport& bus_report : report->buses) {
    std::printf("  bus %s -> width %d of %d channel bits (reduction %.1f%%)\n",
                bus_report.bus.c_str(), bus_report.generation.selected_width,
                bus_report.generation.total_channel_bits,
                bus_report.generation.interconnect_reduction * 100);
    for (const auto& eval : bus_report.generation.evaluations) {
      if (eval.width % 4 == 0 || eval.width == 1) {
        std::printf("    width %2d: bus rate %5.2f vs demand %5.2f -> %s\n",
                    eval.width, eval.bus_rate, eval.sum_average_rates,
                    eval.feasible ? "feasible" : "infeasible");
      }
    }
  }
  if (!report->split_buses.empty()) {
    std::printf("  (group was split: %zu extra buses)\n",
                report->split_buses.size());
  }

  Result<core::EquivalenceReport> eq =
      core::check_equivalence(original, refined, 5'000'000);
  if (!eq.is_ok()) {
    std::printf("co-simulation failed: %s\n",
                eq.status().to_string().c_str());
    return 1;
  }

  // Pull the recorded message back out of the refined run.
  sim::SimulationRun run = sim::simulate(refined, 5'000'000);
  const spec::Value& msg_len = run.interpreter->value_of("msg_len");
  std::printf("\nrefined machine recorded %llu bytes "
              "(message checksum expected %lld)\n",
              static_cast<unsigned long long>(msg_len.get().to_uint()),
              static_cast<long long>(
                  suite::AnsweringMachineExpected::message_checksum()));
  std::printf("equivalence vs original: %s (refined %.1fx slower)\n",
              eq->equivalent ? "PASS" : "FAIL",
              eq->original_time
                  ? static_cast<double>(eq->refined_time) / eq->original_time
                  : 0.0);
  return eq->equivalent ? 0 : 1;
}
