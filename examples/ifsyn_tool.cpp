// ifsyn_tool: command-line front end for the whole flow.
//
//   ifsyn_tool <spec.ifs> [options]
//
//     --protocol full|half|fixed|wired   protocol selection (default full)
//     --fixed-delay N                    cycles/word for the fixed-delay protocol
//     --arbitrate                        serialize masters with a bus lock
//     --emit-vhdl <file>                 write the refined spec as VHDL
//     --print-spec                       dump the refined IR as pseudo-VHDL
//     --no-cosim                         skip the equivalence co-simulation
//     --max-time N                       co-simulation budget (cycles)
//     --vcd <file>                       dump the refined run's waveform
//     --report <file>                    write a Markdown synthesis report
//     --metrics <file>                   write the metrics registry as JSON
//     --chrome-trace <file>              write a chrome://tracing trace
//
//   ifsyn_tool check <spec.ifs | builtin:flc|am|ethernet|fig3> [options]
//
//     --protocol full|half|fixed|wired   protocol selection (default full)
//     --fixed-delay N                    cycles/word for the fixed-delay protocol
//     --arbitrate                        serialize masters with a bus lock
//     --metrics <file>                   write the metrics registry as JSON
//
//     Synthesizes the spec (checker gate off), then runs the static
//     protocol checker (src/check) and prints every diagnostic. Exit 0
//     only when the refined system is clean. The builtin: targets check
//     the built-in case-study suite without needing a spec file.
//
//   ifsyn_tool batch <manifest.jsonl> [options]
//
//     --workers N                        worker pool size (default 1)
//     --queue N                          bounded queue capacity (default 64)
//     --deadline-ms N                    default per-request deadline
//     --repeat N                         drain the manifest N times (cache
//                                        warming; default 1)
//     --responses <file>                 write JSONL responses (default stdout)
//     --metrics-text <file>              write the service metrics snapshot
//                                        (prometheus text) after draining
//     --no-timing                        omit wall-clock fields from responses
//                                        (byte-comparable output)
//     --trace <file>                     write one service-wide Chrome trace:
//                                        every request's lifecycle + engine
//                                        spans, flow-linked across threads
//     --event-log <file>                 write the structured JSONL event log
//     --watchdog-ms N                    poll in-flight workers every N ms,
//                                        exporting serve.worker.* gauges
//     --trace-dir <dir>                  directory for slow-request captures
//     --slow-trace-ms N                  capture traces of requests slower
//                                        than N ms (requires --trace-dir)
//     --slow-trace-keep N                keep the N slowest captures (def. 4)
//
//     Drains a newline-delimited JSON request manifest (see
//     src/serve/request.hpp for the schema) through the serve worker
//     pool, writing one response line per request in manifest order.
//     Exit 0 only when every response is ok.
//
//   ifsyn_tool serve [options]
//
//     --workers N / --queue N / --deadline-ms N / --metrics-text <file>
//     --no-timing / --trace / --event-log / --watchdog-ms / --trace-dir /
//     --slow-trace-ms / --slow-trace-keep   as for batch
//
//     Reads JSONL requests from stdin, writes JSONL responses to stdout
//     in request order — synthesis-as-a-service over a pipe; no HTTP
//     dependency. EOF drains the queue and exits.
//
//   ifsyn_tool explore <spec.ifs> [options]
//
//     --threads N                        worker pool size (default 1)
//     --top-k K                          sim-validate the best K front points
//     --protocols full,half,fixed        protocols to enumerate
//     --widths LO:HI                     width range (default 1:largest msg)
//     --fixed-delay N                    cycles/word for fixed-delay points
//     --max-clocks PROC=N                per-process execution-time limit
//     --alt-groupings                    also try single-bus / per-accessor /
//                                        per-channel channel groupings
//     --sim-max-time N                   budget per validation run (cycles)
//     --report <file>                    write the exploration Markdown
//     --json <file>                      write the exploration JSON
//     --metrics <file>                   write the metrics registry as JSON
//     --chrome-trace <file>              write a chrome://tracing trace
//
// Reads a textual specification (see src/spec/parser.hpp for the
// language), runs interface synthesis (bus generation for groups without
// a pinned width + protocol generation), reports the synthesized bus
// structures, co-simulates original vs refined, and optionally emits
// VHDL -- the complete Fig. 1 flow from a file. The explore subcommand
// instead sweeps the whole design space (grouping x protocol x width) in
// parallel and prints the Pareto front (see src/explore/).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <optional>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/trace_miner.hpp"
#include "codegen/vhdl_emitter.hpp"
#include "core/equivalence.hpp"
#include "suite/answering_machine.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"
#include "core/interface_synthesizer.hpp"
#include "core/report.hpp"
#include "explore/explorer.hpp"
#include "explore/report.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "protocol/trace_analyzer.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "sim/vcd.hpp"
#include "spec/parser.hpp"
#include "spec/printer.hpp"

using namespace ifsyn;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spec.ifs> [--protocol full|half|fixed|wired] "
               "[--fixed-delay N] [--arbitrate]\n"
               "          [--emit-vhdl <file>] [--print-spec] [--no-cosim] "
               "[--max-time N] [--vcd <file>] [--report <file>]\n"
               "          [--metrics <file>] [--chrome-trace <file>]\n"
               "       %s check <spec.ifs|builtin:flc|builtin:am|"
               "builtin:ethernet|builtin:fig3>\n"
               "          [--protocol full|half|fixed|wired] "
               "[--fixed-delay N] [--arbitrate] [--metrics <file>]\n"
               "       %s conform <spec.ifs|builtin:flc|builtin:am|"
               "builtin:ethernet|builtin:fig3>\n"
               "          [--protocol full|half|fixed|wired] "
               "[--fixed-delay N] [--arbitrate] [--max-time N]\n"
               "          [--report <file>] [--metrics <file>]\n"
               "       %s explore <spec.ifs> [--threads N] [--top-k K] "
               "[--protocols full,half,fixed]\n"
               "          [--widths LO:HI] [--fixed-delay N] "
               "[--max-clocks PROC=N] [--alt-groupings]\n"
               "          [--sim-max-time N] [--report <file>] "
               "[--json <file>] [--metrics <file>] [--chrome-trace <file>]\n"
               "       %s batch <manifest.jsonl> [--workers N] [--queue N] "
               "[--deadline-ms N] [--repeat N]\n"
               "          [--responses <file>] [--metrics-text <file>] "
               "[--no-timing] [--trace <file>]\n"
               "          [--event-log <file>] [--watchdog-ms N] "
               "[--trace-dir <dir>] [--slow-trace-ms N]\n"
               "          [--slow-trace-keep N]\n"
               "       %s serve [--workers N] [--queue N] [--deadline-ms N] "
               "[--metrics-text <file>] [--no-timing]\n"
               "          [--trace <file>] [--event-log <file>] "
               "[--watchdog-ms N] [--trace-dir <dir>]\n"
               "          [--slow-trace-ms N] [--slow-trace-keep N]\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

/// Load the system to check: a builtin case study or a parsed spec file.
/// Builtins also fill the calibration overrides their tests synthesize
/// with, so the rate re-check runs under the same model.
Result<spec::System> load_check_target(const std::string& target,
                                       core::SynthesisOptions& options) {
  if (target == "builtin:flc") {
    options.compute_cycles_override = {
        {"EVAL_R3", suite::FlcCalibration::kEvalR3ComputeCycles},
        {"CONV_R2", suite::FlcCalibration::kConvR2ComputeCycles},
    };
    return suite::make_flc_kernel();
  }
  if (target == "builtin:am") {
    options.arbitrate = true;  // concurrent masters share AMBUS
    return suite::make_answering_machine();
  }
  if (target == "builtin:ethernet") {
    options.arbitrate = true;
    return suite::make_ethernet_coprocessor();
  }
  if (target == "builtin:fig3") return suite::make_fig3_system();
  if (target.rfind("builtin:", 0) == 0) {
    return invalid_argument("unknown builtin '" + target +
                            "' (flc, am, ethernet, fig3)");
  }
  return spec::parse_system_file(target);
}

int check_main(int argc, char** argv, const char* argv0) {
  std::string target;
  std::string metrics_path;
  core::SynthesisOptions options;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") {
      const std::string p = next_value("--protocol");
      if (p == "full") options.protocol = spec::ProtocolKind::kFullHandshake;
      else if (p == "half") options.protocol = spec::ProtocolKind::kHalfHandshake;
      else if (p == "fixed") options.protocol = spec::ProtocolKind::kFixedDelay;
      else if (p == "wired") options.protocol = spec::ProtocolKind::kHardwiredPort;
      else {
        std::fprintf(stderr, "unknown protocol '%s'\n", p.c_str());
        return 2;
      }
    } else if (arg == "--fixed-delay") {
      options.fixed_delay_cycles = std::atoi(next_value("--fixed-delay"));
    } else if (arg == "--arbitrate") {
      options.arbitrate = true;
    } else if (arg == "--metrics") {
      metrics_path = next_value("--metrics");
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv0);
    } else if (target.empty()) {
      target = arg;
    } else {
      return usage(argv0);
    }
  }
  if (target.empty()) return usage(argv0);

  Result<spec::System> loaded = load_check_target(target, options);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", target.c_str(),
                 loaded.status().to_string().c_str());
    return 1;
  }
  spec::System system = std::move(loaded).value();

  obs::MetricsRegistry registry;
  obs::ObsContext obs;
  if (!metrics_path.empty()) obs.metrics = &registry;
  options.obs = obs;
  // The gate inside the synthesizer would turn findings into a synthesis
  // failure; here we want the full diagnostic list instead.
  options.run_checker = false;

  // Snapshot compute cycles before synthesis rewrites the process bodies
  // the default compute model reads, so the rate re-check reproduces the
  // generator's Eq. 1 arithmetic.
  const std::map<std::string, long long> compute_snapshot =
      check::snapshot_compute_cycles(system, options.compute_cycles_override);

  core::InterfaceSynthesizer synth(options);
  Result<core::SynthesisReport> synthesized = synth.run(system);
  if (!synthesized.is_ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 synthesized.status().to_string().c_str());
    return 1;
  }

  check::CheckOptions check_options;
  check_options.compute_cycles_override = compute_snapshot;
  const check::CheckReport report =
      check::run_checks(system, check_options, obs);

  if (!metrics_path.empty()) {
    if (!write_file(metrics_path, registry.snapshot().to_json())) return 1;
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  if (report.clean()) {
    std::size_t refined_buses = 0;
    for (const auto& bus : system.buses()) {
      if (bus->generated()) ++refined_buses;
    }
    std::printf("check clean: %zu bus(es), %zu channel(s), "
                "0 diagnostics\n",
                refined_buses, system.channels().size());
    return 0;
  }
  std::printf("%s\n", report.to_string().c_str());
  std::fprintf(stderr, "check failed: %d error(s), %d warning(s)\n",
               report.errors(), report.warnings());
  return 1;
}

/// `conform` -- the dynamic counterpart of `check`: synthesize the
/// target, actually run it, and diff the trace-mined protocol automaton
/// of every refined bus against the statically extracted one. Exit 0
/// only when the mined and static views agree on every lane.
int conform_main(int argc, char** argv, const char* argv0) {
  std::string target;
  std::string metrics_path;
  std::string report_path;
  std::uint64_t max_time = 10'000'000;
  core::SynthesisOptions options;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") {
      const std::string p = next_value("--protocol");
      if (p == "full") options.protocol = spec::ProtocolKind::kFullHandshake;
      else if (p == "half") options.protocol = spec::ProtocolKind::kHalfHandshake;
      else if (p == "fixed") options.protocol = spec::ProtocolKind::kFixedDelay;
      else if (p == "wired") options.protocol = spec::ProtocolKind::kHardwiredPort;
      else {
        std::fprintf(stderr, "unknown protocol '%s'\n", p.c_str());
        return 2;
      }
    } else if (arg == "--fixed-delay") {
      options.fixed_delay_cycles = std::atoi(next_value("--fixed-delay"));
    } else if (arg == "--arbitrate") {
      options.arbitrate = true;
    } else if (arg == "--max-time") {
      max_time = std::strtoull(next_value("--max-time"), nullptr, 10);
    } else if (arg == "--metrics") {
      metrics_path = next_value("--metrics");
    } else if (arg == "--report") {
      report_path = next_value("--report");
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv0);
    } else if (target.empty()) {
      target = arg;
    } else {
      return usage(argv0);
    }
  }
  if (target.empty()) return usage(argv0);

  Result<spec::System> loaded = load_check_target(target, options);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", target.c_str(),
                 loaded.status().to_string().c_str());
    return 1;
  }
  spec::System system = std::move(loaded).value();

  obs::MetricsRegistry registry;
  obs::ObsContext obs;
  if (!metrics_path.empty()) obs.metrics = &registry;
  options.obs = obs;
  options.run_checker = false;  // conformance wants the diff, not the gate

  core::InterfaceSynthesizer synth(options);
  Result<core::SynthesisReport> synthesized = synth.run(system);
  if (!synthesized.is_ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 synthesized.status().to_string().c_str());
    return 1;
  }

  sim::SimulationRun run =
      sim::simulate(system, max_time, /*trace=*/true, obs);
  if (!run.result.status.is_ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 run.result.status.to_string().c_str());
    return 1;
  }

  const check::ConformanceReport report =
      check::mine_and_diff(system, run.kernel->trace(), obs);

  std::ostringstream summary;
  summary << "conform " << (report.clean() ? "clean" : "FAILED") << ": "
          << report.lanes_mined << " lane(s), " << report.transactions_mined
          << " transaction(s), " << report.edges_checked << " edge(s), "
          << report.disagreements.size() << " disagreement(s), "
          << report.skipped.size() << " skipped (engine "
          << sim::engine_name(run.interpreter->engine()) << ")";
  std::string body = report.to_string();
  if (!body.empty()) body += "\n";
  body += summary.str();
  body += "\n";

  if (!report_path.empty() && !write_file(report_path, body)) return 1;
  if (!metrics_path.empty()) {
    if (!write_file(metrics_path, registry.snapshot().to_json())) return 1;
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  std::printf("%s", body.c_str());
  return report.clean() ? 0 : 1;
}

int explore_main(int argc, char** argv, const char* argv0) {
  std::string spec_path;
  std::string report_path;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  explore::ExploreOptions options;
  options.top_k = 0;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = std::atoi(next_value("--threads"));
    } else if (arg == "--top-k") {
      options.top_k = std::atoi(next_value("--top-k"));
    } else if (arg == "--protocols") {
      options.space.protocols.clear();
      std::string list = next_value("--protocols");
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (name == "full")
          options.space.protocols.push_back(spec::ProtocolKind::kFullHandshake);
        else if (name == "half")
          options.space.protocols.push_back(spec::ProtocolKind::kHalfHandshake);
        else if (name == "fixed")
          options.space.protocols.push_back(spec::ProtocolKind::kFixedDelay);
        else {
          std::fprintf(stderr, "unknown protocol '%s'\n", name.c_str());
          return 2;
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--widths") {
      const std::string range = next_value("--widths");
      const std::size_t colon = range.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--widths wants LO:HI\n");
        return 2;
      }
      options.space.min_width = std::atoi(range.substr(0, colon).c_str());
      options.space.max_width = std::atoi(range.substr(colon + 1).c_str());
    } else if (arg == "--fixed-delay") {
      options.space.fixed_delay_cycles = std::atoi(next_value("--fixed-delay"));
    } else if (arg == "--max-clocks") {
      const std::string constraint = next_value("--max-clocks");
      const std::size_t eq = constraint.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--max-clocks wants PROC=N\n");
        return 2;
      }
      options.max_execution_clocks[constraint.substr(0, eq)] =
          std::atoll(constraint.substr(eq + 1).c_str());
    } else if (arg == "--alt-groupings") {
      options.space.alternative_groupings = true;
    } else if (arg == "--sim-max-time") {
      options.sim_max_time =
          std::strtoull(next_value("--sim-max-time"), nullptr, 10);
    } else if (arg == "--report") {
      report_path = next_value("--report");
    } else if (arg == "--json") {
      json_path = next_value("--json");
    } else if (arg == "--metrics") {
      metrics_path = next_value("--metrics");
    } else if (arg == "--chrome-trace") {
      trace_path = next_value("--chrome-trace");
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv0);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage(argv0);
    }
  }
  if (spec_path.empty()) return usage(argv0);

  Result<spec::System> parsed = spec::parse_system_file(spec_path);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().to_string().c_str());
    return 1;
  }
  spec::System system = std::move(parsed).value();

  // The explorer falls back to a private registry when none is attached,
  // so ExplorationResult::metrics serves --metrics either way; the trace
  // sink records only when --chrome-trace asked for it.
  obs::TraceSink trace_sink;
  if (!trace_path.empty()) options.obs.trace = &trace_sink;

  explore::Explorer explorer(system, options);
  Result<explore::ExplorationResult> result = explorer.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "exploration failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  const std::string markdown =
      explore::render_exploration_markdown(system, options, *result);
  std::printf("%s", markdown.c_str());

  if (!report_path.empty()) {
    if (!write_file(report_path, markdown)) return 1;
    std::printf("wrote exploration report to %s\n", report_path.c_str());
  }
  if (!json_path.empty()) {
    if (!write_file(json_path,
                    explore::render_exploration_json(system, options,
                                                     *result))) {
      return 1;
    }
    std::printf("wrote exploration JSON to %s\n", json_path.c_str());
  }
  if (!metrics_path.empty()) {
    if (!write_file(metrics_path, result->metrics.to_json())) return 1;
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!write_file(trace_path, trace_sink.to_json())) return 1;
    std::printf("wrote chrome trace (%zu events) to %s\n",
                trace_sink.event_count(), trace_path.c_str());
  }

  // Exit nonzero when a validated survivor failed co-simulation: the
  // estimates recommended something the sim refutes.
  for (std::size_t index : result->validated) {
    const explore::PointResult& point = result->points[index];
    if (!point.sim_ok || !point.equivalent) return 1;
  }
  return 0;
}

/// Shared flag parsing for the batch/serve front ends.
struct ServeCliOptions {
  serve::ServiceOptions service;
  std::string manifest_path;  // batch only
  std::string responses_path;
  std::string metrics_text_path;
  std::string trace_path;      // service-wide Chrome trace
  std::string event_log_path;  // structured JSONL event log
  int repeat = 1;
  bool timing = true;
};

int parse_serve_flags(int argc, char** argv, const char* argv0, bool batch,
                      ServeCliOptions& out) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      out.service.workers = std::atoi(next_value("--workers"));
    } else if (arg == "--queue") {
      out.service.queue_capacity =
          static_cast<std::size_t>(std::atoi(next_value("--queue")));
    } else if (arg == "--deadline-ms") {
      out.service.default_deadline_ms =
          std::strtoull(next_value("--deadline-ms"), nullptr, 10);
    } else if (arg == "--repeat" && batch) {
      out.repeat = std::atoi(next_value("--repeat"));
      if (out.repeat < 1) out.repeat = 1;
    } else if (arg == "--responses" && batch) {
      out.responses_path = next_value("--responses");
    } else if (arg == "--metrics-text") {
      out.metrics_text_path = next_value("--metrics-text");
    } else if (arg == "--no-timing") {
      out.timing = false;
    } else if (arg == "--trace") {
      out.trace_path = next_value("--trace");
    } else if (arg == "--event-log") {
      out.event_log_path = next_value("--event-log");
    } else if (arg == "--watchdog-ms") {
      out.service.watchdog_poll_ms =
          std::strtoull(next_value("--watchdog-ms"), nullptr, 10);
    } else if (arg == "--trace-dir") {
      out.service.slow_trace_dir = next_value("--trace-dir");
    } else if (arg == "--slow-trace-ms") {
      out.service.slow_trace_ms =
          std::strtoull(next_value("--slow-trace-ms"), nullptr, 10);
    } else if (arg == "--slow-trace-keep") {
      out.service.slow_trace_keep =
          static_cast<std::size_t>(std::atoi(next_value("--slow-trace-keep")));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv0);
    } else if (batch && out.manifest_path.empty()) {
      out.manifest_path = arg;
    } else {
      return usage(argv0);
    }
  }
  if (batch && out.manifest_path.empty()) return usage(argv0);
  if (out.service.slow_trace_ms > 0 && out.service.slow_trace_dir.empty()) {
    std::fprintf(stderr, "--slow-trace-ms requires --trace-dir\n");
    return 2;
  }
  return -1;  // parsed OK (not a valid exit code)
}

/// Attach the optional service-wide trace sink and event log (owned by
/// the caller's frame) to the service options.
void attach_serve_observability(ServeCliOptions& cli, obs::TraceSink& trace,
                                obs::EventLog& event_log) {
  if (!cli.trace_path.empty()) {
    cli.service.trace = &trace;
    trace.set_thread_name("submit");
  }
  if (!cli.event_log_path.empty()) cli.service.event_log = &event_log;
}

/// After the service stops: self-validate and write the service trace,
/// and write the event log. Nonzero on any failure.
int write_serve_observability(const ServeCliOptions& cli,
                              const obs::TraceSink& trace,
                              const obs::EventLog& event_log) {
  if (!cli.trace_path.empty()) {
    const std::string json = trace.to_json();
    std::string error;
    if (!obs::validate_trace_json(json, &error)) {
      std::fprintf(stderr, "internal: service trace invalid: %s\n",
                   error.c_str());
      return 1;
    }
    if (!write_file(cli.trace_path, json)) return 1;
    std::fprintf(stderr, "wrote service trace to %s (%zu events)\n",
                 cli.trace_path.c_str(), trace.event_count());
  }
  if (!cli.event_log_path.empty()) {
    std::string error;
    if (!event_log.write_jsonl(cli.event_log_path, &error)) {
      std::fprintf(stderr, "cannot write event log: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote event log to %s (%zu events)\n",
                 cli.event_log_path.c_str(), event_log.size());
  }
  return 0;
}

/// One manifest/stdin line -> either a request for the pool or an
/// immediate structured parse-error response (the id is salvaged from
/// the malformed object when possible, so callers can correlate).
std::future<serve::Response> dispatch_line(serve::Service& service,
                                           const std::string& line) {
  Result<serve::Json> json = serve::parse_json(line);
  serve::Request request;
  if (json.is_ok()) {
    Result<serve::Request> parsed = serve::parse_request(*json);
    if (parsed.is_ok()) return service.submit(std::move(*parsed));
    if (const serve::Json* id = json->find("id"); id && id->is_string()) {
      request.id = id->as_string();
    }
    std::promise<serve::Response> ready;
    serve::Response response;
    response.id = request.id;
    response.ok = false;
    response.error = {"invalid_request", parsed.status().message()};
    ready.set_value(std::move(response));
    return ready.get_future();
  }
  std::promise<serve::Response> ready;
  serve::Response response;
  response.ok = false;
  response.error = {"invalid_request", json.status().message()};
  ready.set_value(std::move(response));
  return ready.get_future();
}

int write_metrics_text(const serve::Service& service, const std::string& path) {
  if (path.empty()) return 0;
  if (!write_file(path, service.metrics_text())) return 1;
  std::fprintf(stderr, "wrote metrics snapshot to %s\n", path.c_str());
  return 0;
}

int batch_main(int argc, char** argv, const char* argv0) {
  ServeCliOptions cli;
  if (int rc = parse_serve_flags(argc, argv, argv0, /*batch=*/true, cli);
      rc >= 0) {
    return rc;
  }

  std::ifstream manifest(cli.manifest_path);
  if (!manifest) {
    std::fprintf(stderr, "cannot read manifest %s\n",
                 cli.manifest_path.c_str());
    return 1;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(manifest, line);) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    lines.push_back(line);
  }

  std::ofstream responses_file;
  std::ostream* out = &std::cout;
  if (!cli.responses_path.empty()) {
    responses_file.open(cli.responses_path);
    if (!responses_file) {
      std::fprintf(stderr, "cannot write %s\n", cli.responses_path.c_str());
      return 1;
    }
    out = &responses_file;
  }

  obs::TraceSink trace_sink;
  obs::EventLog event_log;
  attach_serve_observability(cli, trace_sink, event_log);

  serve::Service service(cli.service);
  service.start();
  bool all_ok = true;
  for (int pass = 0; pass < cli.repeat; ++pass) {
    // The manifest is a work list, not a load test: keep at most the
    // queue capacity outstanding so nothing gets admission-rejected,
    // and emit responses in manifest order.
    std::deque<std::future<serve::Response>> window;
    std::size_t emitted = 0;
    auto drain_one = [&] {
      serve::Response response = window.front().get();
      window.pop_front();
      ++emitted;
      all_ok = all_ok && response.ok;
      *out << serve::render_response(response, cli.timing) << "\n";
    };
    for (const std::string& line : lines) {
      if (window.size() >= cli.service.queue_capacity) drain_one();
      window.push_back(dispatch_line(service, line));
    }
    while (!window.empty()) drain_one();
    std::fprintf(stderr, "pass %d: %zu request(s) drained\n", pass + 1,
                 emitted);
  }
  service.stop();
  if (write_metrics_text(service, cli.metrics_text_path) != 0) return 1;
  if (write_serve_observability(cli, trace_sink, event_log) != 0) return 1;
  return all_ok ? 0 : 1;
}

int serve_main(int argc, char** argv, const char* argv0) {
  ServeCliOptions cli;
  if (int rc = parse_serve_flags(argc, argv, argv0, /*batch=*/false, cli);
      rc >= 0) {
    return rc;
  }

  obs::TraceSink trace_sink;
  obs::EventLog event_log;
  attach_serve_observability(cli, trace_sink, event_log);

  serve::Service service(cli.service);
  service.start();
  // Responses stream back in request order; a full queue answers with
  // admission_rejected immediately (that's the back-pressure signal —
  // the loop never blocks the reader on a slow request).
  std::deque<std::future<serve::Response>> window;
  auto drain_ready = [&](bool block) {
    while (!window.empty() &&
           (block || window.front().wait_for(std::chrono::seconds(0)) ==
                         std::future_status::ready)) {
      std::printf("%s\n", serve::render_response(window.front().get(),
                                                 cli.timing)
                              .c_str());
      std::fflush(stdout);
      window.pop_front();
    }
  };
  for (std::string line; std::getline(std::cin, line);) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    window.push_back(dispatch_line(service, line));
    drain_ready(/*block=*/false);
  }
  drain_ready(/*block=*/true);
  service.stop();
  if (write_metrics_text(service, cli.metrics_text_path) != 0) return 1;
  return write_serve_observability(cli, trace_sink, event_log);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  if (std::strcmp(argv[1], "explore") == 0) {
    return explore_main(argc - 2, argv + 2, argv[0]);
  }
  if (std::strcmp(argv[1], "check") == 0) {
    return check_main(argc - 2, argv + 2, argv[0]);
  }
  if (std::strcmp(argv[1], "conform") == 0) {
    return conform_main(argc - 2, argv + 2, argv[0]);
  }
  if (std::strcmp(argv[1], "batch") == 0) {
    return batch_main(argc - 2, argv + 2, argv[0]);
  }
  if (std::strcmp(argv[1], "serve") == 0) {
    return serve_main(argc - 2, argv + 2, argv[0]);
  }

  std::string spec_path;
  std::string vhdl_path;
  std::string vcd_path;
  std::string report_path;
  std::string metrics_path;
  std::string trace_path;
  bool print_spec = false;
  bool cosim = true;
  std::uint64_t max_time = 10'000'000;
  core::SynthesisOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") {
      const std::string p = next_value("--protocol");
      if (p == "full") options.protocol = spec::ProtocolKind::kFullHandshake;
      else if (p == "half") options.protocol = spec::ProtocolKind::kHalfHandshake;
      else if (p == "fixed") options.protocol = spec::ProtocolKind::kFixedDelay;
      else if (p == "wired") options.protocol = spec::ProtocolKind::kHardwiredPort;
      else {
        std::fprintf(stderr, "unknown protocol '%s'\n", p.c_str());
        return 2;
      }
    } else if (arg == "--fixed-delay") {
      options.fixed_delay_cycles = std::atoi(next_value("--fixed-delay"));
    } else if (arg == "--arbitrate") {
      options.arbitrate = true;
    } else if (arg == "--emit-vhdl") {
      vhdl_path = next_value("--emit-vhdl");
    } else if (arg == "--vcd") {
      vcd_path = next_value("--vcd");
    } else if (arg == "--report") {
      report_path = next_value("--report");
    } else if (arg == "--metrics") {
      metrics_path = next_value("--metrics");
    } else if (arg == "--chrome-trace") {
      trace_path = next_value("--chrome-trace");
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--no-cosim") {
      cosim = false;
    } else if (arg == "--max-time") {
      max_time = std::strtoull(next_value("--max-time"), nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  // ---- parse -------------------------------------------------------------
  Result<spec::System> parsed = spec::parse_system_file(spec_path);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().to_string().c_str());
    return 1;
  }
  spec::System original = std::move(parsed).value();
  std::printf("parsed system '%s': %zu variables, %zu processes, "
              "%zu channels, %zu bus group(s)\n",
              original.name().c_str(), original.variables().size(),
              original.processes().size(), original.channels().size(),
              original.buses().size());

  // ---- synthesize ----------------------------------------------------------
  // Collect metrics whenever any consumer wants them (--metrics, or the
  // report's Metrics section); record trace events only on --chrome-trace.
  obs::MetricsRegistry registry;
  obs::TraceSink trace_sink;
  obs::ObsContext obs;
  if (!metrics_path.empty() || !report_path.empty()) obs.metrics = &registry;
  if (!trace_path.empty()) obs.trace = &trace_sink;
  options.obs = obs;

  spec::System refined = original.clone(original.name() + "_refined");
  core::InterfaceSynthesizer synth(options);
  Result<core::SynthesisReport> report = synth.run(refined);
  if (!report.is_ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }

  for (const auto& bus : refined.buses()) {
    std::printf("bus %s: %d data + %d control + %d id = %d wires, "
                "protocol %s%s\n",
                bus->name.c_str(), bus->width, bus->control_lines,
                bus->id_bits, bus->total_wires(),
                protocol_kind_name(bus->protocol),
                bus->arbitrated ? ", arbitrated" : "");
  }
  for (const core::BusReport& r : report->buses) {
    if (r.generation.selected_width > 0) {
      std::printf("  %s width search: selected %d of %d channel bits "
                  "(reduction %.1f%%)\n",
                  r.bus.c_str(), r.generation.selected_width,
                  r.generation.total_channel_bits,
                  r.generation.interconnect_reduction * 100);
    }
  }
  if (!report->split_buses.empty()) {
    std::printf("  note: %zu group(s) split for Eq. 1 feasibility\n",
                report->split_buses.size());
  }

  if (print_spec) {
    std::printf("\n%s\n", spec::print_system(refined).c_str());
  }

  // ---- co-simulate --------------------------------------------------------
  int exit_code = 0;
  std::optional<core::EquivalenceReport> equivalence;
  if (cosim) {
    Result<core::EquivalenceReport> eq =
        core::check_equivalence(original, refined, max_time, {}, obs);
    if (!eq.is_ok()) {
      std::fprintf(stderr, "co-simulation failed: %s\n",
                   eq.status().to_string().c_str());
      return 1;
    }
    std::printf("co-simulation: original t=%llu, refined t=%llu, "
                "equivalent: %s\n",
                static_cast<unsigned long long>(eq->original_time),
                static_cast<unsigned long long>(eq->refined_time),
                eq->equivalent ? "yes" : "NO");
    for (const std::string& mismatch : eq->mismatches) {
      std::printf("  mismatch: %s\n", mismatch.c_str());
    }
    if (!eq->equivalent) exit_code = 1;
    equivalence = std::move(eq).value();
  }

  if (!vcd_path.empty()) {
    sim::SimulationRun run = sim::simulate(refined, max_time, /*trace=*/true);
    if (!run.result.status.is_ok()) {
      std::fprintf(stderr, "VCD run failed: %s\n",
                   run.result.status.to_string().c_str());
      return 1;
    }
    Status vcd_status = sim::write_vcd(*run.kernel, vcd_path);
    if (!vcd_status.is_ok()) {
      std::fprintf(stderr, "%s\n", vcd_status.to_string().c_str());
      return 1;
    }
    std::printf("wrote waveform (%zu changes) to %s\n",
                run.kernel->trace().size(), vcd_path.c_str());
  }

  if (!report_path.empty()) {
    // Measured traffic needs a traced run (full handshake only).
    std::vector<protocol::BusTraffic> traffic;
    if (options.protocol == spec::ProtocolKind::kFullHandshake) {
      sim::SimulationRun run =
          sim::simulate(refined, max_time, /*trace=*/true);
      if (run.result.status.is_ok()) {
        Result<std::vector<protocol::BusTraffic>> analyzed =
            protocol::analyze_trace(refined, run.kernel->trace(),
                                    run.result.end_time);
        if (analyzed.is_ok()) traffic = std::move(analyzed).value();
      }
    }
    core::ReportInputs inputs;
    inputs.refined = &refined;
    inputs.synthesis = &*report;
    inputs.equivalence = equivalence ? &*equivalence : nullptr;
    inputs.traffic = traffic.empty() ? nullptr : &traffic;
    obs::MetricsSnapshot snapshot;
    if (obs.metrics) {
      snapshot = registry.snapshot();
      inputs.metrics = &snapshot;
    }
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return 1;
    }
    out << core::render_markdown_report(inputs);
    std::printf("wrote synthesis report to %s\n", report_path.c_str());
  }

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    out << registry.snapshot().to_json();
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << trace_sink.to_json();
    std::printf("wrote chrome trace (%zu events) to %s\n",
                trace_sink.event_count(), trace_path.c_str());
  }

  // ---- emit ---------------------------------------------------------------
  if (!vhdl_path.empty()) {
    codegen::VhdlEmitter emitter;
    std::ofstream out(vhdl_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", vhdl_path.c_str());
      return 1;
    }
    out << emitter.emit_system(refined);
    std::printf("wrote refined VHDL to %s\n", vhdl_path.c_str());
  }
  return exit_code;
}
