file(REMOVE_RECURSE
  "CMakeFiles/rate_model_test.dir/estimate/rate_model_test.cpp.o"
  "CMakeFiles/rate_model_test.dir/estimate/rate_model_test.cpp.o.d"
  "rate_model_test"
  "rate_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
