# Empty compiler generated dependencies file for reference_rewriter_test.
# This may be replaced when dependencies are built.
