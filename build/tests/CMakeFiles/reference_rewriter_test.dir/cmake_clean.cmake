file(REMOVE_RECURSE
  "CMakeFiles/reference_rewriter_test.dir/protocol/reference_rewriter_test.cpp.o"
  "CMakeFiles/reference_rewriter_test.dir/protocol/reference_rewriter_test.cpp.o.d"
  "reference_rewriter_test"
  "reference_rewriter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
