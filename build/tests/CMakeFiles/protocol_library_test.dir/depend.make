# Empty dependencies file for protocol_library_test.
# This may be replaced when dependencies are built.
