
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocol/protocol_library_test.cpp" "tests/CMakeFiles/protocol_library_test.dir/protocol/protocol_library_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_library_test.dir/protocol/protocol_library_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ifsyn_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
