file(REMOVE_RECURSE
  "CMakeFiles/protocol_library_test.dir/protocol/protocol_library_test.cpp.o"
  "CMakeFiles/protocol_library_test.dir/protocol/protocol_library_test.cpp.o.d"
  "protocol_library_test"
  "protocol_library_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
