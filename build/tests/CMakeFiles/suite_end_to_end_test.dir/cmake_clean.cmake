file(REMOVE_RECURSE
  "CMakeFiles/suite_end_to_end_test.dir/integration/suite_end_to_end_test.cpp.o"
  "CMakeFiles/suite_end_to_end_test.dir/integration/suite_end_to_end_test.cpp.o.d"
  "suite_end_to_end_test"
  "suite_end_to_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
