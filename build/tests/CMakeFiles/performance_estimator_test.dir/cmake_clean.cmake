file(REMOVE_RECURSE
  "CMakeFiles/performance_estimator_test.dir/estimate/performance_estimator_test.cpp.o"
  "CMakeFiles/performance_estimator_test.dir/estimate/performance_estimator_test.cpp.o.d"
  "performance_estimator_test"
  "performance_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
