file(REMOVE_RECURSE
  "CMakeFiles/trace_analyzer_test.dir/protocol/trace_analyzer_test.cpp.o"
  "CMakeFiles/trace_analyzer_test.dir/protocol/trace_analyzer_test.cpp.o.d"
  "trace_analyzer_test"
  "trace_analyzer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
