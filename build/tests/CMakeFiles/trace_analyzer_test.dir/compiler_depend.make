# Empty compiler generated dependencies file for trace_analyzer_test.
# This may be replaced when dependencies are built.
