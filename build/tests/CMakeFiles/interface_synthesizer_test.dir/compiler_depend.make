# Empty compiler generated dependencies file for interface_synthesizer_test.
# This may be replaced when dependencies are built.
