file(REMOVE_RECURSE
  "CMakeFiles/interface_synthesizer_test.dir/core/interface_synthesizer_test.cpp.o"
  "CMakeFiles/interface_synthesizer_test.dir/core/interface_synthesizer_test.cpp.o.d"
  "interface_synthesizer_test"
  "interface_synthesizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interface_synthesizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
