# Empty dependencies file for refinement_properties_test.
# This may be replaced when dependencies are built.
