file(REMOVE_RECURSE
  "CMakeFiles/refinement_properties_test.dir/integration/refinement_properties_test.cpp.o"
  "CMakeFiles/refinement_properties_test.dir/integration/refinement_properties_test.cpp.o.d"
  "refinement_properties_test"
  "refinement_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
