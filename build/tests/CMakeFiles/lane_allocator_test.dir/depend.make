# Empty dependencies file for lane_allocator_test.
# This may be replaced when dependencies are built.
