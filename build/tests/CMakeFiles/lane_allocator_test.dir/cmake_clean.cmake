file(REMOVE_RECURSE
  "CMakeFiles/lane_allocator_test.dir/bus/lane_allocator_test.cpp.o"
  "CMakeFiles/lane_allocator_test.dir/bus/lane_allocator_test.cpp.o.d"
  "lane_allocator_test"
  "lane_allocator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lane_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
