file(REMOVE_RECURSE
  "CMakeFiles/channel_trace_test.dir/bus/channel_trace_test.cpp.o"
  "CMakeFiles/channel_trace_test.dir/bus/channel_trace_test.cpp.o.d"
  "channel_trace_test"
  "channel_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
