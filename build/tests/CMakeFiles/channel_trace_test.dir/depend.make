# Empty dependencies file for channel_trace_test.
# This may be replaced when dependencies are built.
