file(REMOVE_RECURSE
  "CMakeFiles/bus_generator_test.dir/bus/bus_generator_test.cpp.o"
  "CMakeFiles/bus_generator_test.dir/bus/bus_generator_test.cpp.o.d"
  "bus_generator_test"
  "bus_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
