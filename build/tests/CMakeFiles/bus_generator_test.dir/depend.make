# Empty dependencies file for bus_generator_test.
# This may be replaced when dependencies are built.
