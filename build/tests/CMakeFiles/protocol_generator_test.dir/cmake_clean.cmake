file(REMOVE_RECURSE
  "CMakeFiles/protocol_generator_test.dir/protocol/protocol_generator_test.cpp.o"
  "CMakeFiles/protocol_generator_test.dir/protocol/protocol_generator_test.cpp.o.d"
  "protocol_generator_test"
  "protocol_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
