# Empty dependencies file for protocol_generator_test.
# This may be replaced when dependencies are built.
