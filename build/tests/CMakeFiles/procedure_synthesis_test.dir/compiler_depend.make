# Empty compiler generated dependencies file for procedure_synthesis_test.
# This may be replaced when dependencies are built.
