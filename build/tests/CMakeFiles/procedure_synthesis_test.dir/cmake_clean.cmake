file(REMOVE_RECURSE
  "CMakeFiles/procedure_synthesis_test.dir/protocol/procedure_synthesis_test.cpp.o"
  "CMakeFiles/procedure_synthesis_test.dir/protocol/procedure_synthesis_test.cpp.o.d"
  "procedure_synthesis_test"
  "procedure_synthesis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procedure_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
