file(REMOVE_RECURSE
  "CMakeFiles/id_assignment_test.dir/protocol/id_assignment_test.cpp.o"
  "CMakeFiles/id_assignment_test.dir/protocol/id_assignment_test.cpp.o.d"
  "id_assignment_test"
  "id_assignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/id_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
