# Empty dependencies file for id_assignment_test.
# This may be replaced when dependencies are built.
