file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_codegen.dir/codegen/vhdl_emitter.cpp.o"
  "CMakeFiles/ifsyn_codegen.dir/codegen/vhdl_emitter.cpp.o.d"
  "libifsyn_codegen.a"
  "libifsyn_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
