# Empty compiler generated dependencies file for ifsyn_codegen.
# This may be replaced when dependencies are built.
