file(REMOVE_RECURSE
  "libifsyn_codegen.a"
)
