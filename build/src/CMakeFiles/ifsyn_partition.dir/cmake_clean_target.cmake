file(REMOVE_RECURSE
  "libifsyn_partition.a"
)
