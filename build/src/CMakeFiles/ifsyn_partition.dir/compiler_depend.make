# Empty compiler generated dependencies file for ifsyn_partition.
# This may be replaced when dependencies are built.
