file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_partition.dir/partition/partitioner.cpp.o"
  "CMakeFiles/ifsyn_partition.dir/partition/partitioner.cpp.o.d"
  "libifsyn_partition.a"
  "libifsyn_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
