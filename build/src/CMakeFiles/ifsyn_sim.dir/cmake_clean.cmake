file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_sim.dir/sim/interpreter.cpp.o"
  "CMakeFiles/ifsyn_sim.dir/sim/interpreter.cpp.o.d"
  "CMakeFiles/ifsyn_sim.dir/sim/kernel.cpp.o"
  "CMakeFiles/ifsyn_sim.dir/sim/kernel.cpp.o.d"
  "CMakeFiles/ifsyn_sim.dir/sim/vcd.cpp.o"
  "CMakeFiles/ifsyn_sim.dir/sim/vcd.cpp.o.d"
  "libifsyn_sim.a"
  "libifsyn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
