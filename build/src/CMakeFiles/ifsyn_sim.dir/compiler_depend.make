# Empty compiler generated dependencies file for ifsyn_sim.
# This may be replaced when dependencies are built.
