file(REMOVE_RECURSE
  "libifsyn_sim.a"
)
