# Empty compiler generated dependencies file for ifsyn_bus.
# This may be replaced when dependencies are built.
