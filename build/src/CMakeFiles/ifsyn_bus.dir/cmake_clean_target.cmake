file(REMOVE_RECURSE
  "libifsyn_bus.a"
)
