
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/bus_generator.cpp" "src/CMakeFiles/ifsyn_bus.dir/bus/bus_generator.cpp.o" "gcc" "src/CMakeFiles/ifsyn_bus.dir/bus/bus_generator.cpp.o.d"
  "/root/repo/src/bus/channel_trace.cpp" "src/CMakeFiles/ifsyn_bus.dir/bus/channel_trace.cpp.o" "gcc" "src/CMakeFiles/ifsyn_bus.dir/bus/channel_trace.cpp.o.d"
  "/root/repo/src/bus/constraints.cpp" "src/CMakeFiles/ifsyn_bus.dir/bus/constraints.cpp.o" "gcc" "src/CMakeFiles/ifsyn_bus.dir/bus/constraints.cpp.o.d"
  "/root/repo/src/bus/lane_allocator.cpp" "src/CMakeFiles/ifsyn_bus.dir/bus/lane_allocator.cpp.o" "gcc" "src/CMakeFiles/ifsyn_bus.dir/bus/lane_allocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ifsyn_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
