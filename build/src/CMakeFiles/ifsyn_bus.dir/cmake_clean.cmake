file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_bus.dir/bus/bus_generator.cpp.o"
  "CMakeFiles/ifsyn_bus.dir/bus/bus_generator.cpp.o.d"
  "CMakeFiles/ifsyn_bus.dir/bus/channel_trace.cpp.o"
  "CMakeFiles/ifsyn_bus.dir/bus/channel_trace.cpp.o.d"
  "CMakeFiles/ifsyn_bus.dir/bus/constraints.cpp.o"
  "CMakeFiles/ifsyn_bus.dir/bus/constraints.cpp.o.d"
  "CMakeFiles/ifsyn_bus.dir/bus/lane_allocator.cpp.o"
  "CMakeFiles/ifsyn_bus.dir/bus/lane_allocator.cpp.o.d"
  "libifsyn_bus.a"
  "libifsyn_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
