file(REMOVE_RECURSE
  "libifsyn_core.a"
)
