file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_core.dir/core/equivalence.cpp.o"
  "CMakeFiles/ifsyn_core.dir/core/equivalence.cpp.o.d"
  "CMakeFiles/ifsyn_core.dir/core/interface_synthesizer.cpp.o"
  "CMakeFiles/ifsyn_core.dir/core/interface_synthesizer.cpp.o.d"
  "CMakeFiles/ifsyn_core.dir/core/report.cpp.o"
  "CMakeFiles/ifsyn_core.dir/core/report.cpp.o.d"
  "libifsyn_core.a"
  "libifsyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
