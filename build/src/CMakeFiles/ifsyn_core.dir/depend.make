# Empty dependencies file for ifsyn_core.
# This may be replaced when dependencies are built.
