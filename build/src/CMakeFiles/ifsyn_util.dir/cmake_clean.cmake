file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_util.dir/util/bit_vector.cpp.o"
  "CMakeFiles/ifsyn_util.dir/util/bit_vector.cpp.o.d"
  "CMakeFiles/ifsyn_util.dir/util/status.cpp.o"
  "CMakeFiles/ifsyn_util.dir/util/status.cpp.o.d"
  "libifsyn_util.a"
  "libifsyn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
