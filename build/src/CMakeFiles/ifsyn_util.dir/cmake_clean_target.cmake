file(REMOVE_RECURSE
  "libifsyn_util.a"
)
