# Empty compiler generated dependencies file for ifsyn_util.
# This may be replaced when dependencies are built.
