file(REMOVE_RECURSE
  "libifsyn_estimate.a"
)
