# Empty dependencies file for ifsyn_estimate.
# This may be replaced when dependencies are built.
