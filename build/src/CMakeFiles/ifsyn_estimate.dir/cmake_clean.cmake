file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_estimate.dir/estimate/performance_estimator.cpp.o"
  "CMakeFiles/ifsyn_estimate.dir/estimate/performance_estimator.cpp.o.d"
  "CMakeFiles/ifsyn_estimate.dir/estimate/rate_model.cpp.o"
  "CMakeFiles/ifsyn_estimate.dir/estimate/rate_model.cpp.o.d"
  "libifsyn_estimate.a"
  "libifsyn_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
