
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/id_assignment.cpp" "src/CMakeFiles/ifsyn_protocol.dir/protocol/id_assignment.cpp.o" "gcc" "src/CMakeFiles/ifsyn_protocol.dir/protocol/id_assignment.cpp.o.d"
  "/root/repo/src/protocol/procedure_synthesis.cpp" "src/CMakeFiles/ifsyn_protocol.dir/protocol/procedure_synthesis.cpp.o" "gcc" "src/CMakeFiles/ifsyn_protocol.dir/protocol/procedure_synthesis.cpp.o.d"
  "/root/repo/src/protocol/protocol_generator.cpp" "src/CMakeFiles/ifsyn_protocol.dir/protocol/protocol_generator.cpp.o" "gcc" "src/CMakeFiles/ifsyn_protocol.dir/protocol/protocol_generator.cpp.o.d"
  "/root/repo/src/protocol/protocol_library.cpp" "src/CMakeFiles/ifsyn_protocol.dir/protocol/protocol_library.cpp.o" "gcc" "src/CMakeFiles/ifsyn_protocol.dir/protocol/protocol_library.cpp.o.d"
  "/root/repo/src/protocol/reference_rewriter.cpp" "src/CMakeFiles/ifsyn_protocol.dir/protocol/reference_rewriter.cpp.o" "gcc" "src/CMakeFiles/ifsyn_protocol.dir/protocol/reference_rewriter.cpp.o.d"
  "/root/repo/src/protocol/trace_analyzer.cpp" "src/CMakeFiles/ifsyn_protocol.dir/protocol/trace_analyzer.cpp.o" "gcc" "src/CMakeFiles/ifsyn_protocol.dir/protocol/trace_analyzer.cpp.o.d"
  "/root/repo/src/protocol/variable_process.cpp" "src/CMakeFiles/ifsyn_protocol.dir/protocol/variable_process.cpp.o" "gcc" "src/CMakeFiles/ifsyn_protocol.dir/protocol/variable_process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ifsyn_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ifsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
