# Empty dependencies file for ifsyn_protocol.
# This may be replaced when dependencies are built.
