file(REMOVE_RECURSE
  "libifsyn_protocol.a"
)
