file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_protocol.dir/protocol/id_assignment.cpp.o"
  "CMakeFiles/ifsyn_protocol.dir/protocol/id_assignment.cpp.o.d"
  "CMakeFiles/ifsyn_protocol.dir/protocol/procedure_synthesis.cpp.o"
  "CMakeFiles/ifsyn_protocol.dir/protocol/procedure_synthesis.cpp.o.d"
  "CMakeFiles/ifsyn_protocol.dir/protocol/protocol_generator.cpp.o"
  "CMakeFiles/ifsyn_protocol.dir/protocol/protocol_generator.cpp.o.d"
  "CMakeFiles/ifsyn_protocol.dir/protocol/protocol_library.cpp.o"
  "CMakeFiles/ifsyn_protocol.dir/protocol/protocol_library.cpp.o.d"
  "CMakeFiles/ifsyn_protocol.dir/protocol/reference_rewriter.cpp.o"
  "CMakeFiles/ifsyn_protocol.dir/protocol/reference_rewriter.cpp.o.d"
  "CMakeFiles/ifsyn_protocol.dir/protocol/trace_analyzer.cpp.o"
  "CMakeFiles/ifsyn_protocol.dir/protocol/trace_analyzer.cpp.o.d"
  "CMakeFiles/ifsyn_protocol.dir/protocol/variable_process.cpp.o"
  "CMakeFiles/ifsyn_protocol.dir/protocol/variable_process.cpp.o.d"
  "libifsyn_protocol.a"
  "libifsyn_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
