# Empty compiler generated dependencies file for ifsyn_spec.
# This may be replaced when dependencies are built.
