
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/analysis.cpp" "src/CMakeFiles/ifsyn_spec.dir/spec/analysis.cpp.o" "gcc" "src/CMakeFiles/ifsyn_spec.dir/spec/analysis.cpp.o.d"
  "/root/repo/src/spec/expr.cpp" "src/CMakeFiles/ifsyn_spec.dir/spec/expr.cpp.o" "gcc" "src/CMakeFiles/ifsyn_spec.dir/spec/expr.cpp.o.d"
  "/root/repo/src/spec/parser.cpp" "src/CMakeFiles/ifsyn_spec.dir/spec/parser.cpp.o" "gcc" "src/CMakeFiles/ifsyn_spec.dir/spec/parser.cpp.o.d"
  "/root/repo/src/spec/printer.cpp" "src/CMakeFiles/ifsyn_spec.dir/spec/printer.cpp.o" "gcc" "src/CMakeFiles/ifsyn_spec.dir/spec/printer.cpp.o.d"
  "/root/repo/src/spec/stmt.cpp" "src/CMakeFiles/ifsyn_spec.dir/spec/stmt.cpp.o" "gcc" "src/CMakeFiles/ifsyn_spec.dir/spec/stmt.cpp.o.d"
  "/root/repo/src/spec/system.cpp" "src/CMakeFiles/ifsyn_spec.dir/spec/system.cpp.o" "gcc" "src/CMakeFiles/ifsyn_spec.dir/spec/system.cpp.o.d"
  "/root/repo/src/spec/type.cpp" "src/CMakeFiles/ifsyn_spec.dir/spec/type.cpp.o" "gcc" "src/CMakeFiles/ifsyn_spec.dir/spec/type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ifsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
