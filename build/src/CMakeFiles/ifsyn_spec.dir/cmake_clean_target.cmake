file(REMOVE_RECURSE
  "libifsyn_spec.a"
)
