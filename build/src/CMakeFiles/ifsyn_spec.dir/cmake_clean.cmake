file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_spec.dir/spec/analysis.cpp.o"
  "CMakeFiles/ifsyn_spec.dir/spec/analysis.cpp.o.d"
  "CMakeFiles/ifsyn_spec.dir/spec/expr.cpp.o"
  "CMakeFiles/ifsyn_spec.dir/spec/expr.cpp.o.d"
  "CMakeFiles/ifsyn_spec.dir/spec/parser.cpp.o"
  "CMakeFiles/ifsyn_spec.dir/spec/parser.cpp.o.d"
  "CMakeFiles/ifsyn_spec.dir/spec/printer.cpp.o"
  "CMakeFiles/ifsyn_spec.dir/spec/printer.cpp.o.d"
  "CMakeFiles/ifsyn_spec.dir/spec/stmt.cpp.o"
  "CMakeFiles/ifsyn_spec.dir/spec/stmt.cpp.o.d"
  "CMakeFiles/ifsyn_spec.dir/spec/system.cpp.o"
  "CMakeFiles/ifsyn_spec.dir/spec/system.cpp.o.d"
  "CMakeFiles/ifsyn_spec.dir/spec/type.cpp.o"
  "CMakeFiles/ifsyn_spec.dir/spec/type.cpp.o.d"
  "libifsyn_spec.a"
  "libifsyn_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
