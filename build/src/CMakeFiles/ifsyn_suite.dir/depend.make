# Empty dependencies file for ifsyn_suite.
# This may be replaced when dependencies are built.
