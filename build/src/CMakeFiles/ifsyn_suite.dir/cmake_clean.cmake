file(REMOVE_RECURSE
  "CMakeFiles/ifsyn_suite.dir/suite/answering_machine.cpp.o"
  "CMakeFiles/ifsyn_suite.dir/suite/answering_machine.cpp.o.d"
  "CMakeFiles/ifsyn_suite.dir/suite/ethernet_coprocessor.cpp.o"
  "CMakeFiles/ifsyn_suite.dir/suite/ethernet_coprocessor.cpp.o.d"
  "CMakeFiles/ifsyn_suite.dir/suite/fig3_example.cpp.o"
  "CMakeFiles/ifsyn_suite.dir/suite/fig3_example.cpp.o.d"
  "CMakeFiles/ifsyn_suite.dir/suite/flc.cpp.o"
  "CMakeFiles/ifsyn_suite.dir/suite/flc.cpp.o.d"
  "libifsyn_suite.a"
  "libifsyn_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifsyn_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
