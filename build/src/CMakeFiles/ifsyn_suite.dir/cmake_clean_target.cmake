file(REMOVE_RECURSE
  "libifsyn_suite.a"
)
