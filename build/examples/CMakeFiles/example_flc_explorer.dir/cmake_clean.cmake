file(REMOVE_RECURSE
  "CMakeFiles/example_flc_explorer.dir/flc_explorer.cpp.o"
  "CMakeFiles/example_flc_explorer.dir/flc_explorer.cpp.o.d"
  "flc_explorer"
  "flc_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flc_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
