# Empty dependencies file for example_flc_explorer.
# This may be replaced when dependencies are built.
