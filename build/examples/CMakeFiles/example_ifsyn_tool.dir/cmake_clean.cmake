file(REMOVE_RECURSE
  "CMakeFiles/example_ifsyn_tool.dir/ifsyn_tool.cpp.o"
  "CMakeFiles/example_ifsyn_tool.dir/ifsyn_tool.cpp.o.d"
  "ifsyn_tool"
  "ifsyn_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ifsyn_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
