# Empty compiler generated dependencies file for example_ifsyn_tool.
# This may be replaced when dependencies are built.
