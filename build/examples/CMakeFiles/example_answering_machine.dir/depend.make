# Empty dependencies file for example_answering_machine.
# This may be replaced when dependencies are built.
