# Empty dependencies file for example_ethernet_coprocessor.
# This may be replaced when dependencies are built.
