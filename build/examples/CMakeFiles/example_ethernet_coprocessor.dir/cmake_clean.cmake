file(REMOVE_RECURSE
  "CMakeFiles/example_ethernet_coprocessor.dir/ethernet_coprocessor.cpp.o"
  "CMakeFiles/example_ethernet_coprocessor.dir/ethernet_coprocessor.cpp.o.d"
  "ethernet_coprocessor"
  "ethernet_coprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ethernet_coprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
