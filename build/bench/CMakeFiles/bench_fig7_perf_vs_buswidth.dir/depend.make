# Empty dependencies file for bench_fig7_perf_vs_buswidth.
# This may be replaced when dependencies are built.
