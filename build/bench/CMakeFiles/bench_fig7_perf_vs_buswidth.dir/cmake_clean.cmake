file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_perf_vs_buswidth.dir/bench_fig7_perf_vs_buswidth.cpp.o"
  "CMakeFiles/bench_fig7_perf_vs_buswidth.dir/bench_fig7_perf_vs_buswidth.cpp.o.d"
  "bench_fig7_perf_vs_buswidth"
  "bench_fig7_perf_vs_buswidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_perf_vs_buswidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
