# Empty dependencies file for bench_algorithm_scaling.
# This may be replaced when dependencies are built.
