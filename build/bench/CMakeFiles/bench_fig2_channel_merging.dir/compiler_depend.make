# Empty compiler generated dependencies file for bench_fig2_channel_merging.
# This may be replaced when dependencies are built.
