file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_channel_merging.dir/bench_fig2_channel_merging.cpp.o"
  "CMakeFiles/bench_fig2_channel_merging.dir/bench_fig2_channel_merging.cpp.o.d"
  "bench_fig2_channel_merging"
  "bench_fig2_channel_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_channel_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
