// Microbenchmark for the discrete-event simulation kernel hot paths:
// timed-waiter scheduling (advance_time), event-sensitivity wakeups
// (commit_deltas), wildcard record sensitivity, condition waiters, and
// the FLC example end-to-end through the interpreter.
//
// Each workload is synthetic but shaped like the traffic the explorer's
// validation phase generates: many processes, many signals, and wakeup
// patterns that used to cost O(processes) or
// O(waiters x sensitivity x changed) per scheduler step.
//
// Writes BENCH_sim_kernel.json. IFSYN_BENCH_SMOKE=1 shrinks the workloads
// for CI smoke runs; numbers from smoke mode are not comparable.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "partition/partitioner.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/system.hpp"
#include "sim/kernel.hpp"
#include "sim/task.hpp"
#include "suite/flc.hpp"
#include "util/bit_vector.hpp"

using namespace ifsyn;
using namespace ifsyn::sim;
using Clock = std::chrono::steady_clock;

namespace {

struct WorkloadResult {
  double best_ms = 1e300;
  SimResult sim;
};

/// Runs `build` + Kernel::run `repeats` times, keeping the best wall time.
template <typename BuildFn>
WorkloadResult run_workload(const char* name, int repeats, BuildFn build,
                            std::uint64_t max_time = 50'000'000) {
  WorkloadResult out;
  for (int rep = 0; rep < repeats; ++rep) {
    Kernel kernel;
    build(kernel);
    const auto start = Clock::now();
    SimResult result = kernel.run(max_time);
    const auto stop = Clock::now();
    if (!result.status.is_ok()) {
      std::printf("workload %s failed: %s\n", name,
                  result.status.to_string().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < out.best_ms) {
      out.best_ms = ms;
      out.sim = std::move(result);
    }
  }
  return out;
}

FieldKey key(std::string sig, std::string field = "") {
  return FieldKey{std::move(sig), std::move(field)};
}

}  // namespace

int main() {
  const bool smoke = ifsyn::bench::smoke_mode();
  const int repeats = smoke ? 1 : 3;
  std::printf("=== Simulation kernel microbenchmarks%s ===\n",
              smoke ? " (smoke mode)" : "");

  ifsyn::bench::BenchJson json("sim_kernel");
  json.set("smoke", smoke ? 1 : 0);

  // ---- 1. timed wheel: many processes sleeping on staggered periods ----
  // Stresses advance_time (pop next instant) and ready dispatch; the old
  // kernel rescanned every process twice per instant.
  {
    const int procs = smoke ? 64 : 512;
    const int sleeps = smoke ? 64 : 512;
    auto result = run_workload("timed_wheel", repeats, [&](Kernel& kernel) {
      for (int p = 0; p < procs; ++p) {
        kernel.add_process(
            "t" + std::to_string(p), [&kernel, p, sleeps]() -> SimTask {
              const std::uint64_t period = 1 + (p % 13);
              for (int i = 0; i < sleeps; ++i) {
                auto aw = kernel.wait_for(period);
                co_await aw;
              }
            });
      }
    });
    std::printf("timed_wheel      %4d procs x %4d sleeps: %9.2f ms "
                "(%llu instants)\n",
                procs, sleeps, result.best_ms,
                static_cast<unsigned long long>(result.sim.kernel.instants));
    json.set("timed_wheel_ms", result.best_ms);
    json.set("timed_wheel_instants",
             static_cast<double>(result.sim.kernel.instants));
  }

  // ---- 2. event wakeups: one waiter per signal, round-robin driver ----
  // Each commit used to scan every waiting process and string-compare its
  // whole sensitivity list; the sensitivity index touches only the one
  // process parked on the changed signal.
  {
    const int signals = smoke ? 64 : 384;
    const int rounds = smoke ? 32 : 256;
    auto result = run_workload("event_wakeup", repeats, [&](Kernel& kernel) {
      for (int s = 0; s < signals; ++s) {
        kernel.add_signal_field(key("S" + std::to_string(s)), BitVector(1));
      }
      for (int s = 0; s < signals; ++s) {
        kernel.add_process(
            "w" + std::to_string(s), [&kernel, s, rounds]() -> SimTask {
              const FieldKey k{"S" + std::to_string(s), ""};
              for (int r = 0; r < rounds; ++r) {
                std::vector<FieldKey> sens{k};
                auto aw = kernel.wait_on(std::move(sens));
                co_await aw;
              }
            });
      }
      kernel.add_process("driver", [&kernel, rounds, signals]() -> SimTask {
        for (int r = 0; r < rounds; ++r) {
          for (int s = 0; s < signals; ++s) {
            const FieldKey k{"S" + std::to_string(s), ""};
            kernel.schedule_signal(
                k, BitVector::from_uint(1, r % 2 == 0 ? 1 : 0));
            auto aw = kernel.wait_for(1);
            co_await aw;
          }
        }
      });
    });
    std::printf("event_wakeup     %4d signals x %4d rounds: %8.2f ms "
                "(%llu event wakeups)\n",
                signals, rounds, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_event));
    json.set("event_wakeup_ms", result.best_ms);
    json.set("event_wakeup_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_event));
  }

  // ---- 3. wildcard record sensitivity: FieldKey{sig, ""} fan-out ----
  // Waiters subscribe to a whole record; the driver commits one field at a
  // time. Exercises wildcard expansion in the sensitivity index.
  {
    const int fields = 16;
    const int waiters = smoke ? 16 : 96;
    const int rounds = smoke ? 64 : 512;
    auto result = run_workload("wildcard", repeats, [&](Kernel& kernel) {
      for (int f = 0; f < fields; ++f) {
        kernel.add_signal_field(key("REC", "F" + std::to_string(f)),
                                BitVector(8));
      }
      for (int w = 0; w < waiters; ++w) {
        kernel.add_process(
            "w" + std::to_string(w), [&kernel, rounds]() -> SimTask {
              for (int r = 0; r < rounds; ++r) {
                std::vector<FieldKey> sens{FieldKey{"REC", ""}};
                auto aw = kernel.wait_on(std::move(sens));
                co_await aw;
              }
            });
      }
      kernel.add_process("driver", [&kernel, rounds, fields]() -> SimTask {
        for (int r = 0; r < rounds; ++r) {
          const FieldKey k{"REC", "F" + std::to_string(r % fields)};
          kernel.schedule_signal(k, BitVector::from_uint(8, 1 + r % 255));
          auto aw = kernel.wait_for(1);
          co_await aw;
        }
      });
    });
    std::printf("wildcard         %4d waiters x %4d rounds: %8.2f ms "
                "(%llu event wakeups)\n",
                waiters, rounds, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_event));
    json.set("wildcard_ms", result.best_ms);
    json.set("wildcard_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_event));
  }

  // ---- 4. condition waiters: four-phase handshakes via wait until ----
  // Condition re-evaluation is inherently O(condition waiters) per commit;
  // the win is not scanning every non-condition process along the way.
  {
    const int pairs = smoke ? 16 : 96;
    const int words = smoke ? 32 : 128;
    auto result = run_workload("condition", repeats, [&](Kernel& kernel) {
      for (int p = 0; p < pairs; ++p) {
        kernel.add_signal_field(key("REQ" + std::to_string(p)), BitVector(1));
        kernel.add_signal_field(key("ACK" + std::to_string(p)), BitVector(1));
      }
      for (int p = 0; p < pairs; ++p) {
        kernel.add_process(
            "send" + std::to_string(p), [&kernel, p, words]() -> SimTask {
              const FieldKey req{"REQ" + std::to_string(p), ""};
              const FieldKey ack{"ACK" + std::to_string(p), ""};
              for (int i = 0; i < words; ++i) {
                kernel.schedule_signal(req, BitVector::from_uint(1, 1));
                { auto aw = kernel.wait_for(1); co_await aw; }
                {
                  auto aw = kernel.wait_until([&kernel, ack]() {
                    return kernel.signal_value(ack).to_uint() == 1;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(req, BitVector::from_uint(1, 0));
                { auto aw = kernel.wait_for(1); co_await aw; }
                {
                  auto aw = kernel.wait_until([&kernel, ack]() {
                    return kernel.signal_value(ack).to_uint() == 0;
                  });
                  co_await aw;
                }
              }
            });
        kernel.add_process(
            "recv" + std::to_string(p), [&kernel, p, words]() -> SimTask {
              const FieldKey req{"REQ" + std::to_string(p), ""};
              const FieldKey ack{"ACK" + std::to_string(p), ""};
              for (int i = 0; i < words; ++i) {
                {
                  auto aw = kernel.wait_until([&kernel, req]() {
                    return kernel.signal_value(req).to_uint() == 1;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(ack, BitVector::from_uint(1, 1));
                {
                  auto aw = kernel.wait_until([&kernel, req]() {
                    return kernel.signal_value(req).to_uint() == 0;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(ack, BitVector::from_uint(1, 0));
              }
            });
      }
    });
    std::printf("condition        %4d pairs   x %4d words:  %8.2f ms "
                "(%llu condition wakeups)\n",
                pairs, words, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_condition));
    json.set("condition_ms", result.best_ms);
    json.set("condition_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_condition));
  }

  // ---- 5. FLC example through the interpreter, per engine ----
  // End-to-end: compile/intern time plus data-plane execution on the
  // paper's fuzzy-logic controller spec. Run once per engine so the
  // bytecode VM's speedup over the AST reference walker — and the native
  // engine's over the VM — is recorded. The native leg's first repetition
  // pays the AOT compile; best-of-N keeps the warm (artifact-cached)
  // timing, which is the steady state every later run in this process or
  // any other sees.
  {
    const int flc_repeats = smoke ? 1 : 5;
    const spec::System flc = suite::make_flc_full();
    const char* engine_names[3] = {"vm", "ast", "native"};
    double engine_ms[3] = {1e300, 1e300, 1e300};
    std::uint64_t end_time[3] = {0, 0, 0};
    bool native_engaged = false;
    for (Engine engine : {Engine::kVm, Engine::kAst, Engine::kNative}) {
      const int idx = engine == Engine::kVm    ? 0
                      : engine == Engine::kAst ? 1
                                               : 2;
      for (int rep = 0; rep < flc_repeats; ++rep) {
        const auto start = Clock::now();
        SimulationRun run = simulate(flc, 1'000'000, false, {}, engine);
        const auto stop = Clock::now();
        if (!run.result.status.is_ok()) {
          std::printf("FLC simulation (%s) failed: %s\n", engine_names[idx],
                      run.result.status.to_string().c_str());
          return 1;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < engine_ms[idx]) engine_ms[idx] = ms;
        end_time[idx] = run.result.end_time;
        if (idx == 2) native_engaged = run.interpreter->native() != nullptr;
      }
    }
    if (end_time[0] != end_time[1] || end_time[0] != end_time[2]) {
      std::printf("FLC engines disagree on end_time: vm=%llu ast=%llu "
                  "native=%llu\n",
                  static_cast<unsigned long long>(end_time[0]),
                  static_cast<unsigned long long>(end_time[1]),
                  static_cast<unsigned long long>(end_time[2]));
      return 1;
    }
    if (!native_engaged) {
      std::printf("note: native engine fell back to the VM; native numbers "
                  "are VM numbers\n");
    }
    const double speedup = engine_ms[0] > 0 ? engine_ms[1] / engine_ms[0] : 0;
    std::printf("flc_interpreter  vm %8.2f ms | ast %8.2f ms | native "
                "%8.2f ms | %.2fx (%llu cycles)\n",
                engine_ms[0], engine_ms[1], engine_ms[2], speedup,
                static_cast<unsigned long long>(end_time[0]));
    // flc_interpreter_ms keeps its historical meaning: the default engine.
    json.set("flc_interpreter_ms", engine_ms[0]);
    json.set("flc_interpreter_vm_ms", engine_ms[0]);
    json.set("flc_interpreter_ast_ms", engine_ms[1]);
    json.set("flc_native_ms", engine_ms[2]);
    json.set("flc_native_engaged", native_engaged ? 1 : 0);
    json.set("flc_speedup", speedup);
    json.set("flc_end_time", static_cast<double>(end_time[0]));
  }

  // ---- 6. dense wakeups through the interpreter, per engine ----
  // A spec-level workload dominated by data-plane interpretation: one
  // driver toggles CLK every cycle, each listener wakes on every edge and
  // runs an arithmetic inner loop. Kernel scheduling is identical across
  // engines, so the ratio isolates AST walking vs bytecode dispatch.
  {
    const int listeners = smoke ? 4 : 16;
    const int rounds = smoke ? 32 : 512;
    const int inner = 16;
    spec::System dense("dense_wakeup");
    dense.add_signal(spec::Signal{"CLK", {spec::SignalField{"", 1}}});
    for (int l = 0; l < listeners; ++l) {
      const std::string acc = "ACC" + std::to_string(l);
      dense.add_variable(
          spec::Variable(acc, spec::Type::integer(32), spec::Value::integer(l)));
      spec::Process p;
      p.name = "listen" + std::to_string(l);
      p.body = {spec::for_stmt(
          "r", spec::lit(1), spec::lit(rounds),
          {spec::wait_on({spec::SignalFieldId{"CLK", ""}}),
           spec::for_stmt(
               "k", spec::lit(1), spec::lit(inner),
               {spec::assign(
                   acc, spec::mod(spec::add(spec::mul(spec::var(acc),
                                                      spec::lit(5)),
                                            spec::add(spec::var("k"),
                                                      spec::var("r"))),
                                  spec::lit(9973)))})})};
      dense.add_process(std::move(p));
    }
    {
      spec::Process p;
      p.name = "driver";
      p.body = {spec::for_stmt(
          "r", spec::lit(1), spec::lit(rounds),
          {spec::sig_assign("CLK", "", spec::mod(spec::var("r"), spec::lit(2))),
           spec::wait_for(1)})};
      dense.add_process(std::move(p));
    }

    const char* engine_names[3] = {"vm", "ast", "native"};
    double engine_ms[3] = {1e300, 1e300, 1e300};
    std::uint64_t end_time[3] = {0, 0, 0};
    for (Engine engine : {Engine::kVm, Engine::kAst, Engine::kNative}) {
      const int idx = engine == Engine::kVm    ? 0
                      : engine == Engine::kAst ? 1
                                               : 2;
      for (int rep = 0; rep < repeats; ++rep) {
        const auto start = Clock::now();
        SimulationRun run = simulate(dense, 10'000'000, false, {}, engine);
        const auto stop = Clock::now();
        if (!run.result.status.is_ok()) {
          std::printf("dense_wakeup (%s) failed: %s\n", engine_names[idx],
                      run.result.status.to_string().c_str());
          return 1;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < engine_ms[idx]) engine_ms[idx] = ms;
        end_time[idx] = run.result.end_time;
      }
    }
    if (end_time[0] != end_time[1] || end_time[0] != end_time[2]) {
      std::printf("dense_wakeup engines disagree on end_time: vm=%llu "
                  "ast=%llu native=%llu\n",
                  static_cast<unsigned long long>(end_time[0]),
                  static_cast<unsigned long long>(end_time[1]),
                  static_cast<unsigned long long>(end_time[2]));
      return 1;
    }
    const double speedup = engine_ms[0] > 0 ? engine_ms[1] / engine_ms[0] : 0;
    std::printf("dense_wakeup     vm %8.2f ms | ast %8.2f ms | native "
                "%8.2f ms | %.2fx (%d listeners x %d rounds)\n",
                engine_ms[0], engine_ms[1], engine_ms[2], speedup, listeners,
                rounds);
    json.set("dense_wakeup_vm_ms", engine_ms[0]);
    json.set("dense_wakeup_ast_ms", engine_ms[1]);
    json.set("dense_wakeup_native_ms", engine_ms[2]);
    json.set("dense_wakeup_speedup", speedup);
  }

  // ---- 7. dense protocol transfers: optimized vs reference VM ----
  // A protocol-refined system streaming an array through a narrow
  // generated bus, word by word — the workload the superinstruction
  // optimizer (sim/bytecode/optimizer.hpp) targets. Both timings use the
  // bytecode VM; only IFSYN_SIM_OPT differs, so the ratio isolates the
  // bulk-transfer + peephole rewrites. The end times must agree
  // byte-for-byte (the optimizer's suspension-point equivalence contract).
  {
    const int streams = smoke ? 2 : 4;
    const int elems = smoke ? 4 : 16;
    const int passes = smoke ? 2 : 32;
    // `streams` identical producer/consumer loops, each over its own
    // variable and its own generated bus. The streams run in lockstep, so
    // their per-word waits coalesce onto shared kernel instants — the
    // wall time is dominated by the VM's per-word dispatch work, which is
    // exactly what the optimizer rewrites.
    spec::System xfer("xfer");
    partition::ModuleAssignment m1;
    m1.module = "M1";
    partition::ModuleAssignment m2;
    m2.module = "M2";
    for (int s = 0; s < streams; ++s) {
      const std::string v = "V" + std::to_string(s);
      // 64-bit elements over a 4-bit bus: 16 words per element, so the
      // per-word transfer loops dominate the per-element bookkeeping.
      xfer.add_variable(
          spec::Variable(v, spec::Type::array(spec::Type::bits(64), elems)));
      spec::Process p;
      p.name = "P" + std::to_string(s);
      p.locals.emplace_back("ACC", spec::Type::integer(32),
                            spec::Value::integer(1));
      p.locals.emplace_back("TMP", spec::Type::integer(32));
      p.body = {spec::for_stmt(
          "r", spec::lit(1), spec::lit(passes),
          {spec::for_stmt("i", spec::lit(0), spec::lit(elems - 1),
                          {spec::assign(spec::lv_idx(v, spec::var("i")),
                                        spec::add(spec::var("i"),
                                                  spec::var("r")))}),
           spec::for_stmt(
               "j", spec::lit(0), spec::lit(elems - 1),
               {spec::assign("TMP", spec::aref(v, spec::var("j"))),
                spec::assign("ACC", spec::add(spec::var("ACC"),
                                              spec::var("TMP")))})})};
      m1.processes.push_back(p.name);
      m2.variables.push_back(v);
      xfer.add_process(std::move(p));
    }
    Status status = partition::apply_partition(xfer, {m1, m2});
    // One bus per stream: channels derive in process declaration order,
    // two per stream (write + read), so CH(2s)/CH(2s+1) belong to Ps.
    for (int s = 0; status.is_ok() && s < streams; ++s) {
      const std::string bus = "FB" + std::to_string(s);
      status = partition::group_channels(
          xfer, bus,
          {"CH" + std::to_string(2 * s), "CH" + std::to_string(2 * s + 1)});
      if (status.is_ok()) xfer.find_bus(bus)->width = 4;
    }
    if (status.is_ok()) {
      protocol::ProtocolGenOptions options;
      options.protocol = spec::ProtocolKind::kHalfHandshake;
      options.arbitrate = true;
      protocol::ProtocolGenerator generator(options);
      status = generator.generate_all(xfer);
    }
    if (!status.is_ok()) {
      std::printf("sim_opt_xfer setup failed: %s\n",
                  status.to_string().c_str());
      return 1;
    }

    const char* saved = std::getenv("IFSYN_SIM_OPT");
    const std::string saved_value = saved != nullptr ? saved : "";
    // [0] = optimized VM, [1] = reference VM, [2] = native (over the same
    // optimized bytecode the emitter lowers, so the ratio vs [0] isolates
    // AOT codegen vs bytecode dispatch).
    double level_ms[3] = {1e300, 1e300, 1e300};
    std::uint64_t end_time[3] = {0, 0, 0};
    bool native_engaged = false;
    // Interleave the legs within each repetition so host-speed drift
    // (frequency scaling, background load) biases all sides equally
    // instead of whichever leg happened to run second.
    const int opt_repeats = smoke ? 1 : 5;
    for (int rep = 0; rep < opt_repeats; ++rep) {
      for (int idx = 0; idx < 3; ++idx) {
        ::setenv("IFSYN_SIM_OPT", idx == 1 ? "0" : "1", 1);
        const Engine engine = idx == 2 ? Engine::kNative : Engine::kVm;
        const auto start = Clock::now();
        SimulationRun run = simulate(xfer, 100'000'000, false, {}, engine);
        const auto stop = Clock::now();
        if (!run.result.status.is_ok()) {
          std::printf("sim_opt_xfer (leg=%d) failed: %s\n", idx,
                      run.result.status.to_string().c_str());
          return 1;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < level_ms[idx]) level_ms[idx] = ms;
        end_time[idx] = run.result.end_time;
        if (idx == 2) native_engaged = run.interpreter->native() != nullptr;
      }
    }
    if (saved != nullptr) {
      ::setenv("IFSYN_SIM_OPT", saved_value.c_str(), 1);
    } else {
      ::unsetenv("IFSYN_SIM_OPT");
    }
    if (end_time[0] != end_time[1] || end_time[0] != end_time[2]) {
      std::printf("sim_opt_xfer legs disagree on end_time: opt=%llu "
                  "ref=%llu native=%llu\n",
                  static_cast<unsigned long long>(end_time[0]),
                  static_cast<unsigned long long>(end_time[1]),
                  static_cast<unsigned long long>(end_time[2]));
      return 1;
    }
    if (!native_engaged) {
      std::printf("note: native engine fell back to the VM; native numbers "
                  "are VM numbers\n");
    }
    const double speedup =
        level_ms[0] > 0 ? level_ms[1] / level_ms[0] : 0;
    const double native_speedup =
        level_ms[2] > 0 ? level_ms[0] / level_ms[2] : 0;
    std::printf("sim_opt_xfer    opt %8.2f ms | ref %8.2f ms | native "
                "%8.2f ms | %.2fx opt/ref | %.2fx native/opt "
                "(%d streams x %d elems x %d passes, %llu cycles)\n",
                level_ms[0], level_ms[1], level_ms[2], speedup, native_speedup,
                streams, elems, passes,
                static_cast<unsigned long long>(end_time[0]));
    json.set("sim_opt_xfer_opt_ms", level_ms[0]);
    json.set("sim_opt_xfer_ref_ms", level_ms[1]);
    json.set("sim_native_xfer_ms", level_ms[2]);
    json.set("sim_opt_speedup_xfer", speedup);
    json.set("sim_native_speedup_xfer", native_speedup);
    json.set("sim_native_xfer_engaged", native_engaged ? 1 : 0);
    json.set("sim_opt_xfer_end_time", static_cast<double>(end_time[0]));
  }

  // Floors on single-machine expectations (bench_compare.py
  // --serial-floor) gate on this: the opt-over-unopt ratio is valid on
  // any core count, unlike the parallel-scaling floors.
  json.set("hardware_threads",
           static_cast<double>(std::thread::hardware_concurrency()));

  json.write();
  return 0;
}
