// Microbenchmark for the discrete-event simulation kernel hot paths:
// timed-waiter scheduling (advance_time), event-sensitivity wakeups
// (commit_deltas), wildcard record sensitivity, condition waiters, and
// the FLC example end-to-end through the interpreter.
//
// Each workload is synthetic but shaped like the traffic the explorer's
// validation phase generates: many processes, many signals, and wakeup
// patterns that used to cost O(processes) or
// O(waiters x sensitivity x changed) per scheduler step.
//
// Writes BENCH_sim_kernel.json. IFSYN_BENCH_SMOKE=1 shrinks the workloads
// for CI smoke runs; numbers from smoke mode are not comparable.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "sim/interpreter.hpp"
#include "sim/kernel.hpp"
#include "sim/task.hpp"
#include "suite/flc.hpp"
#include "util/bit_vector.hpp"

using namespace ifsyn;
using namespace ifsyn::sim;
using Clock = std::chrono::steady_clock;

namespace {

struct WorkloadResult {
  double best_ms = 1e300;
  SimResult sim;
};

/// Runs `build` + Kernel::run `repeats` times, keeping the best wall time.
template <typename BuildFn>
WorkloadResult run_workload(const char* name, int repeats, BuildFn build,
                            std::uint64_t max_time = 50'000'000) {
  WorkloadResult out;
  for (int rep = 0; rep < repeats; ++rep) {
    Kernel kernel;
    build(kernel);
    const auto start = Clock::now();
    SimResult result = kernel.run(max_time);
    const auto stop = Clock::now();
    if (!result.status.is_ok()) {
      std::printf("workload %s failed: %s\n", name,
                  result.status.to_string().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < out.best_ms) {
      out.best_ms = ms;
      out.sim = std::move(result);
    }
  }
  return out;
}

FieldKey key(std::string sig, std::string field = "") {
  return FieldKey{std::move(sig), std::move(field)};
}

}  // namespace

int main() {
  const bool smoke = ifsyn::bench::smoke_mode();
  const int repeats = smoke ? 1 : 3;
  std::printf("=== Simulation kernel microbenchmarks%s ===\n",
              smoke ? " (smoke mode)" : "");

  ifsyn::bench::BenchJson json("sim_kernel");
  json.set("smoke", smoke ? 1 : 0);

  // ---- 1. timed wheel: many processes sleeping on staggered periods ----
  // Stresses advance_time (pop next instant) and ready dispatch; the old
  // kernel rescanned every process twice per instant.
  {
    const int procs = smoke ? 64 : 512;
    const int sleeps = smoke ? 64 : 512;
    auto result = run_workload("timed_wheel", repeats, [&](Kernel& kernel) {
      for (int p = 0; p < procs; ++p) {
        kernel.add_process(
            "t" + std::to_string(p), [&kernel, p, sleeps]() -> SimTask {
              const std::uint64_t period = 1 + (p % 13);
              for (int i = 0; i < sleeps; ++i) {
                auto aw = kernel.wait_for(period);
                co_await aw;
              }
            });
      }
    });
    std::printf("timed_wheel      %4d procs x %4d sleeps: %9.2f ms "
                "(%llu instants)\n",
                procs, sleeps, result.best_ms,
                static_cast<unsigned long long>(result.sim.kernel.instants));
    json.set("timed_wheel_ms", result.best_ms);
    json.set("timed_wheel_instants",
             static_cast<double>(result.sim.kernel.instants));
  }

  // ---- 2. event wakeups: one waiter per signal, round-robin driver ----
  // Each commit used to scan every waiting process and string-compare its
  // whole sensitivity list; the sensitivity index touches only the one
  // process parked on the changed signal.
  {
    const int signals = smoke ? 64 : 384;
    const int rounds = smoke ? 32 : 256;
    auto result = run_workload("event_wakeup", repeats, [&](Kernel& kernel) {
      for (int s = 0; s < signals; ++s) {
        kernel.add_signal_field(key("S" + std::to_string(s)), BitVector(1));
      }
      for (int s = 0; s < signals; ++s) {
        kernel.add_process(
            "w" + std::to_string(s), [&kernel, s, rounds]() -> SimTask {
              const FieldKey k{"S" + std::to_string(s), ""};
              for (int r = 0; r < rounds; ++r) {
                std::vector<FieldKey> sens{k};
                auto aw = kernel.wait_on(std::move(sens));
                co_await aw;
              }
            });
      }
      kernel.add_process("driver", [&kernel, rounds, signals]() -> SimTask {
        for (int r = 0; r < rounds; ++r) {
          for (int s = 0; s < signals; ++s) {
            const FieldKey k{"S" + std::to_string(s), ""};
            kernel.schedule_signal(
                k, BitVector::from_uint(1, r % 2 == 0 ? 1 : 0));
            auto aw = kernel.wait_for(1);
            co_await aw;
          }
        }
      });
    });
    std::printf("event_wakeup     %4d signals x %4d rounds: %8.2f ms "
                "(%llu event wakeups)\n",
                signals, rounds, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_event));
    json.set("event_wakeup_ms", result.best_ms);
    json.set("event_wakeup_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_event));
  }

  // ---- 3. wildcard record sensitivity: FieldKey{sig, ""} fan-out ----
  // Waiters subscribe to a whole record; the driver commits one field at a
  // time. Exercises wildcard expansion in the sensitivity index.
  {
    const int fields = 16;
    const int waiters = smoke ? 16 : 96;
    const int rounds = smoke ? 64 : 512;
    auto result = run_workload("wildcard", repeats, [&](Kernel& kernel) {
      for (int f = 0; f < fields; ++f) {
        kernel.add_signal_field(key("REC", "F" + std::to_string(f)),
                                BitVector(8));
      }
      for (int w = 0; w < waiters; ++w) {
        kernel.add_process(
            "w" + std::to_string(w), [&kernel, rounds]() -> SimTask {
              for (int r = 0; r < rounds; ++r) {
                std::vector<FieldKey> sens{FieldKey{"REC", ""}};
                auto aw = kernel.wait_on(std::move(sens));
                co_await aw;
              }
            });
      }
      kernel.add_process("driver", [&kernel, rounds, fields]() -> SimTask {
        for (int r = 0; r < rounds; ++r) {
          const FieldKey k{"REC", "F" + std::to_string(r % fields)};
          kernel.schedule_signal(k, BitVector::from_uint(8, 1 + r % 255));
          auto aw = kernel.wait_for(1);
          co_await aw;
        }
      });
    });
    std::printf("wildcard         %4d waiters x %4d rounds: %8.2f ms "
                "(%llu event wakeups)\n",
                waiters, rounds, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_event));
    json.set("wildcard_ms", result.best_ms);
    json.set("wildcard_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_event));
  }

  // ---- 4. condition waiters: four-phase handshakes via wait until ----
  // Condition re-evaluation is inherently O(condition waiters) per commit;
  // the win is not scanning every non-condition process along the way.
  {
    const int pairs = smoke ? 16 : 96;
    const int words = smoke ? 32 : 128;
    auto result = run_workload("condition", repeats, [&](Kernel& kernel) {
      for (int p = 0; p < pairs; ++p) {
        kernel.add_signal_field(key("REQ" + std::to_string(p)), BitVector(1));
        kernel.add_signal_field(key("ACK" + std::to_string(p)), BitVector(1));
      }
      for (int p = 0; p < pairs; ++p) {
        kernel.add_process(
            "send" + std::to_string(p), [&kernel, p, words]() -> SimTask {
              const FieldKey req{"REQ" + std::to_string(p), ""};
              const FieldKey ack{"ACK" + std::to_string(p), ""};
              for (int i = 0; i < words; ++i) {
                kernel.schedule_signal(req, BitVector::from_uint(1, 1));
                { auto aw = kernel.wait_for(1); co_await aw; }
                {
                  auto aw = kernel.wait_until([&kernel, ack]() {
                    return kernel.signal_value(ack).to_uint() == 1;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(req, BitVector::from_uint(1, 0));
                { auto aw = kernel.wait_for(1); co_await aw; }
                {
                  auto aw = kernel.wait_until([&kernel, ack]() {
                    return kernel.signal_value(ack).to_uint() == 0;
                  });
                  co_await aw;
                }
              }
            });
        kernel.add_process(
            "recv" + std::to_string(p), [&kernel, p, words]() -> SimTask {
              const FieldKey req{"REQ" + std::to_string(p), ""};
              const FieldKey ack{"ACK" + std::to_string(p), ""};
              for (int i = 0; i < words; ++i) {
                {
                  auto aw = kernel.wait_until([&kernel, req]() {
                    return kernel.signal_value(req).to_uint() == 1;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(ack, BitVector::from_uint(1, 1));
                {
                  auto aw = kernel.wait_until([&kernel, req]() {
                    return kernel.signal_value(req).to_uint() == 0;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(ack, BitVector::from_uint(1, 0));
              }
            });
      }
    });
    std::printf("condition        %4d pairs   x %4d words:  %8.2f ms "
                "(%llu condition wakeups)\n",
                pairs, words, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_condition));
    json.set("condition_ms", result.best_ms);
    json.set("condition_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_condition));
  }

  // ---- 5. FLC example through the interpreter ----
  // End-to-end: elaboration-time interning plus kernel scheduling on the
  // paper's fuzzy-logic controller spec.
  {
    const int flc_repeats = smoke ? 1 : 5;
    const spec::System flc = suite::make_flc_full();
    double best_ms = 1e300;
    std::uint64_t end_time = 0;
    for (int rep = 0; rep < flc_repeats; ++rep) {
      const auto start = Clock::now();
      SimulationRun run = simulate(flc);
      const auto stop = Clock::now();
      if (!run.result.status.is_ok()) {
        std::printf("FLC simulation failed: %s\n",
                    run.result.status.to_string().c_str());
        return 1;
      }
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      if (ms < best_ms) best_ms = ms;
      end_time = run.result.end_time;
    }
    std::printf("flc_interpreter  full controller, %d reps:   %8.2f ms "
                "(%llu cycles)\n",
                flc_repeats, best_ms,
                static_cast<unsigned long long>(end_time));
    json.set("flc_interpreter_ms", best_ms);
    json.set("flc_end_time", static_cast<double>(end_time));
  }

  json.write();
  return 0;
}
