// Microbenchmark for the discrete-event simulation kernel hot paths:
// timed-waiter scheduling (advance_time), event-sensitivity wakeups
// (commit_deltas), wildcard record sensitivity, condition waiters, and
// the FLC example end-to-end through the interpreter.
//
// Each workload is synthetic but shaped like the traffic the explorer's
// validation phase generates: many processes, many signals, and wakeup
// patterns that used to cost O(processes) or
// O(waiters x sensitivity x changed) per scheduler step.
//
// Writes BENCH_sim_kernel.json. IFSYN_BENCH_SMOKE=1 shrinks the workloads
// for CI smoke runs; numbers from smoke mode are not comparable.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "sim/interpreter.hpp"
#include "spec/system.hpp"
#include "sim/kernel.hpp"
#include "sim/task.hpp"
#include "suite/flc.hpp"
#include "util/bit_vector.hpp"

using namespace ifsyn;
using namespace ifsyn::sim;
using Clock = std::chrono::steady_clock;

namespace {

struct WorkloadResult {
  double best_ms = 1e300;
  SimResult sim;
};

/// Runs `build` + Kernel::run `repeats` times, keeping the best wall time.
template <typename BuildFn>
WorkloadResult run_workload(const char* name, int repeats, BuildFn build,
                            std::uint64_t max_time = 50'000'000) {
  WorkloadResult out;
  for (int rep = 0; rep < repeats; ++rep) {
    Kernel kernel;
    build(kernel);
    const auto start = Clock::now();
    SimResult result = kernel.run(max_time);
    const auto stop = Clock::now();
    if (!result.status.is_ok()) {
      std::printf("workload %s failed: %s\n", name,
                  result.status.to_string().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < out.best_ms) {
      out.best_ms = ms;
      out.sim = std::move(result);
    }
  }
  return out;
}

FieldKey key(std::string sig, std::string field = "") {
  return FieldKey{std::move(sig), std::move(field)};
}

}  // namespace

int main() {
  const bool smoke = ifsyn::bench::smoke_mode();
  const int repeats = smoke ? 1 : 3;
  std::printf("=== Simulation kernel microbenchmarks%s ===\n",
              smoke ? " (smoke mode)" : "");

  ifsyn::bench::BenchJson json("sim_kernel");
  json.set("smoke", smoke ? 1 : 0);

  // ---- 1. timed wheel: many processes sleeping on staggered periods ----
  // Stresses advance_time (pop next instant) and ready dispatch; the old
  // kernel rescanned every process twice per instant.
  {
    const int procs = smoke ? 64 : 512;
    const int sleeps = smoke ? 64 : 512;
    auto result = run_workload("timed_wheel", repeats, [&](Kernel& kernel) {
      for (int p = 0; p < procs; ++p) {
        kernel.add_process(
            "t" + std::to_string(p), [&kernel, p, sleeps]() -> SimTask {
              const std::uint64_t period = 1 + (p % 13);
              for (int i = 0; i < sleeps; ++i) {
                auto aw = kernel.wait_for(period);
                co_await aw;
              }
            });
      }
    });
    std::printf("timed_wheel      %4d procs x %4d sleeps: %9.2f ms "
                "(%llu instants)\n",
                procs, sleeps, result.best_ms,
                static_cast<unsigned long long>(result.sim.kernel.instants));
    json.set("timed_wheel_ms", result.best_ms);
    json.set("timed_wheel_instants",
             static_cast<double>(result.sim.kernel.instants));
  }

  // ---- 2. event wakeups: one waiter per signal, round-robin driver ----
  // Each commit used to scan every waiting process and string-compare its
  // whole sensitivity list; the sensitivity index touches only the one
  // process parked on the changed signal.
  {
    const int signals = smoke ? 64 : 384;
    const int rounds = smoke ? 32 : 256;
    auto result = run_workload("event_wakeup", repeats, [&](Kernel& kernel) {
      for (int s = 0; s < signals; ++s) {
        kernel.add_signal_field(key("S" + std::to_string(s)), BitVector(1));
      }
      for (int s = 0; s < signals; ++s) {
        kernel.add_process(
            "w" + std::to_string(s), [&kernel, s, rounds]() -> SimTask {
              const FieldKey k{"S" + std::to_string(s), ""};
              for (int r = 0; r < rounds; ++r) {
                std::vector<FieldKey> sens{k};
                auto aw = kernel.wait_on(std::move(sens));
                co_await aw;
              }
            });
      }
      kernel.add_process("driver", [&kernel, rounds, signals]() -> SimTask {
        for (int r = 0; r < rounds; ++r) {
          for (int s = 0; s < signals; ++s) {
            const FieldKey k{"S" + std::to_string(s), ""};
            kernel.schedule_signal(
                k, BitVector::from_uint(1, r % 2 == 0 ? 1 : 0));
            auto aw = kernel.wait_for(1);
            co_await aw;
          }
        }
      });
    });
    std::printf("event_wakeup     %4d signals x %4d rounds: %8.2f ms "
                "(%llu event wakeups)\n",
                signals, rounds, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_event));
    json.set("event_wakeup_ms", result.best_ms);
    json.set("event_wakeup_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_event));
  }

  // ---- 3. wildcard record sensitivity: FieldKey{sig, ""} fan-out ----
  // Waiters subscribe to a whole record; the driver commits one field at a
  // time. Exercises wildcard expansion in the sensitivity index.
  {
    const int fields = 16;
    const int waiters = smoke ? 16 : 96;
    const int rounds = smoke ? 64 : 512;
    auto result = run_workload("wildcard", repeats, [&](Kernel& kernel) {
      for (int f = 0; f < fields; ++f) {
        kernel.add_signal_field(key("REC", "F" + std::to_string(f)),
                                BitVector(8));
      }
      for (int w = 0; w < waiters; ++w) {
        kernel.add_process(
            "w" + std::to_string(w), [&kernel, rounds]() -> SimTask {
              for (int r = 0; r < rounds; ++r) {
                std::vector<FieldKey> sens{FieldKey{"REC", ""}};
                auto aw = kernel.wait_on(std::move(sens));
                co_await aw;
              }
            });
      }
      kernel.add_process("driver", [&kernel, rounds, fields]() -> SimTask {
        for (int r = 0; r < rounds; ++r) {
          const FieldKey k{"REC", "F" + std::to_string(r % fields)};
          kernel.schedule_signal(k, BitVector::from_uint(8, 1 + r % 255));
          auto aw = kernel.wait_for(1);
          co_await aw;
        }
      });
    });
    std::printf("wildcard         %4d waiters x %4d rounds: %8.2f ms "
                "(%llu event wakeups)\n",
                waiters, rounds, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_event));
    json.set("wildcard_ms", result.best_ms);
    json.set("wildcard_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_event));
  }

  // ---- 4. condition waiters: four-phase handshakes via wait until ----
  // Condition re-evaluation is inherently O(condition waiters) per commit;
  // the win is not scanning every non-condition process along the way.
  {
    const int pairs = smoke ? 16 : 96;
    const int words = smoke ? 32 : 128;
    auto result = run_workload("condition", repeats, [&](Kernel& kernel) {
      for (int p = 0; p < pairs; ++p) {
        kernel.add_signal_field(key("REQ" + std::to_string(p)), BitVector(1));
        kernel.add_signal_field(key("ACK" + std::to_string(p)), BitVector(1));
      }
      for (int p = 0; p < pairs; ++p) {
        kernel.add_process(
            "send" + std::to_string(p), [&kernel, p, words]() -> SimTask {
              const FieldKey req{"REQ" + std::to_string(p), ""};
              const FieldKey ack{"ACK" + std::to_string(p), ""};
              for (int i = 0; i < words; ++i) {
                kernel.schedule_signal(req, BitVector::from_uint(1, 1));
                { auto aw = kernel.wait_for(1); co_await aw; }
                {
                  auto aw = kernel.wait_until([&kernel, ack]() {
                    return kernel.signal_value(ack).to_uint() == 1;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(req, BitVector::from_uint(1, 0));
                { auto aw = kernel.wait_for(1); co_await aw; }
                {
                  auto aw = kernel.wait_until([&kernel, ack]() {
                    return kernel.signal_value(ack).to_uint() == 0;
                  });
                  co_await aw;
                }
              }
            });
        kernel.add_process(
            "recv" + std::to_string(p), [&kernel, p, words]() -> SimTask {
              const FieldKey req{"REQ" + std::to_string(p), ""};
              const FieldKey ack{"ACK" + std::to_string(p), ""};
              for (int i = 0; i < words; ++i) {
                {
                  auto aw = kernel.wait_until([&kernel, req]() {
                    return kernel.signal_value(req).to_uint() == 1;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(ack, BitVector::from_uint(1, 1));
                {
                  auto aw = kernel.wait_until([&kernel, req]() {
                    return kernel.signal_value(req).to_uint() == 0;
                  });
                  co_await aw;
                }
                kernel.schedule_signal(ack, BitVector::from_uint(1, 0));
              }
            });
      }
    });
    std::printf("condition        %4d pairs   x %4d words:  %8.2f ms "
                "(%llu condition wakeups)\n",
                pairs, words, result.best_ms,
                static_cast<unsigned long long>(
                    result.sim.kernel.wakeups_condition));
    json.set("condition_ms", result.best_ms);
    json.set("condition_wakeups",
             static_cast<double>(result.sim.kernel.wakeups_condition));
  }

  // ---- 5. FLC example through the interpreter, per engine ----
  // End-to-end: compile/intern time plus data-plane execution on the
  // paper's fuzzy-logic controller spec. Run once per engine so the
  // bytecode VM's speedup over the AST reference walker is recorded.
  {
    const int flc_repeats = smoke ? 1 : 5;
    const spec::System flc = suite::make_flc_full();
    double engine_ms[2] = {1e300, 1e300};
    std::uint64_t end_time[2] = {0, 0};
    for (Engine engine : {Engine::kVm, Engine::kAst}) {
      const int idx = engine == Engine::kVm ? 0 : 1;
      for (int rep = 0; rep < flc_repeats; ++rep) {
        const auto start = Clock::now();
        SimulationRun run = simulate(flc, 1'000'000, false, {}, engine);
        const auto stop = Clock::now();
        if (!run.result.status.is_ok()) {
          std::printf("FLC simulation (%s) failed: %s\n",
                      idx == 0 ? "vm" : "ast",
                      run.result.status.to_string().c_str());
          return 1;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < engine_ms[idx]) engine_ms[idx] = ms;
        end_time[idx] = run.result.end_time;
      }
    }
    if (end_time[0] != end_time[1]) {
      std::printf("FLC engines disagree on end_time: vm=%llu ast=%llu\n",
                  static_cast<unsigned long long>(end_time[0]),
                  static_cast<unsigned long long>(end_time[1]));
      return 1;
    }
    const double speedup = engine_ms[0] > 0 ? engine_ms[1] / engine_ms[0] : 0;
    std::printf("flc_interpreter  vm %8.2f ms | ast %8.2f ms | %.2fx "
                "(%llu cycles)\n",
                engine_ms[0], engine_ms[1], speedup,
                static_cast<unsigned long long>(end_time[0]));
    // flc_interpreter_ms keeps its historical meaning: the default engine.
    json.set("flc_interpreter_ms", engine_ms[0]);
    json.set("flc_interpreter_vm_ms", engine_ms[0]);
    json.set("flc_interpreter_ast_ms", engine_ms[1]);
    json.set("flc_speedup", speedup);
    json.set("flc_end_time", static_cast<double>(end_time[0]));
  }

  // ---- 6. dense wakeups through the interpreter, per engine ----
  // A spec-level workload dominated by data-plane interpretation: one
  // driver toggles CLK every cycle, each listener wakes on every edge and
  // runs an arithmetic inner loop. Kernel scheduling is identical across
  // engines, so the ratio isolates AST walking vs bytecode dispatch.
  {
    const int listeners = smoke ? 4 : 16;
    const int rounds = smoke ? 32 : 512;
    const int inner = 16;
    spec::System dense("dense_wakeup");
    dense.add_signal(spec::Signal{"CLK", {spec::SignalField{"", 1}}});
    for (int l = 0; l < listeners; ++l) {
      const std::string acc = "ACC" + std::to_string(l);
      dense.add_variable(
          spec::Variable(acc, spec::Type::integer(32), spec::Value::integer(l)));
      spec::Process p;
      p.name = "listen" + std::to_string(l);
      p.body = {spec::for_stmt(
          "r", spec::lit(1), spec::lit(rounds),
          {spec::wait_on({spec::SignalFieldId{"CLK", ""}}),
           spec::for_stmt(
               "k", spec::lit(1), spec::lit(inner),
               {spec::assign(
                   acc, spec::mod(spec::add(spec::mul(spec::var(acc),
                                                      spec::lit(5)),
                                            spec::add(spec::var("k"),
                                                      spec::var("r"))),
                                  spec::lit(9973)))})})};
      dense.add_process(std::move(p));
    }
    {
      spec::Process p;
      p.name = "driver";
      p.body = {spec::for_stmt(
          "r", spec::lit(1), spec::lit(rounds),
          {spec::sig_assign("CLK", "", spec::mod(spec::var("r"), spec::lit(2))),
           spec::wait_for(1)})};
      dense.add_process(std::move(p));
    }

    double engine_ms[2] = {1e300, 1e300};
    std::uint64_t end_time[2] = {0, 0};
    for (Engine engine : {Engine::kVm, Engine::kAst}) {
      const int idx = engine == Engine::kVm ? 0 : 1;
      for (int rep = 0; rep < repeats; ++rep) {
        const auto start = Clock::now();
        SimulationRun run = simulate(dense, 10'000'000, false, {}, engine);
        const auto stop = Clock::now();
        if (!run.result.status.is_ok()) {
          std::printf("dense_wakeup (%s) failed: %s\n", idx == 0 ? "vm" : "ast",
                      run.result.status.to_string().c_str());
          return 1;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < engine_ms[idx]) engine_ms[idx] = ms;
        end_time[idx] = run.result.end_time;
      }
    }
    if (end_time[0] != end_time[1]) {
      std::printf("dense_wakeup engines disagree on end_time: vm=%llu "
                  "ast=%llu\n",
                  static_cast<unsigned long long>(end_time[0]),
                  static_cast<unsigned long long>(end_time[1]));
      return 1;
    }
    const double speedup = engine_ms[0] > 0 ? engine_ms[1] / engine_ms[0] : 0;
    std::printf("dense_wakeup     vm %8.2f ms | ast %8.2f ms | %.2fx "
                "(%d listeners x %d rounds)\n",
                engine_ms[0], engine_ms[1], speedup, listeners, rounds);
    json.set("dense_wakeup_vm_ms", engine_ms[0]);
    json.set("dense_wakeup_ast_ms", engine_ms[1]);
    json.set("dense_wakeup_speedup", speedup);
  }

  json.write();
  return 0;
}
