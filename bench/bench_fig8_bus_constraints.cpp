// Reproduces Figure 8: "Bus constraints, selected bus width and
// corresponding bus rates of three implementations of bus B comprising
// ch1 and ch2".
//
// Paper's table:
//   design A: MinPeakRate(ch2)=10 b/clk (w 10)          -> width 20, 10 b/clk
//   design B: MinPeak(ch2)=10 (2), MinBW=14 (1),
//             MaxBW (1)                                  -> width 18,  9 b/clk
//   design C: MinPeak(ch2)=10 (1), MinBW=16 (5),
//             MaxBW=16 (5)                               -> width 16,  8 b/clk
//   total channel bitwidth 46 pins; reductions 56/61/66 %.
//
// The OCR of the paper garbles design B's MaxBusWidth bound; 17 is the
// unique value for which the published selection (18) minimizes the
// stated cost function -- see DESIGN.md. Our exact reductions are
// 56.5/60.9/65.2 % (1 - width/46); the paper's rounding prints 56/61/66.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bus/bus_generator.hpp"
#include "spec/analysis.hpp"
#include "suite/flc.hpp"

using namespace ifsyn;
using namespace ifsyn::bus;
using suite::FlcCalibration;

namespace {

struct Design {
  const char* name;
  const char* description;
  std::vector<BusConstraint> constraints;
  int paper_width;
  double paper_rate;
  int paper_reduction;
};

}  // namespace

int main() {
  std::printf("=== Figure 8: constraint-driven bus designs for {ch1, ch2} "
              "===\n\n");

  spec::System kernel = suite::make_flc_kernel();
  Status status = spec::annotate_channel_accesses(kernel);
  if (!status.is_ok()) {
    std::printf("annotation failed: %s\n", status.to_string().c_str());
    return 1;
  }
  estimate::PerformanceEstimator estimator(kernel);
  estimator.set_compute_cycles("EVAL_R3",
                               FlcCalibration::kEvalR3ComputeCycles);
  estimator.set_compute_cycles("CONV_R2",
                               FlcCalibration::kConvR2ComputeCycles);
  BusGenerator generator(kernel, estimator);

  const Design designs[] = {
      {"A", "MinPeakRate(ch2)=10 b/clk (w10)",
       {min_peak_rate("ch2", 10, 10)},
       20, 10.0, 56},
      {"B",
       "MinPeak(ch2)=10 (w2); MinBW=14 (w1); MaxBW=17 (w1)",
       {min_peak_rate("ch2", 10, 2), min_bus_width(14, 1),
        max_bus_width(17, 1)},
       18, 9.0, 61},
      {"C",
       "MinPeak(ch2)=10 (w1); MinBW=16 (w5); MaxBW=16 (w5)",
       {min_peak_rate("ch2", 10, 1), min_bus_width(16, 5),
        max_bus_width(16, 5)},
       16, 8.0, 66},
  };

  std::printf("%-3s %-52s %7s %12s %12s %10s\n", "", "constraints (weight)",
              "width", "rate(b/clk)", "reduction%", "paper");
  bench::BenchJson json("fig8_bus_constraints");
  bool all_match = true;
  for (const Design& design : designs) {
    BusGenOptions options;
    options.constraints = design.constraints;
    Result<BusGenResult> result =
        generator.generate(*kernel.find_bus("B"), options);
    if (!result.is_ok()) {
      std::printf("%-3s synthesis failed: %s\n", design.name,
                  result.status().to_string().c_str());
      all_match = false;
      continue;
    }
    const bool match = result->selected_width == design.paper_width &&
                       result->selected_bus_rate == design.paper_rate;
    all_match = all_match && match;
    const std::string prefix = std::string("design_") + design.name;
    json.set(prefix + "_selected_width", result->selected_width);
    json.set(prefix + "_bus_rate", result->selected_bus_rate);
    json.set(prefix + "_reduction_pct",
             result->interconnect_reduction * 100);
    json.set(prefix + "_matches_paper", match ? 1 : 0);
    std::printf("%-3s %-52s %7d %12.1f %12.1f %4d/%.0f/%d%% %s\n",
                design.name, design.description, result->selected_width,
                result->selected_bus_rate,
                result->interconnect_reduction * 100, design.paper_width,
                design.paper_rate, design.paper_reduction,
                match ? "MATCH" : "MISMATCH");
  }
  std::printf("\nTotal bitwidth of the channels: 46 pins (2 x (16 data + 7 "
              "addr)), as in the paper.\n");

  // Show the exploration behind design B: cost of every candidate width.
  std::printf("\n--- cost landscape for design B (weighted squared "
              "violations) ---\n");
  BusGenOptions options;
  options.constraints = designs[1].constraints;
  Result<BusGenResult> result =
      generator.generate(*kernel.find_bus("B"), options);
  std::printf("%7s %10s %10s %10s %s\n", "width", "rate", "demand", "cost",
              "status");
  for (const WidthEvaluation& eval : result->evaluations) {
    if (eval.width < 9 && eval.width % 3 != 0) continue;  // compress rows
    std::printf("%7d %10.2f %10.2f %10.2f %s%s\n", eval.width, eval.bus_rate,
                eval.sum_average_rates, eval.cost,
                eval.feasible ? "feasible" : "infeasible (Eq. 1)",
                eval.width == result->selected_width ? "  <- selected" : "");
  }
  json.set("all_designs_match_paper", all_match ? 1 : 0);
  json.write();
  return all_match ? 0 : 1;
}
