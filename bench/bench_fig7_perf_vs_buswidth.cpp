// Reproduces Figure 7: "Fuzzy Logic Controller - Performance vs.
// Buswidth": execution time (clocks) of processes EVAL_R3 and CONV_R2 as
// the bus implementing channels ch1 and ch2 is widened from 1 to 28 pins.
//
// Paper's qualitative claims, all checked here:
//   - both curves decrease monotonically with buswidth;
//   - EVAL_R3 sits above CONV_R2 (more computation per element);
//   - no improvement beyond 23 pins (16 data + 7 address bits);
//   - a 2000-clock constraint on CONV_R2 admits only widths > 4.
//
// Columns: the analytic estimator (the paper's method, via our
// reimplementation of refs [8]/[10]) and the discrete-event simulation of
// the actually-generated protocol, whose read transactions cost
// ceil(7/w)+ceil(16/w) words instead of the estimator's combined
// ceil(23/w) (see DESIGN.md, Substitutions).
#include <cstdio>

#include "bench_json.hpp"
#include "estimate/performance_estimator.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/analysis.hpp"
#include "suite/flc.hpp"

using namespace ifsyn;
using suite::FlcCalibration;

int main() {
  std::printf(
      "=== Figure 7: FLC performance vs. buswidth (clocks) ===\n\n");

  spec::System kernel = suite::make_flc_kernel();
  Status status = spec::annotate_channel_accesses(kernel);
  if (!status.is_ok()) {
    std::printf("annotation failed: %s\n", status.to_string().c_str());
    return 1;
  }
  estimate::PerformanceEstimator estimator(kernel);
  estimator.set_compute_cycles("EVAL_R3",
                               FlcCalibration::kEvalR3ComputeCycles);
  estimator.set_compute_cycles("CONV_R2",
                               FlcCalibration::kConvR2ComputeCycles);

  std::printf("%6s | %10s %10s | %12s %12s\n", "width", "EVAL_R3",
              "CONV_R2", "sim EVAL_R3", "sim CONV_R2");
  std::printf("       |  (estimator, paper's method)  |"
              "  (generated protocol, simulated)\n");

  bench::BenchJson json("fig7_perf_vs_buswidth");
  bool monotone = true;
  bool plateau = true;
  long long prev_eval = -1, prev_conv = -1, eval_at_23 = 0, conv_at_23 = 0;

  for (int width = 1; width <= 28; ++width) {
    const long long t_eval = estimator.execution_time(
        "EVAL_R3", width, spec::ProtocolKind::kFullHandshake, 2);
    const long long t_conv = estimator.execution_time(
        "CONV_R2", width, spec::ProtocolKind::kFullHandshake, 2);
    if (prev_eval >= 0 && (t_eval > prev_eval || t_conv > prev_conv)) {
      monotone = false;
    }
    prev_eval = t_eval;
    prev_conv = t_conv;
    if (width == 23) {
      eval_at_23 = t_eval;
      conv_at_23 = t_conv;
    }
    if (width > 23 && (t_eval != eval_at_23 || t_conv != conv_at_23)) {
      plateau = false;
    }

    // Simulate the generated protocol at this width (arbitrated: the two
    // processes share the bus concurrently).
    spec::System refined = suite::make_flc_kernel();
    refined.find_bus("B")->width = width;
    protocol::ProtocolGenOptions options;
    options.arbitrate = true;
    protocol::ProtocolGenerator generator(options);
    unsigned long long sim_eval = 0, sim_conv = 0;
    if (generator.generate_all(refined).is_ok()) {
      sim::SimulationRun run = sim::simulate(refined, 50'000'000);
      if (run.result.status.is_ok()) {
        if (const auto* p = run.result.find("EVAL_R3"))
          sim_eval = p->finish_time;
        if (const auto* p = run.result.find("CONV_R2"))
          sim_conv = p->finish_time;
      }
    }
    std::printf("%6d | %10lld %10lld | %12llu %12llu%s\n", width, t_eval,
                t_conv, sim_eval, sim_conv,
                width == 23 ? "  <- 16 data + 7 addr pins" : "");
    char key[64];
    std::snprintf(key, sizeof(key), "w%02d_est_eval_r3", width);
    json.set(key, static_cast<double>(t_eval));
    std::snprintf(key, sizeof(key), "w%02d_est_conv_r2", width);
    json.set(key, static_cast<double>(t_conv));
    std::snprintf(key, sizeof(key), "w%02d_sim_eval_r3", width);
    json.set(key, static_cast<double>(sim_eval));
    std::snprintf(key, sizeof(key), "w%02d_sim_conv_r2", width);
    json.set(key, static_cast<double>(sim_conv));
  }

  std::printf("\nchecks against the paper's claims:\n");
  std::printf("  monotone decrease:            %s\n",
              monotone ? "PASS" : "FAIL");
  std::printf("  plateau beyond 23 pins:       %s\n",
              plateau ? "PASS" : "FAIL");
  const bool crossover =
      estimator.execution_time("CONV_R2", 4,
                               spec::ProtocolKind::kFullHandshake, 2) >
          FlcCalibration::kConvR2MaxClocks &&
      estimator.execution_time("CONV_R2", 5,
                               spec::ProtocolKind::kFullHandshake, 2) <=
          FlcCalibration::kConvR2MaxClocks;
  std::printf("  CONV_R2 2000-clock constraint admits only widths > 4: %s\n",
              crossover ? "PASS" : "FAIL");
  json.set("check_monotone", monotone ? 1 : 0);
  json.set("check_plateau_beyond_23", plateau ? 1 : 0);
  json.set("check_conv_r2_constraint_crossover", crossover ? 1 : 0);
  json.write();
  return (monotone && plateau && crossover) ? 0 : 1;
}
