// The Sec. 5 aggregate experiment: "We performed several experiments
// involving the application of the bus generation algorithm to synthesize
// module interfaces in an answering machine, an Ethernet network
// coprocessor and a fuzzy logic controller."
//
// For each design: derive the channels from the partition, run bus +
// protocol generation, report the selected structure and interconnect
// reduction, and co-simulate original vs refined to verify functional
// equivalence -- the full Fig. 1 flow per case study.
#include <cstdio>
#include <functional>
#include <string>

#include "bench_json.hpp"
#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "suite/answering_machine.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/flc.hpp"

using namespace ifsyn;

namespace {

struct CaseStudy {
  const char* name;
  std::function<spec::System()> build;
  std::uint64_t max_time;
};

}  // namespace

int main() {
  std::printf("=== Sec. 5 end-to-end: interface synthesis on the three "
              "case studies ===\n\n");

  const CaseStudy studies[] = {
      {"fuzzy logic controller (bus B kernel)", suite::make_flc_kernel,
       10'000'000},
      {"fuzzy logic controller (full)", suite::make_flc_full, 20'000'000},
      {"answering machine", suite::make_answering_machine, 5'000'000},
      {"ethernet network coprocessor", suite::make_ethernet_coprocessor,
       10'000'000},
  };

  std::printf("%-38s %4s %6s %6s %7s %7s %8s %5s\n", "design", "chs",
              "chbits", "buses", "width", "redu%", "slowdown", "equiv");
  bench::BenchJson json("suite_end_to_end");
  bool all_ok = true;

  int study_index = 0;
  for (const CaseStudy& study : studies) {
    spec::System original = study.build();
    spec::System refined = original.clone(std::string(original.name()) +
                                          "_refined");
    core::SynthesisOptions options;
    options.arbitrate = true;
    if (std::string(study.name).find("kernel") != std::string::npos) {
      options.compute_cycles_override = {
          {"EVAL_R3", suite::FlcCalibration::kEvalR3ComputeCycles},
          {"CONV_R2", suite::FlcCalibration::kConvR2ComputeCycles},
      };
    }
    core::InterfaceSynthesizer synth(options);
    Result<core::SynthesisReport> report = synth.run(refined);
    if (!report.is_ok()) {
      std::printf("%-38s synthesis failed: %s\n", study.name,
                  report.status().to_string().c_str());
      all_ok = false;
      continue;
    }

    int total_width = 0;
    int channel_bits = 0;
    for (const core::BusReport& bus : report->buses) {
      total_width += bus.generation.selected_width;
      channel_bits += bus.generation.total_channel_bits;
    }
    const double reduction =
        channel_bits > 0
            ? (1.0 - static_cast<double>(total_width) / channel_bits) * 100
            : 0.0;

    Result<core::EquivalenceReport> eq =
        core::check_equivalence(original, refined, study.max_time);
    if (!eq.is_ok()) {
      std::printf("%-38s co-simulation failed: %s\n", study.name,
                  eq.status().to_string().c_str());
      all_ok = false;
      continue;
    }
    all_ok = all_ok && eq->equivalent;

    const double slowdown =
        eq->original_time
            ? static_cast<double>(eq->refined_time) / eq->original_time
            : 0.0;
    std::printf("%-38s %4zu %6d %6zu %7d %7.1f %7.1fx %5s\n", study.name,
                refined.channels().size(), channel_bits,
                refined.buses().size(), total_width, reduction,
                slowdown, eq->equivalent ? "yes" : "NO");
    const std::string prefix = "study" + std::to_string(study_index++) + "_";
    json.set(prefix + "channels", static_cast<double>(refined.channels().size()));
    json.set(prefix + "channel_bits", channel_bits);
    json.set(prefix + "buses", static_cast<double>(refined.buses().size()));
    json.set(prefix + "total_width", total_width);
    json.set(prefix + "reduction_pct", reduction);
    json.set(prefix + "slowdown", slowdown);
    json.set(prefix + "equivalent", eq->equivalent ? 1 : 0);
  }

  std::printf("\n(\"redu%%\" is the data-line reduction vs dedicated "
              "message-wide wiring per channel, the paper's Sec. 5 "
              "metric; \"slowdown\" is refined/original simulated time, "
              "the cost the paper's Fig. 7 trades against pins.)\n");
  std::printf("\nall designs functionally equivalent after refinement: %s\n",
              all_ok ? "PASS" : "FAIL");
  json.set("all_equivalent", all_ok ? 1 : 0);
  json.write();
  return all_ok ? 0 : 1;
}
