// Throughput benchmark for the serve front end (src/serve): drives a
// mixed request batch (explore + synth + check over builtin specs)
// through a Service worker pool at 1/4/8 workers, cold (fresh shared
// stores) and warm (second round on the same service, so the spec
// interner, estimation cache, and bytecode program cache are all hot).
//
// Reports requests/second plus p50/p95 request latency (queue + execute,
// taken from the responses' own timing fields), and re-asserts the serve
// determinism contract: every explore report in every round must be
// byte-identical to the cold single-worker reference.
//
// Exit code is non-zero when determinism fails or any request errors.
// Speedup across worker counts is machine-dependent and therefore never
// gated here; scripts/bench_compare.py --floor handles that, gated on
// the exported hardware_threads. IFSYN_BENCH_SMOKE=1 shrinks the round
// size but still runs every worker count and both cache phases so smoke
// runs export the same metric keys as full runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

using namespace ifsyn;
using Clock = std::chrono::steady_clock;

namespace {

const bool g_smoke = ifsyn::bench::smoke_mode();
const std::vector<int> kWorkerCounts = {1, 4, 8};
// Requests per round; the mix repeats in units of 4 (see make_mix).
const int kRoundSize = g_smoke ? 8 : 32;

std::vector<serve::Request> make_mix(int count) {
  std::vector<serve::Request> requests;
  for (int i = 0; i < count; ++i) {
    serve::Request request;
    request.id = "r" + std::to_string(i);
    switch (i % 4) {
      case 0:
        request.op = serve::RequestOp::kExplore;
        request.target = "builtin:fig3";
        request.options.top_k = 1;
        break;
      case 1:
        request.op = serve::RequestOp::kCheck;
        request.target = "builtin:fig3";
        break;
      case 2:
        request.op = serve::RequestOp::kSynth;
        request.target = "builtin:fig3";
        break;
      default:
        request.op = serve::RequestOp::kCheck;
        request.target = "builtin:am";
        break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

struct RoundStats {
  double reqs_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double wall_ms = 0.0;
};

double percentile(std::vector<double> sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  std::sort(sorted_values.begin(), sorted_values.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_values.size() - 1) + 0.5);
  return sorted_values[std::min(index, sorted_values.size() - 1)];
}

/// Submits one full round and waits for every response. Latency per
/// request is the service-measured queue + execute time. Any error or
/// explore-report mismatch against `reference` is fatal.
RoundStats run_round(serve::Service& service,
                     const std::vector<serve::Request>& requests,
                     const std::string& reference, bool* deterministic) {
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(requests.size());
  const auto start = Clock::now();
  for (const serve::Request& request : requests) {
    futures.push_back(service.submit(request));
  }
  std::vector<double> latencies_us;
  latencies_us.reserve(futures.size());
  for (auto& future : futures) {
    serve::Response response = future.get();
    if (!response.ok) {
      std::printf("request %s failed: [%s] %s\n", response.id.c_str(),
                  response.error.code.c_str(),
                  response.error.message.c_str());
      std::exit(1);
    }
    if (response.op == "explore" && response.report != reference) {
      *deterministic = false;
    }
    latencies_us.push_back(
        static_cast<double>(response.queue_us + response.elapsed_us));
  }
  const auto stop = Clock::now();
  RoundStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  stats.reqs_per_sec = stats.wall_ms > 0
                           ? static_cast<double>(requests.size()) /
                                 (stats.wall_ms / 1000.0)
                           : 0.0;
  stats.p50_us = percentile(latencies_us, 0.50);
  stats.p95_us = percentile(latencies_us, 0.95);
  return stats;
}

}  // namespace

int main() {
  std::printf("=== Serve front end: request throughput ===\n");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, requests per round: %d%s\n\n", cores,
              kRoundSize, g_smoke ? " [smoke mode]" : "");

  const std::vector<serve::Request> mix = make_mix(kRoundSize);

  // Reference explore report: fresh service, executed inline, no
  // concurrency. Every explore response in every round must match it.
  std::string reference;
  {
    serve::Service service;
    serve::Response response = service.execute(mix[0]);
    if (!response.ok) {
      std::printf("reference request failed: %s\n",
                  response.error.message.c_str());
      return 1;
    }
    reference = response.report;
  }

  ifsyn::bench::BenchJson json("serve_throughput");
  json.set("smoke", g_smoke ? 1 : 0);
  json.set("hardware_threads", static_cast<double>(cores));
  json.set("round_requests_count", static_cast<double>(kRoundSize));

  bool deterministic = true;
  double cold_w1 = 0.0;
  double warm_w1 = 0.0;
  std::printf("%8s | %6s | %12s | %10s | %10s\n", "workers", "phase",
              "reqs/sec", "p50 (us)", "p95 (us)");
  for (int workers : kWorkerCounts) {
    serve::ServiceOptions options;
    options.workers = workers;
    options.queue_capacity = static_cast<std::size_t>(kRoundSize);
    serve::Service service(options);
    service.start();
    const RoundStats cold = run_round(service, mix, reference, &deterministic);
    const RoundStats warm = run_round(service, mix, reference, &deterministic);
    service.stop();
    const struct { const char* phase; const RoundStats& stats; } rounds[] = {
        {"cold", cold}, {"warm", warm}};
    for (const auto& round : rounds) {
      std::printf("%8d | %6s | %12.1f | %10.0f | %10.0f\n", workers,
                  round.phase, round.stats.reqs_per_sec, round.stats.p50_us,
                  round.stats.p95_us);
      const std::string key =
          std::string("w") + std::to_string(workers) + "_" + round.phase;
      json.set(key + "_reqs_per_sec", round.stats.reqs_per_sec);
      json.set(key + "_p50_us", round.stats.p50_us);
      json.set(key + "_p95_us", round.stats.p95_us);
    }
    if (workers == 1) {
      cold_w1 = cold.reqs_per_sec;
      warm_w1 = warm.reqs_per_sec;
    }
  }

  // Warm-over-cold is cache effectiveness, not parallelism: the warm
  // round skips parsing, estimation, and bytecode compilation, so it
  // should win even on one core. Exported for the --floor gate.
  const double warm_speedup = cold_w1 > 0 ? warm_w1 / cold_w1 : 0.0;
  json.set("w1_warm_over_cold", warm_speedup);
  std::printf("\nchecks:\n");
  std::printf("  explore reports byte-identical across rounds: %s\n",
              deterministic ? "PASS" : "FAIL");
  std::printf("  warm/cold throughput at 1 worker: %.2fx "
              "(informational here; gated via bench_compare --floor)\n",
              warm_speedup);
  json.set("deterministic", deterministic ? 1 : 0);
  json.write();
  return deterministic ? 0 : 1;
}
