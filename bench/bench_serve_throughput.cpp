// Throughput benchmark for the serve front end (src/serve): drives a
// mixed request batch (explore + synth + check over builtin specs)
// through a Service worker pool at 1/4/8 workers, cold (fresh shared
// stores) and warm (second round on the same service, so the spec
// interner, estimation cache, and bytecode program cache are all hot).
//
// Reports requests/second plus p50/p95/p99 request latency (queue +
// execute, taken from the responses' own timing fields, via the shared
// obs::percentile helper), re-asserts the serve determinism contract
// (every explore report in every round must be byte-identical to the
// cold single-worker reference), and cross-checks the service's
// log-bucketed histogram quantiles against the exact percentiles: the
// sketch must agree within its factor-of-2 bucket bound (plus a little
// rank slack, since the sketch ranks total latency measured by the
// service while the bench sums the response timing fields).
//
// Exit code is non-zero when determinism fails or any request errors.
// Speedup across worker counts is machine-dependent and therefore never
// gated here; scripts/bench_compare.py --floor handles that, gated on
// the exported hardware_threads. IFSYN_BENCH_SMOKE=1 shrinks the round
// size but still runs every worker count and both cache phases so smoke
// runs export the same metric keys as full runs.
#include <algorithm>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "obs/quantiles.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

using namespace ifsyn;
using Clock = std::chrono::steady_clock;

namespace {

const bool g_smoke = ifsyn::bench::smoke_mode();
const std::vector<int> kWorkerCounts = {1, 4, 8};
// Requests per round; the mix repeats in units of 4 (see make_mix).
const int kRoundSize = g_smoke ? 8 : 32;

std::vector<serve::Request> make_mix(int count) {
  std::vector<serve::Request> requests;
  for (int i = 0; i < count; ++i) {
    serve::Request request;
    request.id = "r" + std::to_string(i);
    switch (i % 4) {
      case 0:
        request.op = serve::RequestOp::kExplore;
        request.target = "builtin:fig3";
        request.options.top_k = 1;
        break;
      case 1:
        request.op = serve::RequestOp::kCheck;
        request.target = "builtin:fig3";
        break;
      case 2:
        request.op = serve::RequestOp::kSynth;
        request.target = "builtin:fig3";
        break;
      default:
        request.op = serve::RequestOp::kCheck;
        request.target = "builtin:am";
        break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

struct RoundStats {
  double reqs_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double wall_ms = 0.0;
};

/// Submits one full round and waits for every response. Latency per
/// request is the service-measured queue + execute time, also appended
/// to `all_latencies_us` for the sketch cross-check. Any error or
/// explore-report mismatch against `reference` is fatal.
RoundStats run_round(serve::Service& service,
                     const std::vector<serve::Request>& requests,
                     const std::string& reference, bool* deterministic,
                     std::vector<double>* all_latencies_us) {
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(requests.size());
  const auto start = Clock::now();
  for (const serve::Request& request : requests) {
    futures.push_back(service.submit(request));
  }
  std::vector<double> latencies_us;
  latencies_us.reserve(futures.size());
  for (auto& future : futures) {
    serve::Response response = future.get();
    if (!response.ok) {
      std::printf("request %s failed: [%s] %s\n", response.id.c_str(),
                  response.error.code.c_str(),
                  response.error.message.c_str());
      std::exit(1);
    }
    if (response.op == "explore" && response.report != reference) {
      *deterministic = false;
    }
    latencies_us.push_back(
        static_cast<double>(response.queue_us + response.elapsed_us));
  }
  if (all_latencies_us) {
    all_latencies_us->insert(all_latencies_us->end(), latencies_us.begin(),
                             latencies_us.end());
  }
  const auto stop = Clock::now();
  RoundStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  stats.reqs_per_sec = stats.wall_ms > 0
                           ? static_cast<double>(requests.size()) /
                                 (stats.wall_ms / 1000.0)
                           : 0.0;
  stats.p50_us = obs::percentile(latencies_us, 0.50);
  stats.p95_us = obs::percentile(latencies_us, 0.95);
  stats.p99_us = obs::percentile(latencies_us, 0.99);
  return stats;
}

/// The service's log-bucketed sketch estimate e of a true value v
/// promises v <= e < 2v (obs/quantiles.hpp). The sketch ranks the
/// service's own latency measurements with ceil(q*n) while the exact
/// helper uses nearest-rank over the response timing sums, so the two
/// can disagree by one order statistic; accept the sketch if the bound
/// holds against any sample in a +/-1 rank window, with 5% slack for
/// the measurement-point difference noted in the file comment.
bool sketch_agrees(double sketch, const std::vector<double>& latencies_us,
                   double q) {
  if (latencies_us.empty()) return sketch == 0.0;
  std::vector<double> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  const double lo = sorted[rank >= 2 ? rank - 2 : 0];
  const double hi = sorted[std::min(rank, n - 1)];
  return sketch >= lo / 1.05 && sketch <= 2.0 * hi * 1.05;
}

}  // namespace

int main() {
  std::printf("=== Serve front end: request throughput ===\n");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, requests per round: %d%s\n\n", cores,
              kRoundSize, g_smoke ? " [smoke mode]" : "");

  const std::vector<serve::Request> mix = make_mix(kRoundSize);

  // Reference explore report: fresh service, executed inline, no
  // concurrency. Every explore response in every round must match it.
  std::string reference;
  {
    serve::Service service;
    serve::Response response = service.execute(mix[0]);
    if (!response.ok) {
      std::printf("reference request failed: %s\n",
                  response.error.message.c_str());
      return 1;
    }
    reference = response.report;
  }

  ifsyn::bench::BenchJson json("serve_throughput");
  json.set("smoke", g_smoke ? 1 : 0);
  json.set("hardware_threads", static_cast<double>(cores));
  json.set("round_requests_count", static_cast<double>(kRoundSize));

  bool deterministic = true;
  bool sketch_ok = true;
  double cold_w1 = 0.0;
  double warm_w1 = 0.0;
  std::printf("%8s | %6s | %12s | %10s | %10s | %10s\n", "workers", "phase",
              "reqs/sec", "p50 (us)", "p95 (us)", "p99 (us)");
  for (int workers : kWorkerCounts) {
    serve::ServiceOptions options;
    options.workers = workers;
    options.queue_capacity = static_cast<std::size_t>(kRoundSize);
    serve::Service service(options);
    service.start();
    std::vector<double> latencies_us;
    const RoundStats cold =
        run_round(service, mix, reference, &deterministic, &latencies_us);
    const RoundStats warm =
        run_round(service, mix, reference, &deterministic, &latencies_us);
    service.stop();
    // Cross-check the service's histogram sketch against the exact
    // percentiles of the same workload — what to_prometheus_text's
    // _summary{quantile=...} lines report.
    const obs::MetricsSnapshot snapshot = service.metrics_snapshot();
    const obs::MetricsSnapshot::Entry* latency =
        snapshot.find("serve.request_latency_us");
    if (latency && latency->histogram) {
      for (const double q : {0.50, 0.95, 0.99}) {
        const double sketch = latency->histogram->quantile(q);
        if (!sketch_agrees(sketch, latencies_us, q)) {
          std::printf("  sketch disagreement at w%d q%.2f: sketch %.0f, "
                      "exact %.0f\n",
                      workers, q, sketch,
                      obs::percentile(latencies_us, q));
          sketch_ok = false;
        }
      }
    } else {
      sketch_ok = false;
    }
    const struct { const char* phase; const RoundStats& stats; } rounds[] = {
        {"cold", cold}, {"warm", warm}};
    for (const auto& round : rounds) {
      std::printf("%8d | %6s | %12.1f | %10.0f | %10.0f | %10.0f\n", workers,
                  round.phase, round.stats.reqs_per_sec, round.stats.p50_us,
                  round.stats.p95_us, round.stats.p99_us);
      const std::string key =
          std::string("w") + std::to_string(workers) + "_" + round.phase;
      json.set(key + "_reqs_per_sec", round.stats.reqs_per_sec);
      json.set(key + "_p50_us", round.stats.p50_us);
      json.set(key + "_p95_us", round.stats.p95_us);
      json.set(key + "_p99_us", round.stats.p99_us);
    }
    if (workers == 1) {
      cold_w1 = cold.reqs_per_sec;
      warm_w1 = warm.reqs_per_sec;
    }
  }

  // Warm-over-cold is cache effectiveness, not parallelism: the warm
  // round skips parsing, estimation, and bytecode compilation, so it
  // should win even on one core. Exported for the --floor gate.
  const double warm_speedup = cold_w1 > 0 ? warm_w1 / cold_w1 : 0.0;
  json.set("w1_warm_over_cold", warm_speedup);
  std::printf("\nchecks:\n");
  std::printf("  explore reports byte-identical across rounds: %s\n",
              deterministic ? "PASS" : "FAIL");
  std::printf("  histogram sketch agrees with exact percentiles: %s\n",
              sketch_ok ? "PASS" : "FAIL");
  std::printf("  warm/cold throughput at 1 worker: %.2fx "
              "(informational here; gated via bench_compare --floor)\n",
              warm_speedup);
  json.set("deterministic", deterministic ? 1 : 0);
  json.set("quantile_sketch_ok", sketch_ok ? 1 : 0);
  json.write();
  return deterministic && sketch_ok ? 0 : 1;
}
