// bench/bench_json.hpp
//
// Machine-readable companion artifact for the benchmark binaries: each
// bench_<name> additionally writes BENCH_<name>.json — a flat JSON object
// mapping metric name to numeric value — into the working directory, so
// CI or a tracking script can diff runs without scraping stdout.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>

namespace ifsyn::bench {

/// True when IFSYN_BENCH_SMOKE is set (and not "0"): benchmarks shrink
/// their workloads and skip machine-dependent pass/fail gates so CI can
/// exercise every binary quickly. Smoke numbers are not comparable.
inline bool smoke_mode() {
  const char* env = std::getenv("IFSYN_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && std::string_view(env) != "0";
}

class BenchJson {
 public:
  /// `name` is the benchmark's short name; the file written is
  /// BENCH_<name>.json.
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void set(const std::string& metric, double value) {
    values_[metric] = value;
  }

  /// Serializes the metrics sorted by name. Integral values print without
  /// a decimal point so counters stay counters.
  std::string to_json() const {
    std::ostringstream os;
    os << "{\n";
    bool first = true;
    for (const auto& [metric, value] : values_) {
      if (!first) os << ",\n";
      first = false;
      os << "  \"" << metric << "\": ";
      if (std::isfinite(value) && value == std::floor(value) &&
          std::fabs(value) < 1e15) {
        os << static_cast<long long>(value);
      } else {
        os << value;
      }
    }
    os << "\n}\n";
    return os.str();
  }

  /// Writes BENCH_<name>.json; prints the path (or a warning) to stdout.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::printf("warning: cannot write %s\n", path.c_str());
      return false;
    }
    out << to_json();
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::map<std::string, double> values_;  // sorted => stable output
};

}  // namespace ifsyn::bench
