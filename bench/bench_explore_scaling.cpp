// Thread-scaling benchmark for the design-space exploration engine
// (src/explore): runs the same exploration at 1/2/4/8 worker threads on
// the FLC and Ethernet suites, reports wall-clock speedup, and asserts
// the engine's determinism guarantee — the rendered Pareto reports must
// be byte-identical across all thread counts.
//
// Exit code is non-zero when determinism fails, or when the machine has
// >= 4 cores but the FLC sweep fails to reach 2x speedup at 4 threads.
// IFSYN_BENCH_SMOKE=1 shrinks the sweep to 1 repeat and skips the
// machine-dependent speedup gate so CI can exercise the binary. The full
// 1/2/4/8 thread ladder still runs in smoke mode: the determinism check
// wants every thread count, and CI's structural compare against
// bench/baselines/ requires smoke runs to export the same metric keys as
// full runs.
//
// Also exports the explorer's per-phase timers from a 1-thread FLC run
// (flc_*_phase_us); the validate phase is simulation-dominated, so it is
// the number to watch for sim-kernel optimizations.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "explore/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/flc.hpp"

using namespace ifsyn;
using Clock = std::chrono::steady_clock;

namespace {

struct SuiteRun {
  std::string name;
  spec::System system;
  explore::ExploreOptions options;
};

struct Measurement {
  int threads = 1;
  double best_ms = 0.0;
  std::string markdown;
  std::string json;
};

const bool g_smoke = ifsyn::bench::smoke_mode();
const std::vector<int> kThreadCounts = {1, 2, 4, 8};
const int kRepeats = g_smoke ? 1 : 3;

Measurement measure(const SuiteRun& suite, int threads,
                    obs::MetricsRegistry* registry = nullptr,
                    obs::TraceSink* trace = nullptr) {
  Measurement m;
  m.threads = threads;
  explore::ExploreOptions options = suite.options;
  options.threads = threads;
  options.obs.metrics = registry;
  options.obs.trace = trace;
  explore::Explorer explorer(suite.system, options);
  m.best_ms = 1e300;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto start = Clock::now();
    Result<explore::ExplorationResult> result = explorer.run();
    const auto stop = Clock::now();
    if (!result.is_ok()) {
      std::printf("exploration failed at %d threads: %s\n", threads,
                  result.status().to_string().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < m.best_ms) m.best_ms = ms;
    if (rep == 0) {
      m.markdown =
          explore::render_exploration_markdown(suite.system, options, *result);
      m.json = explore::render_exploration_json(suite.system, options, *result);
    }
  }
  return m;
}

/// Runs one suite across all thread counts. Returns the 1->4 thread
/// speedup; sets `deterministic` false on any byte mismatch.
double run_suite(const SuiteRun& suite, bool* deterministic,
                 ifsyn::bench::BenchJson* json, const char* key_prefix) {
  std::printf("--- %s ---\n", suite.name.c_str());
  std::printf("%8s | %10s | %8s | %s\n", "threads", "best (ms)", "speedup",
              "reports identical to 1-thread run");

  std::vector<Measurement> runs;
  for (int threads : kThreadCounts) runs.push_back(measure(suite, threads));

  double speedup_at_4 = 0.0;
  for (const Measurement& m : runs) {
    const bool same = m.markdown == runs[0].markdown && m.json == runs[0].json;
    if (!same) *deterministic = false;
    const double speedup = runs[0].best_ms / m.best_ms;
    if (m.threads == 4) speedup_at_4 = speedup;
    std::printf("%8d | %10.2f | %7.2fx | %s\n", m.threads, m.best_ms, speedup,
                m.threads == 1 ? "(baseline)" : (same ? "yes" : "NO"));
    json->set(std::string(key_prefix) + "_best_ms_t" +
                  std::to_string(m.threads),
              m.best_ms);
  }
  std::printf("\n");
  return speedup_at_4;
}

/// Always-on metrics overhead: the same single-threaded FLC sweep with an
/// external registry attached (every counter/histogram live) vs the plain
/// run. Both paths take the identical code; the registry only adds the
/// per-run flush and the bus hold/wait histogram observations. Note both
/// legs now run with tracing *compiled in but disabled* (null TraceSink,
/// null RequestContext) — the request-scoped tracing hooks threaded
/// through the engines for the serve path add only null-pointer checks
/// here, and this check re-asserts that the original < 3% target still
/// holds with them present. A third leg attaches a live TraceSink to
/// report the cost of tracing *on* (informational).
double measure_metrics_overhead(const SuiteRun& suite,
                                ifsyn::bench::BenchJson* json) {
  const Measurement plain = measure(suite, /*threads=*/1);
  obs::MetricsRegistry registry;
  const Measurement with_metrics = measure(suite, /*threads=*/1, &registry);
  obs::MetricsRegistry trace_registry;
  obs::TraceSink trace;
  const Measurement with_trace =
      measure(suite, /*threads=*/1, &trace_registry, &trace);
  const double overhead_pct =
      plain.best_ms > 0
          ? (with_metrics.best_ms - plain.best_ms) / plain.best_ms * 100
          : 0.0;
  const double trace_overhead_pct =
      plain.best_ms > 0
          ? (with_trace.best_ms - plain.best_ms) / plain.best_ms * 100
          : 0.0;
  std::printf("--- metrics overhead (FLC sweep, 1 thread, tracing compiled "
              "in but disabled) ---\n");
  std::printf("plain %.2f ms, registry attached %.2f ms -> %.2f%% overhead "
              "(target < 3%%)\n",
              plain.best_ms, with_metrics.best_ms, overhead_pct);
  std::printf("trace sink attached %.2f ms -> %.2f%% overhead (%zu events, "
              "informational)\n\n",
              with_trace.best_ms, trace_overhead_pct, trace.event_count());
  json->set("metrics_overhead_pct", overhead_pct);
  json->set("metrics_off_best_ms", plain.best_ms);
  json->set("metrics_on_best_ms", with_metrics.best_ms);
  json->set("trace_on_best_ms", with_trace.best_ms);
  json->set("trace_overhead_pct", trace_overhead_pct);
  return overhead_pct;
}

/// One 1-thread FLC run with a fresh registry, exporting the explorer's
/// phase timers. The validate phase simulates every surviving design
/// point, so its time tracks the simulation kernel's throughput.
void export_phase_breakdown(const SuiteRun& suite,
                            ifsyn::bench::BenchJson* json,
                            const char* key_prefix) {
  obs::MetricsRegistry registry;
  explore::ExploreOptions options = suite.options;
  options.threads = 1;
  options.obs.metrics = &registry;
  explore::Explorer explorer(suite.system, options);
  Result<explore::ExplorationResult> result = explorer.run();
  if (!result.is_ok()) {
    std::printf("phase breakdown run failed: %s\n",
                result.status().to_string().c_str());
    std::exit(1);
  }
  const obs::MetricsSnapshot snap = registry.snapshot();
  std::printf("--- phase breakdown (%s, 1 thread) ---\n",
              suite.name.c_str());
  const struct { const char* metric; const char* key; } phases[] = {
      {"explore.phase.estimate_us", "_estimate_phase_us"},
      {"explore.phase.merge_us", "_merge_phase_us"},
      {"explore.phase.validate_us", "_validate_phase_us"},
  };
  for (const auto& p : phases) {
    const auto* entry = snap.find(p.metric);
    const double us = entry ? static_cast<double>(entry->counter) : 0.0;
    std::printf("%-28s %12.0f us\n", p.metric, us);
    json->set(std::string(key_prefix) + p.key, us);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Design-space exploration: thread scaling ===\n");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, repeats per point: %d "
              "(best-of reported)%s\n\n",
              cores, kRepeats, g_smoke ? " [smoke mode]" : "");

  // The FLC sweep of the acceptance criterion: full controller, all three
  // shared protocols, alternative groupings, and enough survivors that
  // sim validation dominates the wall clock.
  SuiteRun flc{"FLC sweep (make_flc_full)", suite::make_flc_full(), {}};
  flc.options.space.protocols = {spec::ProtocolKind::kFullHandshake,
                                 spec::ProtocolKind::kHalfHandshake,
                                 spec::ProtocolKind::kFixedDelay};
  flc.options.space.alternative_groupings = true;
  flc.options.top_k = 8;
  flc.options.compute_cycles_override = {
      {"EVAL_R3", suite::FlcCalibration::kEvalR3ComputeCycles},
      {"CONV_R2", suite::FlcCalibration::kConvR2ComputeCycles},
  };

  SuiteRun ethernet{"Ethernet coprocessor", suite::make_ethernet_coprocessor(),
                    {}};
  ethernet.options.space.protocols = {spec::ProtocolKind::kFullHandshake,
                                      spec::ProtocolKind::kHalfHandshake,
                                      spec::ProtocolKind::kFixedDelay};
  ethernet.options.space.alternative_groupings = true;
  ethernet.options.top_k = 8;

  ifsyn::bench::BenchJson json("explore_scaling");
  json.set("smoke", g_smoke ? 1 : 0);
  // Exported so bench_compare.py --floor can gate speedup assertions on
  // the recording machine actually having the cores to show a speedup.
  json.set("hardware_threads", static_cast<double>(cores));
  bool deterministic = true;
  const double flc_speedup = run_suite(flc, &deterministic, &json, "flc");
  run_suite(ethernet, &deterministic, &json, "ethernet");
  export_phase_breakdown(flc, &json, "flc");
  const double overhead_pct = measure_metrics_overhead(flc, &json);

  std::printf("checks:\n");
  std::printf("  byte-identical reports across thread counts: %s\n",
              deterministic ? "PASS" : "FAIL");
  bool speedup_ok = true;
  if (g_smoke) {
    std::printf("  FLC sweep speedup at 2 threads not enforced in smoke "
                "mode\n");
  } else if (cores >= 4) {
    speedup_ok = flc_speedup >= 2.0;
    std::printf("  FLC sweep >= 2x speedup at 4 threads:        %s "
                "(%.2fx)\n",
                speedup_ok ? "PASS" : "FAIL", flc_speedup);
  } else {
    std::printf("  FLC sweep speedup at 4 threads: %.2fx "
                "(< 4 cores, not enforced)\n",
                flc_speedup);
  }
  std::printf("  metrics overhead: %.2f%% (target < 3%%, informational — "
              "timing noise is not a failure)\n",
              overhead_pct);
  json.set("deterministic", deterministic ? 1 : 0);
  json.set("flc_speedup_at_4", flc_speedup);
  json.write();
  return (deterministic && speedup_ok) ? 0 : 1;
}
