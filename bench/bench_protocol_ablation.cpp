// Ablation across the design choices the paper names:
//
//   1. Protocol selection (Sec. 4 step 1 / Sec. 6 future work): the same
//      FLC kernel refined with full-handshake, half-handshake,
//      fixed-delay, and hardwired ports -- wires vs simulated time.
//   2. Bus arbitration (Sec. 6 future work): the multi-master Fig. 3
//      system with and without the BusLock extension, showing the
//      serialization delay arbitration costs and the corruption risk it
//      removes.
//   3. Channel merging itself (the paper's core premise): shared bus vs
//      dedicated hardwired ports -- the pins-for-time trade.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "bus/lane_allocator.hpp"
#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "partition/partitioner.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/analysis.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"

using namespace ifsyn;

namespace {

void protocol_ablation(bench::BenchJson& json) {
  std::printf("--- protocol ablation on the FLC kernel (ch1 + ch2) ---\n");
  std::printf("%-18s %7s %12s %10s %6s\n", "protocol", "wires",
              "sim time", "slowdown", "equiv");

  spec::System baseline = suite::make_flc_kernel();
  sim::SimulationRun original_run = sim::simulate(baseline, 10'000'000);
  const double t0 = static_cast<double>(original_run.result.end_time);

  const struct {
    const char* name;
    spec::ProtocolKind kind;
  } protocols[] = {
      {"full-handshake", spec::ProtocolKind::kFullHandshake},
      {"half-handshake", spec::ProtocolKind::kHalfHandshake},
      {"fixed-delay(2)", spec::ProtocolKind::kFixedDelay},
      {"hardwired-ports", spec::ProtocolKind::kHardwiredPort},
  };

  for (const auto& protocol : protocols) {
    spec::System original = suite::make_flc_kernel();
    spec::System refined = original.clone("refined");
    core::SynthesisOptions options;
    options.protocol = protocol.kind;
    options.arbitrate = protocol.kind != spec::ProtocolKind::kHardwiredPort;
    options.compute_cycles_override = {
        {"EVAL_R3", suite::FlcCalibration::kEvalR3ComputeCycles},
        {"CONV_R2", suite::FlcCalibration::kConvR2ComputeCycles},
    };
    core::InterfaceSynthesizer synth(options);
    Result<core::SynthesisReport> report = synth.run(refined);
    if (!report.is_ok()) {
      std::printf("%-18s synthesis failed: %s\n", protocol.name,
                  report.status().to_string().c_str());
      continue;
    }
    int wires = 0;
    for (const auto& bus : refined.buses()) wires += bus->total_wires();

    Result<core::EquivalenceReport> eq =
        core::check_equivalence(original, refined, 50'000'000);
    if (!eq.is_ok()) {
      std::printf("%-18s co-simulation failed: %s\n", protocol.name,
                  eq.status().to_string().c_str());
      continue;
    }
    std::printf("%-18s %7d %12llu %9.2fx %6s\n", protocol.name, wires,
                static_cast<unsigned long long>(eq->refined_time),
                t0 > 0 ? eq->refined_time / t0 : 0.0,
                eq->equivalent ? "yes" : "NO");
    const std::string prefix = std::string("protocol_") + protocol.name;
    json.set(prefix + "_wires", wires);
    json.set(prefix + "_sim_time",
             static_cast<double>(eq->refined_time));
    json.set(prefix + "_equivalent", eq->equivalent ? 1 : 0);
  }
  std::printf("\n");
}

void arbitration_ablation(bench::BenchJson& json) {
  std::printf("--- arbitration ablation on Fig. 3 (P and Q overlap) ---\n");
  std::printf("%-22s %10s %12s %8s\n", "configuration", "sim time",
              "arb wait", "correct");

  for (const bool arbitrate : {true, false}) {
    spec::System original = suite::make_fig3_system();
    spec::System refined = original.clone("refined");
    protocol::ProtocolGenOptions options;
    options.arbitrate = arbitrate;
    protocol::ProtocolGenerator generator(options);
    if (!generator.generate_all(refined).is_ok()) continue;

    sim::SimulationRun run = sim::simulate(refined, 1'000'000);
    bool correct = run.result.status.is_ok();
    std::uint64_t wait = 0;
    if (correct) {
      for (const auto& proc : run.result.processes) {
        wait += proc.bus_wait_cycles;
        if ((proc.name == "P" || proc.name == "Q") && !proc.completed) {
          correct = false;
        }
      }
      correct = correct &&
                run.interpreter->value_of("X").get().to_uint() == 32 &&
                run.interpreter->value_of("MEM").at(5).to_uint() == 39 &&
                run.interpreter->value_of("MEM").at(60).to_uint() == 77;
    }
    std::printf("%-22s %10llu %12llu %8s\n",
                arbitrate ? "with BusLock" : "without (paper's gap)",
                static_cast<unsigned long long>(run.result.end_time),
                static_cast<unsigned long long>(wait),
                correct ? "yes" : "CORRUPTED/STUCK");
    const std::string prefix =
        arbitrate ? "arbitrated_" : "unarbitrated_";
    json.set(prefix + "sim_time", static_cast<double>(run.result.end_time));
    json.set(prefix + "arb_wait_cycles", static_cast<double>(wait));
    json.set(prefix + "correct", correct ? 1 : 0);
  }
  std::printf("(without arbitration, concurrent masters interleave words "
              "on the shared wires --\n exactly the hazard the paper defers "
              "to future work.)\n\n");
}

void merging_tradeoff(bench::BenchJson& json) {
  std::printf("--- merging trade-off: shared bus width vs completion time "
              "(FLC kernel) ---\n");
  std::printf("%7s %7s %12s\n", "width", "wires", "sim time");
  for (int width : {2, 4, 8, 12, 16, 20, 23}) {
    spec::System refined = suite::make_flc_kernel();
    refined.find_bus("B")->width = width;
    protocol::ProtocolGenOptions options;
    options.arbitrate = true;
    protocol::ProtocolGenerator generator(options);
    if (!generator.generate_all(refined).is_ok()) continue;
    sim::SimulationRun run = sim::simulate(refined, 50'000'000);
    std::printf("%7d %7d %12llu\n", width,
                refined.find_bus("B")->total_wires(),
                static_cast<unsigned long long>(run.result.end_time));
    json.set("merge_sim_time_w" + std::to_string(width),
             static_cast<double>(run.result.end_time));
  }
  std::printf("(dedicated hardwired wiring for both channels would use 46+ "
              "pins; the shared bus\n trades pins for the serialization "
              "time above.)\n");
}

spec::System make_streaming_system() {
  using namespace spec;
  System s("streams");
  s.add_variable(Variable("A", Type::array(Type::bits(16), 64)));
  s.add_variable(Variable("B2", Type::array(Type::bits(16), 64)));
  for (const char* name : {"P1", "P2"}) {
    Process p;
    p.name = name;
    const std::string target = name == std::string("P1") ? "A" : "B2";
    p.body = {for_stmt("i", lit(0), lit(63),
                       {assign(lv_idx(target, var("i")),
                               add(mul(var("i"), lit(3)), lit(1)))})};
    s.add_process(std::move(p));
  }
  Status status = partition::apply_partition(
      s, {partition::ModuleAssignment{"M1", {"P1", "P2"}, {}},
          partition::ModuleAssignment{"M2", {}, {"A", "B2"}}});
  IFSYN_ASSERT(status.is_ok());
  IFSYN_ASSERT(partition::group_all_channels(s, "SB").is_ok());
  return s;
}

void lane_ablation(bench::BenchJson& json) {
  std::printf("--- lane ablation (Sec. 6 \"simultaneous transfers\"): 16 "
              "data lines, two streams ---\n");
  std::printf("%8s %7s %12s %12s\n", "lanes", "wires", "est. busy",
              "sim time");
  for (int lanes : {1, 2}) {
    spec::System system = make_streaming_system();
    Status status = spec::annotate_channel_accesses(system);
    IFSYN_ASSERT(status.is_ok());
    estimate::PerformanceEstimator estimator(system);
    bus::LaneAllocator allocator(system, estimator);
    Result<bus::LanePlan> plan = allocator.plan(
        *system.find_bus("SB"), 16, lanes,
        spec::ProtocolKind::kFullHandshake, 2);
    if (!plan.is_ok()) {
      std::printf("%8d plan failed: %s\n", lanes,
                  plan.status().to_string().c_str());
      continue;
    }
    Result<std::vector<std::string>> names =
        allocator.apply(system, "SB", *plan);
    IFSYN_ASSERT(names.is_ok());

    protocol::ProtocolGenOptions options;
    options.arbitrate = lanes == 1;
    protocol::ProtocolGenerator generator(options);
    IFSYN_ASSERT(generator.generate_all(system).is_ok());
    sim::SimulationRun run = sim::simulate(system, 1'000'000);
    std::printf("%8d %7d %12lld %12llu%s\n", lanes, plan->total_wires,
                static_cast<long long>(plan->completion_cycles),
                static_cast<unsigned long long>(run.result.end_time),
                lanes == 2 ? "  <- concurrent lanes" : "");
    json.set("lanes" + std::to_string(lanes) + "_sim_time",
             static_cast<double>(run.result.end_time));
    json.set("lanes" + std::to_string(lanes) + "_wires",
             plan->total_wires);
  }
  std::printf("(two 8-bit lanes move both streams simultaneously; one "
              "16-bit lane serializes them\n behind the arbiter -- the "
              "capability the paper's Sec. 6 proposes to study.)\n");
}

}  // namespace

int main() {
  std::printf("=== Ablation benches: protocol choice, arbitration, merging, "
              "lanes ===\n\n");
  bench::BenchJson json("protocol_ablation");
  protocol_ablation(json);
  arbitration_ablation(json);
  merging_tradeoff(json);
  std::printf("\n");
  lane_ablation(json);
  json.write();
  return 0;
}
