// Reproduces Figure 2: merging channels A and B into bus AB.
//
// Paper's numbers: AveRate(A) = (2 x 8)/4s = 4 bits/s,
//                  AveRate(B) = (3 x 16)/4s = 12 bits/s,
//                  BusRate(AB) >= 4 + 12 = 16 bits/s,
// and the observation that individual transfers may be delayed (B2 moves
// from t=1.0s to t=1.5s) while the aggregate still completes in the same
// 4-second window.
//
// The second table extends the experiment toward the paper's Sec. 6
// future work: how per-transfer arbitration delay behaves as the bus rate
// is scaled around the Eq. 1 minimum.
#include <cstdio>

#include "bench_json.hpp"
#include "bus/channel_trace.hpp"

using namespace ifsyn;
using namespace ifsyn::bus;

int main() {
  std::printf("=== Figure 2: merging channels A and B into bus AB ===\n\n");

  ChannelTrace a{"A", 4, {{0, 8, "A1"}, {2, 8, "A2"}}};
  ChannelTrace b{"B", 4, {{0, 16, "B1"}, {1, 16, "B2"}, {3, 16, "B3"}}};
  const std::vector<ChannelTrace> traces{a, b};

  std::printf("%-8s %-28s %s\n", "channel", "transfers (t:bits)",
              "average rate");
  for (const ChannelTrace& trace : traces) {
    char buffer[128];
    int off = 0;
    for (const Transfer& t : trace.transfers) {
      off += std::snprintf(buffer + off, sizeof(buffer) - off, "%s@%.0fs:%d ",
                           t.label.c_str(), t.time, t.bits);
    }
    std::printf("%-8s %-28s %.0f bits/s   (paper: %s)\n", trace.name.c_str(),
                buffer, trace.average_rate(),
                trace.name == "A" ? "(2 x 8)/4s = 4 b/s"
                                  : "(3 x 16)/4s = 12 b/s");
  }
  const double rate = required_bus_rate(traces);
  std::printf("%-8s %-28s %.0f bits/s   (paper: (4 + 12) = 16 b/s)\n\n",
              "bus AB", "Eq. 1 minimum rate", rate);

  bench::BenchJson json("fig2_channel_merging");
  for (const ChannelTrace& trace : traces) {
    json.set("average_rate_" + trace.name, trace.average_rate());
  }
  json.set("eq1_min_bus_rate", rate);

  Result<MergedSchedule> merged = merge_traces(traces, rate);
  if (!merged.is_ok()) {
    std::printf("merge failed: %s\n", merged.status().to_string().c_str());
    return 1;
  }
  std::printf("merged schedule at %.0f bits/s:\n", rate);
  std::printf("%-6s %-8s %-8s %-8s %-8s\n", "item", "ready", "start", "end",
              "delay");
  for (const ScheduledTransfer& t : merged->transfers) {
    std::printf("%-6s %-8.2f %-8.2f %-8.2f %-8.2f%s\n", t.label.c_str(),
                t.ready, t.start, t.end, t.delay(),
                t.label == "B2" ? "   <- paper: B2 delayed 1.0s -> 1.5s"
                                : "");
  }
  std::printf("makespan %.2fs, busy %.2fs, utilization %.0f%% "
              "(paper: \"a bus over which data is always being "
              "transferred\")\n\n",
              merged->makespan, merged->busy_time,
              merged->utilization * 100);
  json.set("makespan_s", merged->makespan);
  json.set("busy_s", merged->busy_time);
  json.set("utilization", merged->utilization);
  for (const ScheduledTransfer& t : merged->transfers) {
    json.set("delay_s_" + t.label, t.delay());
  }

  std::printf("--- arbitration delay vs. bus rate (Sec. 6 study) ---\n");
  std::printf("%-12s %-10s %-12s %-12s %s\n", "rate(b/s)", "makespan",
              "max delay", "total delay", "note");
  for (double r : {8.0, 12.0, 16.0, 24.0, 32.0, 64.0}) {
    Result<MergedSchedule> schedule = merge_traces(traces, r);
    std::printf("%-12.0f %-10.2f %-12.2f %-12.2f %s\n", r,
                schedule->makespan, schedule->max_delay,
                schedule->total_delay,
                r < rate ? "below Eq. 1: backlog grows"
                         : (r == rate ? "Eq. 1 minimum" : ""));
    const std::string suffix = "_at_rate_" + std::to_string(static_cast<int>(r));
    json.set("makespan" + suffix, schedule->makespan);
    json.set("total_delay" + suffix, schedule->total_delay);
  }
  json.write();
  return 0;
}
