// google-benchmark microbenchmarks: how the synthesis algorithms and the
// simulation kernel scale with problem size. Not a paper figure -- this
// is the engineering-cost side of the tool itself (the paper's Sec. 3
// exploration is linear in buswidth x channels; protocol generation is
// linear in channels; the simulator in events).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "bus/bus_generator.hpp"
#include "partition/partitioner.hpp"
#include "protocol/protocol_generator.hpp"
#include "sim/interpreter.hpp"
#include "spec/analysis.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"
#include "util/bit_vector.hpp"

namespace {

using namespace ifsyn;
using namespace ifsyn::spec;

/// A synthetic partitioned system with `n` channels of mixed shapes on
/// one bus, each accessor doing light work (so rates stay feasible).
System make_synthetic(int n_channels) {
  System s("synthetic");
  for (int i = 0; i < n_channels; ++i) {
    const int width = 4 + (i * 5) % 29;
    s.add_variable(Variable("V" + std::to_string(i),
                            i % 3 == 0
                                ? Type::array(Type::bits(width), 16)
                                : Type::bits(width)));
  }
  for (int i = 0; i < n_channels; ++i) {
    Process p;
    p.name = "P" + std::to_string(i);
    const std::string var_name = "V" + std::to_string(i);
    const bool is_array = i % 3 == 0;
    Block body{wait_for(50 + i % 17)};
    if (is_array) {
      body.push_back(for_stmt("k", lit(0), lit(3),
                              {assign(lv_idx(var_name, var("k")), var("k"))}));
    } else {
      body.push_back(assign(var_name, lit(i)));
    }
    p.body = std::move(body);
    s.add_process(std::move(p));
  }

  std::vector<partition::ModuleAssignment> assignment(2);
  assignment[0].module = "M1";
  assignment[1].module = "M2";
  for (int i = 0; i < n_channels; ++i) {
    assignment[0].processes.push_back("P" + std::to_string(i));
    assignment[1].variables.push_back("V" + std::to_string(i));
  }
  IFSYN_ASSERT(partition::apply_partition(s, assignment).is_ok());
  IFSYN_ASSERT(partition::group_all_channels(s, "B").is_ok());
  IFSYN_ASSERT(annotate_channel_accesses(s).is_ok());
  return s;
}

void BM_BusGeneration(benchmark::State& state) {
  System s = make_synthetic(static_cast<int>(state.range(0)));
  estimate::PerformanceEstimator estimator(s);
  bus::BusGenerator generator(s, estimator);
  for (auto _ : state) {
    auto result = generator.generate(*s.find_bus("B"), {});
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BusGeneration)->RangeMultiplier(2)->Range(2, 256)->Complexity();

void BM_ProtocolGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    System s = make_synthetic(n);
    s.find_bus("B")->width = 8;
    state.ResumeTiming();
    protocol::ProtocolGenerator generator;
    Status status = generator.generate_all(s);
    benchmark::DoNotOptimize(status);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProtocolGeneration)
    ->RangeMultiplier(2)
    ->Range(2, 128)
    ->Complexity();

void BM_RefinedSimulation_Fig3(benchmark::State& state) {
  System refined = suite::make_fig3_system();
  protocol::ProtocolGenOptions options;
  options.arbitrate = true;  // P and Q overlap on the bus
  protocol::ProtocolGenerator generator(options);
  IFSYN_ASSERT(generator.generate_all(refined).is_ok());
  for (auto _ : state) {
    sim::SimulationRun run = sim::simulate(refined);
    benchmark::DoNotOptimize(run.result.end_time);
  }
}
BENCHMARK(BM_RefinedSimulation_Fig3);

void BM_RefinedSimulation_FlcKernel(benchmark::State& state) {
  System refined = suite::make_flc_kernel();
  refined.find_bus("B")->width = static_cast<int>(state.range(0));
  protocol::ProtocolGenOptions options;
  options.arbitrate = true;
  protocol::ProtocolGenerator generator(options);
  IFSYN_ASSERT(generator.generate_all(refined).is_ok());
  for (auto _ : state) {
    sim::SimulationRun run = sim::simulate(refined, 50'000'000);
    benchmark::DoNotOptimize(run.result.end_time);
  }
}
BENCHMARK(BM_RefinedSimulation_FlcKernel)->Arg(4)->Arg(8)->Arg(23);

void BM_BitVectorSliceReassemble(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  BitVector msg(bits);
  for (int i = 0; i < bits; i += 7) msg.set_bit(i, true);
  for (auto _ : state) {
    BitVector rebuilt(bits);
    for (int lo = 0; lo < bits; lo += 8) {
      const int hi = std::min(lo + 7, bits - 1);
      rebuilt.set_slice(hi, lo, msg.slice(hi, lo));
    }
    benchmark::DoNotOptimize(rebuilt);
  }
}
BENCHMARK(BM_BitVectorSliceReassemble)->Arg(23)->Arg(64)->Arg(512);

void BM_AccessCounting(benchmark::State& state) {
  System s = suite::make_flc_full();
  for (auto _ : state) {
    for (const auto& proc : s.processes()) {
      auto counts = count_accesses(*proc, "InitMemberFunct");
      benchmark::DoNotOptimize(counts);
    }
  }
}
BENCHMARK(BM_AccessCounting);

/// Console output as usual, plus every per-iteration timing captured into
/// the BENCH_algorithm_scaling.json companion (ns per iteration).
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(ifsyn::bench::BenchJson* json)
      : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.report_big_o || run.report_rms) {
        continue;
      }
      json_->set(run.benchmark_name() + "_real_ns", run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  ifsyn::bench::BenchJson* json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ifsyn::bench::BenchJson json("algorithm_scaling");
  JsonCapturingReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.write();
  return 0;
}
