// ifsyn/check/protocol_fsm.hpp
//
// FSM extraction and composition for the protocol complementarity checks
// (DESIGN.md Sec. 11). A generated requester/server procedure pair is
// abstracted into two linear event sequences over the bus's control wires
// (literal for-loops unrolled, word parities folded with the loop index in
// scope), and the pair is then composed:
//
//   * handshake protocols (full handshake, hardwired port) claim to be
//     delay-insensitive, so the composition explores *every* interleaving
//     of the two sides (reachability over (pcA, pcB, wires)); a reachable
//     state where neither side can step and the transaction is unfinished
//     is a deadlock, e.g. a sender word missing its DONE wait.
//
//   * strobe protocols (half handshake, fixed delay) are only correct
//     under the documented timing discipline -- the receiver samples in
//     zero simulated time while the sender holds each word -- so the
//     composition is a deterministic timed run with exactly those
//     semantics: both sides drain their zero-time steps to quiescence
//     before time advances to the next pending delay.
//
// DATA movement is not simulated; word counts (drives/samples per side)
// are checked against the slicing arithmetic by the structural pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/stmt.hpp"
#include "spec/system.hpp"

namespace ifsyn::check {

enum class EventKind {
  kAssignWire,  ///< drive a control/ID field to a constant
  kWaitWires,   ///< block until every (field, value) condition holds
  kDelay,       ///< wait for a constant number of cycles
  kDriveData,   ///< present one word on DATA
  kSampleData,  ///< read one word from DATA
};

/// One (field == value) conjunct of a wait condition.
struct WireCond {
  std::string field;
  std::uint64_t value = 0;
};

struct FsmEvent {
  EventKind kind = EventKind::kAssignWire;
  std::string field;            ///< kAssignWire target
  std::uint64_t value = 0;      ///< kAssignWire value
  std::vector<WireCond> conds;  ///< kWaitWires conjuncts
  long long cycles = 0;         ///< kDelay duration
};

/// Result of abstracting one procedure body.
struct ExtractResult {
  bool supported = true;
  /// Why extraction bailed (construct outside the generated subset).
  std::string why_unsupported;
  std::vector<FsmEvent> events;
  long long data_drives = 0;   ///< kDriveData count
  long long data_samples = 0;  ///< kSampleData count
};

/// Abstract `body` relative to bus signal `bus_signal`. Statements that
/// do not touch the bus (parameter marshalling, variable stores, bus
/// locks) are skipped; constructs the generator never emits (if/while,
/// non-constant waits, dynamic loop bounds) mark the result unsupported.
ExtractResult extract_events(const spec::Block& body,
                             const std::string& bus_signal);

struct ComposeOutcome {
  bool completed = false;  ///< both sides ran to the end of their events
  bool deadlock = false;   ///< reachable state with no enabled step
  /// True when the exploration/step budget ran out before an answer.
  bool budget_exhausted = false;
  std::string detail;      ///< human-readable description of the failure
  long long states_explored = 0;
  /// Wire values when both sides completed (deterministic run) or wires
  /// seen nonzero in some completed terminal state (exploration).
  std::vector<WireCond> final_nonzero_wires;
};

/// Compose requester (side A) and server (side B) by exhaustive
/// interleaving -- the delay-insensitivity check for handshake protocols.
ComposeOutcome compose_interleaved(const std::vector<FsmEvent>& a,
                                   const std::vector<FsmEvent>& b,
                                   long long max_states);

/// Compose by deterministic timed run under strobe-discipline semantics
/// (receiver keeps up; zero-time steps drain before time advances).
ComposeOutcome compose_timed(const std::vector<FsmEvent>& a,
                             const std::vector<FsmEvent>& b,
                             long long max_steps);

}  // namespace ifsyn::check
