#include "check/trace_miner.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "check/protocol_fsm.hpp"
#include "protocol/procedure_synthesis.hpp"
#include "protocol/protocol_generator.hpp"
#include "protocol/protocol_library.hpp"

namespace ifsyn::check {

using namespace spec;

const char* disagreement_kind_name(DisagreementKind kind) {
  switch (kind) {
    case DisagreementKind::kMissingEvent: return "missing_event";
    case DisagreementKind::kReorderedEdge: return "reordered_edge";
    case DisagreementKind::kExtraToggle: return "extra_toggle";
    case DisagreementKind::kDelayDrift: return "delay_drift";
    case DisagreementKind::kUnattributable: return "unattributable";
  }
  return "unknown";
}

std::string Disagreement::to_string() const {
  std::ostringstream os;
  os << "conform." << disagreement_kind_name(kind) << " " << bus;
  if (!channel.empty()) os << "/" << channel;
  os << " " << signal << "@" << time << "." << delta << ": " << detail;
  return os.str();
}

std::string ConformanceReport::to_string() const {
  std::string out;
  for (const Disagreement& d : disagreements) {
    if (!out.empty()) out += "\n";
    out += d.to_string();
  }
  for (const SkippedLane& s : skipped) {
    if (!out.empty()) out += "\n";
    out += "conform.skipped " + s.bus + ": " + s.reason;
  }
  return out;
}

namespace {

/// One committed change on the mined lane, projected out of the kernel
/// trace. `uvalue` is only meaningful for control/ID fields (DATA words
/// can be wider than 64 bits and are matched by presence, not value).
struct ObservedEdge {
  std::uint64_t time = 0;
  std::uint64_t delta = 0;
  std::string field;
  bool is_data = false;
  std::uint64_t uvalue = 0;
};

/// One edge the static automaton predicts, at a commit time relative to
/// the transaction's first instant. DATA drives are optional: the kernel
/// traces changes only, so a repeated word legitimately commits nothing.
struct ExpectedEdge {
  long long rel = 0;
  std::string field;
  std::uint64_t value = 0;
  bool data = false;
};

using WireState = std::map<std::string, std::uint64_t>;

std::uint64_t wire_value(const WireState& wires, const std::string& field) {
  auto it = wires.find(field);
  return it == wires.end() ? 0 : it->second;
}

bool conds_hold(const FsmEvent& ev, const WireState& wires) {
  for (const WireCond& c : ev.conds) {
    if (wire_value(wires, c.field) != c.value) return false;
  }
  return true;
}

/// Replay one transaction's requester/server event pair under the timed
/// discipline of compose_timed (zero-time steps drain to quiescence,
/// requester first, before time advances to the next pending delay --
/// which is exactly how the kernel schedules the generated protocols),
/// recording every wire *change* as an expected edge. `wires` carries
/// the lane state across transactions (ID persists; control wires are
/// back at 0 after a checker-clean transaction) and is mutated to the
/// post-transaction state.
///
/// `server_lag` starts the server side that many cycles in: the server
/// process may still be draining the previous transaction's epilogue
/// (trailing hold cycles, falling-ack wait) when the next request hits
/// the wires, and its first response shifts accordingly. On success
/// `*server_done` is the relative time at which the server side ran dry
/// -- the lag to carry into the next transaction on this server.
bool replay_transaction(const std::vector<FsmEvent>& req,
                        const std::vector<FsmEvent>& srv,
                        long long server_lag, WireState& wires,
                        std::vector<ExpectedEdge>& out,
                        long long* server_done, std::string* why) {
  struct Side {
    const std::vector<FsmEvent>* events;
    std::size_t pc = 0;
    long long ready = 0;
    long long finish = 0;  ///< instant the side ran out of events

    bool done() const { return pc >= events->size(); }
  };
  Side sides[2] = {{&req}, {&srv}};
  sides[1].ready = server_lag;
  sides[1].finish = server_lag;

  long long now = 0;
  long long steps = 0;
  const long long max_steps = 1 << 20;
  while (!(sides[0].done() && sides[1].done())) {
    bool progressed = false;
    for (Side& side : sides) {
      const bool was_done = side.done();
      while (!side.done() && side.ready <= now) {
        if (++steps > max_steps) {
          *why = "replay step budget exhausted";
          return false;
        }
        const FsmEvent& ev = (*side.events)[side.pc];
        if (ev.kind == EventKind::kWaitWires) {
          if (!conds_hold(ev, wires)) break;
          ++side.pc;
        } else if (ev.kind == EventKind::kDelay) {
          side.ready = now + ev.cycles;
          ++side.pc;
          progressed = true;
          if (ev.cycles > 0) break;
          continue;
        } else if (ev.kind == EventKind::kAssignWire) {
          if (wire_value(wires, ev.field) != ev.value) {
            wires[ev.field] = ev.value;
            out.push_back(ExpectedEdge{now, ev.field, ev.value, false});
          }
          ++side.pc;
        } else if (ev.kind == EventKind::kDriveData) {
          out.push_back(ExpectedEdge{now, "DATA", 0, true});
          ++side.pc;
        } else {  // kSampleData: no wire activity
          ++side.pc;
        }
        progressed = true;
      }
      if (!was_done && side.done()) {
        side.finish = std::max(now, side.ready);
      }
    }
    if (progressed) continue;

    long long next = -1;
    for (const Side& side : sides) {
      if (side.done() || side.ready <= now) continue;
      if (next < 0 || side.ready < next) next = side.ready;
    }
    if (next < 0) {
      *why = "replay deadlocked (static composition should have caught this)";
      return false;
    }
    now = next;
  }
  *server_done = sides[1].finish;
  return true;
}

/// Statically extracted requester/server pair of one channel.
struct ChannelFsm {
  const Channel* channel = nullptr;
  std::vector<FsmEvent> requester;
  std::vector<FsmEvent> server;
};

struct Miner {
  const System& system;
  ConformanceReport& report;
  const obs::ObsContext& obs;

  void count(const char* name, std::uint64_t n = 1) {
    if (obs.metrics) obs.metrics->counter(name).add(n);
  }

  void skip(const std::string& bus, std::string reason) {
    report.skipped.push_back(SkippedLane{bus, std::move(reason)});
  }

  bool refined(const BusGroup& bus) const {
    for (const std::string& name : bus.channel_names) {
      const Channel* ch = system.find_channel(name);
      if (!ch) return false;
      return system.find_procedure(protocol::requester_proc_name(*ch)) !=
             nullptr;
    }
    return false;
  }

  /// Extract both sides of every lane channel; false (with a skip entry)
  /// when any side is missing or outside the extractable subset.
  bool extract_lane(const BusGroup& bus, const std::string& signal,
                    const std::vector<const Channel*>& channels,
                    std::vector<ChannelFsm>& out) {
    for (const Channel* ch : channels) {
      const Procedure* req_proc =
          system.find_procedure(protocol::requester_proc_name(*ch));
      const Procedure* srv_proc =
          system.find_procedure(protocol::serve_proc_name(*ch));
      if (!req_proc || !srv_proc) {
        skip(bus.name, "channel " + ch->name +
                           " lacks a generated requester/server pair");
        return false;
      }
      ChannelFsm fsm;
      fsm.channel = ch;
      const ExtractResult req = extract_events(req_proc->body, signal);
      const ExtractResult srv = extract_events(srv_proc->body, signal);
      if (!req.supported || !srv.supported) {
        skip(bus.name,
             "cannot abstract " +
                 (!req.supported ? req_proc->name : srv_proc->name) + ": " +
                 (!req.supported ? req.why_unsupported
                                 : srv.why_unsupported));
        return false;
      }
      fsm.requester = req.events;
      fsm.server = srv.events;
      out.push_back(std::move(fsm));
    }
    return true;
  }

  void disagree(DisagreementKind kind, const BusGroup& bus,
                const Channel* channel, std::uint64_t time,
                std::uint64_t delta, const std::string& signal,
                const std::string& field, std::string detail) {
    Disagreement d;
    d.kind = kind;
    d.bus = bus.name;
    if (channel) d.channel = channel->name;
    d.time = time;
    d.delta = delta;
    d.signal = field.empty() ? signal : signal + "." + field;
    d.detail = std::move(detail);
    report.disagreements.push_back(std::move(d));
  }

  /// Match one transaction's expected edges against the observed stream
  /// starting at `pos`. Returns true when the transaction fully matched
  /// (`pos` advanced past its edges); false when a disagreement was
  /// recorded (mining of the lane must stop).
  bool match_transaction(const BusGroup& bus, const Channel& channel,
                         const std::string& signal,
                         const std::vector<ExpectedEdge>& expected,
                         const std::vector<ObservedEdge>& stream,
                         std::size_t& pos) {
    const std::uint64_t t0 = stream[pos].time;
    // Instants whose expected DATA drive went unconsumed (value-repeat
    // words commit nothing): a DATA edge observed at such an instant
    // *after* its word's control edge is the reordered-drive signature.
    std::set<std::uint64_t> skipped_drive_times;

    std::size_t e = 0;
    while (e < expected.size()) {
      const ExpectedEdge& exp = expected[e];
      const std::uint64_t want_time =
          t0 + static_cast<std::uint64_t>(exp.rel);

      if (pos >= stream.size()) {
        if (exp.data) {  // a repeated word's silent commit
          ++e;
          continue;
        }
        const ObservedEdge& last = stream.back();
        disagree(DisagreementKind::kMissingEvent, bus, &channel, last.time,
                 last.delta, signal, exp.field,
                 "expected " + exp.field + "=" + std::to_string(exp.value) +
                     " at t=" + std::to_string(want_time) +
                     " but the trace ends (last edge at t=" +
                     std::to_string(last.time) + ")");
        return false;
      }

      const ObservedEdge& ob = stream[pos];
      if (exp.data) {
        if (ob.is_data && ob.time == want_time) {
          ++report.edges_checked;
          ++e;
          ++pos;
        } else {
          // No change committed: the word repeated the previous DATA
          // value. Remember the instant for reorder detection.
          skipped_drive_times.insert(want_time);
          ++e;
        }
        continue;
      }

      if (ob.is_data) {
        if (skipped_drive_times.count(ob.time)) {
          disagree(DisagreementKind::kReorderedEdge, bus, &channel, ob.time,
                   ob.delta, signal, "DATA",
                   "DATA committed after the control edge of its word; the "
                   "generated sender drives DATA first");
          return false;
        }
        // A time-shifted word commits DATA and its control edge together
        // at the wrong instant; when the very next observed edge is the
        // control edge this expected one describes, let the control
        // comparison carry the verdict (delay drift, not extra data).
        if (pos + 1 < stream.size()) {
          const ObservedEdge& next = stream[pos + 1];
          if (!next.is_data && next.field == exp.field &&
              next.uvalue == exp.value) {
            ++pos;  // the word's displaced drive
            continue;
          }
        }
        disagree(DisagreementKind::kExtraToggle, bus, &channel, ob.time,
                 ob.delta, signal, "DATA",
                 "DATA change with no corresponding word drive at t=" +
                     std::to_string(ob.time));
        return false;
      }

      if (ob.field == exp.field && ob.uvalue == exp.value) {
        if (ob.time != want_time) {
          disagree(DisagreementKind::kDelayDrift, bus, &channel, ob.time,
                   ob.delta, signal, exp.field,
                   exp.field + "=" + std::to_string(exp.value) +
                       " observed at t=" + std::to_string(ob.time) +
                       ", statically expected at t=" +
                       std::to_string(want_time));
          return false;
        }
        ++report.edges_checked;
        ++e;
        ++pos;
        continue;
      }

      // Head mismatch: classify by looking for each head further down
      // the other sequence (bounded scans; classification only).
      bool expected_found_later = false;
      const std::size_t scan_end = std::min(stream.size(), pos + 64);
      for (std::size_t i = pos + 1; i < scan_end; ++i) {
        if (!stream[i].is_data && stream[i].field == exp.field &&
            stream[i].uvalue == exp.value) {
          expected_found_later = true;
          break;
        }
      }
      bool observed_expected_later = false;
      for (std::size_t j = e + 1; j < expected.size(); ++j) {
        if (!expected[j].data && expected[j].field == ob.field &&
            expected[j].value == ob.uvalue) {
          observed_expected_later = true;
          break;
        }
      }
      if (observed_expected_later && expected_found_later) {
        disagree(DisagreementKind::kReorderedEdge, bus, &channel, ob.time,
                 ob.delta, signal, ob.field,
                 ob.field + "=" + std::to_string(ob.uvalue) +
                     " arrived before " + exp.field + "=" +
                     std::to_string(exp.value) +
                     "; the static automaton orders them the other way");
        return false;
      }
      if (!observed_expected_later) {
        disagree(DisagreementKind::kExtraToggle, bus, &channel, ob.time,
                 ob.delta, signal, ob.field,
                 ob.field + "=" + std::to_string(ob.uvalue) +
                     " is not part of this transaction's automaton");
        return false;
      }
      disagree(DisagreementKind::kMissingEvent, bus, &channel, ob.time,
               ob.delta, signal, exp.field,
               "expected " + exp.field + "=" + std::to_string(exp.value) +
                   " at t=" + std::to_string(want_time) + " but observed " +
                   ob.field + "=" + std::to_string(ob.uvalue));
      return false;
    }
    return true;
  }

  /// Mine one lane: a serialized sequence of transactions on `signal`.
  void mine_lane(const BusGroup& bus, const std::string& signal,
                 const std::vector<const Channel*>& channels,
                 const std::vector<ObservedEdge>& stream) {
    std::vector<ChannelFsm> fsms;
    if (!extract_lane(bus, signal, channels, fsms)) return;
    ++report.lanes_mined;

    WireState wires;  // kernel-initialized to zero
    // Instant (absolute) until which each server process is still
    // draining its previous transaction's epilogue. One server process
    // per served variable; a request that lands while it is busy gets
    // its response shifted by the remainder.
    std::map<std::string, std::uint64_t> server_busy;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      // Attribute the transaction: ID edges of its first instant apply
      // before the carried value is read (trace_analyzer's idiom).
      std::uint64_t effective_id = wire_value(wires, "ID");
      for (std::size_t i = pos;
           i < stream.size() && stream[i].time == stream[pos].time; ++i) {
        if (stream[i].field == "ID") {
          effective_id = stream[i].uvalue;
          break;
        }
      }
      const ChannelFsm* fsm = nullptr;
      if (fsms.size() == 1) {
        fsm = &fsms[0];
      } else {
        for (const ChannelFsm& f : fsms) {
          if (static_cast<std::uint64_t>(f.channel->id) == effective_id) {
            fsm = &f;
            break;
          }
        }
      }
      if (!fsm) {
        disagree(DisagreementKind::kUnattributable, bus, nullptr,
                 stream[pos].time, stream[pos].delta, signal, "ID",
                 "traffic under ID=" + std::to_string(effective_id) +
                     " matches no channel of this bus");
        return;
      }

      const std::uint64_t t0 = stream[pos].time;
      const std::uint64_t busy = server_busy[fsm->channel->variable];
      const long long server_lag =
          busy > t0 ? static_cast<long long>(busy - t0) : 0;

      std::vector<ExpectedEdge> expected;
      WireState replay_wires = wires;
      long long server_done = 0;
      std::string why;
      if (!replay_transaction(fsm->requester, fsm->server, server_lag,
                              replay_wires, expected, &server_done, &why)) {
        skip(bus.name, "channel " + fsm->channel->name + ": " + why);
        return;
      }
      if (!match_transaction(bus, *fsm->channel, signal, expected, stream,
                             pos)) {
        return;
      }
      wires = std::move(replay_wires);
      server_busy[fsm->channel->variable] =
          t0 + static_cast<std::uint64_t>(server_done);
      ++report.transactions_mined;
    }
  }

  void run(const std::vector<sim::TraceEntry>& trace) {
    for (const auto& bus : system.buses()) {
      if (!refined(*bus)) continue;

      std::vector<const Channel*> channels;
      for (const std::string& name : bus->channel_names) {
        if (const Channel* ch = system.find_channel(name)) {
          channels.push_back(ch);
        }
      }
      if (channels.empty()) continue;

      // Lane split: hardwired ports give every channel its own signal;
      // every other protocol shares the bus record.
      std::vector<std::pair<std::string, std::vector<const Channel*>>> lanes;
      if (bus->protocol == ProtocolKind::kHardwiredPort) {
        for (const Channel* ch : channels) {
          lanes.emplace_back(
              protocol::ProtocolGenerator::hardwired_signal_name(*bus, *ch),
              std::vector<const Channel*>{ch});
        }
      } else {
        if (channels.size() > 1 && !bus->arbitrated) {
          std::set<std::string> masters;
          for (const Channel* ch : channels) masters.insert(ch->accessor);
          if (masters.size() > 1) {
            skip(bus->name,
                 "multiple un-arbitrated masters share the bus; their "
                 "transactions may legitimately interleave, so serialized "
                 "mining would be unsound (synthesize with arbitration to "
                 "mine this bus)");
            continue;
          }
        }
        lanes.emplace_back(bus->name, channels);
      }

      for (const auto& [signal, lane_channels] : lanes) {
        std::vector<ObservedEdge> stream;
        for (const sim::TraceEntry& entry : trace) {
          if (entry.key.signal != signal) continue;
          ObservedEdge edge;
          edge.time = entry.time;
          edge.delta = entry.delta;
          edge.field = entry.key.field;
          edge.is_data = entry.key.field == "DATA";
          if (!edge.is_data) edge.uvalue = entry.value.to_uint();
          stream.push_back(std::move(edge));
        }
        if (stream.empty()) continue;  // no traffic: nothing to mine
        mine_lane(*bus, signal, lane_channels, stream);
      }
    }

    count("check.conform.transactions",
          static_cast<std::uint64_t>(report.transactions_mined));
    count("check.conform.edges",
          static_cast<std::uint64_t>(report.edges_checked));
    count("check.conform.disagreements",
          static_cast<std::uint64_t>(report.disagreements.size()));
  }
};

}  // namespace

ConformanceReport mine_and_diff(const System& system,
                                const std::vector<sim::TraceEntry>& trace,
                                const obs::ObsContext& obs) {
  ConformanceReport report;
  Miner miner{system, report, obs};
  miner.run(trace);
  return report;
}

}  // namespace ifsyn::check
