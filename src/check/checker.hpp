// ifsyn/check/checker.hpp
//
// Static protocol checker (DESIGN.md Sec. 11): a post-synthesis verifier
// over a refined spec::System that re-derives what protocol generation
// *should* have produced and reports every mismatch as a structured
// diagnostic. Three pass families:
//
//   structural        -- channel IDs unique and representable in id_bits,
//                        control_lines consistent with protocol_signals(),
//                        bus record / hardwired port signal shapes, word
//                        counts of the generated procedures against the
//                        ceil(message/width) slicing arithmetic.
//   protocol FSM      -- extract each Send/Receive (requester) and Serve
//                        (server) pair as event FSMs and compose them
//                        (check/protocol_fsm.hpp): every START must meet
//                        its DONE, hold cycles must match the bus's
//                        fixed_delay_cycles, and no deadlock may be
//                        reachable. Errors.
//   rate feasibility  -- recompute Eq. 1 per shared bus with the correct
//                        per-protocol timing (the bug class that motivated
//                        this subsystem: fixed-delay buses priced at a
//                        defaulted delay). Audits generator-selected
//                        widths only (BusGroup::width_from_generator) --
//                        pinned widths and width sweeps violate Eq. 1 on
//                        purpose. Warnings. Because the default compute
//                        model reads process bodies, which protocol
//                        generation rewrites, callers must snapshot
//                        compute cycles *before* synthesis (see
//                        snapshot_compute_cycles) for the re-check to
//                        reproduce the generator's arithmetic exactly.
//
// `run_checks` never mutates the system. The synthesizer runs it after
// protocol generation and fails on any diagnostic (SynthesisOptions::
// run_checker); `ifsyn_tool check` prints the report; the fuzz harness
// asserts zero errors on every generated system.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/scoped_timer.hpp"
#include "spec/system.hpp"

namespace ifsyn::check {

enum class Severity {
  kError,    ///< the refined system is wrong; synthesis must not ship it
  kWarning,  ///< suspicious but possibly intended (e.g. pinned width
             ///< below the Eq. 1 floor), or a check that could not run
};

const char* severity_name(Severity severity);

/// One finding. `code` is a stable dotted identifier ("structural.
/// duplicate_id", "fsm.deadlock", "rate.infeasible", ...) so tests and
/// tooling can match findings without parsing prose; `subject` names the
/// bus/channel/procedure the finding is about.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;
  std::string subject;
  std::string message;

  std::string to_string() const;
};

struct CheckReport {
  std::vector<Diagnostic> diagnostics;

  int errors() const;
  int warnings() const;
  /// No diagnostics at all. The synthesizer gate and the tool's exit
  /// status use this (warnings included: a pinned-width rate violation
  /// should be visible, and --no-check exists for the deliberate case).
  bool clean() const { return diagnostics.empty(); }

  /// One line per diagnostic, "severity code subject: message".
  std::string to_string() const;
};

struct CheckOptions {
  bool structural = true;
  bool protocol_fsm = true;
  bool rate_feasibility = true;
  /// Budget for one interleaved composition (handshake protocols).
  long long max_fsm_states = 1 << 20;
  /// Budget for one timed run (strobe protocols).
  long long max_fsm_steps = 1 << 20;
  /// Calibration overrides forwarded to the rate re-check, so a system
  /// synthesized with pinned compute cycles is re-checked under the same
  /// model it was sized with.
  std::map<std::string, long long> compute_cycles_override;
};

/// Run every enabled pass over the refined buses of `system` (groups that
/// protocol generation has not touched yet are skipped). Exports
/// "check.*" counters through `obs` when a metrics registry is attached.
CheckReport run_checks(const spec::System& system,
                       const CheckOptions& options = {},
                       const obs::ObsContext& obs = {});

/// Compute cycles of every process under the default estimation model
/// (plus `overrides`), keyed by process name. Bus generation sizes buses
/// against this model, but protocol generation then rewrites the process
/// bodies it was derived from -- so take the snapshot *before* synthesis
/// and pass it as CheckOptions::compute_cycles_override to make the rate
/// re-check bit-reproduce the generator's Eq. 1 arithmetic. The
/// synthesizer's own P6 gate does this internally.
std::map<std::string, long long> snapshot_compute_cycles(
    const spec::System& system,
    const std::map<std::string, long long>& overrides = {});

}  // namespace ifsyn::check
