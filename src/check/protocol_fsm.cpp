#include "check/protocol_fsm.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "spec/expr.hpp"

namespace ifsyn::check {

using namespace spec;

namespace {

/// Loop-variable environment for constant folding of the generated index
/// arithmetic (word parities `J mod 2`, slice bounds).
using Env = std::map<std::string, std::int64_t>;

std::optional<std::int64_t> fold(const Expr& expr, const Env& env) {
  if (const auto* i = expr.as<IntLit>()) return i->value;
  if (const auto* b = expr.as<BitsLit>()) {
    return static_cast<std::int64_t>(b->value.to_uint());
  }
  if (const auto* v = expr.as<VarRef>()) {
    auto it = env.find(v->name);
    if (it == env.end()) return std::nullopt;
    return it->second;
  }
  if (const auto* u = expr.as<UnaryExpr>()) {
    auto x = fold(*u->operand, env);
    if (!x) return std::nullopt;
    switch (u->op) {
      case UnaryOp::kNeg: return -*x;
      case UnaryOp::kNot: return ~*x;
      case UnaryOp::kLogNot: return *x == 0 ? 1 : 0;
    }
    return std::nullopt;
  }
  if (const auto* b = expr.as<BinaryExpr>()) {
    auto l = fold(*b->lhs, env);
    auto r = fold(*b->rhs, env);
    if (!l || !r) return std::nullopt;
    switch (b->op) {
      case BinaryOp::kAdd: return *l + *r;
      case BinaryOp::kSub: return *l - *r;
      case BinaryOp::kMul: return *l * *r;
      case BinaryOp::kDiv: return *r == 0 ? std::nullopt
                                          : std::optional<std::int64_t>(*l / *r);
      case BinaryOp::kMod: return *r == 0 ? std::nullopt
                                          : std::optional<std::int64_t>(*l % *r);
      default: return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Does `expr` read any field of `bus` DATA anywhere in its tree?
bool reads_bus_data(const Expr& expr, const std::string& bus) {
  if (const auto* s = expr.as<SignalRef>()) {
    return s->signal == bus && s->field == "DATA";
  }
  if (const auto* u = expr.as<UnaryExpr>()) {
    return reads_bus_data(*u->operand, bus);
  }
  if (const auto* b = expr.as<BinaryExpr>()) {
    return reads_bus_data(*b->lhs, bus) || reads_bus_data(*b->rhs, bus);
  }
  if (const auto* s = expr.as<SliceExpr>()) {
    return reads_bus_data(*s->base, bus);
  }
  if (const auto* a = expr.as<ArrayRef>()) {
    return reads_bus_data(*a->index, bus);
  }
  return false;
}

struct Extractor {
  const std::string& bus;
  ExtractResult& out;
  long long event_budget = 100000;

  void fail(std::string why) {
    if (out.supported) {
      out.supported = false;
      out.why_unsupported = std::move(why);
    }
  }

  void push(FsmEvent ev) {
    if (static_cast<long long>(out.events.size()) >= event_budget) {
      fail("event budget exhausted (loop too large to unroll)");
      return;
    }
    out.events.push_back(std::move(ev));
  }

  /// Flatten a wait-until condition into (field == const) conjuncts.
  bool flatten_cond(const Expr& cond, const Env& env,
                    std::vector<WireCond>& conds) {
    if (const auto* b = cond.as<BinaryExpr>()) {
      if (b->op == BinaryOp::kLogAnd) {
        return flatten_cond(*b->lhs, env, conds) &&
               flatten_cond(*b->rhs, env, conds);
      }
      if (b->op == BinaryOp::kEq) {
        const auto* sref = b->lhs->as<SignalRef>();
        const Expr* rhs = b->rhs.get();
        if (!sref) {
          sref = b->rhs->as<SignalRef>();
          rhs = b->lhs.get();
        }
        if (!sref || sref->signal != bus) return false;
        auto v = fold(*rhs, env);
        if (!v) return false;
        conds.push_back(
            WireCond{sref->field, static_cast<std::uint64_t>(*v)});
        return true;
      }
    }
    return false;
  }

  void walk(const Block& block, Env& env) {
    for (const StmtPtr& stmt : block) {
      if (!out.supported) return;
      if (const auto* va = stmt->as<VarAssign>()) {
        if (va->value && reads_bus_data(*va->value, bus)) {
          FsmEvent ev;
          ev.kind = EventKind::kSampleData;
          push(std::move(ev));
          ++out.data_samples;
        }
        continue;  // plain variable traffic is not protocol behavior
      }
      if (const auto* sa = stmt->as<SignalAssign>()) {
        if (sa->signal != bus) continue;  // other buses: out of scope
        if (sa->field == "DATA") {
          FsmEvent ev;
          ev.kind = EventKind::kDriveData;
          push(std::move(ev));
          ++out.data_drives;
          continue;
        }
        auto v = fold(*sa->value, env);
        if (!v) {
          fail("non-constant value driven onto " + bus + "." + sa->field);
          return;
        }
        FsmEvent ev;
        ev.kind = EventKind::kAssignWire;
        ev.field = sa->field;
        ev.value = static_cast<std::uint64_t>(*v);
        push(std::move(ev));
        continue;
      }
      if (const auto* wu = stmt->as<WaitUntil>()) {
        FsmEvent ev;
        ev.kind = EventKind::kWaitWires;
        if (!flatten_cond(*wu->cond, env, ev.conds)) {
          fail("wait condition outside the generated subset: " +
               wu->cond->to_string());
          return;
        }
        push(std::move(ev));
        continue;
      }
      if (const auto* wf = stmt->as<WaitFor>()) {
        auto v = fold(*wf->cycles, env);
        if (!v || *v < 0) {
          fail("non-constant wait-for duration");
          return;
        }
        FsmEvent ev;
        ev.kind = EventKind::kDelay;
        ev.cycles = *v;
        push(std::move(ev));
        continue;
      }
      if (const auto* fs = stmt->as<ForStmt>()) {
        auto from = fold(*fs->from, env);
        auto to = fold(*fs->to, env);
        if (!from || !to) {
          fail("non-constant for-loop bounds");
          return;
        }
        if (*to - *from + 1 > 4096) {
          fail("for-loop trip count too large to unroll");
          return;
        }
        for (std::int64_t j = *from; j <= *to; ++j) {
          env[fs->var] = j;
          walk(fs->body, env);
          if (!out.supported) return;
        }
        env.erase(fs->var);
        continue;
      }
      if (stmt->as<BusLock>()) continue;  // arbitration is a non-goal here
      if (stmt->as<WaitOn>()) {
        fail("wait-on statement in generated procedure");
        return;
      }
      // IfStmt / WhileStmt / ForeverStmt / ProcCall never appear in
      // generated Send/Receive/Serve bodies.
      fail("statement outside the generated procedure subset");
      return;
    }
  }
};

/// Shared wire state of a composition: named control/ID fields, default 0
/// (the kernel initializes signals to zero).
struct Wires {
  std::vector<std::string> names;
  std::vector<std::uint64_t> values;

  std::size_t index(const std::string& name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    names.push_back(name);
    values.push_back(0);
    return names.size() - 1;
  }
};

bool conds_hold(const FsmEvent& ev, Wires& wires) {
  for (const WireCond& c : ev.conds) {
    if (wires.values[wires.index(c.field)] != c.value) return false;
  }
  return true;
}

/// Pre-register every field either side touches so wire indices are
/// stable before state hashing begins.
Wires make_wires(const std::vector<FsmEvent>& a,
                 const std::vector<FsmEvent>& b) {
  Wires w;
  for (const auto* side : {&a, &b}) {
    for (const FsmEvent& ev : *side) {
      if (ev.kind == EventKind::kAssignWire) w.index(ev.field);
      for (const WireCond& c : ev.conds) w.index(c.field);
    }
  }
  return w;
}

std::string describe_block(const std::vector<FsmEvent>& events, std::size_t pc,
                           const char* side) {
  if (pc >= events.size()) return std::string(side) + " completed";
  const FsmEvent& ev = events[pc];
  std::string out = std::string(side) + " blocked at event " +
                    std::to_string(pc) + " waiting for";
  for (const WireCond& c : ev.conds) {
    out += " " + c.field + "=" + std::to_string(c.value);
  }
  return out;
}

void record_nonzero(const Wires& wires, ComposeOutcome& out) {
  for (std::size_t i = 0; i < wires.names.size(); ++i) {
    if (wires.values[i] == 0) continue;
    // ID lines legitimately hold the last transaction's channel id.
    if (wires.names[i] == "ID") continue;
    const bool already =
        std::any_of(out.final_nonzero_wires.begin(),
                    out.final_nonzero_wires.end(),
                    [&](const WireCond& c) { return c.field == wires.names[i]; });
    if (!already) {
      out.final_nonzero_wires.push_back(
          WireCond{wires.names[i], wires.values[i]});
    }
  }
}

}  // namespace

ExtractResult extract_events(const Block& body, const std::string& bus_signal) {
  ExtractResult out;
  Extractor ex{bus_signal, out};
  Env env;
  ex.walk(body, env);
  return out;
}

ComposeOutcome compose_interleaved(const std::vector<FsmEvent>& a,
                                   const std::vector<FsmEvent>& b,
                                   long long max_states) {
  ComposeOutcome out;
  Wires wires = make_wires(a, b);
  const std::size_t nw = wires.names.size();

  // A state is (pcA, pcB, wire values); wire values are folded into a
  // vector key. Depth-first exploration with an explicit stack.
  using State = std::vector<std::uint64_t>;  // [pcA, pcB, w0, w1, ...]
  auto make_state = [&](std::size_t pa, std::size_t pb) {
    State s(2 + nw);
    s[0] = pa;
    s[1] = pb;
    for (std::size_t i = 0; i < nw; ++i) s[2 + i] = wires.values[i];
    return s;
  };

  std::set<State> visited;
  std::vector<State> stack;
  stack.push_back(make_state(0, 0));

  while (!stack.empty()) {
    State s = std::move(stack.back());
    stack.pop_back();
    if (!visited.insert(s).second) continue;
    if (static_cast<long long>(visited.size()) > max_states) {
      out.budget_exhausted = true;
      out.detail = "state budget exhausted";
      out.states_explored = static_cast<long long>(visited.size());
      return out;
    }

    const std::size_t pa = static_cast<std::size_t>(s[0]);
    const std::size_t pb = static_cast<std::size_t>(s[1]);
    for (std::size_t i = 0; i < nw; ++i) wires.values[i] = s[2 + i];

    if (pa >= a.size() && pb >= b.size()) {
      record_nonzero(wires, out);
      out.completed = true;
      continue;
    }

    bool stepped = false;
    for (int side = 0; side < 2; ++side) {
      const std::vector<FsmEvent>& events = side == 0 ? a : b;
      const std::size_t pc = side == 0 ? pa : pb;
      if (pc >= events.size()) continue;
      const FsmEvent& ev = events[pc];
      if (ev.kind == EventKind::kWaitWires && !conds_hold(ev, wires)) {
        continue;
      }
      // Apply the event to a scratch copy of the wires.
      if (ev.kind == EventKind::kAssignWire) {
        const std::size_t idx = wires.index(ev.field);
        const std::uint64_t saved = wires.values[idx];
        wires.values[idx] = ev.value;
        stack.push_back(make_state(side == 0 ? pa + 1 : pa,
                                   side == 0 ? pb : pb + 1));
        wires.values[idx] = saved;
      } else {
        // Waits whose condition holds, delays, and data moves all just
        // advance the side's pc (delays are "may pass at any time" in
        // the untimed model).
        stack.push_back(make_state(side == 0 ? pa + 1 : pa,
                                   side == 0 ? pb : pb + 1));
      }
      stepped = true;
    }

    if (!stepped) {
      out.deadlock = true;
      out.detail = describe_block(a, pa, "requester") + "; " +
                   describe_block(b, pb, "server");
      out.states_explored = static_cast<long long>(visited.size());
      return out;
    }
  }

  out.states_explored = static_cast<long long>(visited.size());
  if (!out.completed && !out.budget_exhausted) {
    // No terminal state was reachable at all -- count it as deadlock.
    out.deadlock = true;
    out.detail = "no interleaving completes the transaction";
  }
  return out;
}

ComposeOutcome compose_timed(const std::vector<FsmEvent>& a,
                             const std::vector<FsmEvent>& b,
                             long long max_steps) {
  ComposeOutcome out;
  Wires wires = make_wires(a, b);

  struct Side {
    const std::vector<FsmEvent>* events;
    std::size_t pc = 0;
    long long ready = 0;  ///< simulated time the side may run again

    bool done() const { return pc >= events->size(); }
  };
  Side sides[2] = {{&a}, {&b}};

  long long now = 0;
  long long steps = 0;
  while (!(sides[0].done() && sides[1].done())) {
    bool progressed = false;
    for (Side& side : sides) {
      while (!side.done() && side.ready <= now) {
        if (++steps > max_steps) {
          out.budget_exhausted = true;
          out.detail = "step budget exhausted";
          out.states_explored = steps;
          return out;
        }
        const FsmEvent& ev = (*side.events)[side.pc];
        if (ev.kind == EventKind::kWaitWires) {
          if (!conds_hold(ev, wires)) break;
          ++side.pc;
        } else if (ev.kind == EventKind::kDelay) {
          side.ready = now + ev.cycles;
          ++side.pc;
          progressed = true;
          if (ev.cycles > 0) break;
          continue;
        } else if (ev.kind == EventKind::kAssignWire) {
          wires.values[wires.index(ev.field)] = ev.value;
          ++side.pc;
        } else {  // kDriveData / kSampleData
          ++side.pc;
        }
        progressed = true;
      }
    }
    if (progressed) continue;

    // No zero-time step ran anywhere: advance to the next pending delay.
    long long next = -1;
    for (const Side& side : sides) {
      if (side.done() || side.ready <= now) continue;
      if (next < 0 || side.ready < next) next = side.ready;
    }
    if (next < 0) {
      out.deadlock = true;
      out.detail = describe_block(a, sides[0].pc, "requester") + "; " +
                   describe_block(b, sides[1].pc, "server");
      out.states_explored = steps;
      return out;
    }
    now = next;
  }

  out.completed = true;
  out.states_explored = steps;
  record_nonzero(wires, out);
  return out;
}

}  // namespace ifsyn::check
