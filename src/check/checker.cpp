#include "check/checker.hpp"

#include <algorithm>
#include <cmath>

#include "check/protocol_fsm.hpp"
#include "estimate/performance_estimator.hpp"
#include "estimate/rate_model.hpp"
#include "protocol/procedure_synthesis.hpp"
#include "protocol/protocol_generator.hpp"
#include "protocol/protocol_library.hpp"

namespace ifsyn::check {

using namespace spec;

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = severity_name(severity);
  out += " [";
  out += code;
  out += "] ";
  out += subject;
  out += ": ";
  out += message;
  return out;
}

int CheckReport::errors() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

int CheckReport::warnings() const {
  return static_cast<int>(diagnostics.size()) - errors();
}

std::string CheckReport::to_string() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!out.empty()) out += "\n";
    out += d.to_string();
  }
  return out;
}

namespace {

struct Checker {
  const System& system;
  const CheckOptions& options;
  const obs::ObsContext& obs;
  CheckReport report;

  void diag(Severity severity, std::string code, std::string subject,
            std::string message) {
    report.diagnostics.push_back(Diagnostic{severity, std::move(code),
                                            std::move(subject),
                                            std::move(message)});
  }
  void error(std::string code, std::string subject, std::string message) {
    diag(Severity::kError, std::move(code), std::move(subject),
         std::move(message));
  }
  void warning(std::string code, std::string subject, std::string message) {
    diag(Severity::kWarning, std::move(code), std::move(subject),
         std::move(message));
  }

  void count(const char* name, std::uint64_t n = 1) {
    if (obs.metrics) obs.metrics->counter(name).add(n);
  }

  /// A group is checkable once protocol generation has refined it: its
  /// first channel's requester procedure exists. Width-only groups (bus
  /// generation ran, protocol generation has not) are skipped, as are
  /// groups still waiting for both.
  bool refined(const BusGroup& bus) const {
    for (const std::string& name : bus.channel_names) {
      const Channel* ch = system.find_channel(name);
      if (!ch) return false;
      return system.find_procedure(protocol::requester_proc_name(*ch)) !=
             nullptr;
    }
    return false;
  }

  // ---- structural invariants -----------------------------------------

  void check_ids(const BusGroup& bus,
                 const std::vector<const Channel*>& channels) {
    if (bus.protocol == ProtocolKind::kHardwiredPort) return;
    if (bus.id_bits == 0 && channels.size() > 1) {
      error("structural.id_bits_missing", bus.name,
            std::to_string(channels.size()) +
                " channels share the bus but it has no ID field");
    }
    std::vector<int> seen;
    for (const Channel* ch : channels) {
      const std::string subject = bus.name + "/" + ch->name;
      if (ch->id < 0) {
        error("structural.id_unassigned", subject,
              "channel has no assigned ID");
        continue;
      }
      if (bus.id_bits > 0 && bus.id_bits < 63 &&
          ch->id >= (1LL << bus.id_bits)) {
        error("structural.id_overflow", subject,
              "ID " + std::to_string(ch->id) + " does not fit in " +
                  std::to_string(bus.id_bits) + " ID bits");
      }
      if (std::find(seen.begin(), seen.end(), ch->id) != seen.end()) {
        error("structural.duplicate_id", subject,
              "ID " + std::to_string(ch->id) +
                  " is already used by another channel of this bus");
      }
      seen.push_back(ch->id);
    }
  }

  void check_signal_shape(const BusGroup& bus,
                          const std::vector<const Channel*>& channels) {
    const protocol::ProtocolSignals sigs =
        protocol::protocol_signals(bus.protocol);
    int expected_control = 0;
    for (const auto& f : sigs.control_fields) expected_control += f.width;
    if (bus.control_lines != expected_control) {
      error("structural.control_lines", bus.name,
            "bus records " + std::to_string(bus.control_lines) +
                " control lines but " +
                protocol_kind_name(bus.protocol) + " uses " +
                std::to_string(expected_control));
    }
    if (bus.protocol == ProtocolKind::kFixedDelay &&
        bus.fixed_delay_cycles < 1) {
      error("structural.fixed_delay", bus.name,
            "fixed-delay protocol with fixed_delay_cycles = " +
                std::to_string(bus.fixed_delay_cycles));
    }

    auto check_fields = [&](const Signal& signal, int data_width,
                            int id_bits) {
      for (const auto& f : sigs.control_fields) {
        const SignalField* field = signal.field(f.name);
        if (!field) {
          error("structural.missing_control_field", signal.name,
                "signal lacks control field " + f.name);
        } else if (field->width != f.width) {
          error("structural.control_field_width", signal.name,
                "field " + f.name + " is " + std::to_string(field->width) +
                    " bits, protocol needs " + std::to_string(f.width));
        }
      }
      if (id_bits > 0) {
        const SignalField* id = signal.field("ID");
        if (!id) {
          error("structural.missing_id_field", signal.name,
                "bus has id_bits = " + std::to_string(id_bits) +
                    " but the signal has no ID field");
        } else if (id->width != id_bits) {
          error("structural.id_field_width", signal.name,
                "ID field is " + std::to_string(id->width) +
                    " bits, bus records " + std::to_string(id_bits));
        }
      }
      const SignalField* data = signal.field("DATA");
      if (!data) {
        error("structural.missing_data_field", signal.name,
              "signal has no DATA field");
      } else if (data->width != data_width) {
        error("structural.data_width", signal.name,
              "DATA is " + std::to_string(data->width) +
                  " bits, expected " + std::to_string(data_width));
      }
    };

    if (bus.protocol == ProtocolKind::kHardwiredPort) {
      int total = 0;
      for (const Channel* ch : channels) {
        const std::string port_name =
            protocol::ProtocolGenerator::hardwired_signal_name(bus, *ch);
        const int want = protocol::hardwired_width(*ch);
        total += want;
        const Signal* port = system.find_signal(port_name);
        if (!port) {
          error("structural.missing_bus_signal", bus.name + "/" + ch->name,
                "hardwired port signal " + port_name + " does not exist");
          continue;
        }
        check_fields(*port, want, /*id_bits=*/0);
      }
      if (bus.width != total) {
        error("structural.width_mismatch", bus.name,
              "group width " + std::to_string(bus.width) +
                  " != sum of hardwired port widths " +
                  std::to_string(total));
      }
    } else {
      const Signal* record = system.find_signal(bus.name);
      if (!record) {
        error("structural.missing_bus_signal", bus.name,
              "bus record signal does not exist");
        return;
      }
      check_fields(*record, bus.width, bus.id_bits);
    }
  }

  // ---- protocol FSM checks -------------------------------------------

  /// Expected word counts of one side of the channel's transaction.
  struct WordShape {
    long long drives = 0;
    long long samples = 0;
  };

  WordShape requester_shape(const Channel& ch, int width) const {
    WordShape s;
    if (ch.is_read()) {
      // Request phase: address words, or one dummy word for scalars.
      s.drives = ch.addr_bits > 0
                     ? estimate::words_per_message(ch.addr_bits, width)
                     : 1;
      s.samples = estimate::words_per_message(ch.data_bits, width);
    } else {
      s.drives = estimate::words_per_message(ch.message_bits(), width);
    }
    return s;
  }

  void check_word_counts(const Channel& ch, const std::string& subject,
                         int width, const ExtractResult& req,
                         const ExtractResult& srv) {
    const WordShape want = requester_shape(ch, width);
    if (req.data_drives != want.drives || req.data_samples != want.samples) {
      error("fsm.word_count", subject,
            "requester moves " + std::to_string(req.data_drives) + "+" +
                std::to_string(req.data_samples) +
                " words (drive+sample), slicing arithmetic expects " +
                std::to_string(want.drives) + "+" +
                std::to_string(want.samples));
    }
    if (srv.data_drives != req.data_samples ||
        srv.data_samples != req.data_drives) {
      error("fsm.word_mismatch", subject,
            "server moves " + std::to_string(srv.data_drives) + "+" +
                std::to_string(srv.data_samples) +
                " words (drive+sample); not complementary to the "
                "requester's " +
                std::to_string(req.data_drives) + "+" +
                std::to_string(req.data_samples));
    }
  }

  void check_hold_cycles(const BusGroup& bus, const std::string& subject,
                         const ExtractResult& side, const char* role) {
    const long long h = bus.protocol == ProtocolKind::kFixedDelay
                            ? bus.fixed_delay_cycles
                            : 1;
    for (const FsmEvent& ev : side.events) {
      if (ev.kind != EventKind::kDelay) continue;
      if (ev.cycles == h || ev.cycles == 2 * h) continue;
      error("fsm.hold_cycles", subject,
            std::string(role) + " holds for " + std::to_string(ev.cycles) +
                " cycles; the bus's per-word delay is " + std::to_string(h) +
                " (turnaround " + std::to_string(2 * h) + ")");
      return;  // one diagnostic per side is enough
    }
  }

  void check_channel_fsm(const BusGroup& bus, const Channel& ch) {
    const std::string subject = bus.name + "/" + ch.name;
    const Procedure* req_proc =
        system.find_procedure(protocol::requester_proc_name(ch));
    const Procedure* srv_proc =
        system.find_procedure(protocol::serve_proc_name(ch));
    if (!req_proc || !srv_proc) {
      error("structural.missing_procedure", subject,
            std::string(!req_proc ? "requester" : "server") +
                " procedure was not generated");
      return;
    }

    const protocol::WireContext wires =
        protocol::ProtocolGenerator::wire_context(bus, ch);
    const ExtractResult req = extract_events(req_proc->body, wires.bus);
    const ExtractResult srv = extract_events(srv_proc->body, wires.bus);
    if (!req.supported || !srv.supported) {
      warning("fsm.unsupported", subject,
              "cannot abstract " +
                  (!req.supported ? req_proc->name : srv_proc->name) +
                  ": " +
                  (!req.supported ? req.why_unsupported
                                  : srv.why_unsupported));
      return;
    }
    count("check.channels_checked");

    check_word_counts(ch, subject, wires.width, req, srv);
    check_hold_cycles(bus, subject, req, req_proc->name.c_str());
    check_hold_cycles(bus, subject, srv, srv_proc->name.c_str());

    const bool handshake = bus.protocol == ProtocolKind::kFullHandshake ||
                           bus.protocol == ProtocolKind::kHardwiredPort;
    const ComposeOutcome outcome =
        handshake
            ? compose_interleaved(req.events, srv.events,
                                  options.max_fsm_states)
            : compose_timed(req.events, srv.events, options.max_fsm_steps);
    count("check.fsm_compositions");
    count("check.fsm_states_explored",
          static_cast<std::uint64_t>(outcome.states_explored));

    if (outcome.deadlock) {
      error("fsm.deadlock", subject,
            std::string(handshake ? "a reachable interleaving of "
                                  : "the timed composition of ") +
                req_proc->name + " and " + srv_proc->name +
                " deadlocks: " + outcome.detail);
      return;
    }
    if (outcome.budget_exhausted) {
      warning("fsm.budget", subject,
              "composition budget exhausted before an answer (" +
                  outcome.detail + ")");
      return;
    }
    if (!outcome.final_nonzero_wires.empty()) {
      std::string held;
      for (const WireCond& w : outcome.final_nonzero_wires) {
        if (!held.empty()) held += ", ";
        held += w.field + "=" + std::to_string(w.value);
      }
      error("fsm.control_not_released", subject,
            "transaction can complete with control wires still asserted (" +
                held + "); the next transaction would misfire");
    }
  }

  // ---- rate feasibility (Eq. 1 re-check) -----------------------------

  void check_rates(const BusGroup& bus,
                   const std::vector<const Channel*>& channels) {
    if (bus.protocol == ProtocolKind::kHardwiredPort || bus.width <= 0) {
      return;
    }
    // Only audit widths the generator itself selected: a caller-pinned
    // width (suite examples, width sweeps) is allowed to violate Eq. 1 on
    // purpose, but a generator-selected width that violates it means the
    // rate model and the selection loop have drifted apart -- exactly the
    // fixed-delay default bug this checker exists to catch.
    if (!bus.width_from_generator) return;
    estimate::PerformanceEstimator estimator(system);
    for (const auto& [process, cycles] : options.compute_cycles_override) {
      estimator.set_compute_cycles(process, cycles);
    }
    double demand = 0;
    bool any = false;
    for (const Channel* ch : channels) {
      if (ch->accesses <= 0) continue;  // unannotated; nothing to sum
      demand += estimator.average_rate(*ch, bus.width, bus.protocol,
                                       bus.fixed_delay_cycles);
      any = true;
    }
    if (!any) return;
    const double rate = estimate::bus_rate(bus.width, bus.protocol,
                                           bus.fixed_delay_cycles);
    if (rate + 1e-9 < demand) {
      warning("rate.infeasible", bus.name,
              "Eq. 1 violated at the generated configuration: bus rate " +
                  std::to_string(rate) + " bits/clock < total demand " +
                  std::to_string(demand) + " (width " +
                  std::to_string(bus.width) + ", " +
                  protocol_kind_name(bus.protocol) + ", delay " +
                  std::to_string(bus.fixed_delay_cycles) + ")");
    }
  }

  // ---- driver --------------------------------------------------------

  void run() {
    for (const auto& bus : system.buses()) {
      if (!refined(*bus)) continue;
      count("check.buses_checked");

      std::vector<const Channel*> channels;
      for (const std::string& name : bus->channel_names) {
        const Channel* ch = system.find_channel(name);
        if (!ch) {
          error("structural.missing_channel", bus->name + "/" + name,
                "bus group references a channel that does not exist");
          continue;
        }
        channels.push_back(ch);
      }

      if (options.structural) {
        check_ids(*bus, channels);
        check_signal_shape(*bus, channels);
      }
      if (options.protocol_fsm) {
        for (const Channel* ch : channels) check_channel_fsm(*bus, *ch);
      }
      if (options.rate_feasibility) check_rates(*bus, channels);
    }

    count("check.diagnostics",
          static_cast<std::uint64_t>(report.diagnostics.size()));
    count("check.errors", static_cast<std::uint64_t>(report.errors()));
    count("check.warnings", static_cast<std::uint64_t>(report.warnings()));
  }
};

}  // namespace

CheckReport run_checks(const System& system, const CheckOptions& options,
                       const obs::ObsContext& obs) {
  Checker checker{system, options, obs, {}};
  checker.run();
  return std::move(checker.report);
}

std::map<std::string, long long> snapshot_compute_cycles(
    const System& system,
    const std::map<std::string, long long>& overrides) {
  estimate::PerformanceEstimator estimator(system);
  for (const auto& [process, cycles] : overrides) {
    estimator.set_compute_cycles(process, cycles);
  }
  std::map<std::string, long long> snapshot;
  for (const auto& process : system.processes()) {
    snapshot[process->name] = estimator.compute_cycles(process->name);
  }
  return snapshot;
}

}  // namespace ifsyn::check
