// ifsyn/check/trace_miner.hpp
//
// Trace-mined protocol conformance (DESIGN.md Sec. 16): the dynamic half
// of the checker. Where check/protocol_fsm abstracts the *generated
// procedures* into event FSMs, this pass consumes the kernel's committed
// signal trace of a refined system actually running, segments it per
// bus/channel transaction, infers the observed protocol automaton, and
// diffs it against the statically extracted one.
//
// The two sides close a loop that each catches bugs the other cannot:
// the static FSM sees code the run never reached; the trace sees what
// the engines (VM, optimizer, native codegen) really committed to the
// wires. A disagreement means either protocol generation emitted
// something it did not claim, or an execution engine skewed the
// waveform -- both are bugs this report turns into test failures.
//
// Algorithm (Sec. 16 has the worked examples):
//
//   1. Lane split: each refined shared bus is one lane (its record
//      signal); a hardwired-port group contributes one lane per channel
//      (its dedicated signal).
//   2. Expected-edge replay: per transaction, the channel's requester and
//      server FsmEvent sequences (check/protocol_fsm extraction) are
//      replayed under the timed strobe-discipline semantics of
//      compose_timed, against the lane's carried wire state. Every
//      control/ID assign that *changes* a wire becomes an expected edge
//      with a relative commit time (the kernel traces changes only);
//      DATA drives become optional edges (a repeated word commits
//      nothing).
//   3. Segmentation: transactions are serialized on a lane (single
//      master, or BusLock arbitration); the channel of the next
//      transaction is identified by the effective ID at its first
//      instant -- ID edges in that instant applied first, the carried
//      value otherwise (back-to-back transactions on one channel leave
//      ID unchanged, hence un-traced).
//   4. Matching: observed edges are consumed against expected edges in
//      order; the first disagreement on a lane is classified and mining
//      of that lane stops (downstream edges of a broken transaction are
//      cascade noise, not independent findings).
//
// Lanes whose FSMs cannot be extracted, and shared buses with multiple
// un-arbitrated masters (whose transactions legitimately interleave, so
// serialized mining would be unsound), are skipped and reported as such
// rather than guessed at.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/scoped_timer.hpp"
#include "sim/kernel.hpp"
#include "spec/system.hpp"

namespace ifsyn::check {

/// Classification of one mined-vs-static disagreement.
enum class DisagreementKind {
  kMissingEvent,    ///< an expected wire edge never appeared on the trace
  kReorderedEdge,   ///< both edges appear, in the wrong order
  kExtraToggle,     ///< a wire edge the static automaton never produces
  kDelayDrift,      ///< right edge, wrong simulation time
  kUnattributable,  ///< traffic whose ID matches no channel of the bus
};

const char* disagreement_kind_name(DisagreementKind kind);

/// One disagreement, with wire-level provenance: the simulation instant
/// (time, delta) and the signal field it is anchored to.
struct Disagreement {
  DisagreementKind kind = DisagreementKind::kMissingEvent;
  std::string bus;      ///< bus group name
  std::string channel;  ///< attributed channel; empty when unattributable
  std::uint64_t time = 0;   ///< observed instant (or last instant seen)
  std::uint64_t delta = 0;  ///< delta of the anchoring trace entry
  std::string signal;   ///< wire, e.g. "B.START"
  std::string detail;   ///< human-readable expected-vs-observed story

  std::string to_string() const;
};

/// A lane the miner declined to mine, and why (extraction bailed,
/// un-arbitrated multi-master sharing, ...). Not a disagreement: the
/// static checker reports the underlying condition on its own terms.
struct SkippedLane {
  std::string bus;
  std::string reason;
};

struct ConformanceReport {
  std::vector<Disagreement> disagreements;
  std::vector<SkippedLane> skipped;
  long long transactions_mined = 0;
  long long edges_checked = 0;
  int lanes_mined = 0;

  bool clean() const { return disagreements.empty(); }
  /// One line per disagreement, then one per skipped lane.
  std::string to_string() const;
};

/// Mine `trace` (a Kernel::trace() of a simulated run of `system`) and
/// diff the observed automaton of every refined bus against the static
/// extraction. Buses protocol generation has not refined are ignored.
/// Exports "check.conform.*" counters when `obs` carries a registry.
ConformanceReport mine_and_diff(const spec::System& system,
                                const std::vector<sim::TraceEntry>& trace,
                                const obs::ObsContext& obs = {});

}  // namespace ifsyn::check
