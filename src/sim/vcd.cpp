#include "sim/vcd.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace ifsyn::sim {

namespace {

/// VCD identifier codes: printable ASCII 33..126, multi-character when the
/// signal count exceeds one character's range.
std::string vcd_id(int index) {
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index = index / 94 - 1;
  } while (index >= 0);
  return id;
}

void emit_value(std::ostringstream& os, const BitVector& value,
                const std::string& id) {
  if (value.width() == 1) {
    os << (value.bit(0) ? '1' : '0') << id << "\n";
  } else {
    os << "b" << value.to_binary_string() << " " << id << "\n";
  }
}

}  // namespace

std::string trace_to_vcd(const Kernel& kernel, const VcdOptions& options) {
  std::ostringstream os;
  os << "$date ifsyn simulation $end\n";
  os << "$version ifsyn protocol-generation trace $end\n";
  os << "$timescale " << options.timescale << " $end\n";
  os << "$scope module " << options.scope << " $end\n";

  const std::vector<FieldKey>& keys = kernel.signal_keys();
  std::map<FieldKey, std::string> ids;
  int index = 0;
  for (const FieldKey& key : keys) {
    const int width = kernel.signal_value(key).width();
    const std::string id = vcd_id(index++);
    ids[key] = id;
    std::string name = key.field.empty() ? key.signal
                                         : key.signal + "." + key.field;
    os << "$var wire " << width << " " << id << " " << name;
    if (width > 1) os << " [" << width - 1 << ":0]";
    os << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  // Time 0: declared initial values.
  os << "#0\n$dumpvars\n";
  std::ostringstream init;
  for (const FieldKey& key : keys) {
    emit_value(init, kernel.initial_value(key), ids[key]);
  }
  os << init.str() << "$end\n";

  // Changes, collapsing deltas onto their instant (last value wins, which
  // the recorded trace already guarantees per commit; multiple commits in
  // one instant simply re-emit, and viewers keep the last).
  std::uint64_t current_time = 0;
  bool emitted_time = true;  // #0 block is open
  for (const TraceEntry& entry : kernel.trace()) {
    if (entry.time != current_time || !emitted_time) {
      os << "#" << entry.time << "\n";
      current_time = entry.time;
      emitted_time = true;
    }
    emit_value(os, entry.value, ids[entry.key]);
  }
  return os.str();
}

Status write_vcd(const Kernel& kernel, const std::string& path,
                 const VcdOptions& options) {
  std::ofstream out(path);
  if (!out) return invalid_argument("cannot write VCD file: " + path);
  out << trace_to_vcd(kernel, options);
  if (!out.good()) return invalid_argument("error writing VCD file: " + path);
  return Status::ok();
}

}  // namespace ifsyn::sim
