// ifsyn/sim/bytecode/optimizer.hpp
//
// Post-compile optimization pass over compiled bytecode: a set of
// declarative pattern-match-and-rewrite rules (matchers.hpp) that collapse
// recognized instruction sequences into superinstructions.
//
// Two rule families:
//   - Bulk transfer: the per-word DATA-slice sequences that P3's generated
//     Send/Receive procedures compile to become kBulkSend / kBulkRecv —
//     one dispatch moves a whole word (and, on the send side, raises the
//     strobe). The loop skeleton (kLoopTest/kLoopInc) and every kernel
//     suspension (wait for/on/until, bus ops) are left in place, so the
//     optimized program yields to the kernel at exactly the original
//     protocol-visible points: delta-cycle timing, trace events and bus
//     hold/wait accounting are byte-identical by construction.
//   - Peepholes: compare+branch -> kCmpBranch, load/binary/store chains ->
//     kBinaryFused three-address forms, constant operands folded into
//     kWaitForImm / kSignalAssignImm / kSliceImm.
//
// Soundness rests on two facts (argued in DESIGN.md Sec. 14): every
// superinstruction performs the same architectural writes and raises the
// same errors as its source sequence, and the register writes it elides
// are dead by the compiler's write-before-read discipline (each statement
// writes a register before any instruction reads it, and no register is
// live across a suspension). Matches whose interior contains a jump
// target are rejected, so control flow never lands mid-superinstruction.
//
// Every superinstruction carries the dispatch count of the sequence it
// replaced; the VM charges that weight to sim.vm.executed_ops, keeping
// the deterministic metrics byte-identical across IFSYN_SIM_OPT=0/1.
#pragma once

#include "sim/bytecode/program.hpp"

namespace ifsyn::sim::bytecode {

/// Optimization level selected by the IFSYN_SIM_OPT environment variable:
/// "0" disables the pass (compiler output runs verbatim), anything else —
/// including unset — enables it. Read per call, like engine_from_env.
OptLevel opt_level_from_env();

/// Rewrite `cs` in place at `level`, recording opt_level, opt stats and
/// optimized_instructions on the artifact. kNone only stamps the
/// bookkeeping fields; the code is untouched.
void optimize(CompiledSystem& cs, OptLevel level);

}  // namespace ifsyn::sim::bytecode
