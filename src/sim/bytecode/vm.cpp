// ifsyn/sim/bytecode/vm.cpp
//
// Dispatch loop and operand semantics. Every operation reproduces the AST
// interpreter's observable behavior exactly (same Scalar arithmetic via
// sim/scalar.hpp, same evaluation order baked in by the compiler, same
// error messages via kTrap) — the differential fuzz harness diffs the two
// engines' variable state and traces after every run.

#include "sim/bytecode/vm.hpp"

#include <chrono>
#include <functional>
#include <span>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/bytecode/compiler.hpp"
#include "sim/bytecode/optimizer.hpp"
#include "sim/bytecode/program_cache.hpp"
#include "util/assert.hpp"

namespace ifsyn::sim::bytecode {

Vm::Vm(const spec::System& system, Kernel& kernel)
    : system_(system), kernel_(kernel) {}

void Vm::setup() {
  obs::MetricsRegistry* metrics = kernel_.obs().metrics;

  const OptLevel level = opt_level_from_env();
  const auto t0 = std::chrono::steady_clock::now();
  if (ProgramCache* cache = process_cache()) {
    // The key incorporates the optimization level: a process serving
    // mixed IFSYN_SIM_OPT requests keeps one artifact per level and can
    // never hand an optimized program to a reference-engine run.
    compiled_ = cache->get_or_compile(
        system_cache_key(system_, level),
        [this, level] { return compile(system_, kernel_, level); });
  } else {
    compiled_ = std::make_shared<const CompiledSystem>(
        compile(system_, kernel_, level));
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (metrics) {
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    metrics->counter("sim.vm.compile_us", obs::Determinism::kWallClock)
        .add(us);
    // Deterministic program-shape metrics count materializations, not
    // actual compiles, so a request's report reads the same whether its
    // artifact came from the cache or a fresh compile; the cache's own
    // hit/miss counters carry the load-dependent story.
    metrics->counter("sim.vm.compiles").add(1);
    metrics->counter("sim.vm.compiled_instructions")
        .add(compiled_->total_instructions);
    executed_ops_ = &metrics->counter("sim.vm.executed_ops");
    // Optimizer introspection. All wall-clock-classed: they vary with
    // IFSYN_SIM_OPT, and the deterministic report tables must stay
    // byte-identical across levels (executed_ops does, via weights).
    metrics->gauge("sim.vm.opt.level", obs::Determinism::kWallClock)
        .set(static_cast<std::int64_t>(compiled_->opt_level));
    metrics
        ->counter("sim.vm.opt.patterns_matched", obs::Determinism::kWallClock)
        .add(compiled_->opt.patterns_matched);
    metrics
        ->counter("sim.vm.opt.instructions_eliminated",
                  obs::Determinism::kWallClock)
        .add(compiled_->opt.instructions_eliminated);
    bulk_ops_ = &metrics->counter("sim.vm.opt.bulk_ops",
                                  obs::Determinism::kWallClock);
  }

  globals_.clear();
  globals_.reserve(compiled_->global_slots.size());
  for (const auto& g : compiled_->global_slots) {
    globals_.push_back(g.init ? *g.init : spec::Value(g.type));
  }

  for (const auto& prog : compiled_->processes) {
    ExecState& st = states_.emplace_back();
    st.vm = this;
    st.prog = &prog;
    kernel_.add_process(
        prog.process_name,
        [this, &st]() {
          reset(st);
          return run_process(st);
        },
        prog.restarts);
  }
}

const spec::Value& Vm::value_of(const std::string& variable) const {
  auto it = compiled_->global_index.find(variable);
  IFSYN_ASSERT_MSG(it != compiled_->global_index.end(),
                   "unknown variable " << variable);
  return globals_[it->second];
}

void Vm::set_value(const std::string& variable, spec::Value value) {
  auto it = compiled_->global_index.find(variable);
  IFSYN_ASSERT_MSG(it != compiled_->global_index.end(),
                   "unknown variable " << variable);
  IFSYN_ASSERT_MSG(globals_[it->second].type() == value.type(),
                   "type mismatch setting " << variable);
  globals_[it->second] = std::move(value);
}

std::vector<spec::Value> Vm::make_frame(const FrameLayout& layout) const {
  std::vector<spec::Value> frame;
  frame.reserve(layout.slots.size());
  for (const auto& s : layout.slots) {
    frame.push_back(s.init ? *s.init : spec::Value(s.type));
  }
  return frame;
}

void Vm::reset(ExecState& st) {
  st.pc = st.prog->entry;
  st.call_stack.clear();
  st.frame.clear();
  st.ret_frame.clear();
  st.frame_layout = 0;
  st.ret_frame_layout = 0;
  st.frame_pool.resize(st.prog->frame_layouts.size());
  st.proc_frame = make_frame(st.prog->frame_layouts[0]);
  st.regs.assign(st.prog->num_regs, Scalar{});
}

std::vector<spec::Value> Vm::acquire_frame(ExecState& st,
                                           std::uint32_t layout_index) const {
  auto& pool = st.frame_pool[layout_index];
  const FrameLayout& layout = st.prog->frame_layouts[layout_index];
  if (pool.empty()) return make_frame(layout);
  // Pooled frames always come from the same layout, so sizes match; the
  // per-slot reinit reuses the retired frame's storage.
  std::vector<spec::Value> frame = std::move(pool.back());
  pool.pop_back();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const SlotInfo& s = layout.slots[i];
    if (s.init) {
      frame[i] = *s.init;
    } else {
      frame[i].reinit(s.type);
    }
  }
  return frame;
}

spec::Value& Vm::slot(ExecState& st, Space space, std::int32_t index) {
  switch (space) {
    case Space::kGlobal: return globals_[static_cast<std::size_t>(index)];
    case Space::kProcess:
      return st.proc_frame[static_cast<std::size_t>(index)];
    case Space::kFrame: return st.frame[static_cast<std::size_t>(index)];
  }
  IFSYN_ASSERT(false);
  return globals_[0];
}

void Vm::do_call(ExecState& st, const CallSite& cs) {
  st.call_stack.push_back(
      CallRecord{st.pc + 1, st.frame_layout, std::move(st.frame)});
  st.frame = acquire_frame(st, cs.frame_layout);
  st.frame_layout = cs.frame_layout;
  for (const auto& a : cs.in_args) {
    spec::Value& dst = st.frame[a.slot];
    const Scalar& s = st.regs[a.reg];
    // Same in-place narrow-store fast path as kStoreVar.
    if (a.width <= 64 && s.bits.width() <= 64 &&
        dst.type().scalar_width() == a.width) {
      dst.scalar_bits().assign_uint(a.width,
                                    static_cast<std::uint64_t>(s.to_int()));
    } else {
      dst.set(extend(s, a.width));
    }
  }
  st.pc = cs.entry_pc;
}

void Vm::do_return(ExecState& st) {
  CallRecord& top = st.call_stack.back();
  // The previously returned frame is dead once a newer return replaces
  // it; recycle its storage for the next do_call on the same layout.
  if (!st.ret_frame.empty()) {
    st.frame_pool[st.ret_frame_layout].push_back(std::move(st.ret_frame));
  }
  st.ret_frame = std::move(st.frame);
  st.ret_frame_layout = st.frame_layout;
  st.frame = std::move(top.frame);
  st.frame_layout = top.layout;
  st.pc = top.return_pc;
  st.call_stack.pop_back();
}

namespace {

inline std::uint64_t low_mask(int width) {
  return width >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << width) - 1;
}

/// Integer fast path for kBinary on operands of width <= 64: produces the
/// identical result to eval_binary_op (sim/scalar.hpp) directly in the
/// destination register, with no BitVector temporaries. Returns false for
/// the cases that must keep the generic path (wide operands, concat, and
/// division by zero — the generic path owns the exact error message).
/// The differential fuzz harness holds the two paths to bit-equality.
inline bool fast_binary(spec::BinaryOp op, const Scalar& a, const Scalar& b,
                        Scalar& d) {
  using spec::BinaryOp;
  const int aw = a.bits.width(), bw = b.bits.width();
  if (aw > 64 || bw > 64) return false;
  const auto set_int = [&d](std::int64_t v) {
    d.bits.assign_uint(64, static_cast<std::uint64_t>(v));
    d.is_signed = true;
  };
  const auto set_bool = [&d](bool v) {
    d.bits.assign_uint(1, v ? 1 : 0);
    d.is_signed = false;
  };
  // `d` may alias `a` or `b`; every case reads its operands fully before
  // the set_* call writes the destination.
  const int mw = std::max(aw, bw);
  switch (op) {
    case BinaryOp::kAdd: set_int(a.to_int() + b.to_int()); return true;
    case BinaryOp::kSub: set_int(a.to_int() - b.to_int()); return true;
    case BinaryOp::kMul: set_int(a.to_int() * b.to_int()); return true;
    case BinaryOp::kDiv: {
      const std::int64_t y = b.to_int();
      if (y == 0) return false;
      set_int(a.to_int() / y);
      return true;
    }
    case BinaryOp::kMod: {
      const std::int64_t y = b.to_int();
      if (y == 0) return false;
      set_int(a.to_int() % y);
      return true;
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
    case BinaryOp::kXor: {
      // to_int() & mask == the sign/zero-extension `extend` produces.
      const std::uint64_t m = low_mask(mw);
      const std::uint64_t av = static_cast<std::uint64_t>(a.to_int()) & m;
      const std::uint64_t bv = static_cast<std::uint64_t>(b.to_int()) & m;
      const std::uint64_t v = op == BinaryOp::kAnd   ? (av & bv)
                              : op == BinaryOp::kOr  ? (av | bv)
                                                     : (av ^ bv);
      d.bits.assign_uint(mw, v);
      d.is_signed = false;
      return true;
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      const std::uint64_t m = low_mask(mw);
      const bool eq = ((static_cast<std::uint64_t>(a.to_int()) & m) ==
                       (static_cast<std::uint64_t>(b.to_int()) & m));
      set_bool(op == BinaryOp::kEq ? eq : !eq);
      return true;
    }
    case BinaryOp::kLt:
      set_bool(a.is_signed || b.is_signed
                   ? a.to_int() < b.to_int()
                   : a.bits.to_uint() < b.bits.to_uint());
      return true;
    case BinaryOp::kLe:
      set_bool(a.is_signed || b.is_signed
                   ? a.to_int() <= b.to_int()
                   : a.bits.to_uint() <= b.bits.to_uint());
      return true;
    case BinaryOp::kGt:
      set_bool(a.is_signed || b.is_signed
                   ? a.to_int() > b.to_int()
                   : a.bits.to_uint() > b.bits.to_uint());
      return true;
    case BinaryOp::kGe:
      set_bool(a.is_signed || b.is_signed
                   ? a.to_int() >= b.to_int()
                   : a.bits.to_uint() >= b.bits.to_uint());
      return true;
    case BinaryOp::kLogAnd:
      set_bool(!a.bits.is_zero() && !b.bits.is_zero());
      return true;
    case BinaryOp::kLogOr:
      set_bool(!a.bits.is_zero() || !b.bits.is_zero());
      return true;
    case BinaryOp::kConcat:
      return false;
  }
  return false;
}

}  // namespace

// Force-inlined into both dispatch loops (run_process and eval_cond):
// one out-of-line call per executed instruction is measurable overhead at
// the ~10ns/op the VM otherwise runs at.
__attribute__((always_inline)) inline void Vm::exec_op(ExecState& st,
                                                       const Instr& in) {
  std::vector<Scalar>& r = st.regs;
  switch (in.op) {
    case Op::kConst:
      r[in.dst] = st.prog->consts[static_cast<std::size_t>(in.a)];
      break;
    case Op::kLoadVar: {
      const spec::Value& v = slot(st, static_cast<Space>(in.aux), in.a);
      // Copy-assign into the register in place (no Scalar temporary) so
      // the register's BitVector storage is reused across iterations.
      r[in.dst].bits = v.get();
      r[in.dst].is_signed = v.type().is_signed();
      break;
    }
    case Op::kLoadArray: {
      const std::int64_t index = r[in.b].to_int();
      const spec::Value& v = slot(st, static_cast<Space>(in.aux), in.a);
      r[in.dst].bits = v.at(static_cast<int>(index));
      r[in.dst].is_signed = v.type().is_signed();
      break;
    }
    case Op::kLoadSignal:
      r[in.dst].bits = kernel_.signal_value(static_cast<SignalId>(in.a));
      r[in.dst].is_signed = false;
      break;
    case Op::kUnary: {
      const auto uop = static_cast<spec::UnaryOp>(in.aux);
      const Scalar& a = r[in.a];
      if (a.bits.width() <= 64) {
        // In-place small-width path; operands read before the aliased
        // destination (dst may equal a) is written.
        Scalar& d = r[in.dst];
        if (uop == spec::UnaryOp::kNot) {
          const int w = a.bits.width();
          const std::uint64_t v = ~a.bits.to_uint();
          const bool sgn = a.is_signed;
          d.bits.assign_uint(w, v);
          d.is_signed = sgn;
        } else if (uop == spec::UnaryOp::kNeg) {
          const std::int64_t x = -a.to_int();
          d.bits.assign_uint(64, static_cast<std::uint64_t>(x));
          d.is_signed = true;
        } else {
          const bool z = a.bits.is_zero();
          d.bits.assign_uint(1, z ? 1 : 0);
          d.is_signed = false;
        }
        break;
      }
      r[in.dst] = eval_unary_op(uop, a);
      break;
    }
    case Op::kBinary: {
      const auto op = static_cast<spec::BinaryOp>(in.aux);
      if (!fast_binary(op, r[in.a], r[in.b], r[in.dst])) {
        r[in.dst] = eval_binary_op(op, r[in.a], r[in.b]);
      }
      break;
    }
    case Op::kSlice: {
      const int hi = static_cast<int>(r[in.b].to_int());
      const int lo = static_cast<int>(r[in.c].to_int());
      r[in.dst] = Scalar{r[in.a].bits.slice(hi, lo), false};
      break;
    }
    case Op::kToInt: {
      // to_int() raises the same width asserts as the generic path.
      const std::int64_t x = r[in.a].to_int();
      r[in.dst].bits.assign_uint(64, static_cast<std::uint64_t>(x));
      r[in.dst].is_signed = true;
      break;
    }
    case Op::kTrap:
      IFSYN_ASSERT_MSG(false,
                       st.prog->traps[static_cast<std::size_t>(in.a)]);
      break;
    case Op::kStoreVar: {
      spec::Value& v = slot(st, static_cast<Space>(in.aux), in.a);
      const Scalar& s = r[in.b];
      // In-place narrow store: (uint64)to_int() masked to the target width
      // is exactly the sign/zero-extension (or truncation) extend()
      // produces, without the BitVector temporary.
      if (in.c <= 64 && s.bits.width() <= 64 &&
          v.type().scalar_width() == in.c) {
        v.scalar_bits().assign_uint(in.c,
                                    static_cast<std::uint64_t>(s.to_int()));
      } else {
        v.set(extend(s, in.c));
      }
      break;
    }
    case Op::kStoreArrayElem: {
      const int index = static_cast<int>(r[in.b].to_int());
      spec::Value& v = slot(st, static_cast<Space>(in.aux), in.a);
      v.set_at(index, extend(r[in.c], in.d));
      break;
    }
    case Op::kStoreSlice: {
      spec::Value& v = slot(st, static_cast<Space>(in.aux), in.a);
      BitVector current = v.get();
      const int hi = static_cast<int>(r[in.b].to_int());
      const int lo = static_cast<int>(r[in.c].to_int());
      current.set_slice(hi, lo, extend(r[in.dst], hi - lo + 1));
      v.set(std::move(current));
      break;
    }
    case Op::kStoreArraySlice: {
      const int index = static_cast<int>(r[in.b].to_int());
      spec::Value& v = slot(st, static_cast<Space>(in.aux), in.a);
      BitVector elem = v.at(index);
      const int hi = static_cast<int>(r[in.c].to_int());
      const int lo = static_cast<int>(r[in.d].to_int());
      elem.set_slice(hi, lo, extend(r[in.dst], hi - lo + 1));
      v.set_at(index, std::move(elem));
      break;
    }
    case Op::kSaveVar:
      slot(st, static_cast<Space>(in.aux), in.a) =
          slot(st, static_cast<Space>(in.aux), in.b);
      break;
    case Op::kRestoreVar:
      slot(st, static_cast<Space>(in.aux), in.a) =
          std::move(slot(st, static_cast<Space>(in.aux), in.b));
      break;
    case Op::kSignalAssign:
      kernel_.schedule_signal(static_cast<SignalId>(in.a),
                              extend(r[in.c], in.b));
      break;
    case Op::kLoadRet: {
      const spec::Value& v = st.ret_frame[static_cast<std::size_t>(in.a)];
      r[in.dst].bits = v.get();
      r[in.dst].is_signed = v.type().is_signed();
      break;
    }
    case Op::kReleaseBus:
      kernel_.release_bus(static_cast<BusId>(in.a));
      break;
    case Op::kSignalAssignImm:
      // kConst + kSignalAssign; extend() sees the identical Scalar the
      // register copy held, so the scheduled bits are unchanged.
      kernel_.schedule_signal(
          static_cast<SignalId>(in.a),
          extend(st.prog->consts[static_cast<std::size_t>(in.c)], in.b));
      break;
    case Op::kSliceImm: {
      // kConst + kConst + kSlice. to_int() runs on the pool entries the
      // registers would have copied — same values, same width asserts.
      const std::vector<Scalar>& consts = st.prog->consts;
      const int hi = static_cast<int>(
          consts[static_cast<std::size_t>(in.b)].to_int());
      const int lo = static_cast<int>(
          consts[static_cast<std::size_t>(in.c)].to_int());
      r[in.dst] = Scalar{r[in.a].bits.slice(hi, lo), false};
      break;
    }
    case Op::kBinaryFused: {
      // Operand loads + kBinary (+ optional kStoreVar) in one dispatch.
      // Each stage reproduces the corresponding exec_op case verbatim;
      // only the scratch-register writes of the operand loads are elided
      // (dead by the compiler's write-before-read discipline).
      const FusedBinary& f =
          st.prog->fusions[static_cast<std::size_t>(in.a)];
      const auto load = [&](const FusedOperand& o, Scalar& out) {
        switch (o.kind) {
          case FusedOperand::Kind::kSlot: {
            const spec::Value& v = slot(st, o.space, o.index);
            out.bits = v.get();
            out.is_signed = v.type().is_signed();
            break;
          }
          case FusedOperand::Kind::kConst:
            out = st.prog->consts[static_cast<std::size_t>(o.index)];
            break;
          case FusedOperand::Kind::kSignal:
            out.bits = kernel_.signal_value(static_cast<SignalId>(o.index));
            out.is_signed = false;
            break;
        }
      };
      Scalar lhs, rhs;
      load(f.lhs, lhs);
      load(f.rhs, rhs);
      Scalar& d = r[f.dst_reg];
      if (!fast_binary(f.op, lhs, rhs, d)) d = eval_binary_op(f.op, lhs, rhs);
      if (f.has_store) {
        spec::Value& v = slot(st, f.store_space, f.store_slot);
        if (f.store_width <= 64 && d.bits.width() <= 64 &&
            v.type().scalar_width() == f.store_width) {
          v.scalar_bits().assign_uint(
              f.store_width, static_cast<std::uint64_t>(d.to_int()));
        } else {
          v.set(extend(d, f.store_width));
        }
      }
      break;
    }
    default:
      // Control flow and suspensions are handled in run_process.
      IFSYN_ASSERT_MSG(false, "unexpected opcode in exec_op");
  }
}

void Vm::exec_bulk_send(ExecState& st, const BulkTransfer& bt) {
  // Word index and slice bounds: the replaced kConst/kLoadVar/kBinary
  // chain ran kMul/kSub through fast_binary's 64-bit signed arithmetic
  // (or eval_binary_op's identical make_int path), so plain int64 math on
  // the prefolded constants is bit-exact. to_int() on the loaded index
  // raises the same width asserts the register load's consumer did.
  const spec::Value& jv = slot(st, bt.j_space, bt.j_slot);
  const BitVector& jb = jv.get();
  const std::int64_t j =
      jb.width() == 0
          ? 0
          : (jv.type().is_signed()
                 ? jb.to_int()
                 : static_cast<std::int64_t>(jb.to_uint()));
  const int hi = static_cast<int>(bt.w_hi * j - bt.k_hi);
  const int lo = static_cast<int>(bt.w_lo * (j - bt.k_lo));
  const spec::Value& sv = slot(st, bt.var_space, bt.var_slot);
  const Scalar word{sv.get().slice(hi, lo), false};
  kernel_.schedule_signal(bt.data_signal, extend(word, bt.data_width));
  switch (bt.strobe) {
    case BulkTransfer::Strobe::kNone:
      break;
    case BulkTransfer::Strobe::kConst:
      kernel_.schedule_signal(
          bt.strobe_signal,
          extend(st.prog->consts[static_cast<std::size_t>(bt.strobe_const)],
                 bt.strobe_width));
      break;
    case BulkTransfer::Strobe::kParity: {
      const spec::Value& j2v = slot(st, bt.j2_space, bt.j2_slot);
      const BitVector& j2b = j2v.get();
      const std::int64_t j2 =
          j2b.width() == 0
              ? 0
              : (j2v.type().is_signed()
                     ? j2b.to_int()
                     : static_cast<std::int64_t>(j2b.to_uint()));
      // par_mod != 0 was checked at match time (mod-by-zero code stays
      // on the generic path for its lazy error).
      const Scalar parity = make_int(j2 % bt.par_mod);
      kernel_.schedule_signal(bt.strobe_signal,
                              extend(parity, bt.strobe_width));
      break;
    }
  }
}

void Vm::exec_bulk_recv(ExecState& st, const BulkTransfer& bt) {
  // kLoadSignal + index arithmetic + kStoreSlice, one dispatch.
  Scalar data;
  data.bits = kernel_.signal_value(bt.data_signal);
  data.is_signed = false;
  const spec::Value& jv = slot(st, bt.j_space, bt.j_slot);
  const BitVector& jb = jv.get();
  const std::int64_t j =
      jb.width() == 0
          ? 0
          : (jv.type().is_signed()
                 ? jb.to_int()
                 : static_cast<std::int64_t>(jb.to_uint()));
  const int hi = static_cast<int>(bt.w_hi * j - bt.k_hi);
  const int lo = static_cast<int>(bt.w_lo * (j - bt.k_lo));
  spec::Value& v = slot(st, bt.var_space, bt.var_slot);
  BitVector current = v.get();
  current.set_slice(hi, lo, extend(data, hi - lo + 1));
  v.set(std::move(current));
}

bool Vm::eval_cond(ExecState& st, const CondProgram& cp) {
  // Condition programs are loop-free expression code; they reuse the
  // process's register file (no register is live across a suspension, and
  // a parked process executes nothing else).
  const std::vector<Instr>& code = st.prog->cond_code;
  for (std::uint32_t pc = cp.start; pc < cp.start + cp.count; ++pc) {
    exec_op(st, code[pc]);
  }
  // Charge the pre-optimization instruction count: executed_ops is a
  // deterministic report metric and must read identically whether or not
  // the optimizer shrank this condition body.
  if (executed_ops_) executed_ops_->add(cp.ref_ops);
  return st.regs[cp.result_reg].truthy();
}

void Vm::flush_ops(std::uint64_t& ops) {
  if (executed_ops_ && ops != 0) executed_ops_->add(ops);
  ops = 0;
}

Vm::SuspendKind Vm::run_until_suspend(ExecState& st, std::uint64_t& ops,
                                      std::uint64_t& arg) {
  const ProcProgram& prog = *st.prog;
  const Instr* code = prog.code.data();
  // pc lives in a machine register for the whole burst; it is written
  // back to st.pc only at calls (which read it) and at suspension points.
  std::uint32_t pc = st.pc;
  for (;;) {
    const Instr& in = code[pc];
    ++ops;
    switch (in.op) {
      case Op::kJump:
        pc = static_cast<std::uint32_t>(in.a);
        break;
      case Op::kJumpIfFalse:
        pc = st.regs[in.a].truthy() ? pc + 1
                                    : static_cast<std::uint32_t>(in.b);
        break;
      case Op::kLoopTest: {
        const Space space = static_cast<Space>(in.aux);
        const std::int64_t counter = slot(st, space, in.a).get().to_int();
        const std::int64_t limit = slot(st, space, in.b).get().to_int();
        if (counter > limit) {
          pc = static_cast<std::uint32_t>(in.c);
          break;
        }
        // Full Value replacement of the loop variable, like the AST
        // engine's insert_or_assign: the slot's runtime type becomes
        // integer(32) for the loop's extent. From the second iteration on
        // the slot already is integer(32), so only the payload changes.
        static const spec::Type kInt32 = spec::Type::integer();
        spec::Value& v = slot(st, space, in.d);
        if (v.type() == kInt32) {
          v.scalar_bits().assign_uint(32,
                                      static_cast<std::uint64_t>(counter));
        } else {
          v = spec::Value::integer(counter);
        }
        ++pc;
        break;
      }
      case Op::kLoopInc: {
        BitVector& counter =
            slot(st, static_cast<Space>(in.aux), in.a).scalar_bits();
        counter.assign_uint(
            64, static_cast<std::uint64_t>(counter.to_int() + 1));
        pc = static_cast<std::uint32_t>(in.b);
        break;
      }
      case Op::kCall:
        st.pc = pc;
        do_call(st, prog.callsites[static_cast<std::size_t>(in.a)]);
        pc = st.pc;
        break;
      case Op::kReturn:
        do_return(st);
        pc = st.pc;
        break;
      case Op::kHalt:
        st.pc = pc;
        return SuspendKind::kHalt;
      case Op::kWaitFor: {
        const std::int64_t cycles = st.regs[in.a].to_int();
        IFSYN_ASSERT_MSG(cycles >= 0, "negative wait duration");
        st.pc = pc + 1;
        arg = static_cast<std::uint64_t>(cycles);
        return SuspendKind::kWaitFor;
      }
      case Op::kWaitOn:
        st.pc = pc + 1;
        arg = static_cast<std::uint64_t>(in.a);
        return SuspendKind::kWaitOn;
      case Op::kWaitUntil:
        st.pc = pc + 1;
        arg = static_cast<std::uint64_t>(in.a);
        return SuspendKind::kWaitUntil;
      case Op::kAcquireBus:
        st.pc = pc + 1;
        arg = static_cast<std::uint64_t>(in.a);
        return SuspendKind::kAcquireBus;
      // Superinstructions charge `ops` with the dispatch count of the
      // sequence they replaced (the ++ops above contributed 1), keeping
      // sim.vm.executed_ops byte-identical to the unoptimized VM.
      case Op::kCmpBranch: {
        const auto bo = static_cast<spec::BinaryOp>(in.aux);
        std::vector<Scalar>& r = st.regs;
        if (!fast_binary(bo, r[in.a], r[in.b], r[in.dst])) {
          r[in.dst] = eval_binary_op(bo, r[in.a], r[in.b]);
        }
        ++ops;  // kBinary + kJumpIfFalse
        pc = r[in.dst].truthy() ? pc + 1 : static_cast<std::uint32_t>(in.c);
        break;
      }
      case Op::kWaitForImm: {
        // to_int() on the pool entry raises the same asserts the
        // replaced kToInt did on its register copy.
        const std::int64_t cycles =
            prog.consts[static_cast<std::size_t>(in.a)].to_int();
        IFSYN_ASSERT_MSG(cycles >= 0, "negative wait duration");
        ops += 2;  // kConst + kToInt + kWaitFor
        st.pc = pc + 1;
        arg = static_cast<std::uint64_t>(cycles);
        return SuspendKind::kWaitFor;
      }
      case Op::kSignalAssignImm:
        exec_op(st, in);
        ++ops;  // kConst + kSignalAssign
        ++pc;
        break;
      case Op::kSliceImm:
        exec_op(st, in);
        ops += 2;  // kConst + kConst + kSlice
        ++pc;
        break;
      case Op::kBinaryFused:
        exec_op(st, in);
        ops += prog.fusions[static_cast<std::size_t>(in.a)].weight - 1;
        ++pc;
        break;
      case Op::kBulkSend: {
        const BulkTransfer& bt = prog.bulks[static_cast<std::size_t>(in.a)];
        exec_bulk_send(st, bt);
        ops += bt.weight - 1;
        if (bulk_ops_) bulk_ops_->add(1);
        ++pc;
        break;
      }
      case Op::kBulkRecv: {
        const BulkTransfer& bt = prog.bulks[static_cast<std::size_t>(in.a)];
        exec_bulk_recv(st, bt);
        ops += bt.weight - 1;
        if (bulk_ops_) bulk_ops_->add(1);
        ++pc;
        break;
      }
      default:
        exec_op(st, in);
        ++pc;
        break;
    }
  }
}

// NOTE on coroutine style: every co_await below awaits a *named local*,
// never a prvalue. GCC 12 miscompiles non-trivially-destructible
// temporaries inside co_await expressions (double destruction of the
// awaiter temporary); hoisting the operand into a local sidesteps the bug
// — same convention as sim/interpreter.cpp.
SimTask Vm::run_process(ExecState& st) {
  // Executed-op count batches in a local and flushes into the registry at
  // suspensions and at halt — no atomic RMW per instruction.
  std::uint64_t ops = 0;
  for (;;) {
    std::uint64_t arg = 0;
    const SuspendKind kind = run_until_suspend(st, ops, arg);
    flush_ops(ops);
    switch (kind) {
      case SuspendKind::kHalt:
        co_return;
      case SuspendKind::kWaitFor: {
        auto awaiter = kernel_.wait_for(arg);
        co_await awaiter;
        break;
      }
      case SuspendKind::kWaitOn: {
        const std::vector<SignalId>& ids =
            st.prog->wait_sets[static_cast<std::size_t>(arg)];
        // The span stays valid across the suspension: wait_sets lives in
        // the compiled program, which outlives every run.
        auto awaiter = kernel_.wait_on(std::span<const SignalId>(ids));
        co_await awaiter;
        break;
      }
      case SuspendKind::kWaitUntil: {
        const CondProgram& cp =
            st.prog->conds[static_cast<std::size_t>(arg)];
        // Two-pointer capture: fits std::function's small-buffer storage,
        // so re-arming the condition never heap-allocates.
        auto awaiter = kernel_.wait_until(
            [&st, &cp]() { return st.vm->eval_cond(st, cp); });
        co_await awaiter;
        break;
      }
      case SuspendKind::kAcquireBus: {
        auto awaiter = kernel_.acquire_bus(static_cast<BusId>(arg));
        co_await awaiter;
        break;
      }
    }
  }
}

}  // namespace ifsyn::sim::bytecode
