// ifsyn/sim/bytecode/program_cache.hpp
//
// Process-wide, size-bounded, concurrent store of compiled bytecode
// artifacts, so repeated simulations of the same system (the serve front
// end's workload, repeated co-simulations inside one exploration, warm
// batch passes) reuse one CompiledSystem instead of recompiling per run.
//
// Why sharing is sound: a CompiledSystem is self-contained (program.hpp)
// and immutable after compile; all mutable execution state lives in each
// Vm's ExecState. The embedded SignalId/BusId operands are dense ids the
// kernel assigns in declaration order, and declaration order is a pure
// function of the system — so any kernel set up (Interpreter::setup) for
// a system with the same cache key interns identical ids, and a cached
// program executes on it exactly as a fresh compile would. The
// differential test in tests/sim/program_cache_test.cpp holds the two
// paths to identical simulation results.
//
// Keys come from system_cache_key(): a content hash over the printed IR
// plus the kernel-relevant facts the printer does not render (bus lock
// declarations). Keyed lookups use the same compute-once shared_future
// idiom as explore::EstimationCache: concurrent requests for one key
// block on a single compile. A capacity bounds memory via LRU eviction;
// hit/miss/eviction counts land on caller-supplied obs counters.
//
// Nothing consults a cache by default — one-shot CLI runs compile exactly
// as before. A front end opts the whole process in with
// install_process_cache(); Vm::setup then routes compiles through it.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "sim/bytecode/program.hpp"
#include "spec/system.hpp"

namespace ifsyn::sim::bytecode {

/// Content hash identifying a system for artifact reuse: everything the
/// bytecode compiler and the kernel-id interning read, plus the
/// optimization level the artifact was (or would be) rewritten at — opt
/// and reference artifacts never collide in a shared store. Two systems
/// with equal keys produce byte-identical CompiledSystems.
std::string system_cache_key(const spec::System& system,
                             OptLevel level = OptLevel::kNone);

class ProgramCache {
 public:
  /// `capacity` > 0 bounds the entry count with LRU eviction; 0 =
  /// unbounded. Counters (optional, registry-owned, must outlive the
  /// cache) surface hits/misses/evictions.
  explicit ProgramCache(std::size_t capacity = 0,
                        obs::Counter* hits = nullptr,
                        obs::Counter* misses = nullptr,
                        obs::Counter* evictions = nullptr)
      : capacity_(capacity),
        hits_(hits ? hits : &own_hits_),
        misses_(misses ? misses : &own_misses_),
        evictions_(evictions ? evictions : &own_evictions_) {}

  /// Returns the artifact for `key`, compiling via `compile` on first
  /// request. `compile` must be pure with respect to the key. `was_hit`
  /// (optional) reports whether the artifact came from memory.
  std::shared_ptr<const CompiledSystem> get_or_compile(
      const std::string& key,
      const std::function<CompiledSystem()>& compile,
      bool* was_hit = nullptr);

  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  std::uint64_t evictions() const { return evictions_->value(); }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const CompiledSystem>> future;
    std::list<std::string>::iterator lru;
    std::uint64_t gen = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< most recently used first (bounded only)
  std::size_t capacity_ = 0;
  std::uint64_t gen_ = 0;
  obs::Counter own_hits_;
  obs::Counter own_misses_;
  obs::Counter own_evictions_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
};

/// Install `cache` as the process-wide bytecode store consulted by every
/// subsequent Vm::setup (nullptr uninstalls). The caller keeps ownership
/// and must keep the cache alive while installed. Not synchronized with
/// concurrently running setups — install once at front-end startup,
/// before workers spawn.
void install_process_cache(ProgramCache* cache);

/// The installed process-wide cache, or nullptr (the default: every Vm
/// compiles privately, the pre-serve behavior).
ProgramCache* process_cache();

}  // namespace ifsyn::sim::bytecode
