// ifsyn/sim/bytecode/compiler.cpp
//
// Spec -> register bytecode lowering. See compiler.hpp for the contract
// and DESIGN.md Sec. 10 for the lowering rules; the inline comments here
// focus on where the lowering must bend to match the AST engine's
// observable behavior exactly (evaluation order, lazy errors, for-loop
// variable shadowing).

#include "sim/bytecode/compiler.hpp"

#include <cstdint>
#include <string>
#include <utility>

#include "sim/bytecode/optimizer.hpp"
#include "util/assert.hpp"

namespace ifsyn::sim::bytecode {

namespace {

using spec::Block;
using spec::Expr;
using spec::Stmt;

class ProcessCompiler {
 public:
  ProcessCompiler(const spec::System& system, const Kernel& kernel,
                  const CompiledSystem& globals, const spec::Process& process)
      : system_(system), kernel_(kernel), globals_(globals),
        process_(process) {}

  ProcProgram compile() {
    prog_.process_name = process_.name;
    prog_.restarts = process_.restarts;

    // Frame layout 0: the process-local frame. Duplicate declarations keep
    // the first slot (matching the AST engine's map::emplace).
    FrameLayout layout0;
    std::map<std::string, int> names0;
    for (const auto& local : process_.locals) {
      layout0.slots.push_back(SlotInfo{local.type, local.init, local.name});
      names0.emplace(local.name,
                     static_cast<int>(layout0.slots.size()) - 1);
    }
    prog_.frame_layouts.push_back(std::move(layout0));
    process_names_ = names0;

    prog_.entry = 0;
    current_ = Unit{Space::kProcess, 0, std::move(names0), {}};
    compile_block(process_.body);
    emit({.op = Op::kHalt});

    // Procedure units, compiled on demand: the body compile above queued
    // every directly-called procedure; compiling those may queue more
    // (procedures calling procedures), so this is a worklist. Index-based
    // iteration — proc_units_ grows while we walk it.
    for (std::size_t u = 0; u < proc_units_.size(); ++u) {
      const spec::Procedure& proc = *proc_units_[u].proc;
      std::map<std::string, int> names;
      {
        const auto& slots = prog_.frame_layouts[proc_units_[u].layout].slots;
        for (std::size_t i = 0; i < slots.size(); ++i) {
          names.emplace(slots[i].name, static_cast<int>(i));
        }
      }
      proc_units_[u].entry = static_cast<std::uint32_t>(prog_.code.size());
      current_ = Unit{Space::kFrame, proc_units_[u].layout, std::move(names),
                      {}};
      compile_block(proc.body);
      emit({.op = Op::kReturn});
    }
    for (const auto& [cs, unit] : callsite_units_) {
      prog_.callsites[cs].entry_pc = proc_units_[unit].entry;
    }

    IFSYN_ASSERT_MSG(max_reg_ < 0xffff, "register file overflow");
    prog_.num_regs = static_cast<std::uint16_t>(max_reg_ + 1);
    return std::move(prog_);
  }

 private:
  /// An active for-loop variable binding in the current unit.
  struct Binding {
    std::string name;
    int slot;
  };
  /// Compile scope for one unit (the process body or one procedure).
  struct Unit {
    Space space = Space::kProcess;  ///< where the unit's frame slots live
    std::uint32_t layout = 0;       ///< its frame layout index
    std::map<std::string, int> names;  ///< declared params/locals -> slot
    std::vector<Binding> loop_vars;
  };
  struct ProcUnit {
    const spec::Procedure* proc = nullptr;
    std::uint32_t layout = 0;
    std::uint32_t entry = 0;
  };
  struct Resolved {
    Space space;
    int slot;
    spec::Type type;
  };

  // ---- name resolution (compile-time mirror of Interpreter::lookup) ----
  // AST order: innermost frame (current unit incl. active loop vars), then
  // process locals, then globals. Intermediate call frames are invisible.
  std::optional<Resolved> resolve(const std::string& name) const {
    for (auto it = current_.loop_vars.rbegin();
         it != current_.loop_vars.rend(); ++it) {
      if (it->name == name) {
        // Loop variables are Value::integer (32-bit signed) regardless of
        // what slot they occupy.
        return Resolved{current_.space, it->slot, spec::Type::integer()};
      }
    }
    if (auto it = current_.names.find(name); it != current_.names.end()) {
      return Resolved{current_.space, it->second,
                      unit_slot_type(it->second)};
    }
    if (current_.space == Space::kFrame) {
      if (auto it = process_names_.find(name); it != process_names_.end()) {
        return Resolved{Space::kProcess, it->second,
                        prog_.frame_layouts[0].slots[it->second].type};
      }
    }
    if (auto it = globals_.global_index.find(name);
        it != globals_.global_index.end()) {
      return Resolved{Space::kGlobal, static_cast<int>(it->second),
                      globals_.global_slots[it->second].type};
    }
    return std::nullopt;
  }

  spec::Type unit_slot_type(int slot) const {
    return prog_.frame_layouts[current_.layout].slots[slot].type;
  }

  int add_hidden_slot(spec::Type type) {
    auto& slots = prog_.frame_layouts[current_.layout].slots;
    slots.push_back(SlotInfo{type, std::nullopt, "<hidden>"});
    return static_cast<int>(slots.size()) - 1;
  }

  // ---- emission helpers ----
  int emit(Instr in) {
    out_->push_back(in);
    return static_cast<int>(out_->size()) - 1;
  }
  void patch_jump_target(int at, int target) {
    Instr& in = (*out_)[at];
    (in.op == Op::kJumpIfFalse ? in.b : in.a) = target;
  }
  int here() const { return static_cast<int>(out_->size()); }

  int note_reg(int reg) {
    if (reg > max_reg_) max_reg_ = reg;
    return reg;
  }

  int const_index(const Scalar& s) {
    for (std::size_t i = 0; i < prog_.consts.size(); ++i) {
      if (prog_.consts[i].is_signed == s.is_signed &&
          prog_.consts[i].bits == s.bits) {
        return static_cast<int>(i);
      }
    }
    prog_.consts.push_back(s);
    return static_cast<int>(prog_.consts.size()) - 1;
  }

  void emit_trap(std::string message) {
    prog_.traps.push_back(std::move(message));
    emit({.op = Op::kTrap,
          .a = static_cast<std::int32_t>(prog_.traps.size()) - 1});
  }

  // ---- constant folding ----
  // Fold only what is guaranteed to evaluate the same at runtime: literals
  // and operator chains over them, using the exact shared eval helpers. An
  // operation that would throw (division by zero, to_int on an over-wide
  // value) stays unfolded so the error keeps its lazy, only-if-executed
  // timing. Slices never fold for the same reason (bound checks).
  std::optional<Scalar> fold(const Expr& e) const {
    using namespace spec;
    const auto& alt = e.node();
    if (const auto* n = std::get_if<IntLit>(&alt)) return make_int(n->value);
    if (const auto* n = std::get_if<BitsLit>(&alt)) {
      return Scalar{n->value, false};
    }
    if (const auto* n = std::get_if<UnaryExpr>(&alt)) {
      const auto operand = fold(*n->operand);
      if (!operand) return std::nullopt;
      try {
        return eval_unary_op(n->op, *operand);
      } catch (const InternalError&) {
        return std::nullopt;
      }
    }
    if (const auto* n = std::get_if<BinaryExpr>(&alt)) {
      const auto lhs = fold(*n->lhs);
      if (!lhs) return std::nullopt;
      const auto rhs = fold(*n->rhs);
      if (!rhs) return std::nullopt;
      try {
        return eval_binary_op(n->op, *lhs, *rhs);
      } catch (const InternalError&) {
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  // ---- expressions ----
  // compile_expr leaves the result in `reg`, using registers above `reg`
  // as scratch. Sub-expression order matches the AST evaluator exactly
  // (lhs before rhs, base before hi before lo, index before name lookup).
  void compile_expr(const Expr& e, int reg) {
    note_reg(reg);
    if (auto c = fold(e)) {
      emit({.op = Op::kConst, .dst = static_cast<std::uint16_t>(reg),
            .a = const_index(*c)});
      return;
    }
    using namespace spec;
    const auto& alt = e.node();
    if (const auto* n = std::get_if<VarRef>(&alt)) {
      const auto r = resolve(n->name);
      if (!r) {
        emit_trap("reference to undeclared variable '" + n->name + "'");
        return;
      }
      if (r->type.is_array()) {
        emit_trap("array '" + n->name + "' used without an index");
        return;
      }
      emit({.op = Op::kLoadVar, .aux = static_cast<std::uint8_t>(r->space),
            .dst = static_cast<std::uint16_t>(reg), .a = r->slot});
      return;
    }
    if (const auto* n = std::get_if<ArrayRef>(&alt)) {
      compile_expr(*n->index, reg);
      const auto r = resolve(n->name);
      if (!r) {
        emit_trap("reference to undeclared variable '" + n->name + "'");
        return;
      }
      if (!r->type.is_array()) {
        emit_trap("indexing non-array '" + n->name + "'");
        return;
      }
      emit({.op = Op::kLoadArray, .aux = static_cast<std::uint8_t>(r->space),
            .dst = static_cast<std::uint16_t>(reg), .a = r->slot, .b = reg});
      return;
    }
    if (const auto* n = std::get_if<SignalRef>(&alt)) {
      const FieldKey key{n->signal, n->field};
      const SignalId id = kernel_.find_signal_id(key);
      if (id == kInvalidSignalId) {
        emit_trap("unknown signal field " + key.to_string());
        return;
      }
      emit({.op = Op::kLoadSignal, .dst = static_cast<std::uint16_t>(reg),
            .a = static_cast<std::int32_t>(id)});
      return;
    }
    if (const auto* n = std::get_if<SliceExpr>(&alt)) {
      compile_expr(*n->base, reg);
      compile_expr(*n->hi, reg + 1);
      compile_expr(*n->lo, reg + 2);
      emit({.op = Op::kSlice, .dst = static_cast<std::uint16_t>(reg),
            .a = reg, .b = reg + 1, .c = reg + 2});
      return;
    }
    if (const auto* n = std::get_if<UnaryExpr>(&alt)) {
      compile_expr(*n->operand, reg);
      emit({.op = Op::kUnary, .aux = static_cast<std::uint8_t>(n->op),
            .dst = static_cast<std::uint16_t>(reg), .a = reg});
      return;
    }
    if (const auto* n = std::get_if<BinaryExpr>(&alt)) {
      compile_expr(*n->lhs, reg);
      compile_expr(*n->rhs, reg + 1);
      emit({.op = Op::kBinary, .aux = static_cast<std::uint8_t>(n->op),
            .dst = static_cast<std::uint16_t>(reg), .a = reg, .b = reg + 1});
      return;
    }
    // IntLit and BitsLit always fold above.
    IFSYN_ASSERT_MSG(false, "unhandled expression kind");
  }

  /// Result of `expr` as an int64 (eval_int semantics) in `reg`.
  void compile_int_expr(const Expr& e, int reg) {
    compile_expr(e, reg);
    emit({.op = Op::kToInt, .dst = static_cast<std::uint16_t>(reg),
          .a = reg});
  }

  // ---- stores ----
  // The value is already in `value_reg`; index/slice bounds evaluate after
  // it, mirroring Interpreter::store (value, then index, then hi, then lo;
  // array-ness checks before the bound expressions run).
  void compile_store(const spec::LValue& t, int value_reg) {
    const auto r = resolve(t.name);
    if (!r) {
      emit_trap("reference to undeclared variable '" + t.name + "'");
      return;
    }
    const auto space = static_cast<std::uint8_t>(r->space);
    const int width = r->type.scalar_width();
    if (t.index) {
      if (!r->type.is_array()) {
        emit_trap("indexed store into non-array '" + t.name + "'");
        return;
      }
      compile_expr(*t.index, value_reg + 1);
      if (t.slice_hi) {
        compile_expr(*t.slice_hi, value_reg + 2);
        compile_expr(*t.slice_lo, value_reg + 3);
        emit({.op = Op::kStoreArraySlice, .aux = space,
              .dst = static_cast<std::uint16_t>(value_reg), .a = r->slot,
              .b = value_reg + 1, .c = value_reg + 2, .d = value_reg + 3});
      } else {
        emit({.op = Op::kStoreArrayElem, .aux = space, .a = r->slot,
              .b = value_reg + 1, .c = value_reg, .d = width});
      }
      return;
    }
    if (r->type.is_array()) {
      emit_trap("whole-array assignment to '" + t.name +
                "' is not supported");
      return;
    }
    if (t.slice_hi) {
      compile_expr(*t.slice_hi, value_reg + 1);
      compile_expr(*t.slice_lo, value_reg + 2);
      emit({.op = Op::kStoreSlice, .aux = space,
            .dst = static_cast<std::uint16_t>(value_reg), .a = r->slot,
            .b = value_reg + 1, .c = value_reg + 2});
    } else {
      emit({.op = Op::kStoreVar, .aux = space, .a = r->slot, .b = value_reg,
            .c = width});
    }
  }

  // ---- statements ----
  void compile_block(const Block& block) {
    using namespace spec;
    for (const auto& stmt_ptr : block) {
      const Stmt& stmt = *stmt_ptr;
      if (const auto* s = stmt.as<VarAssign>()) {
        compile_expr(*s->value, 0);
        compile_store(s->target, 0);
      } else if (const auto* s = stmt.as<SignalAssign>()) {
        const FieldKey key{s->signal, s->field};
        const SignalId id = kernel_.find_signal_id(key);
        if (id == kInvalidSignalId) {
          // AST order: the width lookup throws before the value evaluates.
          emit_trap("unknown signal field " + key.to_string());
          continue;
        }
        const int width = kernel_.signal_value(id).width();
        compile_expr(*s->value, 0);
        emit({.op = Op::kSignalAssign, .a = static_cast<std::int32_t>(id),
              .b = width, .c = 0});
      } else if (const auto* s = stmt.as<WaitUntil>()) {
        emit({.op = Op::kWaitUntil, .a = compile_cond(*s->cond)});
      } else if (const auto* s = stmt.as<WaitOn>()) {
        // Unknown keys resolve to nothing (never-wakes semantics, same as
        // the AST engine's interning pre-pass).
        std::vector<SignalId> ids;
        ids.reserve(s->sensitivity.size());
        for (const auto& sf : s->sensitivity) {
          const SignalId id =
              sf.field.empty()
                  ? kernel_.find_wildcard_id(sf.signal)
                  : kernel_.find_signal_id(FieldKey{sf.signal, sf.field});
          if (id != kInvalidSignalId) ids.push_back(id);
        }
        prog_.wait_sets.push_back(std::move(ids));
        emit({.op = Op::kWaitOn,
              .a = static_cast<std::int32_t>(prog_.wait_sets.size()) - 1});
      } else if (const auto* s = stmt.as<WaitFor>()) {
        compile_int_expr(*s->cycles, 0);
        emit({.op = Op::kWaitFor, .a = 0});
      } else if (const auto* s = stmt.as<IfStmt>()) {
        compile_expr(*s->cond, 0);
        const int jf = emit({.op = Op::kJumpIfFalse, .a = 0});
        compile_block(s->then_body);
        const int jend = emit({.op = Op::kJump});
        patch_jump_target(jf, here());
        compile_block(s->else_body);
        patch_jump_target(jend, here());
      } else if (const auto* s = stmt.as<ForStmt>()) {
        compile_for(*s);
      } else if (const auto* s = stmt.as<WhileStmt>()) {
        const int top = here();
        compile_expr(*s->cond, 0);
        const int jf = emit({.op = Op::kJumpIfFalse, .a = 0});
        compile_block(s->body);
        emit({.op = Op::kJump, .a = top});
        patch_jump_target(jf, here());
      } else if (const auto* s = stmt.as<ForeverStmt>()) {
        const int top = here();
        compile_block(s->body);
        emit({.op = Op::kJump, .a = top});
      } else if (const auto* s = stmt.as<ProcCall>()) {
        compile_call(*s);
      } else if (const auto* s = stmt.as<BusLock>()) {
        const BusId id = kernel_.find_bus_id(s->bus);
        if (id == kInvalidBusId) {
          emit_trap("unknown bus lock " + s->bus);
          continue;
        }
        emit({.op = s->acquire ? Op::kAcquireBus : Op::kReleaseBus,
              .a = static_cast<std::int32_t>(id)});
      } else {
        IFSYN_ASSERT_MSG(false, "unhandled statement kind");
      }
    }
  }

  // For loops iterate a hidden 64-bit counter (eval_int semantics for the
  // bounds, both evaluated once, up-front). The visible variable is
  // re-stored as Value::integer each iteration. When the name shadows a
  // slot of the *current unit frame* (a declared local/param, or an outer
  // loop variable), that slot is reused with save/restore around the loop
  // — reproducing the AST engine's insert_or_assign shadowing, including
  // visibility of a process-level loop variable inside called procedures.
  // Otherwise the variable gets a fresh hidden slot that simply goes out
  // of (compile-time) scope at the loop end.
  void compile_for(const spec::ForStmt& s) {
    const auto uspace = static_cast<std::uint8_t>(current_.space);
    compile_int_expr(*s.from, 0);
    compile_int_expr(*s.to, 1);
    note_reg(1);
    const int counter = add_hidden_slot(spec::Type::integer(64));
    const int limit = add_hidden_slot(spec::Type::integer(64));
    emit({.op = Op::kStoreVar, .aux = uspace, .a = counter, .b = 0, .c = 64});
    emit({.op = Op::kStoreVar, .aux = uspace, .a = limit, .b = 1, .c = 64});

    int var_slot;
    int save_slot = -1;
    if (const auto r = resolve(s.var); r && r->space == current_.space) {
      var_slot = r->slot;
      save_slot = add_hidden_slot(r->type);
      emit({.op = Op::kSaveVar, .aux = uspace, .a = save_slot,
            .b = var_slot});
    } else {
      var_slot = add_hidden_slot(spec::Type::integer());
    }
    current_.loop_vars.push_back(Binding{s.var, var_slot});

    // Head and back edge are single fused instructions: the test/compare/
    // store-loop-var/increment machinery ran as ~8 discrete ops per
    // iteration before and dominated loop-heavy interpreted code.
    const int top = here();
    const int test = emit({.op = Op::kLoopTest, .aux = uspace, .a = counter,
                           .b = limit, .d = var_slot});
    compile_block(s.body);
    emit({.op = Op::kLoopInc, .aux = uspace, .a = counter, .b = top});
    (*out_)[static_cast<std::size_t>(test)].c = here();

    current_.loop_vars.pop_back();
    if (save_slot >= 0) {
      emit({.op = Op::kRestoreVar, .aux = uspace, .a = var_slot,
            .b = save_slot});
    }
  }

  int compile_cond(const Expr& cond) {
    std::vector<Instr>* saved = out_;
    out_ = &prog_.cond_code;
    const auto start = static_cast<std::uint32_t>(prog_.cond_code.size());
    compile_expr(cond, 0);
    out_ = saved;
    const auto count =
        static_cast<std::uint32_t>(prog_.cond_code.size()) - start;
    // ref_ops = count: the optimizer may shrink count but preserves
    // ref_ops, which is what eval_cond charges to sim.vm.executed_ops.
    prog_.conds.push_back(CondProgram{start, count, 0, count});
    return static_cast<int>(prog_.conds.size()) - 1;
  }

  // Calls lower to: evaluate `in` actuals into consecutive registers (in
  // parameter order, so a lazy arg-shape mismatch traps after the earlier
  // actuals evaluated — AST timing), kCall (push frame, copy-in, jump),
  // then per `out` parameter a kLoadRet + store whose index/slice bounds
  // evaluate after the call returns, exactly like the AST copy-out.
  void compile_call(const spec::ProcCall& call) {
    const spec::Procedure* proc = system_.find_procedure(call.proc);
    if (!proc) {
      emit_trap("call to unknown procedure '" + call.proc + "'");
      return;
    }
    if (proc->params.size() != call.args.size()) {
      emit_trap("procedure " + call.proc + " expects " +
                std::to_string(proc->params.size()) + " args, got " +
                std::to_string(call.args.size()));
      return;
    }
    const int unit = ensure_proc_unit(*proc);
    CallSite cs;
    cs.frame_layout = proc_units_[unit].layout;
    int reg = 0;
    for (std::size_t i = 0; i < proc->params.size(); ++i) {
      const spec::Param& param = proc->params[i];
      if (param.dir == spec::ParamDir::kIn) {
        const auto* arg_expr = std::get_if<spec::ExprPtr>(&call.args[i]);
        if (!arg_expr) {
          emit_trap("out-style actual passed to in param " + param.name +
                    " of " + call.proc);
          return;
        }
        compile_expr(**arg_expr, reg);
        cs.in_args.push_back(CallSite::InArg{
            static_cast<std::uint32_t>(i), static_cast<std::uint16_t>(reg),
            param.type.scalar_width()});
        ++reg;
      } else if (!std::holds_alternative<spec::LValue>(call.args[i])) {
        emit_trap("expression actual passed to out param " + param.name +
                  " of " + call.proc);
        return;
      }
    }
    note_reg(reg);
    prog_.callsites.push_back(std::move(cs));
    const int cs_idx = static_cast<int>(prog_.callsites.size()) - 1;
    callsite_units_.emplace_back(cs_idx, unit);
    emit({.op = Op::kCall, .a = cs_idx});
    for (std::size_t i = 0; i < proc->params.size(); ++i) {
      const spec::Param& param = proc->params[i];
      if (param.dir != spec::ParamDir::kOut) continue;
      emit({.op = Op::kLoadRet, .dst = 0,
            .a = static_cast<std::int32_t>(i)});
      compile_store(std::get<spec::LValue>(call.args[i]), 0);
    }
  }

  int ensure_proc_unit(const spec::Procedure& proc) {
    if (auto it = proc_unit_index_.find(proc.name);
        it != proc_unit_index_.end()) {
      return it->second;
    }
    FrameLayout layout;
    for (const auto& p : proc.params) {
      layout.slots.push_back(SlotInfo{p.type, std::nullopt, p.name});
    }
    for (const auto& l : proc.locals) {
      layout.slots.push_back(SlotInfo{l.type, l.init, l.name});
    }
    prog_.frame_layouts.push_back(std::move(layout));
    proc_units_.push_back(ProcUnit{
        &proc, static_cast<std::uint32_t>(prog_.frame_layouts.size()) - 1,
        0});
    const int idx = static_cast<int>(proc_units_.size()) - 1;
    proc_unit_index_.emplace(proc.name, idx);
    return idx;
  }

  const spec::System& system_;
  const Kernel& kernel_;
  const CompiledSystem& globals_;
  const spec::Process& process_;

  ProcProgram prog_;
  std::vector<Instr>* out_ = &prog_.code;
  Unit current_;
  std::map<std::string, int> process_names_;  ///< process-local name -> slot
  std::vector<ProcUnit> proc_units_;
  std::map<std::string, int> proc_unit_index_;
  std::vector<std::pair<int, int>> callsite_units_;
  int max_reg_ = 0;
};

}  // namespace

CompiledSystem compile(const spec::System& system, const Kernel& kernel) {
  CompiledSystem cs;
  for (const auto& v : system.variables()) {
    cs.global_slots.push_back(SlotInfo{v->type, v->init, v->name});
    cs.global_index.emplace(
        v->name, static_cast<std::uint32_t>(cs.global_slots.size()) - 1);
  }
  cs.processes.reserve(system.processes().size());
  for (const auto& p : system.processes()) {
    ProcessCompiler pc(system, kernel, cs, *p);
    cs.processes.push_back(pc.compile());
    cs.total_instructions += cs.processes.back().code.size() +
                             cs.processes.back().cond_code.size();
  }
  cs.optimized_instructions = cs.total_instructions;
  return cs;
}

CompiledSystem compile(const spec::System& system, const Kernel& kernel,
                       OptLevel level) {
  CompiledSystem cs = compile(system, kernel);
  optimize(cs, level);
  return cs;
}

}  // namespace ifsyn::sim::bytecode
