// ifsyn/sim/bytecode/compiler.hpp
//
// One-shot lowering pass from the specification IR to register bytecode.
//
// Compilation happens at Interpreter::setup time, after the kernel's
// signals and bus locks are declared (the compiler interns every
// signal/bus reference through the kernel's find_* lookups, mirroring the
// AST engine's elaboration pre-pass). The pass never fails: anything that
// cannot be resolved statically — and that the AST engine would only
// report when executed — lowers to a kTrap instruction carrying the
// matching error message, preserving lazy error timing.
//
// Lowering rules, the slot model and the worked FLC example live in
// DESIGN.md Sec. 10.
#pragma once

#include "sim/bytecode/program.hpp"
#include "sim/kernel.hpp"
#include "spec/system.hpp"

namespace ifsyn::sim::bytecode {

/// Compile `system` against `kernel` (whose signals/buses must already be
/// declared). The result is self-contained: it borrows nothing from the
/// system's AST except variable initializer Values (copied in).
CompiledSystem compile(const spec::System& system, const Kernel& kernel);

/// Compile and then run the post-compile optimizer (optimizer.hpp) at
/// `level`. kNone returns the compiler output verbatim (bookkeeping
/// fields stamped); kFull rewrites recognized sequences into
/// superinstructions. This is the overload Vm::setup uses, with the level
/// taken from IFSYN_SIM_OPT via opt_level_from_env().
CompiledSystem compile(const spec::System& system, const Kernel& kernel,
                       OptLevel level);

}  // namespace ifsyn::sim::bytecode
