#include "sim/bytecode/program_cache.hpp"

#include <atomic>

#include "spec/printer.hpp"

namespace ifsyn::sim::bytecode {

namespace {

/// FNV-1a over `data`, continuing from `h`.
std::uint64_t fnv1a(std::uint64_t h, const std::string& data) {
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::atomic<ProgramCache*> g_process_cache{nullptr};

}  // namespace

std::string system_cache_key(const spec::System& system, OptLevel level) {
  // The printed IR covers variables, signals, channels, buses, procedures
  // and processes — everything compile() lowers. Appended explicitly: two
  // kernel-relevant facts the printer does not render (which buses
  // declare locks — BusId interning order depends on the arbitrated set),
  // the optimization level (a process serving mixed IFSYN_SIM_OPT
  // requests keeps one artifact per level and can never hand an optimized
  // program to a reference run), and a version salt so cached artifacts
  // never survive an ISA change.
  std::string text = spec::print_system(system);
  text += "\n|locks:";
  for (const auto& bus : system.buses()) {
    if (bus->arbitrated) {
      text += ' ';
      text += bus->name;
    }
  }
  text += "|opt:";
  text += std::to_string(static_cast<int>(level));
  text += "|bytecode-v2";
  // Two independent 64-bit FNV-1a streams (different offset bases) plus
  // the length: collisions would silently run the wrong program, so the
  // key is effectively 128 bits + size.
  const std::uint64_t h1 = fnv1a(14695981039346656037ull, text);
  const std::uint64_t h2 = fnv1a(0x9e3779b97f4a7c15ull, text);
  return hex64(h1) + hex64(h2) + "-" + std::to_string(text.size());
}

std::shared_ptr<const CompiledSystem> ProgramCache::get_or_compile(
    const std::string& key,
    const std::function<CompiledSystem()>& compile,
    bool* was_hit) {
  std::promise<std::shared_ptr<const CompiledSystem>> promise;
  std::shared_future<std::shared_ptr<const CompiledSystem>> future;
  bool owner = false;
  std::uint64_t my_gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      hits_->add(1);
      future = it->second.future;
      if (capacity_ > 0) {
        lru_.splice(lru_.begin(), lru_, it->second.lru);
      }
    } else {
      misses_->add(1);
      owner = true;
      future = promise.get_future().share();
      Entry entry;
      entry.future = future;
      entry.gen = my_gen = ++gen_;
      if (capacity_ > 0) {
        lru_.push_front(key);
        entry.lru = lru_.begin();
      }
      map_.emplace(key, std::move(entry));
      // Evict beyond the bound, never the key just inserted. Evicted
      // artifacts stay alive for as long as running Vms hold their
      // shared_ptr; the store merely forgets them.
      while (capacity_ > 0 && map_.size() > capacity_ && lru_.size() > 1) {
        map_.erase(lru_.back());
        lru_.pop_back();
        evictions_->add(1);
      }
    }
  }
  if (owner) {
    try {
      promise.set_value(
          std::make_shared<const CompiledSystem>(compile()));
    } catch (...) {
      // Same poisoned-entry protocol as explore::EstimationCache: wake
      // every waiter with the exception, then drop the entry (if it is
      // still ours) so a retry recompiles.
      promise.set_exception(std::current_exception());
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end() && it->second.gen == my_gen) {
          if (capacity_ > 0) lru_.erase(it->second.lru);
          map_.erase(it);
        }
      }
      if (was_hit) *was_hit = false;
      return future.get();  // rethrows
    }
  }
  if (was_hit) *was_hit = !owner;
  return future.get();
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void install_process_cache(ProgramCache* cache) {
  g_process_cache.store(cache, std::memory_order_release);
}

ProgramCache* process_cache() {
  return g_process_cache.load(std::memory_order_acquire);
}

}  // namespace ifsyn::sim::bytecode
