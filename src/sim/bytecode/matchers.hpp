// ifsyn/sim/bytecode/matchers.hpp
//
// A small declarative pattern matcher over bytecode instruction sequences,
// in the LoopTactics match-and-capture style: a Pattern is a list of
// InstrPat rows, one per instruction, whose operand cells either accept
// anything, require a literal value, or bind a *capture slot*. Capture
// slots have bind-on-first-occurrence / unify-on-later-occurrence
// semantics, so a slot mentioned in several cells asserts those operands
// are equal — which is how a linear pattern matches the DAG structure of
// register def-use chains (the same register capture appearing as one
// instruction's `dst` and a later instruction's `a` is exactly the
// producer->consumer edge).
//
// The matcher is purely structural: it checks opcodes and operand
// equalities. Semantic side conditions (constant-pool values, slot layout
// types, register distinctness) belong to the rewrite rules in
// optimizer.cpp, which receive the matched instruction span plus the
// capture bindings and may still reject the match.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "sim/bytecode/program.hpp"
#include "util/assert.hpp"

namespace ifsyn::sim::bytecode {

/// Maximum distinct capture slots per pattern. Patterns are hand-written
/// and small; the tightest current user needs 12.
inline constexpr int kMaxCaptures = 16;

/// Bindings produced by a successful match: capture slot -> operand value.
class MatchContext {
 public:
  void clear() { bound_ = 0; }

  /// Bind `slot` to `value`, or — if already bound — check it unifies.
  bool bind(int slot, std::int64_t value) {
    const std::uint32_t bit = 1u << slot;
    if (bound_ & bit) return values_[static_cast<std::size_t>(slot)] == value;
    bound_ |= bit;
    values_[static_cast<std::size_t>(slot)] = value;
    return true;
  }

  /// Value of a bound capture slot (asserts the slot was bound).
  std::int64_t operator[](int slot) const {
    IFSYN_ASSERT_MSG(bound_ & (1u << slot), "unbound capture slot " << slot);
    return values_[static_cast<std::size_t>(slot)];
  }

  bool is_bound(int slot) const { return (bound_ & (1u << slot)) != 0; }

 private:
  std::array<std::int64_t, kMaxCaptures> values_{};
  std::uint32_t bound_ = 0;
};

/// One operand cell of an instruction pattern.
struct OperandPat {
  enum class Kind : std::uint8_t { kAny, kLit, kCap };
  Kind kind = Kind::kAny;
  std::int64_t value = 0;  ///< kLit: required value
  int slot = 0;            ///< kCap: capture slot

  bool match(std::int64_t operand, MatchContext& ctx) const {
    switch (kind) {
      case Kind::kAny: return true;
      case Kind::kLit: return operand == value;
      case Kind::kCap: return ctx.bind(slot, operand);
    }
    return false;
  }
};

/// Operand-cell constructors, named for pattern-table readability.
inline OperandPat any_() { return OperandPat{}; }
inline OperandPat lit_(std::int64_t v) {
  return OperandPat{OperandPat::Kind::kLit, v, 0};
}
inline OperandPat cap_(int slot) {
  IFSYN_ASSERT(slot >= 0 && slot < kMaxCaptures);
  return OperandPat{OperandPat::Kind::kCap, 0, slot};
}

/// Pattern row for one instruction: an opcode alternative set plus one
/// cell per operand field. Most rows accept a single opcode; rows with
/// several (e.g. "kLoadVar or kConst") let one pattern cover a family of
/// shapes, with the rewrite rule reading the matched instruction to see
/// which alternative fired.
struct InstrPat {
  std::vector<Op> ops;  ///< acceptable opcodes (non-empty)
  OperandPat aux = any_();
  OperandPat dst = any_();
  OperandPat a = any_();
  OperandPat b = any_();
  OperandPat c = any_();
  OperandPat d = any_();

  bool match(const Instr& in, MatchContext& ctx) const {
    bool op_ok = false;
    for (Op o : ops) op_ok = op_ok || in.op == o;
    return op_ok && aux.match(in.aux, ctx) && dst.match(in.dst, ctx) &&
           a.match(in.a, ctx) && b.match(in.b, ctx) && c.match(in.c, ctx) &&
           d.match(in.d, ctx);
  }
};

/// Row constructor for the common single-opcode case.
inline InstrPat ip(Op op, OperandPat aux = any_(), OperandPat dst = any_(),
                   OperandPat a = any_(), OperandPat b = any_(),
                   OperandPat c = any_(), OperandPat d = any_()) {
  return InstrPat{{op}, aux, dst, a, b, c, d};
}

/// Row constructor accepting any of several opcodes.
inline InstrPat ip_any(std::initializer_list<Op> ops, OperandPat aux = any_(),
                       OperandPat dst = any_(), OperandPat a = any_(),
                       OperandPat b = any_(), OperandPat c = any_(),
                       OperandPat d = any_()) {
  return InstrPat{std::vector<Op>(ops), aux, dst, a, b, c, d};
}

/// A whole pattern: consecutive instruction rows. `match` attempts the
/// pattern anchored at `code[at]`, filling `ctx` on success. Capture
/// bindings from a failed match are discarded by the caller via clear().
struct Pattern {
  std::vector<InstrPat> rows;

  std::size_t size() const { return rows.size(); }

  bool match(std::span<const Instr> code, std::size_t at,
             MatchContext& ctx) const {
    if (at + rows.size() > code.size()) return false;
    ctx.clear();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!rows[i].match(code[at + i], ctx)) return false;
    }
    return true;
  }
};

}  // namespace ifsyn::sim::bytecode
