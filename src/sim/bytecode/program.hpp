// ifsyn/sim/bytecode/program.hpp
//
// The register bytecode the simulation data plane compiles specs into.
//
// One ProcProgram per process holds a flat instruction array covering the
// process body plus a specialized copy of every procedure the process can
// reach (specialization resolves free names against *that process's*
// locals, so operand slots are plain indices — no runtime name lookup).
// All string/name resolution, signal/bus interning, constant folding and
// wait-set construction happen once in the compiler (compiler.cpp); the
// VM (vm.cpp) then executes straight-line code from a resumable program
// counter with one coroutine per process.
//
// Design notes (full ISA reference in DESIGN.md Sec. 10):
//   - Register machine: expression temporaries live in a per-process
//     Scalar register file. Registers are never live across a kernel
//     suspension or a procedure call, so the file needs no save/restore.
//   - Three operand spaces: kGlobal (system variables, shared), kProcess
//     (process locals, persist across calls within one activation) and
//     kFrame (current procedure activation).
//   - Lazy errors: anything the AST engine only reports when the faulty
//     statement *executes* (undeclared variables, unknown signals, calls
//     to missing procedures) compiles to a kTrap carrying the message, so
//     error timing matches the reference engine.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/scalar.hpp"
#include "spec/type.hpp"
#include "spec/value.hpp"

namespace ifsyn::sim::bytecode {

enum class Op : std::uint8_t {
  // ---- expression ops (also legal inside condition programs) ----
  kConst,          ///< r[dst] = consts[a]
  kLoadVar,        ///< r[dst] = scalar at (aux:space, a:slot)
  kLoadArray,      ///< r[dst] = (aux:space, a:slot)[ r[b].to_int() ]
  kLoadSignal,     ///< r[dst] = value of SignalId a (unsigned)
  kUnary,          ///< r[dst] = unary(aux:UnaryOp, r[a])
  kBinary,         ///< r[dst] = binary(aux:BinaryOp, r[a], r[b])
  kSlice,          ///< r[dst] = r[a].bits.slice(r[b], r[c])
  kToInt,          ///< r[dst] = make_int(r[a].to_int()) — eval_int semantics
  kTrap,           ///< throw InternalError(traps[a]) — lazy error sites

  // ---- stores ----
  kStoreVar,       ///< (aux,a) .set(extend(r[b], c:width))
  kStoreArrayElem, ///< (aux,a)[r[b]] = extend(r[c], d:width)
  kStoreSlice,     ///< (aux,a).bits(r[b] downto r[c]) = r[dst]
  kStoreArraySlice,///< (aux,a)[r[b]].bits(r[c] downto r[d]) = r[dst]
  kSaveVar,        ///< (aux,a) = copy of (aux,b) — loop shadow save
  kRestoreVar,     ///< (aux,a) = move (aux,b)   — loop shadow restore
  kSignalAssign,   ///< schedule SignalId a <= extend(r[c], b:width)

  // ---- control flow ----
  kJump,           ///< pc = a
  kJumpIfFalse,    ///< pc = r[a].truthy() ? pc+1 : b
  kLoopTest,       ///< fused for-loop head: counter (aux,a) > limit (aux,b)
                   ///< ? pc = c : store loop var (aux,d) = Value::integer(
                   ///< counter) and fall through to the body
  kLoopInc,        ///< fused for-loop back edge: 64-bit counter (aux,a) += 1,
                   ///< pc = b
  kCall,           ///< enter callsites[a] (push return frame, copy-in)
  kLoadRet,        ///< r[dst] = scalar of ret_frame[a] (post-call copy-out)
  kReturn,         ///< pop call frame, resume at saved pc
  kHalt,           ///< process body complete (co_return)

  // ---- kernel suspensions ----
  kWaitFor,        ///< co_await wait_for(r[a].to_int()); asserts >= 0
  kWaitOn,         ///< co_await wait_on(wait_sets[a])
  kWaitUntil,      ///< co_await wait_until(eval of conds[a])
  kAcquireBus,     ///< co_await acquire_bus(BusId a)
  kReleaseBus,     ///< release_bus(BusId a)

  // ---- superinstructions (emitted only by the optimizer pass) ----
  // The compiler never emits these; optimizer.cpp rewrites recognized
  // instruction sequences into them post-compile (IFSYN_SIM_OPT=1). Every
  // superinstruction performs the same architectural writes and raises
  // the same errors as the sequence it replaces, and carries the
  // sequence's original dispatch count as a weight so sim.vm.executed_ops
  // stays byte-identical to the unoptimized VM (DESIGN.md Sec. 14).
  kCmpBranch,      ///< r[dst] = binary(aux, r[a], r[b]);
                   ///< pc = r[dst].truthy() ? pc+1 : c  (kBinary+kJumpIfFalse)
  kWaitForImm,     ///< co_await wait_for(consts[a].to_int())
                   ///< (kConst+kToInt+kWaitFor)
  kSignalAssignImm,///< schedule SignalId a <= extend(consts[c], b:width)
                   ///< (kConst+kSignalAssign)
  kSliceImm,       ///< r[dst] = r[a].bits.slice(consts[b], consts[c])
                   ///< (kConst+kConst+kSlice with folded bounds)
  kBinaryFused,    ///< three-address form: fusions[a] (operand loads +
                   ///< kBinary + optional kStoreVar in one dispatch)
  kBulkSend,       ///< bulks[a]: one P3 sender word — DATA word-slice
                   ///< assign + strobe/handshake raise — per dispatch
  kBulkRecv,       ///< bulks[a]: one P3 receiver word — DATA capture into
                   ///< the target's word slice — per dispatch
};

/// Which storage a slot operand indexes.
enum class Space : std::uint8_t {
  kGlobal,   ///< system-level variables (shared by all processes)
  kProcess,  ///< process-local frame (persists across calls)
  kFrame,    ///< current procedure activation frame
};

/// One instruction. Fixed-width and deliberately roomy: `aux` carries the
/// operand space or the packed Unary/BinaryOp, `dst` a destination (or
/// value-source) register, and a..d are slot indices, register numbers,
/// widths, pool indices or jump targets depending on the op (see Op docs).
struct Instr {
  Op op = Op::kHalt;
  std::uint8_t aux = 0;
  std::uint16_t dst = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
};

/// Static description of one frame slot; frames are materialized per
/// activation from this layout. `init` is empty for zero-initialization
/// and for the compiler's hidden slots (loop counters/limits/saves).
struct SlotInfo {
  spec::Type type;
  std::optional<spec::Value> init;
  std::string name;  ///< declared name, or "<hidden>" — debugging only
};

struct FrameLayout {
  std::vector<SlotInfo> slots;
};

/// One lowered `ProcCall`: where to jump, which frame layout to
/// materialize, and how to copy the already-evaluated `in` actuals
/// (sitting in registers) into the new frame's parameter slots.
struct CallSite {
  std::uint32_t entry_pc = 0;
  std::uint32_t frame_layout = 0;
  struct InArg {
    std::uint32_t slot;  ///< parameter slot in the callee frame
    std::uint16_t reg;   ///< caller register holding the evaluated actual
    int width;           ///< parameter scalar width (extend target)
  };
  std::vector<InArg> in_args;
};

/// A `wait until` condition lowered into `cond_code`: the VM evaluates
/// instructions [start, start+count) and reads the result register. The
/// kernel re-runs this after every delta commit while the process is
/// parked, exactly like the AST engine's condition lambda.
struct CondProgram {
  std::uint32_t start = 0;
  std::uint32_t count = 0;
  std::uint16_t result_reg = 0;
  /// Pre-optimization instruction count. eval_cond charges this to
  /// sim.vm.executed_ops (not `count`) so the counter reads identically
  /// whether or not the optimizer shrank the condition body.
  std::uint32_t ref_ops = 0;
};

/// Descriptor for one kBulkSend/kBulkRecv: a whole P3 transfer-loop word
/// in one dispatch. The word slice bounds are the generated procedures'
/// index arithmetic, (w_hi*J - k_hi downto w_lo*(J - k_lo)), evaluated
/// with the exact int64 semantics the replaced kConst/kLoadVar/kBinary
/// sequence had (constants captured from the pool, J read from its slot).
struct BulkTransfer {
  Space var_space = Space::kProcess;  ///< message variable (src or dst)
  std::int32_t var_slot = 0;
  Space j_space = Space::kProcess;    ///< loop index for the slice bounds
  std::int32_t j_slot = 0;
  std::int64_t w_hi = 0, k_hi = 0;    ///< hi = w_hi * J - k_hi
  std::int64_t w_lo = 0, k_lo = 0;    ///< lo = w_lo * (J - k_lo)
  SignalId data_signal = 0;
  int data_width = 0;                 ///< assignment width (send only)

  /// Send-side strobe stage fused into the same dispatch.
  enum class Strobe : std::uint8_t {
    kNone,    ///< no strobe stage (kBulkRecv, bare DATA assign)
    kConst,   ///< strobe <= consts[strobe_const] (handshake START raise)
    kParity,  ///< strobe <= J2 mod par_mod (strobe-protocol word parity)
  };
  Strobe strobe = Strobe::kNone;
  SignalId strobe_signal = 0;
  int strobe_width = 0;
  Space j2_space = Space::kProcess;   ///< parity index (kParity)
  std::int32_t j2_slot = 0;
  std::int64_t par_mod = 2;           ///< parity modulus (matcher rejects 0)
  std::int32_t strobe_const = 0;      ///< const pool index (kConst)

  std::uint32_t weight = 0;  ///< dispatch count of the replaced sequence
};

/// Descriptor for one kBinaryFused three-address operation: two operand
/// loads + kBinary (+ optional kStoreVar) in one dispatch.
struct FusedOperand {
  enum class Kind : std::uint8_t { kSlot, kConst, kSignal };
  Kind kind = Kind::kConst;
  Space space = Space::kProcess;  ///< kSlot
  std::int32_t index = 0;         ///< slot / const pool index / SignalId
};

struct FusedBinary {
  spec::BinaryOp op{};
  FusedOperand lhs, rhs;
  std::uint16_t dst_reg = 0;  ///< result register (always written)
  bool has_store = false;     ///< fused kStoreVar of the result
  Space store_space = Space::kProcess;
  std::int32_t store_slot = 0;
  std::int32_t store_width = 0;
  std::uint32_t weight = 0;   ///< dispatch count of the replaced sequence
};

/// Everything needed to execute one process: code, pools, frame layouts.
struct ProcProgram {
  std::string process_name;
  bool restarts = false;

  std::vector<Instr> code;       ///< body + specialized procedures
  std::uint32_t entry = 0;       ///< pc of the process body
  std::vector<Instr> cond_code;  ///< wait-until condition programs

  std::vector<Scalar> consts;
  std::vector<std::vector<SignalId>> wait_sets;
  std::vector<CallSite> callsites;
  std::vector<CondProgram> conds;
  std::vector<std::string> traps;

  /// [0] is the process-local frame; the rest are procedure frames.
  std::vector<FrameLayout> frame_layouts;

  /// Superinstruction side tables (filled by the optimizer pass).
  std::vector<BulkTransfer> bulks;
  std::vector<FusedBinary> fusions;

  std::uint16_t num_regs = 0;
};

/// How aggressively the post-compile optimizer (optimizer.hpp) rewrote a
/// CompiledSystem. Part of the artifact so the ProgramCache can key on it.
enum class OptLevel : std::uint8_t {
  kNone = 0,  ///< compiler output verbatim (IFSYN_SIM_OPT=0)
  kFull = 1,  ///< superinstructions + peephole fusions (default)
};

/// What the optimizer did to one CompiledSystem. Deterministic per
/// artifact, but level-dependent — so these surface only through
/// wall-clock-classed obs counters (sim.vm.opt.*), never in the
/// deterministic report tables.
struct OptStats {
  std::uint64_t patterns_matched = 0;
  std::uint64_t instructions_eliminated = 0;
};

/// Compiled form of a whole system: the shared global-variable layout plus
/// one program per process (in system declaration order).
struct CompiledSystem {
  std::vector<SlotInfo> global_slots;           ///< system variable order
  std::map<std::string, std::uint32_t> global_index;
  std::vector<ProcProgram> processes;
  /// Pre-optimization code + cond_code size. Stays the compiler's count
  /// even after optimization, so sim.vm.compiled_instructions — a
  /// deterministic, report-visible metric — is identical across opt
  /// levels. The post-rewrite size is optimized_instructions.
  std::uint64_t total_instructions = 0;
  std::uint64_t optimized_instructions = 0;
  OptLevel opt_level = OptLevel::kNone;
  OptStats opt;
};

}  // namespace ifsyn::sim::bytecode
