// ifsyn/sim/bytecode/program.hpp
//
// The register bytecode the simulation data plane compiles specs into.
//
// One ProcProgram per process holds a flat instruction array covering the
// process body plus a specialized copy of every procedure the process can
// reach (specialization resolves free names against *that process's*
// locals, so operand slots are plain indices — no runtime name lookup).
// All string/name resolution, signal/bus interning, constant folding and
// wait-set construction happen once in the compiler (compiler.cpp); the
// VM (vm.cpp) then executes straight-line code from a resumable program
// counter with one coroutine per process.
//
// Design notes (full ISA reference in DESIGN.md Sec. 10):
//   - Register machine: expression temporaries live in a per-process
//     Scalar register file. Registers are never live across a kernel
//     suspension or a procedure call, so the file needs no save/restore.
//   - Three operand spaces: kGlobal (system variables, shared), kProcess
//     (process locals, persist across calls within one activation) and
//     kFrame (current procedure activation).
//   - Lazy errors: anything the AST engine only reports when the faulty
//     statement *executes* (undeclared variables, unknown signals, calls
//     to missing procedures) compiles to a kTrap carrying the message, so
//     error timing matches the reference engine.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/scalar.hpp"
#include "spec/type.hpp"
#include "spec/value.hpp"

namespace ifsyn::sim::bytecode {

enum class Op : std::uint8_t {
  // ---- expression ops (also legal inside condition programs) ----
  kConst,          ///< r[dst] = consts[a]
  kLoadVar,        ///< r[dst] = scalar at (aux:space, a:slot)
  kLoadArray,      ///< r[dst] = (aux:space, a:slot)[ r[b].to_int() ]
  kLoadSignal,     ///< r[dst] = value of SignalId a (unsigned)
  kUnary,          ///< r[dst] = unary(aux:UnaryOp, r[a])
  kBinary,         ///< r[dst] = binary(aux:BinaryOp, r[a], r[b])
  kSlice,          ///< r[dst] = r[a].bits.slice(r[b], r[c])
  kToInt,          ///< r[dst] = make_int(r[a].to_int()) — eval_int semantics
  kTrap,           ///< throw InternalError(traps[a]) — lazy error sites

  // ---- stores ----
  kStoreVar,       ///< (aux,a) .set(extend(r[b], c:width))
  kStoreArrayElem, ///< (aux,a)[r[b]] = extend(r[c], d:width)
  kStoreSlice,     ///< (aux,a).bits(r[b] downto r[c]) = r[dst]
  kStoreArraySlice,///< (aux,a)[r[b]].bits(r[c] downto r[d]) = r[dst]
  kSaveVar,        ///< (aux,a) = copy of (aux,b) — loop shadow save
  kRestoreVar,     ///< (aux,a) = move (aux,b)   — loop shadow restore
  kSignalAssign,   ///< schedule SignalId a <= extend(r[c], b:width)

  // ---- control flow ----
  kJump,           ///< pc = a
  kJumpIfFalse,    ///< pc = r[a].truthy() ? pc+1 : b
  kLoopTest,       ///< fused for-loop head: counter (aux,a) > limit (aux,b)
                   ///< ? pc = c : store loop var (aux,d) = Value::integer(
                   ///< counter) and fall through to the body
  kLoopInc,        ///< fused for-loop back edge: 64-bit counter (aux,a) += 1,
                   ///< pc = b
  kCall,           ///< enter callsites[a] (push return frame, copy-in)
  kLoadRet,        ///< r[dst] = scalar of ret_frame[a] (post-call copy-out)
  kReturn,         ///< pop call frame, resume at saved pc
  kHalt,           ///< process body complete (co_return)

  // ---- kernel suspensions ----
  kWaitFor,        ///< co_await wait_for(r[a].to_int()); asserts >= 0
  kWaitOn,         ///< co_await wait_on(wait_sets[a])
  kWaitUntil,      ///< co_await wait_until(eval of conds[a])
  kAcquireBus,     ///< co_await acquire_bus(BusId a)
  kReleaseBus,     ///< release_bus(BusId a)
};

/// Which storage a slot operand indexes.
enum class Space : std::uint8_t {
  kGlobal,   ///< system-level variables (shared by all processes)
  kProcess,  ///< process-local frame (persists across calls)
  kFrame,    ///< current procedure activation frame
};

/// One instruction. Fixed-width and deliberately roomy: `aux` carries the
/// operand space or the packed Unary/BinaryOp, `dst` a destination (or
/// value-source) register, and a..d are slot indices, register numbers,
/// widths, pool indices or jump targets depending on the op (see Op docs).
struct Instr {
  Op op = Op::kHalt;
  std::uint8_t aux = 0;
  std::uint16_t dst = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
};

/// Static description of one frame slot; frames are materialized per
/// activation from this layout. `init` is empty for zero-initialization
/// and for the compiler's hidden slots (loop counters/limits/saves).
struct SlotInfo {
  spec::Type type;
  std::optional<spec::Value> init;
  std::string name;  ///< declared name, or "<hidden>" — debugging only
};

struct FrameLayout {
  std::vector<SlotInfo> slots;
};

/// One lowered `ProcCall`: where to jump, which frame layout to
/// materialize, and how to copy the already-evaluated `in` actuals
/// (sitting in registers) into the new frame's parameter slots.
struct CallSite {
  std::uint32_t entry_pc = 0;
  std::uint32_t frame_layout = 0;
  struct InArg {
    std::uint32_t slot;  ///< parameter slot in the callee frame
    std::uint16_t reg;   ///< caller register holding the evaluated actual
    int width;           ///< parameter scalar width (extend target)
  };
  std::vector<InArg> in_args;
};

/// A `wait until` condition lowered into `cond_code`: the VM evaluates
/// instructions [start, start+count) and reads the result register. The
/// kernel re-runs this after every delta commit while the process is
/// parked, exactly like the AST engine's condition lambda.
struct CondProgram {
  std::uint32_t start = 0;
  std::uint32_t count = 0;
  std::uint16_t result_reg = 0;
};

/// Everything needed to execute one process: code, pools, frame layouts.
struct ProcProgram {
  std::string process_name;
  bool restarts = false;

  std::vector<Instr> code;       ///< body + specialized procedures
  std::uint32_t entry = 0;       ///< pc of the process body
  std::vector<Instr> cond_code;  ///< wait-until condition programs

  std::vector<Scalar> consts;
  std::vector<std::vector<SignalId>> wait_sets;
  std::vector<CallSite> callsites;
  std::vector<CondProgram> conds;
  std::vector<std::string> traps;

  /// [0] is the process-local frame; the rest are procedure frames.
  std::vector<FrameLayout> frame_layouts;

  std::uint16_t num_regs = 0;
};

/// Compiled form of a whole system: the shared global-variable layout plus
/// one program per process (in system declaration order).
struct CompiledSystem {
  std::vector<SlotInfo> global_slots;           ///< system variable order
  std::map<std::string, std::uint32_t> global_index;
  std::vector<ProcProgram> processes;
  std::uint64_t total_instructions = 0;         ///< code + cond_code
};

}  // namespace ifsyn::sim::bytecode
