// ifsyn/sim/bytecode/optimizer.cpp
//
// The rewrite rules and the match-collect-rebuild engine behind them.
//
// Matching is anchored and greedy: at each pc the rules are tried in
// priority order (bulk transfers first, then the peepholes, longest
// first); an accepted match consumes its instructions and scanning
// resumes after them, so collected matches never overlap. A match is
// rejected when any *interior* instruction is a jump target (control may
// land mid-sequence there — entry points, branch targets, loop edges,
// call-return and suspension-resume pcs all count), or when the rule's
// semantic guards fail (see each build_* function). Rejected sequences
// simply keep running as compiler output.
//
// The rebuild maps old pcs to new ones (every interior pc maps to its
// superinstruction, so stored jump targets stay valid by construction)
// and patches every target-bearing field: kJump/kJumpIfFalse/kLoopTest/
// kLoopInc/kCmpBranch operands, the program entry and callsite entry pcs.
// Condition programs rewrite per-CondProgram range (start/count remapped,
// ref_ops untouched); only expression-legal rules can structurally match
// there, since cond code contains no stores, jumps or suspensions.

#include "sim/bytecode/optimizer.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <vector>

#include "sim/bytecode/matchers.hpp"
#include "util/assert.hpp"

namespace ifsyn::sim::bytecode {

OptLevel opt_level_from_env() {
  // Read per call (like engine_from_env) so tests and mixed-level serve
  // clients can flip it between simulations.
  const char* v = std::getenv("IFSYN_SIM_OPT");
  if (v != nullptr && v[0] == '0' && v[1] == '\0') return OptLevel::kNone;
  return OptLevel::kFull;
}

namespace {

using spec::BinaryOp;

OperandPat bop(BinaryOp op) {
  return lit_(static_cast<std::int64_t>(op));
}

// ---------------------------------------------------------------------------
// Capture slots. Each rule family has its own namespace of slots; patterns
// from different rules never share a MatchContext.

// Bulk transfers (kBulkSend / kBulkRecv).
enum : int {
  kBVarSpace,   ///< message variable (send source / receive target)
  kBVarSlot,
  kBWHi,        ///< const pool: w_hi      (hi = w_hi * J - k_hi)
  kBJSpace,     ///< loop index J
  kBJSlot,
  kBKHi,        ///< const pool: k_hi
  kBWLo,        ///< const pool: w_lo      (lo = w_lo * (J - k_lo))
  kBKLo,        ///< const pool: k_lo
  kBDataSig,
  kBDataW,
  kBJ2Space,    ///< parity index (strobe stage)
  kBJ2Slot,
  kBPar,        ///< const pool: parity modulus — or strobe const (kConst)
  kBStrobeSig,
  kBStrobeW,
};
enum : int { kBStrobeConst = kBPar };

// kBinaryFused.
enum : int { kFOp, kFR1, kFR2, kFSpace, kFSlot, kFWidth };

// kSliceImm.
enum : int { kSlRH, kSlCH, kSlRL, kSlCL, kSlRD };

// kWaitForImm.
enum : int { kWR, kWC };

// kCmpBranch.
enum : int { kCbOp, kCbD, kCbA, kCbB, kCbTarget };

// kSignalAssignImm.
enum : int { kSaR, kSaC, kSaSig, kSaW };

// ---------------------------------------------------------------------------
// Pattern construction.

// Rows 1..10 of a bulk-transfer word: the shared index arithmetic both
// generated Send and Receive bodies compile to for the word slice
// (w_hi*J - k_hi  downto  w_lo*(J - k_lo)). The word payload sits in r0
// (loaded by the rule-specific row 0); hi lands in r1, lo in r2. Register
// numbers are literal because statement compilation deterministically
// allocates from r0 (compiler.cpp), so the generated procedures always
// produce exactly these registers.
void append_index_rows(std::vector<InstrPat>& rows) {
  rows.push_back(ip(Op::kConst, any_(), lit_(1), cap_(kBWHi)));
  rows.push_back(ip(Op::kLoadVar, cap_(kBJSpace), lit_(2), cap_(kBJSlot)));
  rows.push_back(ip(Op::kBinary, bop(BinaryOp::kMul), lit_(1), lit_(1),
                    lit_(2)));
  rows.push_back(ip(Op::kConst, any_(), lit_(2), cap_(kBKHi)));
  rows.push_back(ip(Op::kBinary, bop(BinaryOp::kSub), lit_(1), lit_(1),
                    lit_(2)));
  rows.push_back(ip(Op::kConst, any_(), lit_(2), cap_(kBWLo)));
  rows.push_back(ip(Op::kLoadVar, cap_(kBJSpace), lit_(3), cap_(kBJSlot)));
  rows.push_back(ip(Op::kConst, any_(), lit_(4), cap_(kBKLo)));
  rows.push_back(ip(Op::kBinary, bop(BinaryOp::kSub), lit_(3), lit_(3),
                    lit_(4)));
  rows.push_back(ip(Op::kBinary, bop(BinaryOp::kMul), lit_(2), lit_(2),
                    lit_(3)));
}

Pattern bulk_send_pattern(BulkTransfer::Strobe strobe) {
  std::vector<InstrPat> rows;
  rows.push_back(ip(Op::kLoadVar, cap_(kBVarSpace), lit_(0), cap_(kBVarSlot)));
  append_index_rows(rows);
  rows.push_back(ip(Op::kSlice, any_(), lit_(0), lit_(0), lit_(1), lit_(2)));
  rows.push_back(ip(Op::kSignalAssign, any_(), any_(), cap_(kBDataSig),
                    cap_(kBDataW), lit_(0)));
  switch (strobe) {
    case BulkTransfer::Strobe::kNone:
      break;
    case BulkTransfer::Strobe::kConst:
      // START <= '1' style handshake raise right after the word.
      rows.push_back(ip(Op::kConst, any_(), lit_(0), cap_(kBStrobeConst)));
      rows.push_back(ip(Op::kSignalAssign, any_(), any_(), cap_(kBStrobeSig),
                        cap_(kBStrobeW), lit_(0)));
      break;
    case BulkTransfer::Strobe::kParity:
      // STROBE <= J mod 2 word-parity raise.
      rows.push_back(ip(Op::kLoadVar, cap_(kBJ2Space), lit_(0),
                        cap_(kBJ2Slot)));
      rows.push_back(ip(Op::kConst, any_(), lit_(1), cap_(kBPar)));
      rows.push_back(ip(Op::kBinary, bop(BinaryOp::kMod), lit_(0), lit_(0),
                        lit_(1)));
      rows.push_back(ip(Op::kSignalAssign, any_(), any_(), cap_(kBStrobeSig),
                        cap_(kBStrobeW), lit_(0)));
      break;
  }
  return Pattern{std::move(rows)};
}

Pattern bulk_recv_pattern() {
  std::vector<InstrPat> rows;
  rows.push_back(ip(Op::kLoadSignal, any_(), lit_(0), cap_(kBDataSig)));
  append_index_rows(rows);
  rows.push_back(ip(Op::kStoreSlice, cap_(kBVarSpace), lit_(0),
                    cap_(kBVarSlot), lit_(1), lit_(2)));
  return Pattern{std::move(rows)};
}

Pattern fused_binary_pattern(bool with_store) {
  std::vector<InstrPat> rows;
  const std::initializer_list<Op> loads = {Op::kLoadVar, Op::kConst,
                                           Op::kLoadSignal};
  if (with_store) {
    // Top-level `x := a <op> b`: operands always land in r0/r1.
    rows.push_back(ip_any(loads, any_(), lit_(0)));
    rows.push_back(ip_any(loads, any_(), lit_(1)));
    rows.push_back(ip(Op::kBinary, cap_(kFOp), lit_(0), lit_(0), lit_(1)));
    rows.push_back(ip(Op::kStoreVar, cap_(kFSpace), any_(), cap_(kFSlot),
                      lit_(0), cap_(kFWidth)));
  } else {
    rows.push_back(ip_any(loads, any_(), cap_(kFR1)));
    rows.push_back(ip_any(loads, any_(), cap_(kFR2)));
    rows.push_back(ip(Op::kBinary, cap_(kFOp), cap_(kFR1), cap_(kFR1),
                      cap_(kFR2)));
  }
  return Pattern{std::move(rows)};
}

Pattern slice_imm_pattern() {
  std::vector<InstrPat> rows;
  rows.push_back(ip(Op::kConst, any_(), cap_(kSlRH), cap_(kSlCH)));
  rows.push_back(ip(Op::kConst, any_(), cap_(kSlRL), cap_(kSlCL)));
  rows.push_back(ip(Op::kSlice, any_(), cap_(kSlRD), cap_(kSlRD),
                    cap_(kSlRH), cap_(kSlRL)));
  return Pattern{std::move(rows)};
}

Pattern wait_for_imm_pattern() {
  std::vector<InstrPat> rows;
  rows.push_back(ip(Op::kConst, any_(), cap_(kWR), cap_(kWC)));
  rows.push_back(ip(Op::kToInt, any_(), cap_(kWR), cap_(kWR)));
  rows.push_back(ip(Op::kWaitFor, any_(), any_(), cap_(kWR)));
  return Pattern{std::move(rows)};
}

Pattern cmp_branch_pattern() {
  std::vector<InstrPat> rows;
  rows.push_back(ip(Op::kBinary, cap_(kCbOp), cap_(kCbD), cap_(kCbA),
                    cap_(kCbB)));
  rows.push_back(ip(Op::kJumpIfFalse, any_(), any_(), cap_(kCbD),
                    cap_(kCbTarget)));
  return Pattern{std::move(rows)};
}

Pattern signal_assign_imm_pattern() {
  std::vector<InstrPat> rows;
  rows.push_back(ip(Op::kConst, any_(), cap_(kSaR), cap_(kSaC)));
  rows.push_back(ip(Op::kSignalAssign, any_(), any_(), cap_(kSaSig),
                    cap_(kSaW), cap_(kSaR)));
  return Pattern{std::move(rows)};
}

// ---------------------------------------------------------------------------
// Semantic guards + replacement builders. Every builder either fills
// `repl` (appending to the program's side tables as needed) or returns
// false, in which case the original sequence runs unchanged.

/// Fold a pool constant into raw int64 arithmetic only when to_int() is
/// total for it (width in [1,64]) — the folding happens at optimization
/// time, so a constant whose conversion would trap at runtime must stay
/// on the generic path to keep its lazy error timing.
bool fusable_const(const ProcProgram& prog, std::int64_t idx,
                   std::int64_t& out) {
  const Scalar& c = prog.consts[static_cast<std::size_t>(idx)];
  const int w = c.bits.width();
  if (w < 1 || w > 64) return false;
  out = c.to_int();
  return true;
}

bool build_bulk_common(const ProcProgram& prog, const MatchContext& ctx,
                       BulkTransfer& bt) {
  if (!fusable_const(prog, ctx[kBWHi], bt.w_hi)) return false;
  if (!fusable_const(prog, ctx[kBKHi], bt.k_hi)) return false;
  if (!fusable_const(prog, ctx[kBWLo], bt.w_lo)) return false;
  if (!fusable_const(prog, ctx[kBKLo], bt.k_lo)) return false;
  bt.var_space = static_cast<Space>(ctx[kBVarSpace]);
  bt.var_slot = static_cast<std::int32_t>(ctx[kBVarSlot]);
  bt.j_space = static_cast<Space>(ctx[kBJSpace]);
  bt.j_slot = static_cast<std::int32_t>(ctx[kBJSlot]);
  bt.data_signal = static_cast<SignalId>(ctx[kBDataSig]);
  return true;
}

bool build_bulk_send(ProcProgram& prog, std::span<const Instr> seq,
                     const MatchContext& ctx, BulkTransfer::Strobe strobe,
                     Instr& repl) {
  BulkTransfer bt;
  if (!build_bulk_common(prog, ctx, bt)) return false;
  bt.data_width = static_cast<int>(ctx[kBDataW]);
  bt.strobe = strobe;
  switch (strobe) {
    case BulkTransfer::Strobe::kNone:
      break;
    case BulkTransfer::Strobe::kConst:
      bt.strobe_signal = static_cast<SignalId>(ctx[kBStrobeSig]);
      bt.strobe_width = static_cast<int>(ctx[kBStrobeW]);
      bt.strobe_const = static_cast<std::int32_t>(ctx[kBStrobeConst]);
      break;
    case BulkTransfer::Strobe::kParity:
      bt.strobe_signal = static_cast<SignalId>(ctx[kBStrobeSig]);
      bt.strobe_width = static_cast<int>(ctx[kBStrobeW]);
      bt.j2_space = static_cast<Space>(ctx[kBJ2Space]);
      bt.j2_slot = static_cast<std::int32_t>(ctx[kBJ2Slot]);
      // Modulus zero would hit the generic path's lazy "mod by zero"
      // error at runtime; keep such code unfused.
      if (!fusable_const(prog, ctx[kBPar], bt.par_mod)) return false;
      if (bt.par_mod == 0) return false;
      break;
  }
  bt.weight = static_cast<std::uint32_t>(seq.size());
  prog.bulks.push_back(bt);
  repl = Instr{.op = Op::kBulkSend,
               .a = static_cast<std::int32_t>(prog.bulks.size()) - 1};
  return true;
}

bool build_bulk_send_parity(ProcProgram& prog, std::span<const Instr> seq,
                            const MatchContext& ctx, Instr& repl) {
  return build_bulk_send(prog, seq, ctx, BulkTransfer::Strobe::kParity, repl);
}

bool build_bulk_send_const(ProcProgram& prog, std::span<const Instr> seq,
                           const MatchContext& ctx, Instr& repl) {
  return build_bulk_send(prog, seq, ctx, BulkTransfer::Strobe::kConst, repl);
}

bool build_bulk_send_bare(ProcProgram& prog, std::span<const Instr> seq,
                          const MatchContext& ctx, Instr& repl) {
  return build_bulk_send(prog, seq, ctx, BulkTransfer::Strobe::kNone, repl);
}

bool build_bulk_recv(ProcProgram& prog, std::span<const Instr> seq,
                     const MatchContext& ctx, Instr& repl) {
  BulkTransfer bt;
  if (!build_bulk_common(prog, ctx, bt)) return false;
  bt.weight = static_cast<std::uint32_t>(seq.size());
  prog.bulks.push_back(bt);
  repl = Instr{.op = Op::kBulkRecv,
               .a = static_cast<std::int32_t>(prog.bulks.size()) - 1};
  return true;
}

FusedOperand fused_operand(const Instr& load) {
  FusedOperand o;
  switch (load.op) {
    case Op::kLoadVar:
      o.kind = FusedOperand::Kind::kSlot;
      o.space = static_cast<Space>(load.aux);
      break;
    case Op::kConst:
      o.kind = FusedOperand::Kind::kConst;
      break;
    case Op::kLoadSignal:
      o.kind = FusedOperand::Kind::kSignal;
      break;
    default:
      IFSYN_ASSERT_MSG(false, "non-load row in fused-binary match");
  }
  o.index = load.a;
  return o;
}

bool build_fused(ProcProgram& prog, std::span<const Instr> seq, bool has_store,
                 std::uint16_t dst_reg, Instr& repl) {
  // const<op>const stays on the generic path: the compiler already folds
  // every non-trapping case, so what remains is a deliberate lazy error
  // (e.g. division by zero) whose per-execution behavior must not change.
  if (seq[0].op == Op::kConst && seq[1].op == Op::kConst) return false;
  FusedBinary f;
  f.op = static_cast<BinaryOp>(seq[2].aux);
  f.lhs = fused_operand(seq[0]);
  f.rhs = fused_operand(seq[1]);
  f.dst_reg = dst_reg;
  f.has_store = has_store;
  if (has_store) {
    f.store_space = static_cast<Space>(seq[3].aux);
    f.store_slot = seq[3].a;
    f.store_width = seq[3].c;
  }
  f.weight = static_cast<std::uint32_t>(seq.size());
  prog.fusions.push_back(f);
  repl = Instr{.op = Op::kBinaryFused,
               .a = static_cast<std::int32_t>(prog.fusions.size()) - 1};
  return true;
}

bool build_fused_store(ProcProgram& prog, std::span<const Instr> seq,
                       const MatchContext& ctx, Instr& repl) {
  (void)ctx;
  return build_fused(prog, seq, /*has_store=*/true, /*dst_reg=*/0, repl);
}

bool build_fused_plain(ProcProgram& prog, std::span<const Instr> seq,
                       const MatchContext& ctx, Instr& repl) {
  // Distinct operand registers, or the second load would have clobbered
  // the first and the fusion would read a stale lhs.
  if (ctx[kFR1] == ctx[kFR2]) return false;
  return build_fused(prog, seq, /*has_store=*/false,
                     static_cast<std::uint16_t>(ctx[kFR1]), repl);
}

bool build_slice_imm(ProcProgram& prog, std::span<const Instr> seq,
                     const MatchContext& ctx, Instr& repl) {
  (void)prog;
  (void)seq;
  // The two bound constants must land in distinct registers, neither of
  // them the slice base (the compiler emits base, base+1, base+2) — any
  // other shape means a register clobber the fusion would not reproduce.
  const std::int64_t rh = ctx[kSlRH], rl = ctx[kSlRL], rd = ctx[kSlRD];
  if (rh == rl || rh == rd || rl == rd) return false;
  repl = Instr{.op = Op::kSliceImm,
               .dst = static_cast<std::uint16_t>(rd),
               .a = static_cast<std::int32_t>(rd),
               .b = static_cast<std::int32_t>(ctx[kSlCH]),
               .c = static_cast<std::int32_t>(ctx[kSlCL])};
  return true;
}

bool build_wait_for_imm(ProcProgram& prog, std::span<const Instr> seq,
                        const MatchContext& ctx, Instr& repl) {
  (void)prog;
  (void)seq;
  // No value guard: the handler calls consts[a].to_int() at runtime,
  // which raises the exact asserts the replaced kToInt/kWaitFor pair did.
  repl = Instr{.op = Op::kWaitForImm,
               .a = static_cast<std::int32_t>(ctx[kWC])};
  return true;
}

bool build_cmp_branch(ProcProgram& prog, std::span<const Instr> seq,
                      const MatchContext& ctx, Instr& repl) {
  (void)prog;
  (void)seq;
  repl = Instr{.op = Op::kCmpBranch,
               .aux = static_cast<std::uint8_t>(ctx[kCbOp]),
               .dst = static_cast<std::uint16_t>(ctx[kCbD]),
               .a = static_cast<std::int32_t>(ctx[kCbA]),
               .b = static_cast<std::int32_t>(ctx[kCbB]),
               .c = static_cast<std::int32_t>(ctx[kCbTarget])};
  return true;
}

bool build_signal_assign_imm(ProcProgram& prog, std::span<const Instr> seq,
                             const MatchContext& ctx, Instr& repl) {
  (void)prog;
  (void)seq;
  repl = Instr{.op = Op::kSignalAssignImm,
               .a = static_cast<std::int32_t>(ctx[kSaSig]),
               .b = static_cast<std::int32_t>(ctx[kSaW]),
               .c = static_cast<std::int32_t>(ctx[kSaC])};
  return true;
}

// ---------------------------------------------------------------------------
// Rule table and the scan / rebuild / remap engine.

struct Rule {
  const char* name;
  Pattern pattern;
  bool (*build)(ProcProgram&, std::span<const Instr>, const MatchContext&,
                Instr&);
};

const std::vector<Rule>& rules() {
  // Priority order: bulk transfers (longest, biggest win) before the
  // peepholes; a bulk candidate whose guards reject still degrades
  // gracefully into peephole fusions over its arithmetic rows.
  static const std::vector<Rule> kRules = [] {
    std::vector<Rule> r;
    r.push_back({"bulk-send-parity",
                 bulk_send_pattern(BulkTransfer::Strobe::kParity),
                 build_bulk_send_parity});
    r.push_back({"bulk-send-const",
                 bulk_send_pattern(BulkTransfer::Strobe::kConst),
                 build_bulk_send_const});
    r.push_back({"bulk-send-bare",
                 bulk_send_pattern(BulkTransfer::Strobe::kNone),
                 build_bulk_send_bare});
    r.push_back({"bulk-recv", bulk_recv_pattern(), build_bulk_recv});
    r.push_back({"fused-binary-store", fused_binary_pattern(true),
                 build_fused_store});
    r.push_back({"fused-binary", fused_binary_pattern(false),
                 build_fused_plain});
    r.push_back({"slice-imm", slice_imm_pattern(), build_slice_imm});
    r.push_back({"wait-for-imm", wait_for_imm_pattern(), build_wait_for_imm});
    r.push_back({"cmp-branch", cmp_branch_pattern(), build_cmp_branch});
    r.push_back({"signal-assign-imm", signal_assign_imm_pattern(),
                 build_signal_assign_imm});
    return r;
  }();
  return kRules;
}

/// Every pc control can land on without falling through: rewrites must
/// not swallow one into a superinstruction interior. Suspension-resume
/// and call-return pcs are included defensively — no current pattern
/// contains a mid-sequence suspension or call, but the invariant is
/// cheap to enforce and rules shouldn't have to reason about it.
std::vector<char> jump_targets(const ProcProgram& prog) {
  std::vector<char> t(prog.code.size() + 1, 0);
  auto mark = [&t](std::int64_t pc) {
    if (pc >= 0 && pc < static_cast<std::int64_t>(t.size())) {
      t[static_cast<std::size_t>(pc)] = 1;
    }
  };
  mark(prog.entry);
  for (const CallSite& cs : prog.callsites) mark(cs.entry_pc);
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& in = prog.code[pc];
    switch (in.op) {
      case Op::kJump: mark(in.a); break;
      case Op::kJumpIfFalse: mark(in.b); break;
      case Op::kLoopTest: mark(in.c); break;
      case Op::kLoopInc: mark(in.b); break;
      case Op::kCmpBranch: mark(in.c); break;
      case Op::kCall:
      case Op::kWaitFor:
      case Op::kWaitForImm:
      case Op::kWaitOn:
      case Op::kWaitUntil:
      case Op::kAcquireBus:
        mark(static_cast<std::int64_t>(pc) + 1);
        break;
      default:
        break;
    }
  }
  return t;
}

struct PendingMatch {
  std::size_t at = 0;
  std::size_t len = 0;
  Instr repl;
};

/// Collect non-overlapping matches over code[lo, hi). `targets` is null
/// for condition code (no jumps can exist there).
void scan_region(ProcProgram& prog, const std::vector<Instr>& code,
                 std::size_t lo, std::size_t hi,
                 const std::vector<char>* targets,
                 std::vector<PendingMatch>& out) {
  const std::span<const Instr> window(code.data(), hi);
  MatchContext ctx;
  std::size_t pc = lo;
  while (pc < hi) {
    bool matched = false;
    for (const Rule& rule : rules()) {
      const std::size_t len = rule.pattern.size();
      if (!rule.pattern.match(window, pc, ctx)) continue;
      if (targets != nullptr) {
        bool interior = false;
        for (std::size_t k = pc + 1; k < pc + len; ++k) {
          interior = interior || (*targets)[k] != 0;
        }
        if (interior) continue;
      }
      Instr repl;
      if (!rule.build(prog, std::span<const Instr>(code.data() + pc, len),
                      ctx, repl)) {
        continue;
      }
      out.push_back(PendingMatch{pc, len, repl});
      pc += len;
      matched = true;
      break;
    }
    if (!matched) ++pc;
  }
}

/// Replace each matched sequence with its superinstruction. Returns the
/// old-pc -> new-pc map (size old_size + 1, one-past-the-end included);
/// interior pcs map to their superinstruction, so any stored target that
/// survived the interior check maps correctly.
std::vector<std::uint32_t> rebuild(std::vector<Instr>& code,
                                   const std::vector<PendingMatch>& matches) {
  std::vector<std::uint32_t> map(code.size() + 1, 0);
  std::vector<Instr> out;
  out.reserve(code.size());
  std::size_t mi = 0;
  std::size_t pc = 0;
  while (pc < code.size()) {
    if (mi < matches.size() && matches[mi].at == pc) {
      for (std::size_t k = 0; k < matches[mi].len; ++k) {
        map[pc + k] = static_cast<std::uint32_t>(out.size());
      }
      out.push_back(matches[mi].repl);
      pc += matches[mi].len;
      ++mi;
    } else {
      map[pc] = static_cast<std::uint32_t>(out.size());
      out.push_back(code[pc]);
      ++pc;
    }
  }
  map[code.size()] = static_cast<std::uint32_t>(out.size());
  code = std::move(out);
  return map;
}

void remap_code_targets(ProcProgram& prog,
                        const std::vector<std::uint32_t>& map) {
  auto rm = [&map](std::int32_t& target) {
    target = static_cast<std::int32_t>(map[static_cast<std::size_t>(target)]);
  };
  for (Instr& in : prog.code) {
    switch (in.op) {
      case Op::kJump: rm(in.a); break;
      case Op::kJumpIfFalse: rm(in.b); break;
      case Op::kLoopTest: rm(in.c); break;
      case Op::kLoopInc: rm(in.b); break;
      case Op::kCmpBranch: rm(in.c); break;
      default: break;
    }
  }
  prog.entry = map[prog.entry];
  for (CallSite& cs : prog.callsites) cs.entry_pc = map[cs.entry_pc];
}

void optimize_program(ProcProgram& prog, OptStats& stats) {
  // Iterate to fixpoint: a second pass can match around (never inside)
  // first-pass superinstructions. No current rule matches a
  // superinstruction opcode, so this converges in two passes; the cap is
  // a safety net.
  for (int pass = 0; pass < 4; ++pass) {
    std::size_t found = 0;

    std::vector<PendingMatch> matches;
    const std::vector<char> targets = jump_targets(prog);
    scan_region(prog, prog.code, 0, prog.code.size(), &targets, matches);
    found += matches.size();
    if (!matches.empty()) {
      const std::vector<std::uint32_t> map = rebuild(prog.code, matches);
      remap_code_targets(prog, map);
    }

    // Condition programs: match within each CondProgram's range so no
    // rewrite straddles two conditions, then remap every range through
    // the shared map. ref_ops keeps the pre-optimization count.
    matches.clear();
    for (const CondProgram& cp : prog.conds) {
      scan_region(prog, prog.cond_code, cp.start, cp.start + cp.count,
                  nullptr, matches);
    }
    std::sort(matches.begin(), matches.end(),
              [](const PendingMatch& a, const PendingMatch& b) {
                return a.at < b.at;
              });
    found += matches.size();
    if (!matches.empty()) {
      const std::vector<std::uint32_t> map = rebuild(prog.cond_code, matches);
      for (CondProgram& cp : prog.conds) {
        const std::uint32_t end = map[cp.start + cp.count];
        cp.start = map[cp.start];
        cp.count = end - cp.start;
      }
    }

    stats.patterns_matched += found;
    if (found == 0) break;
  }
}

}  // namespace

void optimize(CompiledSystem& cs, OptLevel level) {
  cs.opt_level = level;
  cs.opt = OptStats{};
  cs.optimized_instructions = cs.total_instructions;
  if (level == OptLevel::kNone) return;
  for (ProcProgram& prog : cs.processes) optimize_program(prog, cs.opt);
  std::uint64_t after = 0;
  for (const ProcProgram& p : cs.processes) {
    after += p.code.size() + p.cond_code.size();
  }
  cs.optimized_instructions = after;
  cs.opt.instructions_eliminated = cs.total_instructions - after;
}

}  // namespace ifsyn::sim::bytecode
