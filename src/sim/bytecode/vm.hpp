// ifsyn/sim/bytecode/vm.hpp
//
// The dispatch-loop virtual machine executing compiled ProcPrograms on the
// discrete-event kernel.
//
// Execution model: one SimTask coroutine per process runs a flat dispatch
// loop over the process's instruction array. Straight-line code (loads,
// stores, arithmetic, branches, calls) executes without touching the
// coroutine machinery; only the kernel suspensions (`wait for/on/until`,
// bus acquisition) reach a co_await, with the program counter already
// advanced past the instruction — resuming simply re-enters the loop.
// Procedure calls are an explicit frame stack inside the VM (push frame,
// jump, pop on kReturn), not child coroutines, so a deep call chain costs
// no coroutine frames either.
//
// The VM replaces the AST interpreter's data plane only; scheduling,
// signal commits and tracing stay in the kernel, which is why the two
// engines produce identical traces (the differential fuzz harness holds
// them to that).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/bytecode/program.hpp"
#include "sim/kernel.hpp"
#include "spec/system.hpp"

namespace ifsyn::obs {
class Counter;
}

namespace ifsyn::sim::bytecode {

class Vm {
 public:
  /// Binds to a system and kernel; both must outlive the Vm.
  Vm(const spec::System& system, Kernel& kernel);

  /// Compile the system (or fetch the artifact from the installed
  /// process-wide ProgramCache — see program_cache.hpp) and register one
  /// process coroutine per compiled program. Call once, after the
  /// kernel's signals and bus locks are declared (the compiler interns
  /// through the kernel) and before Kernel::run. Records compile time and
  /// size through the kernel's attached metrics registry (sim.vm.*
  /// metrics); the deterministic ones are identical whether the artifact
  /// was compiled or cached, so reports keep their byte-identity.
  void setup();

  /// Read / overwrite a system-level variable (same contract as
  /// Interpreter::value_of / set_value).
  const spec::Value& value_of(const std::string& variable) const;
  void set_value(const std::string& variable, spec::Value value);

  const CompiledSystem& compiled() const { return *compiled_; }

 private:
  struct CallRecord {
    std::uint32_t return_pc = 0;
    std::uint32_t layout = 0;        ///< caller frame's layout index
    std::vector<spec::Value> frame;  ///< caller's suspended frame
  };

  /// Live execution state of one process (one per compiled program;
  /// addresses are stable — states_ is a deque — because the coroutine
  /// factory captures a reference).
  struct ExecState {
    Vm* vm = nullptr;  ///< owner; lets wait-until lambdas capture only
                       ///< {&st, &cond} and fit std::function's inline
                       ///< buffer (no allocation per executed wait)
    const ProcProgram* prog = nullptr;
    std::uint32_t pc = 0;
    std::vector<spec::Value> proc_frame;  ///< layout 0: process locals
    std::vector<spec::Value> frame;       ///< current procedure activation
    std::vector<spec::Value> ret_frame;   ///< last returned activation
    std::uint32_t frame_layout = 0;       ///< layout index of `frame`
    std::uint32_t ret_frame_layout = 0;   ///< layout index of `ret_frame`
    std::vector<CallRecord> call_stack;
    std::vector<Scalar> regs;
    /// Retired activation frames, per layout index, recycled by do_call
    /// to avoid a heap allocation per procedure call.
    std::vector<std::vector<std::vector<spec::Value>>> frame_pool;
  };

  /// Why run_until_suspend handed control back to the coroutine.
  enum class SuspendKind {
    kHalt,
    kWaitFor,     ///< arg = cycle count
    kWaitOn,      ///< arg = wait-set index
    kWaitUntil,   ///< arg = condition-program index
    kAcquireBus,  ///< arg = BusId
  };

  SimTask run_process(ExecState& st);
  /// The hot dispatch loop: executes straight-line code from st.pc until
  /// the next suspension point (or halt), leaving st.pc at the resume
  /// address. Lives outside the coroutine so pc and the instruction
  /// pointer stay in machine registers instead of the coroutine frame.
  SuspendKind run_until_suspend(ExecState& st, std::uint64_t& ops,
                                std::uint64_t& arg);
  void reset(ExecState& st);
  std::vector<spec::Value> make_frame(const FrameLayout& layout) const;
  /// A zero-initialized frame for `layout_index`, reusing a pooled frame's
  /// storage when one is available.
  std::vector<spec::Value> acquire_frame(ExecState& st,
                                         std::uint32_t layout_index) const;

  spec::Value& slot(ExecState& st, Space space, std::int32_t index);
  /// Execute one non-suspending, non-control-flow instruction.
  void exec_op(ExecState& st, const Instr& in);
  /// Superinstruction handlers (optimizer-emitted, see optimizer.hpp):
  /// one whole P3 transfer-loop word — and, for sends, the fused strobe
  /// raise — per dispatch.
  void exec_bulk_send(ExecState& st, const BulkTransfer& bt);
  void exec_bulk_recv(ExecState& st, const BulkTransfer& bt);
  bool eval_cond(ExecState& st, const CondProgram& cp);
  void do_call(ExecState& st, const CallSite& cs);
  void do_return(ExecState& st);
  void flush_ops(std::uint64_t& ops);

  const spec::System& system_;
  Kernel& kernel_;
  /// Immutable, possibly shared with other Vms via the process-wide
  /// ProgramCache; all mutable state lives in states_.
  std::shared_ptr<const CompiledSystem> compiled_;
  std::deque<ExecState> states_;
  std::vector<spec::Value> globals_;  ///< shared by all processes
  obs::Counter* executed_ops_ = nullptr;
  /// Wall-clock-classed: counts kBulkSend/kBulkRecv dispatches, which
  /// depend on the optimization level and so must never feed a
  /// deterministic report table.
  obs::Counter* bulk_ops_ = nullptr;
};

}  // namespace ifsyn::sim::bytecode
