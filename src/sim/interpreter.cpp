#include "sim/interpreter.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/log.hpp"
#include "sim/bytecode/vm.hpp"
#include "sim/native/engine.hpp"
#include "util/assert.hpp"

namespace ifsyn::sim {

using spec::Block;
using spec::Expr;
using spec::Stmt;

// Scalar and the shared operator semantics (extend / make_int / make_bool /
// eval_unary_op / eval_binary_op) live in sim/scalar.hpp, used verbatim by
// both this engine and the bytecode VM.

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kVm: return "vm";
    case Engine::kAst: return "ast";
    case Engine::kNative: return "native";
  }
  return "vm";
}

Engine engine_from_env(std::string* bad_value) {
  if (bad_value) bad_value->clear();
  const char* env = std::getenv("IFSYN_SIM_ENGINE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "vm") == 0) {
    return Engine::kVm;
  }
  if (std::strcmp(env, "ast") == 0) return Engine::kAst;
  if (std::strcmp(env, "native") == 0) return Engine::kNative;
  // Unknown spelling: degrade to the portable default, but loudly —
  // setup() turns this into a structured warning naming both the bad
  // value and the engine actually chosen.
  if (bad_value) *bad_value = env;
  return Engine::kVm;
}

Interpreter::Interpreter(const spec::System& system, Kernel& kernel)
    : system_(system), kernel_(kernel) {
  engine_ = engine_from_env(&bad_engine_env_);
}

Interpreter::Interpreter(const spec::System& system, Kernel& kernel,
                         Engine engine)
    : system_(system), kernel_(kernel), engine_(engine) {
  // simulate() resolves its default engine through engine_from_env() and
  // lands here; re-probe so an unknown env spelling still gets its
  // warning — but only when the VM really is the engine in effect (an
  // explicit non-VM choice was not decided by the bad value).
  std::string bad;
  if (engine_from_env(&bad) == engine_ && engine_ == Engine::kVm) {
    bad_engine_env_ = std::move(bad);
  }
}

Interpreter::~Interpreter() = default;

Status Interpreter::setup() {
  IFSYN_RETURN_IF_ERROR(system_.validate());

  for (const auto& s : system_.signals()) {
    for (const auto& f : s->fields) {
      kernel_.add_signal_field(FieldKey{s->name, f.name},
                               BitVector(f.width));
    }
  }

  for (const auto& b : system_.buses()) {
    if (b->arbitrated) kernel_.add_bus_lock(b->name);
  }

  if (!bad_engine_env_.empty()) {
    if (obs::EventLog* log = kernel_.obs().log) {
      log->log(obs::Severity::kWarn, "sim",
               "unknown IFSYN_SIM_ENGINE value; using the bytecode VM",
               {{"value", bad_engine_env_}, {"engine", "vm"}});
    }
  }

  if (engine_ == Engine::kNative) {
    // The native engine is all-or-nothing: a failed setup leaves the
    // kernel untouched, so falling through to the VM block below produces
    // a run byte-identical to one that never asked for native.
    auto native = std::make_unique<native::NativeEngine>(system_, kernel_);
    std::string why;
    if (native->setup(&why)) {
      native_ = std::move(native);
      if (obs::MetricsRegistry* metrics = kernel_.obs().metrics) {
        metrics->gauge("sim.engine", obs::Determinism::kWallClock)
            .set(static_cast<std::int64_t>(engine_));
      }
      return Status::ok();
    }
    if (obs::MetricsRegistry* metrics = kernel_.obs().metrics) {
      metrics
          ->counter("sim.native.fallbacks", obs::Determinism::kWallClock)
          .add(1);
    }
    if (obs::EventLog* log = kernel_.obs().log) {
      // Rate-limited by the log itself: a serve process hammered with
      // requests on a toolchain-less box warns a few times, not per run.
      log->log(obs::Severity::kWarn, "sim",
               "native engine unavailable; falling back to the bytecode VM",
               {{"reason", why}, {"engine", "vm"}});
    }
    engine_ = Engine::kVm;
  }

  if (obs::MetricsRegistry* metrics = kernel_.obs().metrics) {
    // The *effective* engine (post-fallback), where the opt level already
    // appears; wall-clock-classed for the same reason sim.vm.opt.level is.
    metrics->gauge("sim.engine", obs::Determinism::kWallClock)
        .set(static_cast<std::int64_t>(engine_));
  }

  if (engine_ == Engine::kVm) {
    // Compile-and-register path: the Vm owns global storage, compiled
    // programs and process registration; value_of/set_value delegate.
    vm_ = std::make_unique<bytecode::Vm>(system_, kernel_);
    vm_->setup();
    return Status::ok();
  }

  globals_.clear();
  for (const auto& v : system_.variables()) {
    globals_.emplace(v->name, v->init ? *v->init : spec::Value(v->type));
  }

  // Interning pre-pass: resolve every signal/bus reference in the spec to
  // its dense kernel id. Must run after the declarations above.
  signal_refs_.clear();
  assign_slots_.clear();
  wait_sets_.clear();
  bus_refs_.clear();
  for (const auto& p : system_.processes()) intern_block(p->body);
  for (const auto& pr : system_.procedures()) intern_block(pr->body);

  for (const auto& p : system_.processes()) {
    const spec::Process* proc = p.get();
    ProcState& state = proc_states_[proc->name];
    kernel_.add_process(
        proc->name,
        [this, proc, &state]() { return run_process(*proc, state); },
        proc->restarts);
  }
  return Status::ok();
}

// ---- elaboration-time interning -------------------------------------------

void Interpreter::intern_expr(const spec::Expr& expr) {
  using namespace spec;
  std::visit(
      [this](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayRef>) {
          intern_expr(*node.index);
        } else if constexpr (std::is_same_v<T, SliceExpr>) {
          intern_expr(*node.base);
          intern_expr(*node.hi);
          intern_expr(*node.lo);
        } else if constexpr (std::is_same_v<T, SignalRef>) {
          const SignalId id =
              kernel_.find_signal_id(FieldKey{node.signal, node.field});
          if (id != kInvalidSignalId) signal_refs_.emplace(&node, id);
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          intern_expr(*node.operand);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          intern_expr(*node.lhs);
          intern_expr(*node.rhs);
        }
        // IntLit / BitsLit / VarRef: nothing to resolve.
      },
      expr.node());
}

void Interpreter::intern_lvalue(const spec::LValue& lv) {
  if (lv.index) intern_expr(*lv.index);
  if (lv.slice_hi) intern_expr(*lv.slice_hi);
  if (lv.slice_lo) intern_expr(*lv.slice_lo);
}

void Interpreter::intern_block(const spec::Block& block) {
  using namespace spec;
  for (const auto& stmt : block) {
    if (const auto* s = stmt->as<VarAssign>()) {
      intern_lvalue(s->target);
      intern_expr(*s->value);
    } else if (const auto* s = stmt->as<SignalAssign>()) {
      const SignalId id =
          kernel_.find_signal_id(FieldKey{s->signal, s->field});
      if (id != kInvalidSignalId) {
        assign_slots_.emplace(
            s, AssignSlot{id, kernel_.signal_value(id).width()});
      }
      intern_expr(*s->value);
    } else if (const auto* s = stmt->as<WaitUntil>()) {
      intern_expr(*s->cond);
    } else if (const auto* s = stmt->as<WaitOn>()) {
      // Unknown keys resolve to nothing: under the old scan they could
      // never match, so dropping them preserves never-wakes semantics.
      std::vector<SignalId> ids;
      ids.reserve(s->sensitivity.size());
      for (const auto& sf : s->sensitivity) {
        const SignalId id =
            sf.field.empty()
                ? kernel_.find_wildcard_id(sf.signal)
                : kernel_.find_signal_id(FieldKey{sf.signal, sf.field});
        if (id != kInvalidSignalId) ids.push_back(id);
      }
      wait_sets_.emplace(s, std::move(ids));
    } else if (const auto* s = stmt->as<WaitFor>()) {
      intern_expr(*s->cycles);
    } else if (const auto* s = stmt->as<IfStmt>()) {
      intern_expr(*s->cond);
      intern_block(s->then_body);
      intern_block(s->else_body);
    } else if (const auto* s = stmt->as<ForStmt>()) {
      intern_expr(*s->from);
      intern_expr(*s->to);
      intern_block(s->body);
    } else if (const auto* s = stmt->as<WhileStmt>()) {
      intern_expr(*s->cond);
      intern_block(s->body);
    } else if (const auto* s = stmt->as<ForeverStmt>()) {
      intern_block(s->body);
    } else if (const auto* s = stmt->as<ProcCall>()) {
      for (const auto& arg : s->args) {
        if (const auto* e = std::get_if<ExprPtr>(&arg)) {
          intern_expr(**e);
        } else {
          intern_lvalue(std::get<LValue>(arg));
        }
      }
    } else if (const auto* s = stmt->as<BusLock>()) {
      const BusId id = kernel_.find_bus_id(s->bus);
      if (id != kInvalidBusId) bus_refs_.emplace(s, id);
    }
  }
}

const spec::Value& Interpreter::value_of(const std::string& variable) const {
  if (native_) return native_->value_of(variable);
  if (vm_) return vm_->value_of(variable);
  auto it = globals_.find(variable);
  IFSYN_ASSERT_MSG(it != globals_.end(), "unknown variable " << variable);
  return it->second;
}

void Interpreter::set_value(const std::string& variable, spec::Value value) {
  if (native_) {
    native_->set_value(variable, std::move(value));
    return;
  }
  if (vm_) {
    vm_->set_value(variable, std::move(value));
    return;
  }
  auto it = globals_.find(variable);
  IFSYN_ASSERT_MSG(it != globals_.end(), "unknown variable " << variable);
  IFSYN_ASSERT_MSG(it->second.type() == value.type(),
                   "type mismatch setting " << variable);
  it->second = std::move(value);
}

spec::Value* Interpreter::lookup(ProcState& state, const std::string& name) {
  if (!state.frames.empty()) {
    // innermost frame (current procedure / loop scope)
    auto& top = state.frames.back().vars;
    if (auto it = top.find(name); it != top.end()) return &it->second;
    // process locals
    auto& locals = state.frames.front().vars;
    if (auto it = locals.find(name); it != locals.end()) return &it->second;
  }
  if (auto it = globals_.find(name); it != globals_.end()) return &it->second;
  return nullptr;
}

spec::Value& Interpreter::lookup_or_fail(ProcState& state,
                                         const std::string& name) {
  spec::Value* v = lookup(state, name);
  IFSYN_ASSERT_MSG(v, "reference to undeclared variable '" << name << "'");
  return *v;
}

// ---- expression evaluation --------------------------------------------

std::int64_t Interpreter::eval_int(const Expr& expr, ProcState& state) {
  // Loop bounds, slice indices and wait durations are usually literals;
  // skip the Scalar round-trip (make_int(v).to_int() == v for any v).
  if (const auto* lit = std::get_if<spec::IntLit>(&expr.node())) {
    return lit->value;
  }
  return eval(expr, state).to_int();
}

// Dispatch is a get_if chain ordered by hot-loop frequency rather than
// std::visit: the chain is a handful of integer compares that the compiler
// inlines through, where the visit jump table costs an indirect call per
// evaluated node.
Scalar Interpreter::eval(const Expr& expr, ProcState& state) {
  using namespace spec;
  const auto& alt = expr.node();
  if (const auto* node = std::get_if<SignalRef>(&alt)) {
    if (const SignalId* id = signal_refs_.find(node)) {
      return Scalar{kernel_.signal_value(*id), false};
    }
    // Not interned: unknown at setup (or node outside the walked
    // spec); the name path asserts exactly as it always did.
    return Scalar{kernel_.signal_value(FieldKey{node->signal, node->field}),
                  false};
  }
  if (const auto* node = std::get_if<VarRef>(&alt)) {
    const Value& v = lookup_or_fail(state, node->name);
    IFSYN_ASSERT_MSG(!v.is_array(),
                     "array '" << node->name << "' used without an index");
    return Scalar{v.get(), v.type().is_signed()};
  }
  if (const auto* node = std::get_if<IntLit>(&alt)) {
    return make_int(node->value);
  }
  if (const auto* node = std::get_if<BinaryExpr>(&alt)) {
    const Scalar lhs = eval(*node->lhs, state);
    const Scalar rhs = eval(*node->rhs, state);
    return eval_binary_op(node->op, lhs, rhs);
  }
  if (const auto* node = std::get_if<UnaryExpr>(&alt)) {
    const Scalar operand = eval(*node->operand, state);
    return eval_unary_op(node->op, operand);
  }
  if (const auto* node = std::get_if<SliceExpr>(&alt)) {
    const Scalar base = eval(*node->base, state);
    const int hi = static_cast<int>(eval_int(*node->hi, state));
    const int lo = static_cast<int>(eval_int(*node->lo, state));
    return Scalar{base.bits.slice(hi, lo), false};
  }
  if (const auto* node = std::get_if<ArrayRef>(&alt)) {
    const std::int64_t index = eval_int(*node->index, state);
    const Value& v = lookup_or_fail(state, node->name);
    IFSYN_ASSERT_MSG(v.is_array(), "indexing non-array '" << node->name << "'");
    return Scalar{v.at(static_cast<int>(index)), v.type().is_signed()};
  }
  if (const auto* node = std::get_if<BitsLit>(&alt)) {
    return Scalar{node->value, false};
  }
  IFSYN_ASSERT(false);
  return Scalar{};
}

// ---- stores -------------------------------------------------------------

void Interpreter::store(ProcState& state, const spec::LValue& target,
                        Scalar value) {
  spec::Value& dest = lookup_or_fail(state, target.name);

  auto coerce = [&value](int width) {
    return extend(value, width);
  };

  if (target.index) {
    IFSYN_ASSERT_MSG(dest.is_array(),
                     "indexed store into non-array '" << target.name << "'");
    const int index = static_cast<int>(eval_int(*target.index, state));
    if (target.slice_hi) {
      BitVector elem = dest.at(index);
      const int hi = static_cast<int>(eval_int(*target.slice_hi, state));
      const int lo = static_cast<int>(eval_int(*target.slice_lo, state));
      elem.set_slice(hi, lo, coerce(hi - lo + 1));
      dest.set_at(index, std::move(elem));
    } else {
      dest.set_at(index, coerce(dest.type().scalar_width()));
    }
    return;
  }

  IFSYN_ASSERT_MSG(!dest.is_array(),
                   "whole-array assignment to '" << target.name
                                                 << "' is not supported");
  if (target.slice_hi) {
    BitVector current = dest.get();
    const int hi = static_cast<int>(eval_int(*target.slice_hi, state));
    const int lo = static_cast<int>(eval_int(*target.slice_lo, state));
    current.set_slice(hi, lo, coerce(hi - lo + 1));
    dest.set(std::move(current));
  } else {
    dest.set(coerce(dest.type().scalar_width()));
  }
}

void Interpreter::exec_signal_assign(const spec::SignalAssign& sa,
                                     ProcState& state) {
  if (const AssignSlot* slot = assign_slots_.find(&sa)) {
    Scalar value = eval(*sa.value, state);
    kernel_.schedule_signal(slot->id, extend(value, slot->width));
    return;
  }
  const FieldKey key{sa.signal, sa.field};
  const int width = kernel_.signal_value(key).width();
  Scalar value = eval(*sa.value, state);
  kernel_.schedule_signal(key, extend(value, width));
}

// ---- statement execution -------------------------------------------------

// NOTE on coroutine style: every co_await in this file awaits a *named
// local*, never a prvalue. GCC 12 miscompiles non-trivially-destructible
// temporaries inside co_await expressions (double destruction of the
// awaiter/task temporary), which corrupts shared_ptr reference counts.
// Hoisting the operand into a local sidesteps the bug; see
// tests/sim/kernel_test.cpp for the matching test-side convention.
SimTask Interpreter::run_process(const spec::Process& process,
                                 ProcState& state) {
  // (Re)initialize the process-local frame for this activation.
  state.frames.clear();
  state.frames.emplace_back();
  for (const auto& local : process.locals) {
    state.frames.back().vars.emplace(
        local.name, local.init ? *local.init : spec::Value(local.type));
  }
  SimTask body = exec_block(process.body, state);
  co_await body;
}


SimTask Interpreter::exec_call(const spec::ProcCall& call, ProcState& state) {
  const spec::Procedure* proc = system_.find_procedure(call.proc);
  IFSYN_ASSERT_MSG(proc, "call to unknown procedure '" << call.proc << "'");
  IFSYN_ASSERT_MSG(proc->params.size() == call.args.size(),
                   "procedure " << call.proc << " expects "
                                << proc->params.size() << " args, got "
                                << call.args.size());

  // Copy-in: evaluate `in` actuals in the caller's scope.
  Frame frame;
  for (std::size_t i = 0; i < proc->params.size(); ++i) {
    const spec::Param& param = proc->params[i];
    if (param.dir == spec::ParamDir::kIn) {
      const auto* arg_expr = std::get_if<spec::ExprPtr>(&call.args[i]);
      IFSYN_ASSERT_MSG(arg_expr, "out-style actual passed to in param "
                                     << param.name << " of " << call.proc);
      Scalar v = eval(**arg_expr, state);
      spec::Value storage(param.type);
      storage.set(extend(v, param.type.scalar_width()));
      frame.vars.emplace(param.name, std::move(storage));
    } else {
      IFSYN_ASSERT_MSG(std::holds_alternative<spec::LValue>(call.args[i]),
                       "expression actual passed to out param "
                           << param.name << " of " << call.proc);
      frame.vars.emplace(param.name, spec::Value(param.type));
    }
  }
  for (const auto& local : proc->locals) {
    frame.vars.emplace(local.name,
                       local.init ? *local.init : spec::Value(local.type));
  }

  state.frames.push_back(std::move(frame));
  {
    SimTask body = exec_block(proc->body, state);
    co_await body;
  }

  // Copy-out: write `out` params back to the caller's lvalues.
  Frame done = std::move(state.frames.back());
  state.frames.pop_back();
  for (std::size_t i = 0; i < proc->params.size(); ++i) {
    const spec::Param& param = proc->params[i];
    if (param.dir != spec::ParamDir::kOut) continue;
    const spec::Value& out_val = done.vars.at(param.name);
    store(state, std::get<spec::LValue>(call.args[i]),
          Scalar{out_val.get(), param.type.is_signed()});
  }
}

SimTask Interpreter::exec_block(const Block& block, ProcState& state) {
  using namespace spec;
  // Statements dispatch inline: a per-statement child coroutine would cost
  // one frame allocation per executed statement, which dominated the
  // interpreter's profile. Only constructs that truly nest (branch/loop
  // bodies, procedure calls) spawn a child task. A coroutine cannot
  // co_await inside std::visit's lambda, so dispatch is manual.
  for (const auto& stmt_ptr : block) {
    const Stmt& stmt = *stmt_ptr;
    if (const auto* s = stmt.as<VarAssign>()) {
      store(state, s->target, eval(*s->value, state));
    } else if (const auto* s = stmt.as<SignalAssign>()) {
      exec_signal_assign(*s, state);
    } else if (const auto* s = stmt.as<WaitUntil>()) {
      // Capture by reference: the frames outlive the wait because the
      // coroutine frame (and the ProcState it points to) stays alive.
      const ExprPtr cond = s->cond;
      auto awaiter = kernel_.wait_until(
          [this, cond, &state]() { return eval(*cond, state).truthy(); });
      co_await awaiter;
    } else if (const auto* s = stmt.as<WaitOn>()) {
      if (const std::vector<SignalId>* ids = wait_sets_.find(s)) {
        // The interned id span stays valid across the suspension: it
        // points into wait_sets_, which outlives every kernel run.
        auto awaiter = kernel_.wait_on(std::span<const SignalId>(*ids));
        co_await awaiter;
      } else {
        std::vector<FieldKey> keys;
        keys.reserve(s->sensitivity.size());
        for (const auto& sf : s->sensitivity)
          keys.push_back(FieldKey{sf.signal, sf.field});
        auto awaiter = kernel_.wait_on(std::move(keys));
        co_await awaiter;
      }
    } else if (const auto* s = stmt.as<WaitFor>()) {
      const std::int64_t cycles = eval_int(*s->cycles, state);
      IFSYN_ASSERT_MSG(cycles >= 0, "negative wait duration");
      auto awaiter = kernel_.wait_for(static_cast<std::uint64_t>(cycles));
      co_await awaiter;
    } else if (const auto* s = stmt.as<IfStmt>()) {
      if (eval(*s->cond, state).truthy()) {
        SimTask branch = exec_block(s->then_body, state);
        co_await branch;
      } else {
        SimTask branch = exec_block(s->else_body, state);
        co_await branch;
      }
    } else if (const auto* s = stmt.as<ForStmt>()) {
      const std::int64_t from = eval_int(*s->from, state);
      const std::int64_t to = eval_int(*s->to, state);
      // The loop variable lives in the current innermost frame for the
      // duration of the loop, shadowing any same-named outer variable.
      // Index, not reference: procedure calls in the body push frames and
      // may reallocate the frame vector.
      const std::size_t frame_idx = state.frames.size() - 1;
      auto vars_at = [&state, frame_idx]() -> Frame& {
        return state.frames[frame_idx];
      };
      auto prev = vars_at().vars.count(s->var)
                      ? std::optional(vars_at().vars.at(s->var))
                      : std::nullopt;
      for (std::int64_t i = from; i <= to; ++i) {
        vars_at().vars.insert_or_assign(s->var, spec::Value::integer(i));
        SimTask body = exec_block(s->body, state);
        co_await body;
      }
      if (prev) {
        vars_at().vars.insert_or_assign(s->var, std::move(*prev));
      } else {
        vars_at().vars.erase(s->var);
      }
    } else if (const auto* s = stmt.as<WhileStmt>()) {
      while (eval(*s->cond, state).truthy()) {
        SimTask body = exec_block(s->body, state);
        co_await body;
      }
    } else if (const auto* s = stmt.as<ForeverStmt>()) {
      for (;;) {
        SimTask body = exec_block(s->body, state);
        co_await body;
      }
    } else if (const auto* s = stmt.as<ProcCall>()) {
      SimTask callee = exec_call(*s, state);
      co_await callee;
    } else if (const auto* s = stmt.as<BusLock>()) {
      if (const BusId* bus = bus_refs_.find(s)) {
        if (s->acquire) {
          auto awaiter = kernel_.acquire_bus(*bus);
          co_await awaiter;
        } else {
          kernel_.release_bus(*bus);
        }
      } else if (s->acquire) {
        auto awaiter = kernel_.acquire_bus(s->bus);
        co_await awaiter;
      } else {
        kernel_.release_bus(s->bus);
      }
    } else {
      IFSYN_ASSERT_MSG(false, "unhandled statement kind");
    }
  }
}

// ---- convenience ---------------------------------------------------------

SimulationRun simulate(const spec::System& system, std::uint64_t max_time,
                       bool trace, const obs::ObsContext& obs,
                       Engine engine) {
  // One span per simulation run; inside a service request it carries the
  // owning request's trace id, so cosim legs show up attributed in a
  // service-wide trace.
  obs::Span span(obs.trace, "simulate " + system.name(), "sim", obs.request);
  SimulationRun run;
  run.kernel = std::make_unique<Kernel>();
  run.kernel->enable_trace(trace);
  run.kernel->set_obs(obs);
  run.interpreter = std::make_unique<Interpreter>(system, *run.kernel, engine);
  Status setup = run.interpreter->setup();
  if (!setup.is_ok()) {
    run.result.status = setup;
    return run;
  }
  run.result = run.kernel->run(max_time);
  return run;
}

}  // namespace ifsyn::sim
