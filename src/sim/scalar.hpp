// ifsyn/sim/scalar.hpp
//
// Scalar — the value produced by expression evaluation (bits plus
// signedness) — and the arithmetic shared by both execution engines.
//
// The AST interpreter (sim/interpreter.cpp) and the bytecode VM
// (sim/bytecode/vm.cpp) must agree bit-for-bit on every operator: the
// differential fuzz harness diffs final variable state and traces between
// the two, and the equivalence checker's verdicts must not depend on which
// engine ran. Centralizing extend/make_int/eval_binary_op here makes that
// agreement structural instead of a copy-paste invariant.
//
// Semantics (VHDL-flavored, see DESIGN.md Sec. 10.2):
//   - arithmetic (+ - * / mod, unary -) goes through 64-bit signed
//     integers: operands convert with to_int() (sign- or zero-extending
//     by their own signedness) and results are 64-bit signed scalars;
//   - bitwise ops extend both operands to the wider width (honoring each
//     operand's signedness) and yield an unsigned result;
//   - comparisons are signed iff either operand is signed, otherwise
//     unsigned over the width-extended bits;
//   - the boolean connectives and/or are *non-short-circuit* (both sides
//     of `a and b` evaluate), matching VHDL and the AST engine.
#pragma once

#include <algorithm>
#include <cstdint>

#include "spec/expr.hpp"
#include "util/assert.hpp"
#include "util/bit_vector.hpp"

namespace ifsyn::sim {

/// A scalar produced by expression evaluation: bits plus signedness
/// (signedness decides extension and comparison rules).
struct Scalar {
  BitVector bits;
  bool is_signed = false;

  std::int64_t to_int() const {
    if (bits.width() == 0) return 0;
    if (is_signed) return bits.to_int();
    return static_cast<std::int64_t>(bits.to_uint());
  }
  bool truthy() const { return !bits.is_zero(); }
};

/// Widen to `width` bits honoring the scalar's signedness.
inline BitVector extend(const Scalar& s, int width) {
  if (s.bits.width() == width) return s.bits;
  if (s.bits.width() > width) return s.bits.resized(width);
  if (s.is_signed && s.bits.width() > 0) {
    return BitVector::from_int(width, s.bits.to_int());
  }
  return s.bits.resized(width);
}

inline Scalar make_bool(bool b) {
  return Scalar{BitVector::from_uint(1, b ? 1 : 0), false};
}

inline Scalar make_int(std::int64_t v) {
  // from_uint(64, x) and from_int(64, x) produce identical bits (two's
  // complement is the identity at full word width); from_uint stays inline.
  return Scalar{BitVector::from_uint(64, static_cast<std::uint64_t>(v)),
                true};
}

inline Scalar eval_unary_op(spec::UnaryOp op, const Scalar& operand) {
  switch (op) {
    case spec::UnaryOp::kNot:
      return Scalar{~operand.bits, operand.is_signed};
    case spec::UnaryOp::kNeg:
      return make_int(-operand.to_int());
    case spec::UnaryOp::kLogNot:
      return make_bool(!operand.truthy());
  }
  IFSYN_ASSERT(false);
  return Scalar{};
}

inline Scalar eval_binary_op(spec::BinaryOp op, const Scalar& lhs,
                             const Scalar& rhs) {
  using spec::BinaryOp;
  const bool any_signed = lhs.is_signed || rhs.is_signed;
  const int max_width = std::max(lhs.bits.width(), rhs.bits.width());
  // When widths already match, extend() is the identity; skipping it
  // avoids two BitVector copies per comparison/bitwise op on the
  // simulation hot path (results are bit-identical by construction).
  const bool same_width = lhs.bits.width() == rhs.bits.width();

  auto wide_equal = [&]() {
    if (same_width) return lhs.bits == rhs.bits;
    return extend(lhs, max_width) == extend(rhs, max_width);
  };
  auto wide_less = [&](const Scalar& a, const Scalar& b) {
    if (same_width) return a.bits.unsigned_less(b.bits);
    return extend(a, max_width).unsigned_less(extend(b, max_width));
  };

  switch (op) {
    case BinaryOp::kAdd: return make_int(lhs.to_int() + rhs.to_int());
    case BinaryOp::kSub: return make_int(lhs.to_int() - rhs.to_int());
    case BinaryOp::kMul: return make_int(lhs.to_int() * rhs.to_int());
    case BinaryOp::kDiv: {
      const std::int64_t d = rhs.to_int();
      IFSYN_ASSERT_MSG(d != 0, "division by zero");
      return make_int(lhs.to_int() / d);
    }
    case BinaryOp::kMod: {
      const std::int64_t d = rhs.to_int();
      IFSYN_ASSERT_MSG(d != 0, "mod by zero");
      return make_int(lhs.to_int() % d);
    }
    case BinaryOp::kAnd:
      if (same_width) return Scalar{lhs.bits & rhs.bits, false};
      return Scalar{extend(lhs, max_width) & extend(rhs, max_width), false};
    case BinaryOp::kOr:
      if (same_width) return Scalar{lhs.bits | rhs.bits, false};
      return Scalar{extend(lhs, max_width) | extend(rhs, max_width), false};
    case BinaryOp::kXor:
      if (same_width) return Scalar{lhs.bits ^ rhs.bits, false};
      return Scalar{extend(lhs, max_width) ^ extend(rhs, max_width), false};
    case BinaryOp::kConcat:
      return Scalar{lhs.bits.concat(rhs.bits), false};
    case BinaryOp::kEq: return make_bool(wide_equal());
    case BinaryOp::kNe: return make_bool(!wide_equal());
    case BinaryOp::kLt:
      return make_bool(any_signed ? lhs.to_int() < rhs.to_int()
                                  : wide_less(lhs, rhs));
    case BinaryOp::kLe:
      return make_bool(any_signed ? lhs.to_int() <= rhs.to_int()
                                  : !wide_less(rhs, lhs));
    case BinaryOp::kGt:
      return make_bool(any_signed ? lhs.to_int() > rhs.to_int()
                                  : wide_less(rhs, lhs));
    case BinaryOp::kGe:
      return make_bool(any_signed ? lhs.to_int() >= rhs.to_int()
                                  : !wide_less(lhs, rhs));
    case BinaryOp::kLogAnd:
      return make_bool(lhs.truthy() && rhs.truthy());
    case BinaryOp::kLogOr:
      return make_bool(lhs.truthy() || rhs.truthy());
  }
  IFSYN_ASSERT(false);
  return Scalar{};
}

}  // namespace ifsyn::sim
