// ifsyn/sim/vcd.hpp
//
// Value Change Dump (IEEE 1364 VCD) export of a kernel trace, so the
// generated protocols' waveforms -- the START/DONE handshakes, ID
// selects, DATA words of Fig. 4 -- can be inspected in GTKWave or any
// other waveform viewer.
//
// Delta cycles collapse onto their simulation instant (VCD has a single
// time axis); within one instant the last committed value wins, matching
// what a VHDL simulator's waveform view shows.
#pragma once

#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "util/status.hpp"

namespace ifsyn::sim {

struct VcdOptions {
  /// Timescale text emitted in the header; one kernel cycle = one unit.
  std::string timescale = "1ns";
  /// Module name wrapping all signals in the VCD hierarchy.
  std::string scope = "ifsyn";
};

/// Render a recorded trace (Kernel::trace(), requires enable_trace(true)
/// before the run) as VCD text. `initial_values` supplies time-0 values
/// for signals that never change (pass the kernel post-run for lookups).
std::string trace_to_vcd(const Kernel& kernel, const VcdOptions& options = {});

/// Write the VCD straight to a file.
Status write_vcd(const Kernel& kernel, const std::string& path,
                 const VcdOptions& options = {});

}  // namespace ifsyn::sim
