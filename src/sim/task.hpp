// ifsyn/sim/task.hpp
//
// SimTask: the coroutine type used by the simulation interpreter.
//
// A VHDL-style process suspends in the middle of arbitrarily nested
// statements (a `wait` inside a for inside a procedure call). Modeling
// that with an explicit interpreter stack is error-prone; instead every
// statement-executing function is a coroutine returning SimTask, and
// awaiting a child task chains continuations with symmetric transfer:
//
//   - awaiting a SimTask starts the child immediately (it is created
//     suspended) and records the parent as its continuation;
//   - when a leaf suspends on a kernel awaitable (wait until/on/for), the
//     whole chain stays suspended and control returns to the scheduler;
//   - the kernel later resumes the *leaf*; when a task finishes, its
//     final_suspend transfers control back to the parent.
//
// Exceptions propagate up the chain through await_resume.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace ifsyn::sim {

class SimTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    SimTask get_return_object() {
      return SimTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Hand control back to whoever awaited us; top-level tasks return
        // to the scheduler via noop.
        auto continuation = h.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  SimTask(SimTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }

  std::coroutine_handle<promise_type> handle() const { return handle_; }

  /// Rethrow an exception captured inside the coroutine, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  // ---- awaitable interface (parent task awaits child task) ----
  bool await_ready() const noexcept { return done(); }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> awaiting) noexcept {
    handle_.promise().continuation = awaiting;
    return handle_;  // symmetric transfer: run the child now
  }
  void await_resume() const { rethrow_if_failed(); }

  /// Start a top-level task (the root of one process body). The scheduler
  /// resumes it directly; it runs until the first kernel suspension.
  void start() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace ifsyn::sim
