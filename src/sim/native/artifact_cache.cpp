// ifsyn/sim/native/artifact_cache.cpp

#include "sim/native/artifact_cache.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

namespace ifsyn::sim::native {

namespace fs = std::filesystem;

namespace {

// Same double-FNV-1a digest idiom as bytecode::system_cache_key, applied
// to the (already content-hashed) key to get a filename-safe name.
std::string digest_name(const std::string& key) {
  std::uint64_t h1 = 14695981039346656037ull;
  std::uint64_t h2 = 0x9e3779b97f4a7c15ull;
  for (unsigned char c : key) {
    h1 = (h1 ^ c) * 1099511628211ull;
    h2 = (h2 ^ (c + 0x9eu)) * 1099511628211ull;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                (unsigned long long)h1, (unsigned long long)h2);
  return buf;
}

std::string quoted(const std::string& path) { return "\"" + path + "\""; }

std::string read_head(const fs::path& p, std::size_t max_bytes) {
  std::ifstream in(p);
  if (!in) return "";
  std::string head(max_bytes, '\0');
  in.read(head.data(), static_cast<std::streamsize>(max_bytes));
  head.resize(static_cast<std::size_t>(in.gcount()));
  return head;
}

bool write_atomic(const fs::path& target, const std::string& content,
                  std::string* error) {
  fs::path tmp = target;
  tmp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      *error = "native cache: cannot write " + tmp.string();
      return false;
    }
    out << content;
    if (!out.good()) {
      *error = "native cache: short write to " + tmp.string();
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    *error = "native cache: cannot rename into " + target.string();
    return false;
  }
  return true;
}

std::atomic<NativeArtifactCache*> g_native_cache{nullptr};

}  // namespace

// ---- NativeModule ---------------------------------------------------------

NativeModule::~NativeModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

std::shared_ptr<NativeModule> NativeModule::load(const std::string& path,
                                                 std::string* error) {
  void* h = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) {
    const char* why = ::dlerror();
    *error = std::string("dlopen failed: ") + (why ? why : "unknown");
    return nullptr;
  }
  auto mod = std::shared_ptr<NativeModule>(new NativeModule());
  mod->handle_ = h;

  auto abi = reinterpret_cast<NativeAbiFn>(::dlsym(h, "ifsyn_native_abi"));
  auto size =
      reinterpret_cast<NativeAbiFn>(::dlsym(h, "ifsyn_native_state_size"));
  auto count =
      reinterpret_cast<NativeAbiFn>(::dlsym(h, "ifsyn_native_proc_count"));
  mod->run_ = reinterpret_cast<NativeRunFn>(::dlsym(h, "ifsyn_native_run"));
  mod->cond_ =
      reinterpret_cast<NativeCondFn>(::dlsym(h, "ifsyn_native_cond"));
  if (abi == nullptr || size == nullptr || count == nullptr ||
      mod->run_ == nullptr || mod->cond_ == nullptr) {
    *error = "module is missing ifsyn_native_* entry points";
    return nullptr;  // mod's dtor dlcloses
  }
  if (abi() != kNativeAbiVersion) {
    *error = "module ABI version " + std::to_string(abi()) +
             " != " + std::to_string(kNativeAbiVersion);
    return nullptr;
  }
  if (size() != sizeof(NativeState)) {
    *error = "module NativeState size mismatch";
    return nullptr;
  }
  mod->proc_count_ = count();
  return mod;
}

// ---- compiler probing -----------------------------------------------------

std::string native_compiler_command() {
  if (const char* env = std::getenv("IFSYN_NATIVE_CXX")) {
    if (*env != '\0') return env;
  }
  if (const char* env = std::getenv("CXX")) {
    if (*env != '\0') return env;
  }
  return "c++";
}

std::string native_compiler_fingerprint(const std::string& cxx,
                                        std::string* error) {
  static std::mutex mu;
  static std::map<std::string, std::string> cache;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(cxx);
    if (it != cache.end()) {
      if (it->second.empty()) *error = "compiler unavailable: " + cxx;
      return it->second;
    }
  }
  std::string line;
  const std::string cmd = quoted(cxx) + " --version 2>/dev/null";
  if (FILE* pipe = ::popen(cmd.c_str(), "r")) {
    char buf[256];
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
      line = buf;
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
    }
    const int rc = ::pclose(pipe);
    if (rc != 0) line.clear();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    cache[cxx] = line;
  }
  if (line.empty()) *error = "compiler unavailable: " + cxx;
  return line;
}

// ---- NativeArtifactCache --------------------------------------------------

std::string NativeArtifactCache::disk_dir() {
  if (const char* env = std::getenv("IFSYN_NATIVE_CACHE_DIR")) {
    if (*env != '\0') return env;
  }
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) base = "/tmp";
  return (base / ("ifsyn-native-" + std::to_string(::getuid()))).string();
}

std::size_t NativeArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::shared_ptr<NativeModule> NativeArtifactCache::get_or_build(
    const std::string& key, const std::function<std::string()>& source,
    std::string* error) {
  std::shared_future<std::shared_ptr<NativeModule>> fut;
  std::promise<std::shared_ptr<NativeModule>> prom;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      if (capacity_ > 0) {
        lru_.splice(lru_.begin(), lru_, it->second.lru);
      }
      fut = it->second.future;
    } else {
      creator = true;
      fut = prom.get_future().share();
      Entry e;
      e.future = fut;
      e.gen = ++gen_;
      if (capacity_ > 0) {
        lru_.push_front(key);
        e.lru = lru_.begin();
      }
      map_.emplace(key, std::move(e));
      if (capacity_ > 0 && map_.size() > capacity_) {
        // Evict the least recently used settled entry; the module itself
        // stays alive while any engine holds its shared_ptr.
        for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
          auto victim = map_.find(*rit);
          if (victim == map_.end() || *rit == key) continue;
          lru_.erase(victim->second.lru);
          map_.erase(victim);
          evictions_->add(1);
          break;
        }
      }
    }
  }
  if (!creator) {
    hits_->add(1);
    auto mod = fut.get();
    if (mod == nullptr && error != nullptr) {
      *error = "native compile previously failed for this key";
    }
    return mod;
  }
  std::string local_error;
  std::shared_ptr<NativeModule> mod = build(key, source, &local_error);
  prom.set_value(mod);
  if (mod == nullptr && error != nullptr) *error = local_error;
  return mod;
}

std::shared_ptr<NativeModule> NativeArtifactCache::build(
    const std::string& key, const std::function<std::string()>& source,
    std::string* error) {
  const fs::path dir(disk_dir());
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    *error = "native cache: cannot create " + dir.string();
    return nullptr;
  }
  const std::string name = digest_name(key);
  const fs::path so_path = dir / (name + ".so");

  if (fs::exists(so_path, ec) && !ec) {
    std::string load_error;
    if (auto mod = NativeModule::load(so_path.string(), &load_error)) {
      hits_->add(1);
      // Refresh the mtime so disk LRU tracks use, not just creation.
      fs::last_write_time(so_path, fs::file_time_type::clock::now(), ec);
      return mod;
    }
    // Stale/corrupt artifact (e.g. pre-ABI-bump): recompile in place.
    fs::remove(so_path, ec);
  }
  misses_->add(1);

  const std::string cxx = native_compiler_command();
  std::string fp_error;
  if (native_compiler_fingerprint(cxx, &fp_error).empty()) {
    *error = fp_error;
    return nullptr;
  }

  // Keep the generated source next to the artifact — it is the ground
  // truth when debugging a native/VM divergence.
  const fs::path cpp_path = dir / (name + ".cpp");
  if (!write_atomic(cpp_path, source(), error)) return nullptr;

  const fs::path tmp_so = dir / (name + ".so.tmp." +
                                 std::to_string(::getpid()));
  const fs::path err_path = dir / (name + ".err." +
                                   std::to_string(::getpid()));
  const std::string cmd = quoted(cxx) +
                          " -std=c++17 -O2 -fPIC -shared -x c++ " +
                          quoted(cpp_path.string()) + " -o " +
                          quoted(tmp_so.string()) + " 2> " +
                          quoted(err_path.string());
  compiles_->add(1);
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::string head = read_head(err_path, 600);
    fs::remove(tmp_so, ec);
    fs::remove(err_path, ec);
    *error = "native compile failed (exit " + std::to_string(rc) + "): " +
             (head.empty() ? std::string("no compiler output") : head);
    return nullptr;
  }
  fs::remove(err_path, ec);
  fs::rename(tmp_so, so_path, ec);
  if (ec) {
    fs::remove(tmp_so, ec);
    *error = "native cache: cannot rename artifact into place";
    return nullptr;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    evict_disk_locked();
  }
  return NativeModule::load(so_path.string(), error);
}

void NativeArtifactCache::evict_disk_locked() {
  if (capacity_ == 0) return;
  std::error_code ec;
  const fs::path dir(disk_dir());
  std::vector<std::pair<fs::file_time_type, fs::path>> artifacts;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".so") continue;
    std::error_code tec;
    const auto t = fs::last_write_time(entry.path(), tec);
    if (!tec) artifacts.emplace_back(t, entry.path());
  }
  if (ec || artifacts.size() <= capacity_) return;
  std::sort(artifacts.begin(), artifacts.end());
  const std::size_t excess = artifacts.size() - capacity_;
  for (std::size_t i = 0; i < excess; ++i) {
    fs::path victim = artifacts[i].second;
    std::error_code rec;
    if (fs::remove(victim, rec) && !rec) {
      victim.replace_extension(".cpp");
      fs::remove(victim, rec);
      evictions_->add(1);
    }
  }
}

// ---- process-wide seam ----------------------------------------------------

void install_native_cache(NativeArtifactCache* cache) {
  g_native_cache.store(cache, std::memory_order_release);
}

NativeArtifactCache* process_native_cache() {
  return g_native_cache.load(std::memory_order_acquire);
}

}  // namespace ifsyn::sim::native
