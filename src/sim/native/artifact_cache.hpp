// ifsyn/sim/native/artifact_cache.hpp
//
// Process-wide, size-bounded store of compiled native simulation modules
// (.so files), the native engine's analogue of bytecode::ProgramCache. Two
// layers: an in-memory LRU of dlopen'd modules (a module stays mapped as
// long as any engine holds its shared_ptr, so eviction never unmaps code
// that is still executing), and an on-disk LRU of .so files under
// IFSYN_NATIVE_CACHE_DIR (default: a per-uid directory in the system temp
// dir) so the compile-once cost also amortizes across processes.
//
// Keys are built by the engine: system_cache_key(system, opt) + compiler
// fingerprint + ABI version. The fingerprint (first line of `$CXX
// --version`) keys out toolchain upgrades; the ABI version keys out layout
// changes; and the loader additionally verifies a disk artifact's exported
// abi/state-size before trusting it, so a corrupt or stale file degrades
// to a recompile, never a crash.
//
// Everything here reports failure by returning nullptr with a reason —
// the engine turns that into a VM fallback. Nothing throws.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "sim/native/abi.hpp"

namespace ifsyn::sim::native {

/// One dlopen'd generated module. Holds the handle for its lifetime;
/// engines keep a shared_ptr so cache eviction cannot unmap running code.
class NativeModule {
 public:
  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  /// dlopen `path` and resolve + verify the ifsyn_native_* entry points
  /// (ABI version and state size must match this build). Returns nullptr
  /// with *error set on any failure.
  static std::shared_ptr<NativeModule> load(const std::string& path,
                                            std::string* error);

  std::uint32_t proc_count() const { return proc_count_; }
  std::uint32_t run(std::uint32_t proc, NativeState* st,
                    std::uint64_t* arg) const {
    return run_(proc, st, arg);
  }
  std::uint32_t cond(std::uint32_t proc, NativeState* st,
                     std::uint32_t idx) const {
    return cond_(proc, st, idx);
  }

 private:
  NativeModule() = default;
  void* handle_ = nullptr;
  NativeRunFn run_ = nullptr;
  NativeCondFn cond_ = nullptr;
  std::uint32_t proc_count_ = 0;
};

/// Resolve the C++ compiler used for native artifacts: IFSYN_NATIVE_CXX,
/// then CXX, then "c++".
std::string native_compiler_command();

/// First line of `cxx --version`, cached per command string. Empty with
/// *error set when the compiler cannot be run — the no-toolchain signal,
/// raised before any cache traffic so a missing toolchain is a clean,
/// deterministic fallback.
std::string native_compiler_fingerprint(const std::string& cxx,
                                        std::string* error);

class NativeArtifactCache {
 public:
  /// `capacity` > 0 bounds both the in-memory module count and the on-disk
  /// .so count (mtime-LRU) ; 0 = unbounded. Counters (optional,
  /// registry-owned, must outlive the cache) surface hits / misses /
  /// evictions / compiles; hits count memory AND disk hits, compiles count
  /// actual compiler invocations.
  explicit NativeArtifactCache(std::size_t capacity = 0,
                               obs::Counter* hits = nullptr,
                               obs::Counter* misses = nullptr,
                               obs::Counter* evictions = nullptr,
                               obs::Counter* compiles = nullptr)
      : capacity_(capacity),
        hits_(hits ? hits : &own_hits_),
        misses_(misses ? misses : &own_misses_),
        evictions_(evictions ? evictions : &own_evictions_),
        compiles_(compiles ? compiles : &own_compiles_) {}

  /// Returns the module for `key`, materializing it on first request: disk
  /// hit -> dlopen; otherwise compile `source()` with the host toolchain.
  /// `source` is only invoked on a true compile. Concurrent requests for
  /// one key share a single compile. Returns nullptr with *error set when
  /// the toolchain or loader fails — the caller falls back to the VM.
  std::shared_ptr<NativeModule> get_or_build(
      const std::string& key, const std::function<std::string()>& source,
      std::string* error);

  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  std::uint64_t evictions() const { return evictions_->value(); }
  std::uint64_t compiles() const { return compiles_->value(); }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// The on-disk directory this cache reads/writes .so files in.
  static std::string disk_dir();

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<NativeModule>> future;
    std::list<std::string>::iterator lru;
    std::uint64_t gen = 0;
  };

  std::shared_ptr<NativeModule> build(const std::string& key,
                                      const std::function<std::string()>& source,
                                      std::string* error);
  void evict_disk_locked();

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< most recently used first (bounded only)
  std::size_t capacity_ = 0;
  std::uint64_t gen_ = 0;
  obs::Counter own_hits_;
  obs::Counter own_misses_;
  obs::Counter own_evictions_;
  obs::Counter own_compiles_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* compiles_;
};

/// Install `cache` as the process-wide native artifact store consulted by
/// every subsequent native engine setup (nullptr uninstalls). Caller keeps
/// ownership; install once at front-end startup, before workers spawn —
/// the same contract as bytecode::install_process_cache.
void install_native_cache(NativeArtifactCache* cache);

/// The installed process-wide cache, or nullptr (each engine then uses a
/// transient private cache — still getting cross-process disk reuse).
NativeArtifactCache* process_native_cache();

}  // namespace ifsyn::sim::native
