// ifsyn/sim/native/emitter.hpp
//
// Lowers an optimized bytecode::CompiledSystem into one self-contained C++
// translation unit: a resumable state-machine function per process (every
// kernel suspension point is an explicit `case` of the resume switch, so
// the generated code yields to the kernel at exactly the bytecode pcs the
// VM does — delta timing, traces and bus accounting stay byte-identical),
// plus one condition-evaluator function per process for `wait until`
// predicates. See DESIGN.md Sec. 15 for the emission strategy.
//
// The emitter also computes the SystemPlan — the flat word/meta storage
// layout the host engine materializes NativeState from — so the offsets
// baked into the generated code and the arrays the host allocates can
// never disagree.
//
// Nativizability gate: emission refuses (returns false with a reason)
// any program outside the subset the word model covers — a scalar wider
// than 128 bits, a signal wider than 64, an inconsistent save/restore
// span. Scalars in (64, 128] occupy two words per element (lo, hi) and
// flow through registers as unsigned __int128 payloads; protocol-refined
// systems need this for the generated `msg` variables (addr ++ data).
// The gate is a performance decision, never a semantic one: the caller
// falls back to the VM and observable behavior is unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/bytecode/program.hpp"
#include "sim/kernel.hpp"
#include "sim/native/abi.hpp"

namespace ifsyn::sim::native {

/// Storage plan for one slot: word offset (prefix sum of element word
/// counts), element span, words per element, initial dynamic type and
/// initial payload words.
struct SlotPlan {
  std::uint32_t woff = 0;
  std::uint32_t span = 1;  ///< element count (1 for scalars)
  std::uint32_t wpe = 1;   ///< words per element (2 for widths in (64,128])
  NativeMeta meta;                  ///< declared type, as the initial meta
  spec::Type type = spec::Type::integer();  ///< declared type (value_of)
  std::vector<std::uint64_t> init;  ///< span*wpe words; empty = all-zero
};

struct LayoutPlan {
  std::vector<SlotPlan> slots;
  std::uint32_t words = 0;  ///< total payload words
};

/// Per-process storage plan; [0] is the process-local frame, the rest are
/// procedure activation layouts (indices match ProcProgram::frame_layouts).
struct ProcPlan {
  std::vector<LayoutPlan> layouts;
  std::uint32_t max_layout_words = 1;  ///< return-area word capacity
  std::uint32_t max_layout_slots = 1;  ///< return-area meta capacity
};

struct SystemPlan {
  LayoutPlan globals;
  std::vector<ProcPlan> procs;
};

/// Emit the generated C++ source and the matching storage plan for `cs`.
/// `kernel` provides the signal widths the code bakes in as literals
/// (sound for caching: widths are a pure function of the system, exactly
/// like the interned SignalIds the bytecode already bakes). Returns false
/// — leaving *plan/*source unspecified — with a human-readable *reason*
/// when the system is outside the native subset.
bool emit_native_source(const bytecode::CompiledSystem& cs,
                        const Kernel& kernel, SystemPlan* plan,
                        std::string* source, std::string* reason);

}  // namespace ifsyn::sim::native
