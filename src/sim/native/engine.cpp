// ifsyn/sim/native/engine.cpp

#include "sim/native/engine.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/bytecode/compiler.hpp"
#include "sim/bytecode/optimizer.hpp"
#include "sim/bytecode/program_cache.hpp"
#include "util/assert.hpp"

namespace ifsyn::sim::native {

namespace {

bool meta_eq(const NativeMeta& a, const NativeMeta& b) {
  return a.w == b.w && a.n == b.n && a.s == b.s && a.is_arr == b.is_arr;
}

spec::Type type_from_meta(const NativeMeta& m) {
  const spec::Type elem =
      m.s != 0 ? spec::Type::integer(m.w) : spec::Type::bits(m.w);
  return m.is_arr != 0 ? spec::Type::array(elem, m.n) : elem;
}

}  // namespace

NativeEngine::NativeEngine(const spec::System& system, Kernel& kernel)
    : system_(system), kernel_(kernel) {
  callbacks_.signal_read = &NativeEngine::cb_signal_read;
  callbacks_.signal_write = &NativeEngine::cb_signal_write;
  callbacks_.release_bus = &NativeEngine::cb_release_bus;
  callbacks_.trap = &NativeEngine::cb_trap;
  callbacks_.fail = &NativeEngine::cb_fail;
  callbacks_.grow_frames = &NativeEngine::cb_grow_frames;
  callbacks_.grow_calls = &NativeEngine::cb_grow_calls;
}

bool NativeEngine::setup(std::string* why) {
  obs::MetricsRegistry* metrics = kernel_.obs().metrics;
  const bytecode::OptLevel level = bytecode::opt_level_from_env();
  const auto t0 = std::chrono::steady_clock::now();

  // Every fallible step comes before the first kernel mutation or metrics
  // registration, so a `false` return leaves no trace of the attempt and
  // the VM fallback run stays metric-identical to a pure VM run.
  const std::string cxx = native_compiler_command();
  std::string fp_error;
  const std::string fingerprint = native_compiler_fingerprint(cxx, &fp_error);
  if (fingerprint.empty()) {
    if (why) *why = fp_error;
    return false;
  }

  if (bytecode::ProgramCache* cache = bytecode::process_cache()) {
    compiled_ = cache->get_or_compile(
        bytecode::system_cache_key(system_, level), [this, level] {
          return bytecode::compile(system_, kernel_, level);
        });
  } else {
    compiled_ = std::make_shared<const bytecode::CompiledSystem>(
        bytecode::compile(system_, kernel_, level));
  }

  std::string source;
  std::string reason;
  if (!emit_native_source(*compiled_, kernel_, &plan_, &source, &reason)) {
    if (why) *why = "system outside the native subset: " + reason;
    compiled_.reset();
    return false;
  }

  // The bytecode key already hashes everything that shapes the generated
  // source; the toolchain fingerprint and ABI version key out everything
  // that shapes the generated *binary*.
  const std::string key = bytecode::system_cache_key(system_, level) +
                          "|cxx:" + fingerprint +
                          "|nabi:" + std::to_string(kNativeAbiVersion);
  NativeArtifactCache* acache = process_native_cache();
  if (acache == nullptr) {
    own_cache_ = std::make_unique<NativeArtifactCache>();
    acache = own_cache_.get();
  }
  std::string build_error;
  module_ = acache->get_or_build(
      key, [&source] { return source; }, &build_error);
  if (module_ == nullptr) {
    if (why) *why = build_error;
    compiled_.reset();
    return false;
  }
  if (module_->proc_count() != compiled_->processes.size()) {
    if (why) *why = "native module process count mismatch";
    module_.reset();
    compiled_.reset();
    return false;
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (metrics) {
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    // Deliberately the same metric names as Vm::setup: the native engine
    // replaces the VM's data plane, and the deterministic report tables
    // must read identically under either engine. compile_us here spans
    // bytecode compile + emission + toolchain (wall-clock-classed, so
    // artifact-cache hits don't perturb reports).
    metrics->counter("sim.vm.compile_us", obs::Determinism::kWallClock)
        .add(us);
    metrics->counter("sim.vm.compiles").add(1);
    metrics->counter("sim.vm.compiled_instructions")
        .add(compiled_->total_instructions);
    executed_ops_ = &metrics->counter("sim.vm.executed_ops");
    metrics->gauge("sim.vm.opt.level", obs::Determinism::kWallClock)
        .set(static_cast<std::int64_t>(compiled_->opt_level));
    metrics
        ->counter("sim.vm.opt.patterns_matched", obs::Determinism::kWallClock)
        .add(compiled_->opt.patterns_matched);
    metrics
        ->counter("sim.vm.opt.instructions_eliminated",
                  obs::Determinism::kWallClock)
        .add(compiled_->opt.instructions_eliminated);
    bulk_ops_ = &metrics->counter("sim.vm.opt.bulk_ops",
                                  obs::Determinism::kWallClock);
  }

  gw_.assign(std::max<std::size_t>(plan_.globals.words, 1), 0);
  gm_.assign(std::max<std::size_t>(plan_.globals.slots.size(), 1),
             NativeMeta{});
  init_layout(plan_.globals, gw_.data(), gm_.data());

  for (std::uint32_t p = 0; p < compiled_->processes.size(); ++p) {
    ProcState& ps = states_.emplace_back();
    ps.engine = this;
    ps.index = p;
    kernel_.add_process(
        compiled_->processes[p].process_name,
        [this, &ps]() {
          reset(ps);
          return run_process(ps);
        },
        compiled_->processes[p].restarts);
  }
  return true;
}

void NativeEngine::init_layout(const LayoutPlan& lp, std::uint64_t* words,
                               NativeMeta* metas) const {
  for (std::uint32_t w = 0; w < lp.words; ++w) words[w] = 0;
  for (std::size_t i = 0; i < lp.slots.size(); ++i) {
    const SlotPlan& s = lp.slots[i];
    metas[i] = s.meta;
    for (std::size_t j = 0; j < s.init.size(); ++j) {
      words[s.woff + j] = s.init[j];
    }
  }
}

void NativeEngine::reset(ProcState& ps) {
  const ProcPlan& pp = plan_.procs[ps.index];
  const LayoutPlan& locals = pp.layouts[0];

  ps.pw.assign(std::max<std::size_t>(locals.words, 1), 0);
  ps.pm.assign(std::max<std::size_t>(locals.slots.size(), 1), NativeMeta{});
  init_layout(locals, ps.pw.data(), ps.pm.data());

  if (ps.fw.empty()) {
    ps.fw.resize(std::max<std::uint32_t>(4 * pp.max_layout_words, 16));
    ps.fm.resize(std::max<std::uint32_t>(4 * pp.max_layout_slots, 16));
  }
  ps.rw.assign(pp.max_layout_words, 0);
  ps.rm.assign(pp.max_layout_slots, NativeMeta{});
  if (ps.calls.empty()) ps.calls.resize(8);

  NativeState& st = ps.st;
  st.gw = gw_.data();
  st.gm = gm_.data();
  st.pw = ps.pw.data();
  st.pm = ps.pm.data();
  st.fw = ps.fw.data();
  st.fm = ps.fm.data();
  st.fw_cap = static_cast<std::uint32_t>(ps.fw.size());
  st.fm_cap = static_cast<std::uint32_t>(ps.fm.size());
  st.rw = ps.rw.data();
  st.rm = ps.rm.data();
  st.calls = ps.calls.data();
  st.call_cap = static_cast<std::uint32_t>(ps.calls.size());
  st.call_depth = 0;
  st.frame_woff = 0;
  st.frame_moff = 0;
  st.frame_layout = 0;
  st.sp_w = 0;
  st.sp_m = 0;
  st.ret_layout = 0;
  st.pc = compiled_->processes[ps.index].entry;
  st.ops = 0;
  st.bulk = 0;
  st.cb = &callbacks_;
  st.cx = &ps;
}

void NativeEngine::flush_charges(ProcState& ps) {
  if (executed_ops_ && ps.st.ops != 0) executed_ops_->add(ps.st.ops);
  ps.st.ops = 0;
  if (bulk_ops_ && ps.st.bulk != 0) bulk_ops_->add(ps.st.bulk);
  ps.st.bulk = 0;
}

bool NativeEngine::eval_cond(ProcState& ps, std::uint32_t idx) {
  const std::uint32_t truthy = module_->cond(ps.index, &ps.st, idx);
  // The host charges the condition's pre-optimization cost, exactly like
  // Vm::eval_cond — the generated condition bodies do no charging.
  const auto& cp =
      compiled_->processes[ps.index].conds[static_cast<std::size_t>(idx)];
  if (executed_ops_) executed_ops_->add(cp.ref_ops);
  return truthy != 0;
}

// NOTE on coroutine style: every co_await awaits a *named local* — same
// GCC 12 workaround as Vm::run_process.
SimTask NativeEngine::run_process(ProcState& ps) {
  for (;;) {
    std::uint64_t arg = 0;
    const std::uint32_t kind = module_->run(ps.index, &ps.st, &arg);
    flush_charges(ps);
    switch (kind) {
      case kNativeHalt:
        co_return;
      case kNativeWaitFor: {
        auto awaiter = kernel_.wait_for(arg);
        co_await awaiter;
        break;
      }
      case kNativeWaitOn: {
        const std::vector<SignalId>& ids =
            compiled_->processes[ps.index]
                .wait_sets[static_cast<std::size_t>(arg)];
        auto awaiter = kernel_.wait_on(std::span<const SignalId>(ids));
        co_await awaiter;
        break;
      }
      case kNativeWaitUntil: {
        const auto idx = static_cast<std::uint32_t>(arg);
        // Pointer + index capture: fits std::function's inline buffer,
        // like the VM's two-pointer capture.
        auto awaiter = kernel_.wait_until(
            [&ps, idx]() { return ps.engine->eval_cond(ps, idx); });
        co_await awaiter;
        break;
      }
      case kNativeAcquireBus: {
        auto awaiter = kernel_.acquire_bus(static_cast<BusId>(arg));
        co_await awaiter;
        break;
      }
      default:
        IFSYN_ASSERT_MSG(false, "native: unknown suspend kind " << kind);
    }
  }
}

const spec::Value& NativeEngine::value_of(const std::string& variable) const {
  auto it = compiled_->global_index.find(variable);
  IFSYN_ASSERT_MSG(it != compiled_->global_index.end(),
                   "unknown variable " << variable);
  const SlotPlan& sp = plan_.globals.slots[it->second];
  const NativeMeta& m = gm_[it->second];
  const spec::Type type =
      meta_eq(m, sp.meta) ? sp.type : type_from_meta(m);
  spec::Value v(type);
  // Elements stride by the slot's words-per-element; the high word of a
  // wide element is live only while the dynamic meta is wide (mirrors the
  // generated loads).
  const auto elem_bits = [&](std::uint32_t j) {
    const std::uint64_t lo = gw_[sp.woff + j * sp.wpe];
    if (m.w <= 64) return BitVector::from_uint(m.w, lo);
    BitVector b(m.w);
    b.set_slice(63, 0, BitVector::from_uint(64, lo));
    b.set_slice(m.w - 1, 64,
                BitVector::from_uint(m.w - 64, gw_[sp.woff + j * sp.wpe + 1]));
    return b;
  };
  if (m.is_arr != 0) {
    for (std::int32_t j = 0; j < m.n; ++j) {
      v.set_at(j, elem_bits(static_cast<std::uint32_t>(j)));
    }
  } else {
    v.set(elem_bits(0));
  }
  auto [slot, inserted] = value_cache_.insert_or_assign(variable, std::move(v));
  return slot->second;
}

void NativeEngine::set_value(const std::string& variable, spec::Value value) {
  auto it = compiled_->global_index.find(variable);
  IFSYN_ASSERT_MSG(it != compiled_->global_index.end(),
                   "unknown variable " << variable);
  const SlotPlan& sp = plan_.globals.slots[it->second];
  const NativeMeta& m = gm_[it->second];
  const spec::Type type =
      meta_eq(m, sp.meta) ? sp.type : type_from_meta(m);
  IFSYN_ASSERT_MSG(type == value.type(), "type mismatch setting " << variable);
  const auto put_elem = [&](std::uint32_t j, const BitVector& b) {
    if (b.width() <= 64) {
      gw_[sp.woff + j * sp.wpe] = b.to_uint();
      return;
    }
    gw_[sp.woff + j * sp.wpe] = b.slice(63, 0).to_uint();
    gw_[sp.woff + j * sp.wpe + 1] = b.slice(b.width() - 1, 64).to_uint();
  };
  if (m.is_arr != 0) {
    for (std::int32_t j = 0; j < m.n; ++j) {
      put_elem(static_cast<std::uint32_t>(j), value.at(j));
    }
  } else {
    put_elem(0, value.get());
  }
}

// ---- callbacks ------------------------------------------------------------

std::uint64_t NativeEngine::cb_signal_read(void* cx, std::uint32_t id) {
  auto* ps = static_cast<ProcState*>(cx);
  return ps->engine->kernel_.signal_value(static_cast<SignalId>(id))
      .to_uint();
}

void NativeEngine::cb_signal_write(void* cx, std::uint32_t id,
                                   std::int32_t width, std::uint64_t bits) {
  auto* ps = static_cast<ProcState*>(cx);
  ps->engine->kernel_.schedule_signal(static_cast<SignalId>(id),
                                      BitVector::from_uint(width, bits));
}

void NativeEngine::cb_release_bus(void* cx, std::uint32_t id) {
  auto* ps = static_cast<ProcState*>(cx);
  ps->engine->kernel_.release_bus(static_cast<BusId>(id));
}

void NativeEngine::cb_trap(void* cx, std::uint32_t trap_index) {
  auto* ps = static_cast<ProcState*>(cx);
  const auto& traps =
      ps->engine->compiled_->processes[ps->index].traps;
  IFSYN_ASSERT_MSG(false, traps[static_cast<std::size_t>(trap_index)]);
  __builtin_unreachable();
}

void NativeEngine::cb_fail(void* cx, const char* what) {
  (void)cx;
  IFSYN_ASSERT_MSG(false, what);
  __builtin_unreachable();
}

void NativeEngine::cb_grow_frames(void* cx, std::uint32_t min_words,
                                  std::uint32_t min_metas) {
  auto* ps = static_cast<ProcState*>(cx);
  if (ps->fw.size() < min_words) {
    ps->fw.resize(std::max<std::size_t>(min_words, ps->fw.size() * 2));
  }
  if (ps->fm.size() < min_metas) {
    ps->fm.resize(std::max<std::size_t>(min_metas, ps->fm.size() * 2));
  }
  ps->st.fw = ps->fw.data();
  ps->st.fm = ps->fm.data();
  ps->st.fw_cap = static_cast<std::uint32_t>(ps->fw.size());
  ps->st.fm_cap = static_cast<std::uint32_t>(ps->fm.size());
}

void NativeEngine::cb_grow_calls(void* cx, std::uint32_t min_depth) {
  auto* ps = static_cast<ProcState*>(cx);
  if (ps->calls.size() < min_depth) {
    ps->calls.resize(std::max<std::size_t>(min_depth, ps->calls.size() * 2));
  }
  ps->st.calls = ps->calls.data();
  ps->st.call_cap = static_cast<std::uint32_t>(ps->calls.size());
}

}  // namespace ifsyn::sim::native
