// ifsyn/sim/native/engine.hpp
//
// Host side of the AOT native simulation engine: compiles the system to
// bytecode (sharing the ProgramCache artifact with the VM), lowers it to
// C++ through sim/native/emitter.hpp, materializes the .so through the
// NativeArtifactCache, and drives the generated state-machine functions
// from the same coroutine shape as bytecode::Vm::run_process — so the
// kernel sees an identical suspension sequence and every deterministic
// observable (end time, traces, executed_ops, final variables, report
// bytes) matches the VM exactly.
//
// setup() is all-or-nothing: every fallible step (toolchain probe,
// emission gate, compile, dlopen) happens before the first kernel
// mutation or metrics registration, so a failed setup leaves the kernel
// untouched and the caller (Interpreter) constructs a plain Vm instead —
// the fallback run is metric- and report-identical to a pure VM run.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/bytecode/program.hpp"
#include "sim/kernel.hpp"
#include "sim/native/abi.hpp"
#include "sim/native/artifact_cache.hpp"
#include "sim/native/emitter.hpp"
#include "spec/system.hpp"

namespace ifsyn::obs {
class Counter;
}

namespace ifsyn::sim::native {

class NativeEngine {
 public:
  /// Binds to a system and kernel; both must outlive the engine.
  NativeEngine(const spec::System& system, Kernel& kernel);

  /// Compile + emit + load + register processes. Returns false with *why
  /// (toolchain missing, system outside the native subset, compile or
  /// load failure) — in that case nothing was registered and the caller
  /// must fall back to the VM.
  bool setup(std::string* why);

  /// Same contract as Vm::value_of / set_value, reading and writing the
  /// flat word/meta storage through the declared (or loop-rebound)
  /// dynamic type.
  const spec::Value& value_of(const std::string& variable) const;
  void set_value(const std::string& variable, spec::Value value);

  const bytecode::CompiledSystem& compiled() const { return *compiled_; }

 private:
  /// All storage one process's generated code touches, plus the
  /// NativeState window handed across the ABI. deque-stable: coroutine
  /// factories and wait-until lambdas capture the address.
  struct ProcState {
    NativeEngine* engine = nullptr;
    std::uint32_t index = 0;
    NativeState st;
    std::vector<std::uint64_t> pw;
    std::vector<NativeMeta> pm;
    std::vector<std::uint64_t> fw;
    std::vector<NativeMeta> fm;
    std::vector<std::uint64_t> rw;
    std::vector<NativeMeta> rm;
    std::vector<NativeCall> calls;
  };

  SimTask run_process(ProcState& ps);
  void reset(ProcState& ps);
  bool eval_cond(ProcState& ps, std::uint32_t idx);
  void flush_charges(ProcState& ps);
  void init_layout(const LayoutPlan& lp, std::uint64_t* words,
                   NativeMeta* metas) const;

  // NativeCallbacks trampolines; cx is the owning ProcState.
  static std::uint64_t cb_signal_read(void* cx, std::uint32_t id);
  static void cb_signal_write(void* cx, std::uint32_t id, std::int32_t width,
                              std::uint64_t bits);
  static void cb_release_bus(void* cx, std::uint32_t id);
  [[noreturn]] static void cb_trap(void* cx, std::uint32_t trap_index);
  [[noreturn]] static void cb_fail(void* cx, const char* what);
  static void cb_grow_frames(void* cx, std::uint32_t min_words,
                             std::uint32_t min_metas);
  static void cb_grow_calls(void* cx, std::uint32_t min_depth);

  const spec::System& system_;
  Kernel& kernel_;
  std::shared_ptr<const bytecode::CompiledSystem> compiled_;
  std::shared_ptr<NativeModule> module_;  ///< keeps the .so mapped
  SystemPlan plan_;
  NativeCallbacks callbacks_;
  std::deque<ProcState> states_;
  std::vector<std::uint64_t> gw_;
  std::vector<NativeMeta> gm_;
  obs::Counter* executed_ops_ = nullptr;
  obs::Counter* bulk_ops_ = nullptr;
  /// value_of materializes spec::Values on demand from the word storage;
  /// keyed by variable so the returned reference stays valid like the
  /// VM's. Mutable: value_of is const like Vm::value_of.
  mutable std::map<std::string, spec::Value> value_cache_;
  /// Engine-private artifact store used when no process-wide cache is
  /// installed (still hits the shared on-disk store).
  std::unique_ptr<NativeArtifactCache> own_cache_;
};

}  // namespace ifsyn::sim::native
