// ifsyn/sim/native/abi.hpp
//
// The binary contract between the host engine (sim/native/engine.cpp) and
// the generated shared objects the emitter produces. The .so side does NOT
// include this header — generated translation units are self-contained
// (emitter.cpp embeds a textual mirror of these structs in its prelude) so
// a cached artifact never depends on the repo's include paths. Any change
// here therefore requires the same change in kPrelude AND a bump of
// kNativeAbiVersion; the loader rejects modules whose exported
// `ifsyn_native_abi` / `ifsyn_native_state_size` disagree, so a stale
// on-disk artifact degrades to a cache miss, never to a crash.
//
// Layout rules keeping the mirror trivial: every struct is standard-layout
// POD, fields are pointer/u64/u32-sized (no bools, no bitfields), and the
// generated code is compiled with the same base language mode (-std=c++17)
// and default ABI as the host build on the same machine.
#pragma once

#include <cstdint>

namespace ifsyn::sim::native {

/// Bump on ANY change to the structs below, the entry-point signatures,
/// the suspend-kind encoding, or the storage model the emitted code and
/// the host-side plan must agree on (v2: wide scalars in (64, 128] take
/// two words per element). Part of the artifact cache key, so old .so
/// files are never even dlopen'd after a bump.
inline constexpr std::uint32_t kNativeAbiVersion = 2;

/// Return codes of the generated run function — why it handed control
/// back. Mirrors bytecode::Vm::SuspendKind; the host coroutine switches on
/// these exactly like the VM's dispatch loop does.
inline constexpr std::uint32_t kNativeHalt = 0;        ///< process done
inline constexpr std::uint32_t kNativeWaitFor = 1;     ///< arg = cycles
inline constexpr std::uint32_t kNativeWaitOn = 2;      ///< arg = wait-set
inline constexpr std::uint32_t kNativeWaitUntil = 3;   ///< arg = cond idx
inline constexpr std::uint32_t kNativeAcquireBus = 4;  ///< arg = BusId

/// Dynamic type of one storage slot. Slots start as their declared type;
/// only two operations ever change a meta at runtime — the loop header
/// rebinding the loop variable to integer(32) (kLoopTest) and the
/// kSaveVar/kRestoreVar shadow copies around it — exactly the two places
/// the VM replaces a slot's spec::Value wholesale.
struct NativeMeta {
  std::int32_t w = 0;       ///< element width in bits (1..64)
  std::int32_t n = 0;       ///< element count (1 for scalars)
  std::uint32_t s = 0;      ///< element signedness (0/1)
  std::uint32_t is_arr = 0; ///< array-typed right now (0/1)
};

/// One suspended caller, pushed by the generated kCall lowering.
struct NativeCall {
  std::uint32_t ret_pc = 0;
  std::uint32_t layout = 0;  ///< caller's frame layout index
  std::uint32_t woff = 0;    ///< caller's frame word offset in the arena
  std::uint32_t moff = 0;    ///< caller's frame meta offset in the arena
};

/// Host services the generated code cannot perform itself: kernel signal
/// traffic, bus release, error raising (both throw ifsyn::InternalError —
/// the generated frames hold only POD locals, so unwinding through the
/// dlopen'd code is safe), and arena growth (reallocates the State's
/// arrays and updates the pointers before returning).
struct NativeCallbacks {
  std::uint64_t (*signal_read)(void* cx, std::uint32_t id);
  void (*signal_write)(void* cx, std::uint32_t id, std::int32_t width,
                       std::uint64_t bits);
  void (*release_bus)(void* cx, std::uint32_t id);
  void (*trap)(void* cx, std::uint32_t trap_index);       // [[noreturn]]
  void (*fail)(void* cx, const char* what);               // [[noreturn]]
  void (*grow_frames)(void* cx, std::uint32_t min_words,
                      std::uint32_t min_metas);
  void (*grow_calls)(void* cx, std::uint32_t min_depth);
};

/// All mutable execution state of one process, owned by the host engine.
/// The generated function reads/writes it through this struct only, so
/// suspension is trivially resumable: return, and call again later.
struct NativeState {
  // Storage: parallel word/meta arrays. Word offsets are static in the
  // generated code (prefix sums of declared array sizes); meta index ==
  // slot index. Globals are shared by every process of the system.
  std::uint64_t* gw = nullptr;   ///< global words
  NativeMeta* gm = nullptr;      ///< global metas
  std::uint64_t* pw = nullptr;   ///< process-local (layout 0) words
  NativeMeta* pm = nullptr;      ///< process-local metas
  std::uint64_t* fw = nullptr;   ///< procedure-frame arena words
  NativeMeta* fm = nullptr;      ///< procedure-frame arena metas
  std::uint32_t fw_cap = 0;
  std::uint32_t fm_cap = 0;
  std::uint64_t* rw = nullptr;   ///< last returned frame (max layout size)
  NativeMeta* rm = nullptr;
  NativeCall* calls = nullptr;   ///< call stack
  std::uint32_t call_cap = 0;
  std::uint32_t call_depth = 0;
  std::uint32_t frame_woff = 0;  ///< current procedure frame, in the arena
  std::uint32_t frame_moff = 0;
  std::uint32_t frame_layout = 0;
  std::uint32_t sp_w = 0;        ///< arena high-water marks (stack tops)
  std::uint32_t sp_m = 0;
  std::uint32_t ret_layout = 0;  ///< layout index of rw/rm contents
  std::uint32_t pc = 0;          ///< resume address (bytecode pc)
  std::uint32_t pad_ = 0;
  std::uint64_t ops = 0;   ///< executed-op charge since last suspension
  std::uint64_t bulk = 0;  ///< bulk-transfer dispatches since last suspension
  const NativeCallbacks* cb = nullptr;
  void* cx = nullptr;      ///< host context handed back to callbacks
};

// Entry points every generated module exports (C linkage):
//   uint32_t ifsyn_native_abi();          -> kNativeAbiVersion
//   uint32_t ifsyn_native_state_size();   -> sizeof(NativeState)
//   uint32_t ifsyn_native_proc_count();   -> number of processes
//   uint32_t ifsyn_native_run(uint32_t proc, NativeState*, uint64_t* arg);
//   uint32_t ifsyn_native_cond(uint32_t proc, NativeState*, uint32_t idx);
using NativeAbiFn = std::uint32_t (*)();
using NativeRunFn = std::uint32_t (*)(std::uint32_t, NativeState*,
                                      std::uint64_t*);
using NativeCondFn = std::uint32_t (*)(std::uint32_t, NativeState*,
                                       std::uint32_t);

}  // namespace ifsyn::sim::native
