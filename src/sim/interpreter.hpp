// ifsyn/sim/interpreter.hpp
//
// Executes a specification (spec::System) on the discrete-event kernel.
//
// This is what makes the paper's central claim -- "protocol generation
// results in a refined system specification that is simulatable" --
// operational: both the original spec (processes directly reading/writing
// shared variables) and the refined spec (handshakes over the generated
// bus signal) run through this same interpreter, so functional equivalence
// can be checked by diffing variable state and process results afterwards.
//
// Execution model:
//   - System-level variables live in a global store (shared-memory
//     semantics for the original spec; the refined spec only touches a
//     remote variable from its server process).
//   - Each process has a call stack of frames (process locals, then one
//     frame per active procedure call). Name lookup: innermost frame,
//     then process locals, then globals.
//   - Statements execute in zero simulated time except `wait for`;
//     specs model computation delay with explicit waits, and the
//     generated protocols contain the per-word waits that give a
//     handshake its 2-cycles-per-word cost (Eq. 2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/scalar.hpp"
#include "spec/system.hpp"
#include "util/ptr_map.hpp"

namespace ifsyn::sim {

namespace bytecode {
class Vm;
}
namespace native {
class NativeEngine;
}

/// Which execution engine runs the spec's processes.
///
/// kVm (default) compiles every process to register bytecode once at setup
/// and runs a dispatch loop (sim/bytecode/); kAst walks the statement/
/// expression trees directly — slower, but structurally close to the IR,
/// so it serves as the reference the VM is differentially fuzzed against;
/// kNative additionally lowers the bytecode to C++ compiled into a
/// dlopen'd shared object (sim/native/), falling back to kVm — with
/// identical observable output — whenever the toolchain, the emission
/// gate, or the loader says no.
enum class Engine {
  kVm,
  kAst,
  kNative,
};

/// "vm" / "ast" / "native" — the spelling IFSYN_SIM_ENGINE uses, also
/// surfaced by serve /stats and the sim.engine gauge.
const char* engine_name(Engine engine);

/// Engine selected by the IFSYN_SIM_ENGINE environment variable: "ast"
/// picks the AST reference engine, "native" the AOT native engine, "vm",
/// empty or unset the bytecode VM. Any other value picks the VM and, when
/// `bad_value` is non-null, reports the unrecognized string through it
/// (empty = the value was recognized) so the caller can emit a structured
/// warning — Interpreter::setup does. Read per call — tests toggle it
/// with setenv.
Engine engine_from_env(std::string* bad_value = nullptr);

class Interpreter {
 public:
  /// Binds the interpreter to a system and a kernel, with the engine taken
  /// from IFSYN_SIM_ENGINE. Both must outlive the interpreter and the
  /// kernel's run.
  Interpreter(const spec::System& system, Kernel& kernel);

  /// Same, with an explicit engine choice.
  Interpreter(const spec::System& system, Kernel& kernel, Engine engine);

  ~Interpreter();

  Engine engine() const { return engine_; }

  /// Declare the system's signals, bus locks and processes on the kernel
  /// and initialize variable storage. Call once before Kernel::run.
  Status setup();

  /// Read a system-level variable's current value (typically after run).
  const spec::Value& value_of(const std::string& variable) const;

  /// Overwrite a system-level variable (e.g. to inject test stimuli).
  void set_value(const std::string& variable, spec::Value value);

  /// The bytecode engine behind this interpreter, for artifact
  /// introspection (e.g. tests asserting on the optimizer's rewrites).
  /// Engaged after setup() when engine() == kVm — including after a
  /// native-to-VM fallback; nullptr for kAst and a live native engine.
  const bytecode::Vm* vm() const { return vm_.get(); }

  /// The native engine, engaged after setup() when engine() == kNative
  /// (i.e. the native path actually came up); nullptr otherwise.
  const native::NativeEngine* native() const { return native_.get(); }

 private:
  struct Frame {
    std::map<std::string, spec::Value> vars;
  };
  struct ProcState {
    std::vector<Frame> frames;  // [0] = process locals
  };

  // ---- name resolution ----
  spec::Value* lookup(ProcState& state, const std::string& name);
  spec::Value& lookup_or_fail(ProcState& state, const std::string& name);

  // ---- expression evaluation (synchronous; no waits inside) ----
  Scalar eval(const spec::Expr& expr, ProcState& state);
  std::int64_t eval_int(const spec::Expr& expr, ProcState& state);

  // ---- statement execution (coroutines) ----
  SimTask run_process(const spec::Process& process, ProcState& state);
  /// Executes a statement list. Statements dispatch inline (one coroutine
  /// per block, not per statement); branch/loop bodies and procedure
  /// calls recurse through child tasks.
  SimTask exec_block(const spec::Block& block, ProcState& state);
  SimTask exec_call(const spec::ProcCall& call, ProcState& state);

  void store(ProcState& state, const spec::LValue& target, Scalar value);
  void exec_signal_assign(const spec::SignalAssign& sa, ProcState& state);

  // ---- elaboration-time interning (setup pre-pass) ----
  // Every signal/bus name in the spec is resolved to its dense kernel id
  // once, keyed by AST node address (nodes are shared_ptr-held and stable
  // for the system's lifetime), so the execution hot paths never do string
  // lookups. Unknown names are deliberately left uncached: the eval-time
  // name fallback then reproduces the original lazy error timing for
  // references in code that never executes.
  struct AssignSlot {
    SignalId id = kInvalidSignalId;
    int width = 0;
  };
  void intern_block(const spec::Block& block);
  void intern_expr(const spec::Expr& expr);
  void intern_lvalue(const spec::LValue& lv);

  const spec::System& system_;
  Kernel& kernel_;
  Engine engine_ = Engine::kVm;
  /// Unrecognized IFSYN_SIM_ENGINE value captured at construction;
  /// setup() turns it into a structured warning (it has the obs hooks).
  std::string bad_engine_env_;
  /// Engaged iff engine_ == kVm after setup(); owns compiled programs and
  /// all VM-side storage (globals live in the Vm then, not in globals_).
  std::unique_ptr<bytecode::Vm> vm_;
  /// Engaged iff engine_ == kNative after setup() (the native .so came
  /// up); owns the module, the flat word storage and process registration.
  std::unique_ptr<native::NativeEngine> native_;
  std::map<std::string, spec::Value> globals_;
  std::map<std::string, ProcState> proc_states_;
  PtrMap<SignalId> signal_refs_;
  PtrMap<AssignSlot> assign_slots_;
  PtrMap<std::vector<SignalId>> wait_sets_;
  PtrMap<BusId> bus_refs_;
};

/// Convenience: set up a kernel+interpreter for `system`, run it, and
/// return the result together with the interpreter (for state inspection).
/// Kernel and Interpreter are heap-held because the interpreter's process
/// closures are bound to the kernel's address.
struct SimulationRun {
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Interpreter> interpreter;
  SimResult result;
};

/// Simulate a system to quiescence. `trace` enables waveform capture.
/// `obs` (optional) attaches a metrics registry to the kernel; counters
/// land under the "sim." prefix (see Kernel::set_obs). `engine` defaults
/// to the IFSYN_SIM_ENGINE selection (bytecode VM unless overridden).
SimulationRun simulate(const spec::System& system,
                       std::uint64_t max_time = 1'000'000,
                       bool trace = false,
                       const obs::ObsContext& obs = {},
                       Engine engine = engine_from_env());

}  // namespace ifsyn::sim
