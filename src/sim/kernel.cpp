#include "sim/kernel.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace ifsyn::sim {

// ---- configuration -------------------------------------------------------

void Kernel::add_signal_field(const FieldKey& key, BitVector initial) {
  IFSYN_ASSERT_MSG(!fields_.count(key),
                   "duplicate signal field " << key.to_string());
  fields_.emplace(key, FieldState{initial, std::move(initial), std::nullopt});
}

void Kernel::add_bus_lock(const std::string& bus) {
  bus_locks_.emplace(bus, BusLockState{});
}

void Kernel::add_process(const std::string& name,
                         std::function<SimTask()> factory, bool restarts) {
  auto proc = std::make_unique<ProcessRuntime>();
  proc->name = name;
  proc->factory = std::move(factory);
  proc->restarts = restarts;
  proc->stats.name = name;
  processes_.push_back(std::move(proc));
}

// ---- signal access --------------------------------------------------------

Kernel::FieldState& Kernel::field_state(const FieldKey& key) {
  auto it = fields_.find(key);
  IFSYN_ASSERT_MSG(it != fields_.end(),
                   "unknown signal field " << key.to_string());
  return it->second;
}

const Kernel::FieldState& Kernel::field_state(const FieldKey& key) const {
  auto it = fields_.find(key);
  IFSYN_ASSERT_MSG(it != fields_.end(),
                   "unknown signal field " << key.to_string());
  return it->second;
}

const BitVector& Kernel::signal_value(const FieldKey& key) const {
  return field_state(key).current;
}

const BitVector& Kernel::initial_value(const FieldKey& key) const {
  return field_state(key).initial;
}

std::vector<FieldKey> Kernel::signal_keys() const {
  std::vector<FieldKey> keys;
  keys.reserve(fields_.size());
  for (const auto& [key, state] : fields_) keys.push_back(key);
  return keys;
}

void Kernel::schedule_signal(const FieldKey& key, BitVector value) {
  FieldState& state = field_state(key);
  IFSYN_ASSERT_MSG(value.width() == state.current.width(),
                   "signal " << key.to_string() << " width "
                             << state.current.width() << " assigned "
                             << value.width() << " bits");
  if (!state.pending) dirty_.push_back(key);
  state.pending = std::move(value);  // last write in a delta wins
}

// ---- awaitables -----------------------------------------------------------

bool Kernel::Awaiter::await_ready() const noexcept {
  // All the decision logic lives in await_suspend (which can decline the
  // suspension); only the trivial zero-delay case short-circuits here.
  return kind == WaitKind::kTime && cycles == 0;
}

void Kernel::Awaiter::await_suspend(std::coroutine_handle<> h) {
  Kernel::ProcessRuntime* proc = kernel->current_;
  IFSYN_ASSERT_MSG(proc, "kernel awaitable used outside a process");
  proc->resume_point = h;

  switch (kind) {
    case WaitKind::kTime:
      proc->wait = WaitKind::kTime;
      proc->wake_time = kernel->time_ + cycles;
      return;
    case WaitKind::kEvent:
      proc->wait = WaitKind::kEvent;
      proc->sensitivity = sensitivity;
      return;
    case WaitKind::kCondition:
      if (condition()) {
        // Level-sensitive wait-until: condition already holds, so do not
        // actually block -- re-queue as ready (see header comment).
        proc->wait = WaitKind::kReady;
        return;
      }
      proc->wait = WaitKind::kCondition;
      proc->condition = condition;
      return;
    case WaitKind::kBusLock: {
      auto it = kernel->bus_locks_.find(bus);
      IFSYN_ASSERT_MSG(it != kernel->bus_locks_.end(),
                       "unknown bus lock " << bus);
      BusLockState& lock = it->second;
      if (lock.holder == nullptr) {
        kernel->grant_bus(lock, proc, /*contended=*/false);
        proc->wait = WaitKind::kReady;  // got it; continue this sweep
        return;
      }
      lock.waiters.push_back(proc);
      proc->wait = WaitKind::kBusLock;
      proc->lock_wait_start = kernel->time_;
      return;
    }
    case WaitKind::kReady:
    case WaitKind::kDone:
      IFSYN_ASSERT_MSG(false, "invalid awaiter kind");
  }
}

Kernel::Awaiter Kernel::wait_for(std::uint64_t cycles) {
  return Awaiter{this, WaitKind::kTime, cycles, {}, {}, {}};
}

Kernel::Awaiter Kernel::wait_on(std::vector<FieldKey> sensitivity) {
  return Awaiter{this, WaitKind::kEvent, 0, std::move(sensitivity), {}, {}};
}

Kernel::Awaiter Kernel::wait_until(std::function<bool()> cond) {
  return Awaiter{this, WaitKind::kCondition, 0, {}, std::move(cond), {}};
}

Kernel::Awaiter Kernel::acquire_bus(const std::string& bus) {
  return Awaiter{this, WaitKind::kBusLock, 0, {}, {}, bus};
}

void Kernel::grant_bus(BusLockState& lock, ProcessRuntime* next,
                       bool contended) {
  lock.holder = next;
  lock.hold_start = time_;
  ++lock.stats.acquisitions;
  if (contended) ++lock.stats.contended_acquisitions;
}

void Kernel::release_bus(const std::string& bus) {
  auto it = bus_locks_.find(bus);
  IFSYN_ASSERT_MSG(it != bus_locks_.end(), "unknown bus lock " << bus);
  BusLockState& lock = it->second;
  IFSYN_ASSERT_MSG(lock.holder == current_,
                   "bus " << bus << " released by non-holder");
  const std::uint64_t held = time_ - lock.hold_start;
  lock.stats.hold_cycles += held;
  if (hold_hist_) hold_hist_->observe(held);
  if (lock.waiters.empty()) {
    lock.holder = nullptr;
    return;
  }
  ProcessRuntime* next = lock.waiters.front();
  lock.waiters.pop_front();
  const std::uint64_t waited = time_ - next->lock_wait_start;
  next->stats.bus_wait_cycles += waited;
  lock.stats.wait_cycles += waited;
  if (wait_hist_) wait_hist_->observe(waited);
  grant_bus(lock, next, /*contended=*/true);
  next->wait = WaitKind::kReady;
  ++stats_.wakeups_bus_grant;
}

// ---- scheduler -------------------------------------------------------------

void Kernel::run_ready() {
  bool progressed = true;
  while (progressed && run_status_.is_ok()) {
    progressed = false;
    for (auto& proc : processes_) {
      if (proc->wait != WaitKind::kReady) continue;
      progressed = true;
      current_ = proc.get();
      // Sentinel: if the coroutine runs to completion it never calls an
      // awaiter, so the wait kind stays kDone until finish_process decides.
      proc->wait = WaitKind::kDone;
      proc->resume_point.resume();
      current_ = nullptr;
      if (proc->task.done()) {
        finish_process(*proc);
      }
      if (!run_status_.is_ok()) return;
    }
  }
}

void Kernel::finish_process(ProcessRuntime& proc) {
  try {
    proc.task.rethrow_if_failed();
  } catch (const std::exception& e) {
    run_status_ = simulation_error(std::string("process ") + proc.name +
                                   " failed: " + e.what());
    proc.wait = WaitKind::kDone;
    return;
  }
  if (!proc.stats.completed) {
    proc.stats.completed = true;
    proc.stats.finish_time = time_;
  }
  ++proc.stats.activations;
  if (proc.restarts) {
    proc.task = proc.factory();
    proc.resume_point = proc.task.handle();
    proc.wait = WaitKind::kReady;
  } else {
    proc.wait = WaitKind::kDone;
  }
}

bool Kernel::commit_deltas() {
  if (dirty_.empty()) return false;
  if (++delta_ > kMaxDeltasPerInstant) {
    run_status_ = simulation_error(
        "delta cycle limit exceeded at t=" + std::to_string(time_) +
        " (oscillating zero-delay loop?)");
    return false;
  }
  ++stats_.delta_cycles;
  if (delta_ > stats_.max_deltas_in_instant) {
    stats_.max_deltas_in_instant = delta_;
  }

  std::vector<FieldKey> changed;
  for (const FieldKey& key : dirty_) {
    FieldState& state = field_state(key);
    if (!state.pending) continue;  // already committed via duplicate entry
    if (*state.pending != state.current) {
      state.current = std::move(*state.pending);
      changed.push_back(key);
      ++stats_.signal_commits;
      if (trace_enabled_) {
        if (trace_.size() >= trace_limit_) {
          run_status_ = simulation_error(
              "signal trace exceeded cap of " +
              std::to_string(trace_limit_) + " entries at t=" +
              std::to_string(time_) +
              " (raise Kernel::set_trace_limit or disable tracing)");
          return false;
        }
        trace_.push_back(TraceEntry{time_, delta_, key, state.current});
      }
    }
    state.pending.reset();
  }
  dirty_.clear();
  if (changed.empty()) return true;  // commit happened, no events

  for (auto& proc : processes_) {
    if (proc->wait == WaitKind::kEvent) {
      const bool hit = std::any_of(
          proc->sensitivity.begin(), proc->sensitivity.end(),
          [&changed](const FieldKey& want) {
            return std::any_of(
                changed.begin(), changed.end(), [&want](const FieldKey& got) {
                  return want.signal == got.signal &&
                         (want.field.empty() || want.field == got.field);
                });
          });
      if (hit) {
        proc->wait = WaitKind::kReady;
        ++stats_.wakeups_event;
      }
    } else if (proc->wait == WaitKind::kCondition) {
      if (proc->condition()) {
        proc->wait = WaitKind::kReady;
        ++stats_.wakeups_condition;
      }
    }
  }
  return true;
}

bool Kernel::advance_time(std::uint64_t max_time) {
  std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
  for (const auto& proc : processes_) {
    if (proc->wait == WaitKind::kTime) next = std::min(next, proc->wake_time);
  }
  if (next == std::numeric_limits<std::uint64_t>::max()) return false;
  if (next > max_time) {
    run_status_ = simulation_error(
        "simulation exceeded max_time=" + std::to_string(max_time));
    return false;
  }
  time_ = next;
  delta_ = 0;
  ++stats_.instants;
  for (auto& proc : processes_) {
    if (proc->wait == WaitKind::kTime && proc->wake_time == time_) {
      proc->wait = WaitKind::kReady;
      ++stats_.wakeups_time;
    }
  }
  return true;
}

SimResult Kernel::run(std::uint64_t max_time) {
  run_status_ = Status::ok();
  time_ = 0;
  delta_ = 0;
  stats_ = KernelStats{};
  stats_.instants = 1;  // t=0 always executes
  for (auto& [name, lock] : bus_locks_) {
    lock.stats = BusStats{};
    lock.stats.bus = name;
  }
  if (obs_.metrics != nullptr) {
    // Cycle-valued histograms over per-acquisition bus hold ("transaction
    // length") and per-grant wait ("arbitration latency") durations.
    const std::vector<std::uint64_t> bounds = obs::exponential_bounds(1 << 16);
    hold_hist_ = &obs_.metrics->histogram("sim.bus_hold_cycles", bounds);
    wait_hist_ = &obs_.metrics->histogram("sim.bus_wait_cycles", bounds);
  } else {
    hold_hist_ = nullptr;
    wait_hist_ = nullptr;
  }

  for (auto& proc : processes_) {
    proc->task = proc->factory();
    proc->resume_point = proc->task.handle();
    proc->wait = WaitKind::kReady;
    proc->stats = ProcessStats{};
    proc->stats.name = proc->name;
  }

  while (run_status_.is_ok()) {
    run_ready();
    if (!run_status_.is_ok()) break;
    if (commit_deltas()) continue;
    if (!advance_time(max_time)) break;
  }

  SimResult result;
  result.status = run_status_;
  result.end_time = time_;
  result.processes.reserve(processes_.size());
  for (const auto& proc : processes_) {
    // A process parked on a bus-lock queue at quiescence never completed.
    result.processes.push_back(proc->stats);
  }
  stats_.trace_entries = trace_.size();
  result.kernel = stats_;
  result.buses.reserve(bus_locks_.size());
  for (const auto& [name, lock] : bus_locks_) {
    result.buses.push_back(lock.stats);
  }
  if (obs_.metrics != nullptr) flush_metrics(result);
  return result;
}

void Kernel::flush_metrics(const SimResult& result) const {
  obs::MetricsRegistry& reg = *obs_.metrics;
  reg.counter("sim.runs").add(1);
  reg.counter("sim.simulated_cycles").add(result.end_time);
  reg.counter("sim.instants").add(stats_.instants);
  reg.counter("sim.delta_cycles").add(stats_.delta_cycles);
  reg.counter("sim.signal_commits").add(stats_.signal_commits);
  reg.counter("sim.trace_entries").add(stats_.trace_entries);
  reg.counter("sim.wakeups.time").add(stats_.wakeups_time);
  reg.counter("sim.wakeups.event").add(stats_.wakeups_event);
  reg.counter("sim.wakeups.condition").add(stats_.wakeups_condition);
  reg.counter("sim.wakeups.bus_grant").add(stats_.wakeups_bus_grant);
  reg.histogram("sim.deltas_per_instant", obs::exponential_bounds(1 << 16))
      .observe(stats_.max_deltas_in_instant);
  for (const BusStats& bus : result.buses) {
    const std::string prefix = "sim.bus." + bus.bus + ".";
    reg.counter(prefix + "acquisitions").add(bus.acquisitions);
    reg.counter(prefix + "contended_acquisitions")
        .add(bus.contended_acquisitions);
    reg.counter(prefix + "hold_cycles").add(bus.hold_cycles);
    reg.counter(prefix + "wait_cycles").add(bus.wait_cycles);
  }
  std::uint64_t bus_wait = 0;
  for (const ProcessStats& proc : result.processes) {
    bus_wait += proc.bus_wait_cycles;
  }
  reg.counter("sim.process_bus_wait_cycles").add(bus_wait);
}

}  // namespace ifsyn::sim
