#include "sim/kernel.hpp"

#include <bit>

#include "util/assert.hpp"

namespace ifsyn::sim {

// ---- configuration -------------------------------------------------------

void Kernel::add_signal_field(const FieldKey& key, BitVector initial) {
  IFSYN_ASSERT_MSG(!index_.count(key),
                   "duplicate signal field " << key.to_string());
  const SignalId id = static_cast<SignalId>(fields_.size());
  index_.emplace(key, id);
  keys_.push_back(key);
  const auto [ord_it, inserted] = signal_ord_.emplace(
      key.signal, static_cast<std::uint32_t>(signal_ord_.size()));
  if (inserted) wildcard_waiters_.push_back(nullptr);
  FieldState state;
  state.current = initial;
  state.initial = std::move(initial);
  state.signal_ord = ord_it->second;
  fields_.push_back(std::move(state));
}

void Kernel::add_bus_lock(const std::string& bus) {
  if (bus_index_.count(bus)) return;  // idempotent, as the map emplace was
  const BusId id = static_cast<BusId>(bus_locks_.size());
  bus_index_.emplace(bus, id);
  BusLockState lock;
  lock.name = bus;
  bus_locks_.push_back(std::move(lock));
}

void Kernel::add_process(const std::string& name,
                         std::function<SimTask()> factory, bool restarts) {
  auto proc = std::make_unique<ProcessRuntime>();
  proc->name = name;
  proc->factory = std::move(factory);
  proc->restarts = restarts;
  proc->index = static_cast<std::uint32_t>(processes_.size());
  proc->stats.name = name;
  processes_.push_back(std::move(proc));
}

// ---- name resolution ------------------------------------------------------

SignalId Kernel::signal_id(const FieldKey& key) const {
  auto it = index_.find(key);
  IFSYN_ASSERT_MSG(it != index_.end(),
                   "unknown signal field " << key.to_string());
  return it->second;
}

SignalId Kernel::wildcard_id(const std::string& signal) const {
  auto it = signal_ord_.find(signal);
  IFSYN_ASSERT_MSG(it != signal_ord_.end(), "unknown signal " << signal);
  return kWildcardBit | it->second;
}

BusId Kernel::bus_id(const std::string& bus) const {
  auto it = bus_index_.find(bus);
  IFSYN_ASSERT_MSG(it != bus_index_.end(), "unknown bus lock " << bus);
  return it->second;
}

SignalId Kernel::find_signal_id(const FieldKey& key) const {
  auto it = index_.find(key);
  return it != index_.end() ? it->second : kInvalidSignalId;
}

SignalId Kernel::find_wildcard_id(const std::string& signal) const {
  auto it = signal_ord_.find(signal);
  return it != signal_ord_.end() ? kWildcardBit | it->second
                                 : kInvalidSignalId;
}

BusId Kernel::find_bus_id(const std::string& bus) const {
  auto it = bus_index_.find(bus);
  return it != bus_index_.end() ? it->second : kInvalidBusId;
}

// ---- signal access --------------------------------------------------------

Kernel::FieldState& Kernel::field_state(const FieldKey& key) {
  return fields_[signal_id(key)];
}

const Kernel::FieldState& Kernel::field_state(const FieldKey& key) const {
  return fields_[signal_id(key)];
}

const BitVector& Kernel::signal_value(const FieldKey& key) const {
  return field_state(key).current;
}

const BitVector& Kernel::initial_value(const FieldKey& key) const {
  return field_state(key).initial;
}

void Kernel::schedule_signal(const FieldKey& key, BitVector value) {
  schedule_signal(signal_id(key), std::move(value));
}

void Kernel::schedule_signal(SignalId id, BitVector value) {
  FieldState& state = fields_[id];
  IFSYN_ASSERT_MSG(value.width() == state.current.width(),
                   "signal " << keys_[id].to_string() << " width "
                             << state.current.width() << " assigned "
                             << value.width() << " bits");
  if (!state.pending) dirty_.push_back(id);
  state.pending = std::move(value);  // last write in a delta wins
}

// ---- ready bitmap ---------------------------------------------------------

void Kernel::make_ready(ProcessRuntime& proc) {
  proc.wait = WaitKind::kReady;
  std::uint64_t& word = ready_bits_[proc.index >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (proc.index & 63);
  if ((word & bit) == 0) {
    word |= bit;
    ++ready_count_;
  }
}

std::size_t Kernel::next_ready(std::size_t from) const {
  std::size_t word = from >> 6;
  if (word >= ready_bits_.size()) return npos;
  std::uint64_t bits = ready_bits_[word] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    }
    if (++word >= ready_bits_.size()) return npos;
    bits = ready_bits_[word];
  }
}

// ---- sensitivity index ----------------------------------------------------

void Kernel::link_event_waiter(ProcessRuntime& proc,
                               std::span<const SignalId> sensitivity) {
  proc.wait = WaitKind::kEvent;
  // Nodes must not move while linked: size the vector fully first, then
  // splice each node onto its signal's list head.
  proc.event_nodes.assign(sensitivity.size(), EventNode{});
  for (std::size_t i = 0; i < sensitivity.size(); ++i) {
    EventNode& node = proc.event_nodes[i];
    node.proc = &proc;
    node.sig = sensitivity[i];
    EventNode*& head = (node.sig & kWildcardBit) != 0
                           ? wildcard_waiters_[node.sig & ~kWildcardBit]
                           : fields_[node.sig].waiters;
    node.next = head;
    if (head != nullptr) head->prev = &node;
    head = &node;
  }
}

void Kernel::unlink_event_waiter(ProcessRuntime& proc) {
  for (EventNode& node : proc.event_nodes) {
    if (node.prev != nullptr) {
      node.prev->next = node.next;
    } else if ((node.sig & kWildcardBit) != 0) {
      wildcard_waiters_[node.sig & ~kWildcardBit] = node.next;
    } else {
      fields_[node.sig].waiters = node.next;
    }
    if (node.next != nullptr) node.next->prev = node.prev;
  }
  proc.event_nodes.clear();
}

void Kernel::remove_condition_waiter(ProcessRuntime& proc) {
  const std::uint32_t slot = proc.cond_slot;
  ProcessRuntime* moved = condition_waiters_.back();
  condition_waiters_[slot] = moved;
  moved->cond_slot = slot;
  condition_waiters_.pop_back();
}

// ---- awaitables -----------------------------------------------------------

bool Kernel::Awaiter::await_ready() const noexcept {
  // All the decision logic lives in await_suspend (which can decline the
  // suspension); only the trivial zero-delay case short-circuits here.
  return kind == WaitKind::kTime && cycles == 0;
}

void Kernel::Awaiter::await_suspend(std::coroutine_handle<> h) {
  Kernel::ProcessRuntime* proc = kernel->current_;
  IFSYN_ASSERT_MSG(proc, "kernel awaitable used outside a process");
  proc->resume_point = h;

  switch (kind) {
    case WaitKind::kTime:
      proc->wait = WaitKind::kTime;
      proc->wake_time = kernel->time_ + cycles;
      kernel->timed_.push(TimedEntry{proc->wake_time, proc->index});
      return;
    case WaitKind::kEvent: {
      if (!sensitivity_ids.empty() || sensitivity.empty()) {
        kernel->link_event_waiter(*proc, sensitivity_ids);
        return;
      }
      // Name-based path: `field==""` keys become whole-signal wildcard
      // handles. Unknown keys resolve to nothing — they could never match
      // a commit under the old scan either.
      std::vector<SignalId> resolved;
      resolved.reserve(sensitivity.size());
      for (const FieldKey& want : sensitivity) {
        if (want.field.empty()) {
          auto it = kernel->signal_ord_.find(want.signal);
          if (it != kernel->signal_ord_.end()) {
            resolved.push_back(kWildcardBit | it->second);
          }
        } else {
          auto it = kernel->index_.find(want);
          if (it != kernel->index_.end()) resolved.push_back(it->second);
        }
      }
      kernel->link_event_waiter(*proc, resolved);
      return;
    }
    case WaitKind::kCondition:
      if (condition()) {
        // Level-sensitive wait-until: condition already holds, so do not
        // actually block -- re-queue as ready (see header comment).
        kernel->make_ready(*proc);
        return;
      }
      proc->wait = WaitKind::kCondition;
      proc->condition = std::move(condition);
      proc->cond_slot = static_cast<std::uint32_t>(
          kernel->condition_waiters_.size());
      kernel->condition_waiters_.push_back(proc);
      return;
    case WaitKind::kBusLock: {
      const BusId id =
          bus_id != kInvalidBusId ? bus_id : kernel->bus_id(bus);
      BusLockState& lock = kernel->bus_locks_[id];
      if (lock.holder == nullptr) {
        kernel->grant_bus(lock, proc, /*contended=*/false);
        kernel->make_ready(*proc);  // got it; continue this dispatch round
        return;
      }
      lock.waiters.push_back(proc);
      proc->wait = WaitKind::kBusLock;
      proc->lock_wait_start = kernel->time_;
      return;
    }
    case WaitKind::kReady:
    case WaitKind::kDone:
      IFSYN_ASSERT_MSG(false, "invalid awaiter kind");
  }
}

Kernel::Awaiter Kernel::wait_for(std::uint64_t cycles) {
  Awaiter aw;
  aw.kernel = this;
  aw.kind = WaitKind::kTime;
  aw.cycles = cycles;
  return aw;
}

Kernel::Awaiter Kernel::wait_on(std::vector<FieldKey> sensitivity) {
  Awaiter aw;
  aw.kernel = this;
  aw.kind = WaitKind::kEvent;
  aw.sensitivity = std::move(sensitivity);
  return aw;
}

Kernel::Awaiter Kernel::wait_on(std::span<const SignalId> sensitivity) {
  Awaiter aw;
  aw.kernel = this;
  aw.kind = WaitKind::kEvent;
  aw.sensitivity_ids = sensitivity;
  return aw;
}

Kernel::Awaiter Kernel::wait_until(std::function<bool()> cond) {
  Awaiter aw;
  aw.kernel = this;
  aw.kind = WaitKind::kCondition;
  aw.condition = std::move(cond);
  return aw;
}

Kernel::Awaiter Kernel::acquire_bus(const std::string& bus) {
  Awaiter aw;
  aw.kernel = this;
  aw.kind = WaitKind::kBusLock;
  aw.bus = bus;
  return aw;
}

Kernel::Awaiter Kernel::acquire_bus(BusId bus) {
  Awaiter aw;
  aw.kernel = this;
  aw.kind = WaitKind::kBusLock;
  aw.bus_id = bus;
  return aw;
}

void Kernel::grant_bus(BusLockState& lock, ProcessRuntime* next,
                       bool contended) {
  lock.holder = next;
  lock.hold_start = time_;
  ++lock.stats.acquisitions;
  if (contended) ++lock.stats.contended_acquisitions;
}

void Kernel::release_bus(const std::string& bus) { release_bus(bus_id(bus)); }

void Kernel::release_bus(BusId id) {
  BusLockState& lock = bus_locks_[id];
  IFSYN_ASSERT_MSG(lock.holder == current_,
                   "bus " << lock.name << " released by non-holder");
  const std::uint64_t held = time_ - lock.hold_start;
  lock.stats.hold_cycles += held;
  if (hold_hist_) hold_hist_->observe(held);
  if (lock.waiters.empty()) {
    lock.holder = nullptr;
    return;
  }
  ProcessRuntime* next = lock.waiters.front();
  lock.waiters.pop_front();
  const std::uint64_t waited = time_ - next->lock_wait_start;
  next->stats.bus_wait_cycles += waited;
  lock.stats.wait_cycles += waited;
  if (wait_hist_) wait_hist_->observe(waited);
  grant_bus(lock, next, /*contended=*/true);
  make_ready(*next);
  ++stats_.wakeups_bus_grant;
}

// ---- scheduler -------------------------------------------------------------

void Kernel::run_ready() {
  // Round-robin by process index with a wrap-around cursor. This touches
  // only set bits yet dispatches in exactly the order the historical
  // full-vector sweep did: a process waking at an index the cursor has
  // passed runs in the next round, one it has not reached runs in this
  // round — the determinism contract for bus-grant interleavings.
  std::size_t cursor = 0;
  while (ready_count_ > 0) {
    const std::size_t idx = next_ready(cursor);
    if (idx == npos) {
      cursor = 0;
      continue;
    }
    ready_bits_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    --ready_count_;
    cursor = idx + 1;
    ProcessRuntime* proc = processes_[idx].get();
    current_ = proc;
    // Sentinel: if the coroutine runs to completion it never calls an
    // awaiter, so the wait kind stays kDone until finish_process decides.
    proc->wait = WaitKind::kDone;
    proc->resume_point.resume();
    current_ = nullptr;
    if (proc->task.done()) {
      finish_process(*proc);
    }
    if (!run_status_.is_ok()) return;
  }
}

void Kernel::finish_process(ProcessRuntime& proc) {
  try {
    proc.task.rethrow_if_failed();
  } catch (const std::exception& e) {
    run_status_ = simulation_error(std::string("process ") + proc.name +
                                   " failed: " + e.what());
    proc.wait = WaitKind::kDone;
    return;
  }
  if (!proc.stats.completed) {
    proc.stats.completed = true;
    proc.stats.finish_time = time_;
  }
  ++proc.stats.activations;
  if (proc.restarts) {
    proc.task = proc.factory();
    proc.resume_point = proc.task.handle();
    make_ready(proc);
  } else {
    proc.wait = WaitKind::kDone;
  }
}

bool Kernel::commit_deltas() {
  if (dirty_.empty()) return false;
  if (++delta_ > kMaxDeltasPerInstant) {
    run_status_ = simulation_error(
        "delta cycle limit exceeded at t=" + std::to_string(time_) +
        " (oscillating zero-delay loop?)");
    return false;
  }
  ++stats_.delta_cycles;
  if (delta_ > stats_.max_deltas_in_instant) {
    stats_.max_deltas_in_instant = delta_;
  }

  changed_.clear();
  for (const SignalId id : dirty_) {
    FieldState& state = fields_[id];
    if (!state.pending) continue;  // already committed via duplicate entry
    if (*state.pending != state.current) {
      state.current = std::move(*state.pending);
      changed_.push_back(id);
      ++stats_.signal_commits;
      if (trace_enabled_) {
        if (trace_.size() >= trace_limit_) {
          run_status_ = simulation_error(
              "signal trace exceeded cap of " +
              std::to_string(trace_limit_) + " entries at t=" +
              std::to_string(time_) +
              " (raise Kernel::set_trace_limit or disable tracing)");
          return false;
        }
        trace_.push_back(TraceEntry{time_, delta_, keys_[id], state.current});
      }
    }
    state.pending.reset();
  }
  dirty_.clear();
  if (changed_.empty()) return true;  // commit happened, no events

  // Event waiters: walk only the changed signals' waiter lists. Every
  // linked node is a live registration, so each wake unlinks the process
  // from all its lists (a process sensitive to several changed signals
  // still wakes exactly once).
  for (const SignalId id : changed_) {
    FieldState& state = fields_[id];
    while (EventNode* node = state.waiters) {
      ProcessRuntime* proc = node->proc;
      unlink_event_waiter(*proc);
      make_ready(*proc);
      ++stats_.wakeups_event;
    }
    while (EventNode* node = wildcard_waiters_[state.signal_ord]) {
      ProcessRuntime* proc = node->proc;
      unlink_event_waiter(*proc);
      make_ready(*proc);
      ++stats_.wakeups_event;
    }
  }

  // Condition waiters: re-evaluate only processes actually parked on a
  // `wait until`. Conditions read committed signal state, so evaluation
  // order cannot change outcomes; swap-removal keeps each wake O(1).
  std::size_t i = 0;
  while (i < condition_waiters_.size()) {
    ProcessRuntime* proc = condition_waiters_[i];
    if (proc->condition()) {
      remove_condition_waiter(*proc);
      make_ready(*proc);
      ++stats_.wakeups_condition;
    } else {
      ++i;
    }
  }
  return true;
}

bool Kernel::advance_time(std::uint64_t max_time) {
  if (timed_.empty()) return false;
  const std::uint64_t next = timed_.top().time;
  if (next > max_time) {
    run_status_ = simulation_error(
        "simulation exceeded max_time=" + std::to_string(max_time));
    return false;
  }
  time_ = next;
  delta_ = 0;
  ++stats_.instants;
  while (!timed_.empty() && timed_.top().time == next) {
    ProcessRuntime& proc = *processes_[timed_.top().index];
    timed_.pop();
    make_ready(proc);
    ++stats_.wakeups_time;
  }
  return true;
}

SimResult Kernel::run(std::uint64_t max_time) {
  run_status_ = Status::ok();
  time_ = 0;
  delta_ = 0;
  stats_ = KernelStats{};
  stats_.instants = 1;  // t=0 always executes
  trace_.clear();  // each run records its own waveform
  for (const auto& [name, id] : bus_index_) {
    BusLockState& lock = bus_locks_[id];
    lock.holder = nullptr;
    lock.waiters.clear();
    lock.stats = BusStats{};
    lock.stats.bus = name;
  }
  if (obs_.metrics != nullptr) {
    // Cycle-valued histograms over per-acquisition bus hold ("transaction
    // length") and per-grant wait ("arbitration latency") durations.
    const std::vector<std::uint64_t> bounds = obs::exponential_bounds(1 << 16);
    hold_hist_ = &obs_.metrics->histogram("sim.bus_hold_cycles", bounds);
    wait_hist_ = &obs_.metrics->histogram("sim.bus_wait_cycles", bounds);
  } else {
    hold_hist_ = nullptr;
    wait_hist_ = nullptr;
  }

  // Rebuild the indexed scheduler state from scratch: any waiter lists or
  // heap entries left by a previous (possibly aborted) run are stale.
  timed_ = {};
  condition_waiters_.clear();
  for (FieldState& field : fields_) field.waiters = nullptr;
  for (EventNode*& head : wildcard_waiters_) head = nullptr;
  ready_bits_.assign((processes_.size() + 63) / 64, 0);
  ready_count_ = 0;

  for (auto& proc : processes_) {
    proc->event_nodes.clear();
    proc->task = proc->factory();
    proc->resume_point = proc->task.handle();
    proc->stats = ProcessStats{};
    proc->stats.name = proc->name;
    make_ready(*proc);
  }

  while (run_status_.is_ok()) {
    run_ready();
    if (!run_status_.is_ok()) break;
    if (commit_deltas()) continue;
    if (!advance_time(max_time)) break;
  }

  SimResult result;
  result.status = run_status_;
  result.end_time = time_;
  result.processes.reserve(processes_.size());
  for (const auto& proc : processes_) {
    // A process parked on a bus-lock queue at quiescence never completed.
    result.processes.push_back(proc->stats);
  }
  stats_.trace_entries = trace_.size();
  result.kernel = stats_;
  result.buses.reserve(bus_locks_.size());
  for (const auto& [name, id] : bus_index_) {
    result.buses.push_back(bus_locks_[id].stats);
  }
  if (obs_.metrics != nullptr) flush_metrics(result);
  return result;
}

void Kernel::flush_metrics(const SimResult& result) const {
  obs::MetricsRegistry& reg = *obs_.metrics;
  reg.counter("sim.runs").add(1);
  reg.counter("sim.simulated_cycles").add(result.end_time);
  reg.counter("sim.instants").add(stats_.instants);
  reg.counter("sim.delta_cycles").add(stats_.delta_cycles);
  reg.counter("sim.signal_commits").add(stats_.signal_commits);
  reg.counter("sim.trace_entries").add(stats_.trace_entries);
  reg.counter("sim.wakeups.time").add(stats_.wakeups_time);
  reg.counter("sim.wakeups.event").add(stats_.wakeups_event);
  reg.counter("sim.wakeups.condition").add(stats_.wakeups_condition);
  reg.counter("sim.wakeups.bus_grant").add(stats_.wakeups_bus_grant);
  reg.histogram("sim.deltas_per_instant", obs::exponential_bounds(1 << 16))
      .observe(stats_.max_deltas_in_instant);
  for (const BusStats& bus : result.buses) {
    const std::string prefix = "sim.bus." + bus.bus + ".";
    reg.counter(prefix + "acquisitions").add(bus.acquisitions);
    reg.counter(prefix + "contended_acquisitions")
        .add(bus.contended_acquisitions);
    reg.counter(prefix + "hold_cycles").add(bus.hold_cycles);
    reg.counter(prefix + "wait_cycles").add(bus.wait_cycles);
  }
  std::uint64_t bus_wait = 0;
  for (const ProcessStats& proc : result.processes) {
    bus_wait += proc.bus_wait_cycles;
  }
  reg.counter("sim.process_bus_wait_cycles").add(bus_wait);
}

}  // namespace ifsyn::sim
