#include "sim/kernel.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace ifsyn::sim {

// ---- configuration -------------------------------------------------------

void Kernel::add_signal_field(const FieldKey& key, BitVector initial) {
  IFSYN_ASSERT_MSG(!fields_.count(key),
                   "duplicate signal field " << key.to_string());
  fields_.emplace(key, FieldState{initial, std::move(initial), std::nullopt});
}

void Kernel::add_bus_lock(const std::string& bus) {
  bus_locks_.emplace(bus, BusLockState{});
}

void Kernel::add_process(const std::string& name,
                         std::function<SimTask()> factory, bool restarts) {
  auto proc = std::make_unique<ProcessRuntime>();
  proc->name = name;
  proc->factory = std::move(factory);
  proc->restarts = restarts;
  proc->stats.name = name;
  processes_.push_back(std::move(proc));
}

// ---- signal access --------------------------------------------------------

Kernel::FieldState& Kernel::field_state(const FieldKey& key) {
  auto it = fields_.find(key);
  IFSYN_ASSERT_MSG(it != fields_.end(),
                   "unknown signal field " << key.to_string());
  return it->second;
}

const Kernel::FieldState& Kernel::field_state(const FieldKey& key) const {
  auto it = fields_.find(key);
  IFSYN_ASSERT_MSG(it != fields_.end(),
                   "unknown signal field " << key.to_string());
  return it->second;
}

const BitVector& Kernel::signal_value(const FieldKey& key) const {
  return field_state(key).current;
}

const BitVector& Kernel::initial_value(const FieldKey& key) const {
  return field_state(key).initial;
}

std::vector<FieldKey> Kernel::signal_keys() const {
  std::vector<FieldKey> keys;
  keys.reserve(fields_.size());
  for (const auto& [key, state] : fields_) keys.push_back(key);
  return keys;
}

void Kernel::schedule_signal(const FieldKey& key, BitVector value) {
  FieldState& state = field_state(key);
  IFSYN_ASSERT_MSG(value.width() == state.current.width(),
                   "signal " << key.to_string() << " width "
                             << state.current.width() << " assigned "
                             << value.width() << " bits");
  if (!state.pending) dirty_.push_back(key);
  state.pending = std::move(value);  // last write in a delta wins
}

// ---- awaitables -----------------------------------------------------------

bool Kernel::Awaiter::await_ready() const noexcept {
  // All the decision logic lives in await_suspend (which can decline the
  // suspension); only the trivial zero-delay case short-circuits here.
  return kind == WaitKind::kTime && cycles == 0;
}

void Kernel::Awaiter::await_suspend(std::coroutine_handle<> h) {
  Kernel::ProcessRuntime* proc = kernel->current_;
  IFSYN_ASSERT_MSG(proc, "kernel awaitable used outside a process");
  proc->resume_point = h;

  switch (kind) {
    case WaitKind::kTime:
      proc->wait = WaitKind::kTime;
      proc->wake_time = kernel->time_ + cycles;
      return;
    case WaitKind::kEvent:
      proc->wait = WaitKind::kEvent;
      proc->sensitivity = sensitivity;
      return;
    case WaitKind::kCondition:
      if (condition()) {
        // Level-sensitive wait-until: condition already holds, so do not
        // actually block -- re-queue as ready (see header comment).
        proc->wait = WaitKind::kReady;
        return;
      }
      proc->wait = WaitKind::kCondition;
      proc->condition = condition;
      return;
    case WaitKind::kBusLock: {
      auto it = kernel->bus_locks_.find(bus);
      IFSYN_ASSERT_MSG(it != kernel->bus_locks_.end(),
                       "unknown bus lock " << bus);
      BusLockState& lock = it->second;
      if (lock.holder == nullptr) {
        lock.holder = proc;
        proc->wait = WaitKind::kReady;  // got it; continue this sweep
        return;
      }
      lock.waiters.push_back(proc);
      proc->wait = WaitKind::kBusLock;
      proc->lock_wait_start = kernel->time_;
      return;
    }
    case WaitKind::kReady:
    case WaitKind::kDone:
      IFSYN_ASSERT_MSG(false, "invalid awaiter kind");
  }
}

Kernel::Awaiter Kernel::wait_for(std::uint64_t cycles) {
  return Awaiter{this, WaitKind::kTime, cycles, {}, {}, {}};
}

Kernel::Awaiter Kernel::wait_on(std::vector<FieldKey> sensitivity) {
  return Awaiter{this, WaitKind::kEvent, 0, std::move(sensitivity), {}, {}};
}

Kernel::Awaiter Kernel::wait_until(std::function<bool()> cond) {
  return Awaiter{this, WaitKind::kCondition, 0, {}, std::move(cond), {}};
}

Kernel::Awaiter Kernel::acquire_bus(const std::string& bus) {
  return Awaiter{this, WaitKind::kBusLock, 0, {}, {}, bus};
}

void Kernel::release_bus(const std::string& bus) {
  auto it = bus_locks_.find(bus);
  IFSYN_ASSERT_MSG(it != bus_locks_.end(), "unknown bus lock " << bus);
  BusLockState& lock = it->second;
  IFSYN_ASSERT_MSG(lock.holder == current_,
                   "bus " << bus << " released by non-holder");
  if (lock.waiters.empty()) {
    lock.holder = nullptr;
    return;
  }
  ProcessRuntime* next = lock.waiters.front();
  lock.waiters.pop_front();
  next->stats.bus_wait_cycles += time_ - next->lock_wait_start;
  lock.holder = next;
  next->wait = WaitKind::kReady;
}

// ---- scheduler -------------------------------------------------------------

void Kernel::run_ready() {
  bool progressed = true;
  while (progressed && run_status_.is_ok()) {
    progressed = false;
    for (auto& proc : processes_) {
      if (proc->wait != WaitKind::kReady) continue;
      progressed = true;
      current_ = proc.get();
      // Sentinel: if the coroutine runs to completion it never calls an
      // awaiter, so the wait kind stays kDone until finish_process decides.
      proc->wait = WaitKind::kDone;
      proc->resume_point.resume();
      current_ = nullptr;
      if (proc->task.done()) {
        finish_process(*proc);
      }
      if (!run_status_.is_ok()) return;
    }
  }
}

void Kernel::finish_process(ProcessRuntime& proc) {
  try {
    proc.task.rethrow_if_failed();
  } catch (const std::exception& e) {
    run_status_ = simulation_error(std::string("process ") + proc.name +
                                   " failed: " + e.what());
    proc.wait = WaitKind::kDone;
    return;
  }
  if (!proc.stats.completed) {
    proc.stats.completed = true;
    proc.stats.finish_time = time_;
  }
  ++proc.stats.activations;
  if (proc.restarts) {
    proc.task = proc.factory();
    proc.resume_point = proc.task.handle();
    proc.wait = WaitKind::kReady;
  } else {
    proc.wait = WaitKind::kDone;
  }
}

bool Kernel::commit_deltas() {
  if (dirty_.empty()) return false;
  if (++delta_ > kMaxDeltasPerInstant) {
    run_status_ = simulation_error(
        "delta cycle limit exceeded at t=" + std::to_string(time_) +
        " (oscillating zero-delay loop?)");
    return false;
  }

  std::vector<FieldKey> changed;
  for (const FieldKey& key : dirty_) {
    FieldState& state = field_state(key);
    if (!state.pending) continue;  // already committed via duplicate entry
    if (*state.pending != state.current) {
      state.current = std::move(*state.pending);
      changed.push_back(key);
      if (trace_enabled_) {
        trace_.push_back(TraceEntry{time_, delta_, key, state.current});
      }
    }
    state.pending.reset();
  }
  dirty_.clear();
  if (changed.empty()) return true;  // commit happened, no events

  for (auto& proc : processes_) {
    if (proc->wait == WaitKind::kEvent) {
      const bool hit = std::any_of(
          proc->sensitivity.begin(), proc->sensitivity.end(),
          [&changed](const FieldKey& want) {
            return std::any_of(
                changed.begin(), changed.end(), [&want](const FieldKey& got) {
                  return want.signal == got.signal &&
                         (want.field.empty() || want.field == got.field);
                });
          });
      if (hit) proc->wait = WaitKind::kReady;
    } else if (proc->wait == WaitKind::kCondition) {
      if (proc->condition()) proc->wait = WaitKind::kReady;
    }
  }
  return true;
}

bool Kernel::advance_time(std::uint64_t max_time) {
  std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
  for (const auto& proc : processes_) {
    if (proc->wait == WaitKind::kTime) next = std::min(next, proc->wake_time);
  }
  if (next == std::numeric_limits<std::uint64_t>::max()) return false;
  if (next > max_time) {
    run_status_ = simulation_error(
        "simulation exceeded max_time=" + std::to_string(max_time));
    return false;
  }
  time_ = next;
  delta_ = 0;
  for (auto& proc : processes_) {
    if (proc->wait == WaitKind::kTime && proc->wake_time == time_) {
      proc->wait = WaitKind::kReady;
    }
  }
  return true;
}

SimResult Kernel::run(std::uint64_t max_time) {
  run_status_ = Status::ok();
  time_ = 0;
  delta_ = 0;

  for (auto& proc : processes_) {
    proc->task = proc->factory();
    proc->resume_point = proc->task.handle();
    proc->wait = WaitKind::kReady;
    proc->stats = ProcessStats{};
    proc->stats.name = proc->name;
  }

  while (run_status_.is_ok()) {
    run_ready();
    if (!run_status_.is_ok()) break;
    if (commit_deltas()) continue;
    if (!advance_time(max_time)) break;
  }

  SimResult result;
  result.status = run_status_;
  result.end_time = time_;
  result.processes.reserve(processes_.size());
  for (const auto& proc : processes_) {
    // A process parked on a bus-lock queue at quiescence never completed.
    result.processes.push_back(proc->stats);
  }
  return result;
}

}  // namespace ifsyn::sim
