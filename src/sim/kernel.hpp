// ifsyn/sim/kernel.hpp
//
// Discrete-event simulation kernel with VHDL-style semantics:
//
//   - *Signals* carry bit-vector values per record field. Assignments are
//     scheduled and commit at the next delta boundary (when every runnable
//     process has suspended); a commit that changes the value is an event.
//   - *Processes* are coroutines (see task.hpp). They suspend on
//     `wait for` (simulated clock cycles), `wait on` (signal events), and
//     `wait until` (a condition over signals).
//   - Time advances only when no process is runnable and no signal update
//     is pending, jumping to the earliest timed waiter.
//
// Deviation from strict VHDL, by design: `wait until cond` checks the
// condition immediately and does not suspend when it already holds.
// Strict VHDL waits for the next event even then, which makes generated
// handshakes sensitive to lost wakeups when two processes race to a
// rendezvous. The level-sensitive reading preserves the paper's protocol
// semantics (Fig. 4) and is robust to arbitrary interleaving.
//
// The kernel also implements the bus-arbitration extension (paper Sec. 6
// future work): named FIFO locks with per-process wait-time accounting.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/scoped_timer.hpp"
#include "sim/task.hpp"
#include "util/bit_vector.hpp"
#include "util/status.hpp"

namespace ifsyn::sim {

/// Identifies one field of one signal ("B.START"); field "" = scalar.
struct FieldKey {
  std::string signal;
  std::string field;

  friend bool operator==(const FieldKey&, const FieldKey&) = default;
  friend auto operator<=>(const FieldKey&, const FieldKey&) = default;
  std::string to_string() const {
    return field.empty() ? signal : signal + "." + field;
  }
};

/// One committed signal change, for waveform inspection in tests/benches.
struct TraceEntry {
  std::uint64_t time;
  std::uint64_t delta;
  FieldKey key;
  BitVector value;
};

/// Statistics for one process after a run.
struct ProcessStats {
  std::string name;
  bool completed = false;          ///< body ran to its end at least once
  std::uint64_t finish_time = 0;   ///< time of (first) completion
  std::uint64_t activations = 0;   ///< 1 for one-shot, N for restarting
  std::uint64_t bus_wait_cycles = 0;  ///< time spent blocked on bus locks
};

/// Scheduler-level counters for one run. Everything here is derived from
/// simulated events, so it is deterministic for a given system and budget
/// (see obs/metrics.hpp for the contract these feed).
struct KernelStats {
  std::uint64_t instants = 0;        ///< distinct time points executed
  std::uint64_t delta_cycles = 0;    ///< total commit rounds across the run
  std::uint64_t max_deltas_in_instant = 0;
  std::uint64_t signal_commits = 0;  ///< commits that changed a field value
  std::uint64_t wakeups_time = 0;    ///< processes resumed by `wait for`
  std::uint64_t wakeups_event = 0;   ///< ... by `wait on` sensitivity hits
  std::uint64_t wakeups_condition = 0;  ///< ... by `wait until` turning true
  std::uint64_t wakeups_bus_grant = 0;  ///< ... by acquiring a bus lock
  std::uint64_t trace_entries = 0;   ///< waveform entries recorded
};

/// Per-bus-lock accounting (arbitration extension): how long the bus was
/// held (≈ busy transferring) and how long requesters queued for it. Wait
/// time of processes still parked at quiescence is not included.
struct BusStats {
  std::string bus;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended_acquisitions = 0;  ///< grants that had to queue
  std::uint64_t hold_cycles = 0;
  std::uint64_t wait_cycles = 0;

  /// Fraction of the run the bus was held; the report's utilization line.
  double utilization(std::uint64_t end_time) const {
    return end_time == 0
               ? 0.0
               : static_cast<double>(hold_cycles) /
                     static_cast<double>(end_time);
  }
};

/// Result of Kernel::run.
struct SimResult {
  Status status;                 ///< ok, or why the run aborted
  std::uint64_t end_time = 0;    ///< simulation time at quiescence
  std::vector<ProcessStats> processes;
  KernelStats kernel;
  std::vector<BusStats> buses;   ///< one per declared lock, name order

  const BusStats* find_bus(const std::string& name) const {
    for (const auto& b : buses)
      if (b.bus == name) return &b;
    return nullptr;
  }

  const ProcessStats* find(const std::string& name) const {
    for (const auto& p : processes)
      if (p.name == name) return &p;
    return nullptr;
  }
};

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- configuration ----------------------------------------------------

  /// Declare a signal field with an initial value (all zeros typical).
  void add_signal_field(const FieldKey& key, BitVector initial);

  /// Declare a named bus lock (arbitration extension).
  void add_bus_lock(const std::string& bus);

  /// Register a process. `factory` builds one activation of the body; it
  /// is re-invoked on restart when `restarts` is true.
  void add_process(const std::string& name, std::function<SimTask()> factory,
                   bool restarts = false);

  /// Record every committed signal change (off by default).
  void enable_trace(bool on) { trace_enabled_ = on; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// Cap on recorded trace entries. A traced run that would exceed the cap
  /// aborts with kSimulationError instead of growing without bound on
  /// pathological specs. Default: kDefaultTraceLimit.
  void set_trace_limit(std::size_t max_entries) {
    trace_limit_ = max_entries;
  }

  /// Attach a metrics registry / trace sink. The kernel batches its
  /// per-event counts in plain integers during the run (always on, no
  /// atomics in the hot path) and flushes them into the registry once at
  /// the end of run() under the "sim." prefix; bus hold/wait durations
  /// additionally feed the sim.bus_hold_cycles / sim.bus_wait_cycles
  /// histograms. All flushed values are Determinism::kDeterministic.
  void set_obs(const obs::ObsContext& ctx) { obs_ = ctx; }

  // ---- runtime services (called from inside process coroutines) ---------

  /// Current value of a signal field.
  const BitVector& signal_value(const FieldKey& key) const;

  /// Value the field was declared with (time-0 value, for waveform dumps).
  const BitVector& initial_value(const FieldKey& key) const;

  /// All declared signal fields, in key order.
  std::vector<FieldKey> signal_keys() const;

  /// Schedule `value` onto the field; commits at the next delta boundary.
  void schedule_signal(const FieldKey& key, BitVector value);

  std::uint64_t now() const { return time_; }

  // Awaitables. Each suspends the current process with a wait reason the
  // scheduler understands. Use as: `co_await kernel.wait_for(2);`
  struct Awaiter;
  Awaiter wait_for(std::uint64_t cycles);
  Awaiter wait_on(std::vector<FieldKey> sensitivity);
  /// `cond` is re-evaluated after every delta commit; it must read only
  /// signals (not time), which is all the IR's wait-until allows.
  Awaiter wait_until(std::function<bool()> cond);
  Awaiter acquire_bus(const std::string& bus);
  void release_bus(const std::string& bus);

  // ---- execution ---------------------------------------------------------

  /// Run to quiescence (no runnable process, no pending signal update, no
  /// timed waiter) or until `max_time` cycles, whichever first. Exceeding
  /// max_time or the per-instant delta limit yields kSimulationError.
  SimResult run(std::uint64_t max_time = 1'000'000);

 private:
  enum class WaitKind { kReady, kTime, kEvent, kCondition, kBusLock, kDone };

  struct ProcessRuntime {
    std::string name;
    std::function<SimTask()> factory;
    bool restarts = false;
    SimTask task;
    std::coroutine_handle<> resume_point;

    WaitKind wait = WaitKind::kReady;
    std::uint64_t wake_time = 0;
    std::vector<FieldKey> sensitivity;
    std::function<bool()> condition;
    std::uint64_t lock_wait_start = 0;

    ProcessStats stats;
  };

  struct FieldState {
    BitVector current;
    BitVector initial;
    std::optional<BitVector> pending;
  };

  struct BusLockState {
    ProcessRuntime* holder = nullptr;
    std::deque<ProcessRuntime*> waiters;
    std::uint64_t hold_start = 0;  ///< time the current holder acquired
    BusStats stats;
  };

  FieldState& field_state(const FieldKey& key);
  const FieldState& field_state(const FieldKey& key) const;

  /// Resume every kReady process until all are suspended or done.
  void run_ready();
  /// Commit pending signal values; wake event/condition waiters.
  /// Returns true if anything changed or anyone woke.
  bool commit_deltas();
  /// Jump time to the earliest kTime waiter; returns false if none.
  bool advance_time(std::uint64_t max_time);

  void finish_process(ProcessRuntime& proc);
  /// Grant the lock to `next` at the current time, with accounting.
  void grant_bus(BusLockState& lock, ProcessRuntime* next, bool contended);
  /// Push KernelStats and bus histograms into the attached registry.
  void flush_metrics(const SimResult& result) const;

  std::uint64_t time_ = 0;
  std::uint64_t delta_ = 0;  // delta count within the current instant
  ProcessRuntime* current_ = nullptr;

  std::map<FieldKey, FieldState> fields_;
  std::vector<FieldKey> dirty_;  // fields with pending values, in order
  std::map<std::string, BusLockState> bus_locks_;
  std::vector<std::unique_ptr<ProcessRuntime>> processes_;

  bool trace_enabled_ = false;
  std::vector<TraceEntry> trace_;
  std::size_t trace_limit_ = kDefaultTraceLimit;
  Status run_status_;
  KernelStats stats_;
  obs::ObsContext obs_;
  // Histogram handles resolved once per run (name lookup off the hot path);
  // null when no registry is attached.
  obs::Histogram* hold_hist_ = nullptr;
  obs::Histogram* wait_hist_ = nullptr;

  static constexpr std::uint64_t kMaxDeltasPerInstant = 100'000;
  static constexpr std::size_t kDefaultTraceLimit = 4'000'000;

  friend struct KernelAwaiterAccess;
};

/// The one awaiter type used for every kernel suspension.
struct Kernel::Awaiter {
  Kernel* kernel;
  WaitKind kind;
  std::uint64_t cycles = 0;
  std::vector<FieldKey> sensitivity;
  std::function<bool()> condition;
  std::string bus;

  bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

}  // namespace ifsyn::sim
