// ifsyn/sim/kernel.hpp
//
// Discrete-event simulation kernel with VHDL-style semantics:
//
//   - *Signals* carry bit-vector values per record field. Assignments are
//     scheduled and commit at the next delta boundary (when every runnable
//     process has suspended); a commit that changes the value is an event.
//   - *Processes* are coroutines (see task.hpp). They suspend on
//     `wait for` (simulated clock cycles), `wait on` (signal events), and
//     `wait until` (a condition over signals).
//   - Time advances only when no process is runnable and no signal update
//     is pending, jumping to the earliest timed waiter.
//
// Deviation from strict VHDL, by design: `wait until cond` checks the
// condition immediately and does not suspend when it already holds.
// Strict VHDL waits for the next event even then, which makes generated
// handshakes sensitive to lost wakeups when two processes race to a
// rendezvous. The level-sensitive reading preserves the paper's protocol
// semantics (Fig. 4) and is robust to arbitrary interleaving.
//
// Data plane (see DESIGN.md Sec. 9): every signal field is interned at
// declaration time into a dense SignalId indexing a flat FieldState
// vector, so the hot paths never touch string keys. The scheduler is
// indexed rather than scan-based: an index-ordered ready bitmap replaces
// the all-process sweep, a min-heap of timed waiters replaces the
// next-instant scan, and a per-signal intrusive waiter list (plus a
// dedicated condition-waiter list) replaces the O(waiters x sensitivity x
// changed) wakeup matching. The FieldKey name layer remains the public
// declaration/inspection API; names resolve to SignalIds once.
//
// The kernel also implements the bus-arbitration extension (paper Sec. 6
// future work): named FIFO locks with per-process wait-time accounting.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "obs/scoped_timer.hpp"
#include "sim/task.hpp"
#include "util/bit_vector.hpp"
#include "util/status.hpp"

namespace ifsyn::sim {

/// Identifies one field of one signal ("B.START"); field "" = scalar.
struct FieldKey {
  std::string signal;
  std::string field;

  friend bool operator==(const FieldKey&, const FieldKey&) = default;
  friend auto operator<=>(const FieldKey&, const FieldKey&) = default;
  std::string to_string() const {
    return field.empty() ? signal : signal + "." + field;
  }
};

/// Dense handle for one declared signal field: an index into the kernel's
/// flat field-state vector, assigned in declaration order. Resolve names
/// once via Kernel::signal_id and use the id on every hot-path access.
///
/// Ids with kWildcardBit set are whole-signal sensitivity handles (from
/// Kernel::wildcard_id): valid only inside wait_on sensitivity lists,
/// where they match a commit on any field of the signal.
using SignalId = std::uint32_t;
inline constexpr SignalId kInvalidSignalId = 0xffffffffu;
inline constexpr SignalId kWildcardBit = 0x80000000u;

/// Dense handle for one declared bus lock, in declaration order.
using BusId = std::uint32_t;
inline constexpr BusId kInvalidBusId = 0xffffffffu;

/// One committed signal change, for waveform inspection in tests/benches.
struct TraceEntry {
  std::uint64_t time;
  std::uint64_t delta;
  FieldKey key;
  BitVector value;
};

/// Statistics for one process after a run.
struct ProcessStats {
  std::string name;
  bool completed = false;          ///< body ran to its end at least once
  std::uint64_t finish_time = 0;   ///< time of (first) completion
  std::uint64_t activations = 0;   ///< 1 for one-shot, N for restarting
  std::uint64_t bus_wait_cycles = 0;  ///< time spent blocked on bus locks
};

/// Scheduler-level counters for one run. Everything here is derived from
/// simulated events, so it is deterministic for a given system and budget
/// (see obs/metrics.hpp for the contract these feed).
struct KernelStats {
  std::uint64_t instants = 0;        ///< distinct time points executed
  std::uint64_t delta_cycles = 0;    ///< total commit rounds across the run
  std::uint64_t max_deltas_in_instant = 0;
  std::uint64_t signal_commits = 0;  ///< commits that changed a field value
  std::uint64_t wakeups_time = 0;    ///< processes resumed by `wait for`
  std::uint64_t wakeups_event = 0;   ///< ... by `wait on` sensitivity hits
  std::uint64_t wakeups_condition = 0;  ///< ... by `wait until` turning true
  std::uint64_t wakeups_bus_grant = 0;  ///< ... by acquiring a bus lock
  std::uint64_t trace_entries = 0;   ///< waveform entries recorded
};

/// Per-bus-lock accounting (arbitration extension): how long the bus was
/// held (≈ busy transferring) and how long requesters queued for it. Wait
/// time of processes still parked at quiescence is not included.
struct BusStats {
  std::string bus;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended_acquisitions = 0;  ///< grants that had to queue
  std::uint64_t hold_cycles = 0;
  std::uint64_t wait_cycles = 0;

  /// Fraction of the run the bus was held; the report's utilization line.
  double utilization(std::uint64_t end_time) const {
    return end_time == 0
               ? 0.0
               : static_cast<double>(hold_cycles) /
                     static_cast<double>(end_time);
  }
};

/// Result of Kernel::run.
struct SimResult {
  Status status;                 ///< ok, or why the run aborted
  std::uint64_t end_time = 0;    ///< simulation time at quiescence
  std::vector<ProcessStats> processes;
  KernelStats kernel;
  std::vector<BusStats> buses;   ///< one per declared lock, name order

  const BusStats* find_bus(const std::string& name) const {
    for (const auto& b : buses)
      if (b.bus == name) return &b;
    return nullptr;
  }

  const ProcessStats* find(const std::string& name) const {
    for (const auto& p : processes)
      if (p.name == name) return &p;
    return nullptr;
  }
};

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- configuration ----------------------------------------------------

  /// Declare a signal field with an initial value (all zeros typical).
  /// Fields are interned in declaration order; the first declaration gets
  /// SignalId 0.
  void add_signal_field(const FieldKey& key, BitVector initial);

  /// Declare a named bus lock (arbitration extension).
  void add_bus_lock(const std::string& bus);

  /// Register a process. `factory` builds one activation of the body; it
  /// is re-invoked on restart when `restarts` is true.
  void add_process(const std::string& name, std::function<SimTask()> factory,
                   bool restarts = false);

  /// Record every committed signal change (off by default).
  void enable_trace(bool on) { trace_enabled_ = on; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// Cap on recorded trace entries. A traced run that would exceed the cap
  /// aborts with kSimulationError instead of growing without bound on
  /// pathological specs. Default: kDefaultTraceLimit.
  void set_trace_limit(std::size_t max_entries) {
    trace_limit_ = max_entries;
  }

  /// Attach a metrics registry / trace sink. The kernel batches its
  /// per-event counts in plain integers during the run (always on, no
  /// atomics in the hot path) and flushes them into the registry once at
  /// the end of run() under the "sim." prefix; bus hold/wait durations
  /// additionally feed the sim.bus_hold_cycles / sim.bus_wait_cycles
  /// histograms. All flushed values are Determinism::kDeterministic.
  void set_obs(const obs::ObsContext& ctx) { obs_ = ctx; }

  /// The attached observability hooks (default-empty when none were set).
  /// Execution engines layered on the kernel register their own metrics
  /// (e.g. the bytecode VM's sim.vm.* counters) through the same context.
  const obs::ObsContext& obs() const { return obs_; }

  // ---- name resolution (cold path; resolve once, keep the id) -----------

  /// Dense id of a declared field. Asserts when the key is unknown.
  SignalId signal_id(const FieldKey& key) const;

  /// Whole-signal sensitivity handle (kWildcardBit-tagged): use in
  /// wait_on sensitivity lists to wake on a commit to any field of
  /// `signal`. Asserts when no field of the signal is declared.
  SignalId wildcard_id(const std::string& signal) const;

  /// Non-asserting lookups for elaboration pre-passes that must preserve
  /// lazy error timing: unknown names return the kInvalid sentinel.
  SignalId find_signal_id(const FieldKey& key) const;
  SignalId find_wildcard_id(const std::string& signal) const;
  BusId find_bus_id(const std::string& bus) const;

  /// Dense id of a declared bus lock. Asserts when the name is unknown.
  BusId bus_id(const std::string& bus) const;

  /// All declared signal fields, in declaration (elaboration) order.
  /// Returns the cached key list; the reference stays valid until the
  /// next add_signal_field.
  const std::vector<FieldKey>& signal_keys() const { return keys_; }

  // ---- runtime services (called from inside process coroutines) ---------

  /// Current value of a signal field.
  const BitVector& signal_value(const FieldKey& key) const;
  const BitVector& signal_value(SignalId id) const {
    return fields_[id].current;
  }

  /// Value the field was declared with (time-0 value, for waveform dumps).
  const BitVector& initial_value(const FieldKey& key) const;
  const BitVector& initial_value(SignalId id) const {
    return fields_[id].initial;
  }

  /// Schedule `value` onto the field; commits at the next delta boundary.
  void schedule_signal(const FieldKey& key, BitVector value);
  void schedule_signal(SignalId id, BitVector value);

  std::uint64_t now() const { return time_; }

  // Awaitables. Each suspends the current process with a wait reason the
  // scheduler understands. Use as: `co_await kernel.wait_for(2);`
  struct Awaiter;
  Awaiter wait_for(std::uint64_t cycles);
  /// Name-based sensitivity; `field==""` keys match a commit to any field
  /// of the signal (whole-signal wildcard). Unknown keys never match (and
  /// so never wake), mirroring the original scan-based semantics.
  Awaiter wait_on(std::vector<FieldKey> sensitivity);
  /// Interned sensitivity: ids must outlive the co_await (callers keep
  /// them in elaboration-time caches).
  Awaiter wait_on(std::span<const SignalId> sensitivity);
  /// `cond` is re-evaluated after every delta commit; it must read only
  /// signals (not time), which is all the IR's wait-until allows.
  Awaiter wait_until(std::function<bool()> cond);
  Awaiter acquire_bus(const std::string& bus);
  Awaiter acquire_bus(BusId bus);
  void release_bus(const std::string& bus);
  void release_bus(BusId bus);

  // ---- execution ---------------------------------------------------------

  /// Run to quiescence (no runnable process, no pending signal update, no
  /// timed waiter) or until `max_time` cycles, whichever first. Exceeding
  /// max_time or the per-instant delta limit yields kSimulationError.
  /// Each run starts a fresh trace and fresh statistics; signal values
  /// carry over from the previous run (matching VHDL re-simulation of a
  /// warm design is not a goal — this simply preserves the historical
  /// inspect-after-run contract).
  SimResult run(std::uint64_t max_time = 1'000'000);

 private:
  enum class WaitKind { kReady, kTime, kEvent, kCondition, kBusLock, kDone };

  struct ProcessRuntime;

  /// One registration of a process on one sensitivity waiter list. Nodes
  /// are owned by the process (`event_nodes`) and linked intrusively into
  /// a per-field doubly-linked list — or, when `sig` carries kWildcardBit,
  /// into the whole-signal wildcard list — so both wake-by-signal (walk
  /// the list) and unsubscribe-on-wake (unlink every node) are O(degree).
  struct EventNode {
    ProcessRuntime* proc = nullptr;
    EventNode* prev = nullptr;
    EventNode* next = nullptr;
    SignalId sig = kInvalidSignalId;
  };

  struct ProcessRuntime {
    std::string name;
    std::function<SimTask()> factory;
    bool restarts = false;
    std::uint32_t index = 0;  ///< position in processes_, scheduler identity
    SimTask task;
    std::coroutine_handle<> resume_point;

    WaitKind wait = WaitKind::kReady;
    std::uint64_t wake_time = 0;
    std::vector<EventNode> event_nodes;  ///< linked while wait == kEvent
    std::function<bool()> condition;
    std::uint32_t cond_slot = 0;  ///< position in condition_waiters_
    std::uint64_t lock_wait_start = 0;

    ProcessStats stats;
  };

  struct FieldState {
    BitVector current;
    BitVector initial;
    std::optional<BitVector> pending;
    EventNode* waiters = nullptr;   ///< head of this field's waiter list
    std::uint32_t signal_ord = 0;   ///< owning signal, for wildcard wakes
  };

  struct BusLockState {
    std::string name;
    ProcessRuntime* holder = nullptr;
    std::deque<ProcessRuntime*> waiters;
    std::uint64_t hold_start = 0;  ///< time the current holder acquired
    BusStats stats;
  };

  /// Timed waiter heap entry; min-ordered by wake time. Ties pop in
  /// arbitrary order — wakeups only set index-ordered ready bits, so tie
  /// order is unobservable.
  struct TimedEntry {
    std::uint64_t time;
    std::uint32_t index;
    friend bool operator>(const TimedEntry& a, const TimedEntry& b) {
      return a.time > b.time;
    }
  };

  FieldState& field_state(const FieldKey& key);
  const FieldState& field_state(const FieldKey& key) const;

  // ---- ready bitmap ------------------------------------------------------
  // Index-ordered so that dispatch replicates the original
  // sweep-in-registration-order semantics exactly (determinism contract),
  // while only ever touching set bits.
  void make_ready(ProcessRuntime& proc);
  std::size_t next_ready(std::size_t from) const;  ///< npos when none

  // ---- sensitivity index -------------------------------------------------
  void link_event_waiter(ProcessRuntime& proc,
                         std::span<const SignalId> sensitivity);
  void unlink_event_waiter(ProcessRuntime& proc);
  void remove_condition_waiter(ProcessRuntime& proc);

  /// Resume every kReady process until all are suspended or done.
  void run_ready();
  /// Commit pending signal values; wake event/condition waiters.
  /// Returns true if anything changed or anyone woke.
  bool commit_deltas();
  /// Jump time to the earliest kTime waiter; returns false if none.
  bool advance_time(std::uint64_t max_time);

  void finish_process(ProcessRuntime& proc);
  /// Grant the lock to `next` at the current time, with accounting.
  void grant_bus(BusLockState& lock, ProcessRuntime* next, bool contended);
  /// Push KernelStats and bus histograms into the attached registry.
  void flush_metrics(const SimResult& result) const;

  std::uint64_t time_ = 0;
  std::uint64_t delta_ = 0;  // delta count within the current instant
  ProcessRuntime* current_ = nullptr;

  // Interning tables: dense state plus the name layer resolving into it.
  std::vector<FieldState> fields_;          // indexed by SignalId
  std::vector<FieldKey> keys_;              // id -> declared key
  std::map<FieldKey, SignalId> index_;      // name -> id (cold path)
  std::map<std::string, std::uint32_t> signal_ord_;  // name -> ordinal
  std::vector<EventNode*> wildcard_waiters_;  // ordinal -> wildcard list

  std::vector<SignalId> dirty_;    // fields with pending values, in order
  std::vector<SignalId> changed_;  // scratch reused across commits

  std::vector<BusLockState> bus_locks_;       // indexed by BusId
  std::map<std::string, BusId> bus_index_;    // name -> id (also name order)
  std::vector<std::unique_ptr<ProcessRuntime>> processes_;

  // Indexed scheduler state.
  std::vector<std::uint64_t> ready_bits_;  // 1 bit per process index
  std::size_t ready_count_ = 0;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>,
                      std::greater<TimedEntry>>
      timed_;
  std::vector<ProcessRuntime*> condition_waiters_;

  bool trace_enabled_ = false;
  std::vector<TraceEntry> trace_;
  std::size_t trace_limit_ = kDefaultTraceLimit;
  Status run_status_;
  KernelStats stats_;
  obs::ObsContext obs_;
  // Histogram handles resolved once per run (name lookup off the hot path);
  // null when no registry is attached.
  obs::Histogram* hold_hist_ = nullptr;
  obs::Histogram* wait_hist_ = nullptr;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::uint64_t kMaxDeltasPerInstant = 100'000;
  static constexpr std::size_t kDefaultTraceLimit = 4'000'000;

  friend struct KernelAwaiterAccess;
};

/// The one awaiter type used for every kernel suspension.
struct Kernel::Awaiter {
  Kernel* kernel = nullptr;
  WaitKind kind = WaitKind::kReady;
  std::uint64_t cycles = 0;
  std::vector<FieldKey> sensitivity;           ///< name-based wait_on
  std::span<const SignalId> sensitivity_ids;   ///< interned wait_on
  std::function<bool()> condition;
  std::string bus;
  BusId bus_id = kInvalidBusId;

  bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

}  // namespace ifsyn::sim
