// ifsyn/util/assert.hpp
//
// Internal-error checking for the ifsyn library.
//
// IFSYN_ASSERT guards programming errors (violated invariants, contract
// breaches inside the library). It throws ifsyn::InternalError so that unit
// tests can verify contracts without killing the process. Recoverable
// conditions that a *user* of the library can trigger (an infeasible bus
// group, a malformed specification) are reported through ifsyn::Status
// instead -- see util/status.hpp.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ifsyn {

/// Thrown when an internal invariant of the library is violated.
/// Catching this is only appropriate in tests; production callers should
/// treat it as a bug in ifsyn or in how it was driven.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "ifsyn internal error: assertion `" << expr << "` failed at " << file
     << ":" << line;
  if (!msg.empty()) os << ": " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace ifsyn

/// Assert an internal invariant. Always enabled (the checks guarding the
/// synthesis algorithms are cheap relative to the work they protect).
#define IFSYN_ASSERT(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ifsyn::detail::assert_fail(#cond, __FILE__, __LINE__, {});       \
  } while (false)

/// Assert with an explanatory message (streamed, so `<<` chains work).
#define IFSYN_ASSERT_MSG(cond, msg)                                      \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream ifsyn_assert_os_;                               \
      ifsyn_assert_os_ << msg;                                           \
      ::ifsyn::detail::assert_fail(#cond, __FILE__, __LINE__,            \
                                   ifsyn_assert_os_.str());              \
    }                                                                    \
  } while (false)
