#include "util/bit_vector.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ifsyn {

BitVector BitVector::from_int(int width, std::int64_t value) {
  BitVector bv(width);
  if (width > 0) {
    // Sign-extend across all words, then mask to width.
    const std::uint64_t pattern = value < 0 ? ~std::uint64_t{0} : 0;
    std::uint64_t* w = bv.words();
    std::fill_n(w, bv.nwords(), pattern);
    w[0] = static_cast<std::uint64_t>(value);
  }
  bv.clear_padding();
  return bv;
}

BitVector BitVector::from_binary_string(std::string_view bits) {
  int width = 0;
  for (char c : bits) {
    if (c == '_') continue;
    IFSYN_ASSERT_MSG(c == '0' || c == '1',
                     "bad binary digit '" << c << "' in \"" << bits << "\"");
    ++width;
  }
  BitVector bv(width);
  int index = width - 1;  // string is MSB-first
  for (char c : bits) {
    if (c == '_') continue;
    bv.set_bit(index--, c == '1');
  }
  return bv;
}

BitVector BitVector::slice(int hi, int lo) const {
  IFSYN_ASSERT_MSG(0 <= lo && lo <= hi && hi < width_,
                   "bad slice (" << hi << " downto " << lo << ") of width "
                                 << width_);
  BitVector out(hi - lo + 1);
  for (int i = 0; i < out.width_; ++i) out.set_bit(i, bit(lo + i));
  return out;
}

void BitVector::set_slice(int hi, int lo, const BitVector& value) {
  IFSYN_ASSERT_MSG(0 <= lo && lo <= hi && hi < width_,
                   "bad slice (" << hi << " downto " << lo << ") of width "
                                 << width_);
  IFSYN_ASSERT_MSG(value.width_ == hi - lo + 1,
                   "slice width " << (hi - lo + 1) << " != value width "
                                  << value.width_);
  for (int i = 0; i < value.width_; ++i) set_bit(lo + i, value.bit(i));
}

BitVector BitVector::concat(const BitVector& low) const {
  BitVector out(width_ + low.width_);
  if (low.width_ > 0) out.set_slice(low.width_ - 1, 0, low);
  if (width_ > 0) out.set_slice(out.width_ - 1, low.width_, *this);
  return out;
}

BitVector BitVector::resized(int new_width) const {
  BitVector out(new_width);
  const int n = std::min(word_count(width_), word_count(new_width));
  std::copy_n(words(), n, out.words());
  out.clear_padding();
  return out;
}

std::uint64_t BitVector::to_uint_wide() const {
  for (std::size_t w = 1; w < heap_.size(); ++w)
    IFSYN_ASSERT_MSG(heap_[w] == 0,
                     "BitVector value does not fit in 64 bits: "
                         << to_hex_string());
  return heap_[0];
}

BitVector BitVector::operator&(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = rhs.words();
  std::uint64_t* o = out.words();
  for (int i = 0, n = nwords(); i < n; ++i) o[i] = a[i] & b[i];
  return out;
}

BitVector BitVector::operator|(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = rhs.words();
  std::uint64_t* o = out.words();
  for (int i = 0, n = nwords(); i < n; ++i) o[i] = a[i] | b[i];
  return out;
}

BitVector BitVector::operator^(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = rhs.words();
  std::uint64_t* o = out.words();
  for (int i = 0, n = nwords(); i < n; ++i) o[i] = a[i] ^ b[i];
  return out;
}

BitVector BitVector::operator~() const {
  BitVector out(width_);
  const std::uint64_t* a = words();
  std::uint64_t* o = out.words();
  for (int i = 0, n = nwords(); i < n; ++i) o[i] = ~a[i];
  out.clear_padding();
  return out;
}

BitVector BitVector::operator+(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  const std::uint64_t* aw = words();
  const std::uint64_t* bw = rhs.words();
  std::uint64_t* o = out.words();
  std::uint64_t carry = 0;
  for (int i = 0, n = nwords(); i < n; ++i) {
    const std::uint64_t a = aw[i];
    const std::uint64_t b = bw[i];
    const std::uint64_t sum = a + b;
    const std::uint64_t sum2 = sum + carry;
    o[i] = sum2;
    carry = (sum < a) || (sum2 < sum) ? 1 : 0;
  }
  out.clear_padding();
  return out;
}

BitVector BitVector::operator-(const BitVector& rhs) const {
  // a - b == a + ~b + 1 (mod 2^width)
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  const std::uint64_t* aw = words();
  const std::uint64_t* bw = rhs.words();
  std::uint64_t* o = out.words();
  std::uint64_t borrow = 0;
  for (int i = 0, n = nwords(); i < n; ++i) {
    const std::uint64_t a = aw[i];
    const std::uint64_t b = bw[i];
    const std::uint64_t diff = a - b;
    const std::uint64_t diff2 = diff - borrow;
    o[i] = diff2;
    borrow = (a < b) || (diff < borrow) ? 1 : 0;
  }
  out.clear_padding();
  return out;
}

bool BitVector::unsigned_less(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = rhs.words();
  for (int i = nwords(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

std::string BitVector::to_binary_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

std::string BitVector::to_hex_string() const {
  static const char* kDigits = "0123456789abcdef";
  const int digits = (width_ + 3) / 4;
  std::string out = "0x";
  for (int d = digits - 1; d >= 0; --d) {
    int nibble = 0;
    for (int b = 3; b >= 0; --b) {
      const int index = d * 4 + b;
      nibble = (nibble << 1) | (index < width_ && bit(index) ? 1 : 0);
    }
    out.push_back(kDigits[nibble]);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const BitVector& bv) {
  return os << bv.width() << "'b" << bv.to_binary_string();
}

}  // namespace ifsyn
