#include "util/bit_vector.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ifsyn {

BitVector::BitVector(int width) : width_(width) {
  IFSYN_ASSERT_MSG(width >= 0, "negative BitVector width " << width);
  words_.assign(word_count(width), 0);
}

BitVector BitVector::from_uint(int width, std::uint64_t value) {
  BitVector bv(width);
  if (!bv.words_.empty()) bv.words_[0] = value;
  bv.clear_padding();
  return bv;
}

BitVector BitVector::from_int(int width, std::int64_t value) {
  BitVector bv(width);
  if (!bv.words_.empty()) {
    // Sign-extend across all words, then mask to width.
    const std::uint64_t pattern = value < 0 ? ~std::uint64_t{0} : 0;
    std::fill(bv.words_.begin(), bv.words_.end(), pattern);
    bv.words_[0] = static_cast<std::uint64_t>(value);
  }
  bv.clear_padding();
  return bv;
}

BitVector BitVector::from_binary_string(std::string_view bits) {
  int width = 0;
  for (char c : bits) {
    if (c == '_') continue;
    IFSYN_ASSERT_MSG(c == '0' || c == '1',
                     "bad binary digit '" << c << "' in \"" << bits << "\"");
    ++width;
  }
  BitVector bv(width);
  int index = width - 1;  // string is MSB-first
  for (char c : bits) {
    if (c == '_') continue;
    bv.set_bit(index--, c == '1');
  }
  return bv;
}

bool BitVector::bit(int index) const {
  IFSYN_ASSERT_MSG(index >= 0 && index < width_,
                   "bit index " << index << " out of range [0," << width_
                                << ")");
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1u;
}

void BitVector::set_bit(int index, bool value) {
  IFSYN_ASSERT_MSG(index >= 0 && index < width_,
                   "bit index " << index << " out of range [0," << width_
                                << ")");
  const std::uint64_t mask = std::uint64_t{1} << (index % kWordBits);
  if (value)
    words_[index / kWordBits] |= mask;
  else
    words_[index / kWordBits] &= ~mask;
}

BitVector BitVector::slice(int hi, int lo) const {
  IFSYN_ASSERT_MSG(0 <= lo && lo <= hi && hi < width_,
                   "bad slice (" << hi << " downto " << lo << ") of width "
                                 << width_);
  BitVector out(hi - lo + 1);
  for (int i = 0; i < out.width_; ++i) out.set_bit(i, bit(lo + i));
  return out;
}

void BitVector::set_slice(int hi, int lo, const BitVector& value) {
  IFSYN_ASSERT_MSG(0 <= lo && lo <= hi && hi < width_,
                   "bad slice (" << hi << " downto " << lo << ") of width "
                                 << width_);
  IFSYN_ASSERT_MSG(value.width_ == hi - lo + 1,
                   "slice width " << (hi - lo + 1) << " != value width "
                                  << value.width_);
  for (int i = 0; i < value.width_; ++i) set_bit(lo + i, value.bit(i));
}

BitVector BitVector::concat(const BitVector& low) const {
  BitVector out(width_ + low.width_);
  if (low.width_ > 0) out.set_slice(low.width_ - 1, 0, low);
  if (width_ > 0) out.set_slice(out.width_ - 1, low.width_, *this);
  return out;
}

BitVector BitVector::resized(int new_width) const {
  BitVector out(new_width);
  const int n = std::min(word_count(width_), word_count(new_width));
  std::copy_n(words_.begin(), n, out.words_.begin());
  out.clear_padding();
  return out;
}

std::uint64_t BitVector::to_uint() const {
  for (std::size_t w = 1; w < words_.size(); ++w)
    IFSYN_ASSERT_MSG(words_[w] == 0,
                     "BitVector value does not fit in 64 bits: "
                         << to_hex_string());
  return words_.empty() ? 0 : words_[0];
}

std::int64_t BitVector::to_int() const {
  IFSYN_ASSERT_MSG(width_ > 0 && width_ <= 64,
                   "to_int requires width in [1,64], got " << width_);
  std::uint64_t v = words_[0];
  if (width_ < 64 && bit(width_ - 1)) {
    v |= ~((std::uint64_t{1} << width_) - 1);  // sign-extend
  }
  return static_cast<std::int64_t>(v);
}

bool BitVector::is_zero() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

BitVector BitVector::operator&(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    out.words_[i] = words_[i] & rhs.words_[i];
  return out;
}

BitVector BitVector::operator|(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    out.words_[i] = words_[i] | rhs.words_[i];
  return out;
}

BitVector BitVector::operator^(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    out.words_[i] = words_[i] ^ rhs.words_[i];
  return out;
}

BitVector BitVector::operator~() const {
  BitVector out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.clear_padding();
  return out;
}

BitVector BitVector::operator+(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t a = words_[i];
    const std::uint64_t b = rhs.words_[i];
    const std::uint64_t sum = a + b;
    const std::uint64_t sum2 = sum + carry;
    out.words_[i] = sum2;
    carry = (sum < a) || (sum2 < sum) ? 1 : 0;
  }
  out.clear_padding();
  return out;
}

BitVector BitVector::operator-(const BitVector& rhs) const {
  // a - b == a + ~b + 1 (mod 2^width)
  IFSYN_ASSERT(width_ == rhs.width_);
  BitVector out(width_);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t a = words_[i];
    const std::uint64_t b = rhs.words_[i];
    const std::uint64_t diff = a - b;
    const std::uint64_t diff2 = diff - borrow;
    out.words_[i] = diff2;
    borrow = (a < b) || (diff < borrow) ? 1 : 0;
  }
  out.clear_padding();
  return out;
}

bool operator==(const BitVector& a, const BitVector& b) {
  return a.width_ == b.width_ && a.words_ == b.words_;
}

bool BitVector::unsigned_less(const BitVector& rhs) const {
  IFSYN_ASSERT(width_ == rhs.width_);
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != rhs.words_[i]) return words_[i] < rhs.words_[i];
  }
  return false;
}

std::string BitVector::to_binary_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

std::string BitVector::to_hex_string() const {
  static const char* kDigits = "0123456789abcdef";
  const int digits = (width_ + 3) / 4;
  std::string out = "0x";
  for (int d = digits - 1; d >= 0; --d) {
    int nibble = 0;
    for (int b = 3; b >= 0; --b) {
      const int index = d * 4 + b;
      nibble = (nibble << 1) | (index < width_ && bit(index) ? 1 : 0);
    }
    out.push_back(kDigits[nibble]);
  }
  return out;
}

void BitVector::clear_padding() {
  const int rem = width_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

std::ostream& operator<<(std::ostream& os, const BitVector& bv) {
  return os << bv.width() << "'b" << bv.to_binary_string();
}

}  // namespace ifsyn
