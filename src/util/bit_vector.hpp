// ifsyn/util/bit_vector.hpp
//
// Arbitrary-width, bit-accurate values.
//
// BitVector models a VHDL `bit_vector(N-1 downto 0)`: bit 0 is the least
// significant bit, and slices use (hi downto lo) index pairs. It is the
// value type carried over channels and buses: protocol generation slices a
// message into ceil(bits/width) bus words with `slice`, and the refined
// specification reassembles it with `set_slice` -- exactly the
// `txdata(8*J-1 downto 8*(J-1))` loops of Fig. 4 in the paper.
//
// Storage: values of width <= 64 live in a single inline word (no heap
// allocation); wider values spill to a heap-backed word array. The
// interpreter's expression evaluator creates and copies BitVectors per
// AST node per delta cycle, and nearly every signal/variable in a spec is
// a flag or a bus word, so the inline path is what the simulation hot
// loop sees.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace ifsyn {

class BitVector {
 public:
  /// Empty (zero-width) vector. Useful as a "no value yet" placeholder.
  BitVector() = default;

  /// `width` zero bits.
  explicit BitVector(int width) : width_(width) {
    IFSYN_ASSERT_MSG(width >= 0, "negative BitVector width " << width);
    if (width > kWordBits) heap_.assign(word_count(width), 0);
  }

  /// `width` bits holding `value mod 2^width` (unsigned interpretation).
  static BitVector from_uint(int width, std::uint64_t value) {
    BitVector bv(width);
    if (width > 0) {
      bv.words()[0] = value;
      bv.clear_padding();
    }
    return bv;
  }

  /// `width` bits holding the two's-complement encoding of `value`.
  static BitVector from_int(int width, std::int64_t value);

  /// Overwrite in place with `value mod 2^width` for width <= 64 —
  /// equivalent to `*this = from_uint(width, value)` without constructing
  /// a temporary. Hot path for the simulation VM's register file.
  void assign_uint(int width, std::uint64_t value) {
    IFSYN_ASSERT_MSG(width >= 0 && width <= kWordBits,
                     "assign_uint width " << width << " out of [0,64]");
    width_ = width;
    word0_ = width == 0 ? 0 : value;
    if (!heap_.empty()) heap_.clear();
    const int rem = width % kWordBits;
    if (rem != 0) word0_ &= (std::uint64_t{1} << rem) - 1;
  }

  /// Parse an MSB-first binary string, e.g. "00101". Underscores are
  /// ignored so literals can be grouped ("0010_1100"). Width = number of
  /// binary digits. Asserts on any other character.
  static BitVector from_binary_string(std::string_view bits);

  /// Number of bits. 0 for a default-constructed vector.
  int width() const { return width_; }
  bool empty() const { return width_ == 0; }

  /// Bit access; index 0 is the LSB. Asserts 0 <= index < width.
  bool bit(int index) const {
    IFSYN_ASSERT_MSG(index >= 0 && index < width_,
                     "bit index " << index << " out of range [0," << width_
                                  << ")");
    return (words()[index / kWordBits] >> (index % kWordBits)) & 1u;
  }
  void set_bit(int index, bool value) {
    IFSYN_ASSERT_MSG(index >= 0 && index < width_,
                     "bit index " << index << " out of range [0," << width_
                                  << ")");
    const std::uint64_t mask = std::uint64_t{1} << (index % kWordBits);
    if (value)
      words()[index / kWordBits] |= mask;
    else
      words()[index / kWordBits] &= ~mask;
  }

  /// VHDL-style slice `(hi downto lo)`, inclusive on both ends.
  /// Asserts 0 <= lo <= hi < width. Result width = hi - lo + 1.
  BitVector slice(int hi, int lo) const;

  /// Overwrite bits (hi downto lo) with `value`; value.width() must equal
  /// hi - lo + 1.
  void set_slice(int hi, int lo, const BitVector& value);

  /// Concatenation `*this & low`: *this becomes the high-order bits.
  /// Mirrors VHDL's `a & b`.
  BitVector concat(const BitVector& low) const;

  /// Same bits, new width: truncates high bits or zero-extends.
  BitVector resized(int new_width) const;

  /// Unsigned value. Asserts that the value fits in 64 bits (i.e. all bits
  /// above 63 are zero); width itself may exceed 64.
  std::uint64_t to_uint() const {
    if (width_ <= kWordBits) return width_ == 0 ? 0 : word0_;
    return to_uint_wide();
  }

  /// Two's-complement signed value. Asserts width <= 64 and width > 0.
  std::int64_t to_int() const {
    IFSYN_ASSERT_MSG(width_ > 0 && width_ <= 64,
                     "to_int requires width in [1,64], got " << width_);
    std::uint64_t v = word0_;
    if (width_ < 64 && ((v >> (width_ - 1)) & 1u)) {
      v |= ~((std::uint64_t{1} << width_) - 1);  // sign-extend
    }
    return static_cast<std::int64_t>(v);
  }

  /// True iff every bit is zero. (Width-0 vectors are zero.)
  bool is_zero() const {
    if (width_ <= kWordBits) return word0_ == 0;
    for (std::uint64_t w : heap_)
      if (w != 0) return false;
    return true;
  }

  /// Bitwise operators; both operands must have equal width.
  BitVector operator&(const BitVector& rhs) const;
  BitVector operator|(const BitVector& rhs) const;
  BitVector operator^(const BitVector& rhs) const;
  BitVector operator~() const;

  /// Modular arithmetic (mod 2^width); operands must have equal width.
  BitVector operator+(const BitVector& rhs) const;
  BitVector operator-(const BitVector& rhs) const;

  /// Unsigned comparison. Equality requires equal width AND equal bits;
  /// ordering compares values and asserts equal width.
  friend bool operator==(const BitVector& a, const BitVector& b) {
    if (a.width_ != b.width_) return false;
    if (a.width_ <= kWordBits) return a.word0_ == b.word0_;
    return a.heap_ == b.heap_;
  }
  friend bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }
  bool unsigned_less(const BitVector& rhs) const;

  /// MSB-first binary string, e.g. "00101100".
  std::string to_binary_string() const;

  /// Hex string with `0x` prefix, MSB-first, padded to ceil(width/4) digits.
  std::string to_hex_string() const;

 private:
  static constexpr int kWordBits = 64;
  static int word_count(int width) { return (width + kWordBits - 1) / kWordBits; }
  /// Number of storage words backing this value.
  int nwords() const { return word_count(width_); }
  /// Pointer to word storage: the inline word for width <= 64, else the
  /// heap array. Valid to dereference only for indices < nwords().
  std::uint64_t* words() { return width_ <= kWordBits ? &word0_ : heap_.data(); }
  const std::uint64_t* words() const {
    return width_ <= kWordBits ? &word0_ : heap_.data();
  }
  /// Zero any storage bits above `width_` (kept as an invariant so that
  /// equality and to_uint can operate word-wise).
  void clear_padding() {
    const int rem = width_ % kWordBits;
    if (rem != 0) words()[nwords() - 1] &= (std::uint64_t{1} << rem) - 1;
  }
  std::uint64_t to_uint_wide() const;

  int width_ = 0;
  std::uint64_t word0_ = 0;            // storage when width_ <= 64
  std::vector<std::uint64_t> heap_;    // storage when width_ > 64
};

std::ostream& operator<<(std::ostream& os, const BitVector& bv);

}  // namespace ifsyn
