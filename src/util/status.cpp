#include "util/status.hpp"

namespace ifsyn {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kSimulationError:
      return "SIMULATION_ERROR";
    case StatusCode::kCheckFailed:
      return "CHECK_FAILED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ifsyn
