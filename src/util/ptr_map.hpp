// ifsyn/util/ptr_map.hpp
//
// PtrMap<V>: a pointer-keyed hash map tuned for elaborate-once /
// look-up-forever tables (the interpreter's AST-node interning caches).
//
// Open addressing with linear probing over a power-of-two table, so a hit
// costs one multiplicative hash, a mask, and usually a single probe into a
// contiguous slot array. std::unordered_map pays a prime-modulus division
// plus a bucket-node indirection per lookup, which is measurable when the
// simulation hot loop does one lookup per evaluated AST node.
//
// Restrictions that keep it simple: keys are non-null `const void*`,
// entries can be inserted but never erased (clear() drops everything),
// and iteration order is unspecified.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ifsyn {

template <typename V>
class PtrMap {
 public:
  /// Drop all entries.
  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Insert `key -> value` unless `key` is already present (matching
  /// std::unordered_map::emplace: an existing entry wins).
  void emplace(const void* key, V value) {
    IFSYN_ASSERT(key != nullptr);
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    Slot& slot = probe(slots_, key);
    if (slot.key != nullptr) return;
    slot.key = key;
    slot.value = std::move(value);
    ++size_;
  }

  /// Pointer to the value for `key`, or nullptr if absent. Stable until
  /// the next emplace() or clear().
  const V* find(const void* key) const {
    if (slots_.empty()) return nullptr;
    const Slot& slot = probe(const_cast<std::vector<Slot>&>(slots_), key);
    return slot.key != nullptr ? &slot.value : nullptr;
  }

  std::size_t size() const { return size_; }

 private:
  struct Slot {
    const void* key = nullptr;  // nullptr marks an empty slot
    V value{};
  };

  static std::size_t hash(const void* p) {
    // splitmix64-style finalizer; pointer low bits alone are too regular
    // (allocation alignment) to index a power-of-two table directly.
    std::uint64_t x = reinterpret_cast<std::uintptr_t>(p);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

  /// First slot holding `key`, or the empty slot where it would go.
  static Slot& probe(std::vector<Slot>& slots, const void* key) {
    const std::size_t mask = slots.size() - 1;
    std::size_t i = hash(key) & mask;
    while (slots[i].key != nullptr && slots[i].key != key) i = (i + 1) & mask;
    return slots[i];
  }

  void grow() {
    std::vector<Slot> next(slots_.empty() ? 16 : slots_.size() * 2);
    for (Slot& old : slots_) {
      if (old.key == nullptr) continue;
      Slot& slot = probe(next, old.key);
      slot.key = old.key;
      slot.value = std::move(old.value);
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace ifsyn
