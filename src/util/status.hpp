// ifsyn/util/status.hpp
//
// Recoverable-error reporting for the ifsyn public API.
//
// Library entry points that can fail for reasons the caller controls
// (infeasible constraints, malformed specifications, unknown names) return
// Status or Result<T>. Exceptions are reserved for internal invariant
// violations (see util/assert.hpp).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace ifsyn {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  /// The caller passed an argument that violates the API contract in a way
  /// detectable up front (e.g. zero-width channel, empty channel group).
  kInvalidArgument,
  /// No bus implementation satisfies Eq. 1 for any width in range; the
  /// channel group must be split (paper, Sec. 3 step 5).
  kInfeasible,
  /// A named entity (process, variable, channel) does not exist.
  kNotFound,
  /// The operation requires a prior step that has not run (e.g. protocol
  /// generation before bus generation assigned a width).
  kFailedPrecondition,
  /// The specification uses a construct outside the supported subset.
  kUnsupported,
  /// The simulation kernel detected an error while executing a spec
  /// (e.g. deadlock: all processes waiting with no pending events).
  kSimulationError,
  /// The static protocol checker (src/check) found diagnostics in a
  /// synthesized system.
  kCheckFailed,
};

/// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* status_code_name(StatusCode code);

/// Value-semantic success/error result without a payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    IFSYN_ASSERT_MSG(code != StatusCode::kOk || message_.empty(),
                     "OK status must not carry a message");
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INFEASIBLE: no feasible buswidth in [1, 23]".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status infeasible(std::string msg) {
  return {StatusCode::kInfeasible, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status unsupported(std::string msg) {
  return {StatusCode::kUnsupported, std::move(msg)};
}
inline Status simulation_error(std::string msg) {
  return {StatusCode::kSimulationError, std::move(msg)};
}
inline Status check_failed(std::string msg) {
  return {StatusCode::kCheckFailed, std::move(msg)};
}

/// Either a value of type T or an error Status. Minimal StatusOr-style
/// wrapper: value access asserts success, so call sites check first.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    IFSYN_ASSERT_MSG(!std::get<Status>(data_).is_ok(),
                     "Result<T> must not be constructed from an OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  /// The error; OK if the result holds a value.
  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(data_);
  }

  const T& value() const& {
    IFSYN_ASSERT_MSG(is_ok(), "Result::value() on error: " << status());
    return std::get<T>(data_);
  }
  T& value() & {
    IFSYN_ASSERT_MSG(is_ok(), "Result::value() on error: " << status());
    return std::get<T>(data_);
  }
  T&& value() && {
    IFSYN_ASSERT_MSG(is_ok(), "Result::value() on error: " << status());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace ifsyn

/// Propagate a non-OK Status from the current function.
#define IFSYN_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::ifsyn::Status ifsyn_status_ = (expr);           \
    if (!ifsyn_status_.is_ok()) return ifsyn_status_; \
  } while (false)
