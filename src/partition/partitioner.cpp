#include "partition/partitioner.hpp"

#include <functional>
#include <map>
#include <set>

#include "spec/analysis.hpp"
#include "util/assert.hpp"

namespace ifsyn::partition {

using namespace spec;



Status apply_partition(System& system,
                       const std::vector<ModuleAssignment>& assignment,
                       const PartitionOptions& options) {
  std::set<std::string> assigned_processes;
  std::set<std::string> assigned_variables;
  for (const ModuleAssignment& m : assignment) {
    Module module;
    module.name = m.module;
    for (const std::string& p : m.processes) {
      if (!system.find_process(p))
        return not_found("process " + p + " assigned to module " + m.module);
      if (!assigned_processes.insert(p).second)
        return invalid_argument("process " + p + " assigned twice");
      module.process_names.push_back(p);
    }
    for (const std::string& v : m.variables) {
      if (!system.find_variable(v))
        return not_found("variable " + v + " assigned to module " + m.module);
      if (!assigned_variables.insert(v).second)
        return invalid_argument("variable " + v + " assigned twice");
      module.variable_names.push_back(v);
    }
    system.add_module(std::move(module));
  }

  for (const auto& p : system.processes()) {
    if (!assigned_processes.count(p->name))
      return invalid_argument("process " + p->name + " not assigned");
  }
  for (const auto& v : system.variables()) {
    if (!assigned_variables.count(v->name))
      return invalid_argument("variable " + v->name + " not assigned");
  }

  return derive_channels(system, options);
}

Status derive_channels(System& system, const PartitionOptions& options) {
  // The walking/derivation logic lives in spec/analysis so the parser can
  // use it too; this wrapper just adapts the options type.
  return spec::derive_channels(system, options.channel_prefix,
                               options.channel_number_base);
}

Status group_channels(System& system, const std::string& bus_name,
                      const std::vector<std::string>& channels) {
  if (channels.empty())
    return invalid_argument("bus " + bus_name + " needs at least one channel");
  for (const std::string& name : channels) {
    const Channel* ch = system.find_channel(name);
    if (!ch) return not_found("channel " + name);
    if (!ch->bus.empty())
      return invalid_argument("channel " + name + " already grouped into " +
                              ch->bus);
  }
  if (system.find_bus(bus_name))
    return invalid_argument("bus " + bus_name + " already exists");
  BusGroup bus;
  bus.name = bus_name;
  bus.channel_names = channels;
  system.add_bus(std::move(bus));
  return Status::ok();
}

Status group_all_channels(System& system, const std::string& bus_name) {
  std::vector<std::string> names;
  for (const auto& ch : system.channels()) {
    if (ch->bus.empty()) names.push_back(ch->name);
  }
  return group_channels(system, bus_name, names);
}

Result<std::vector<std::string>> group_by_module_pair(
    System& system, const std::string& prefix) {
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      pairs;
  std::vector<std::pair<std::string, std::string>> order;
  for (const auto& ch : system.channels()) {
    if (!ch->bus.empty()) continue;
    const Module* pm = system.module_of_process(ch->accessor);
    const Module* vm = system.module_of_variable(ch->variable);
    if (!pm || !vm) {
      return failed_precondition("channel " + ch->name +
                                 " endpoints are not both partitioned");
    }
    auto key = std::make_pair(pm->name, vm->name);
    auto [it, inserted] = pairs.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(ch->name);
  }

  std::vector<std::string> created;
  int index = 0;
  for (const auto& key : order) {
    const std::string name = prefix + std::to_string(index++);
    IFSYN_RETURN_IF_ERROR(group_channels(system, name, pairs[key]));
    created.push_back(name);
  }
  return created;
}

Status auto_partition(System& system, const std::string& main_module,
                      const std::string& memory_module, long long min_bits,
                      const PartitionOptions& options) {
  ModuleAssignment main_assign{main_module, {}, {}};
  ModuleAssignment mem_assign{memory_module, {}, {}};
  for (const auto& p : system.processes()) {
    main_assign.processes.push_back(p->name);
  }
  for (const auto& v : system.variables()) {
    const bool to_memory =
        v->type.is_array() && v->type.total_bits() >= min_bits;
    (to_memory ? mem_assign : main_assign).variables.push_back(v->name);
  }
  return apply_partition(system, {main_assign, mem_assign}, options);
}

}  // namespace ifsyn::partition
