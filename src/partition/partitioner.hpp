// ifsyn/partition/partitioner.hpp
//
// System partitioning substrate (the role of SpecSyn's partitioner,
// ref [1] Vahid & Gajski DAC'92): assign behaviors and variables to
// modules, derive the abstract communication channels that cross module
// boundaries, and group channels into bus candidates.
//
// The paper treats partitioning as an input ("system partitioning may
// group processes and variables ... into modules"); its examples use
// designer-chosen assignments (Fig. 3's dashed lines, Fig. 6's two
// chips). Accordingly the primary API applies an explicit assignment;
// auto_partition() provides the common heuristic the SpecSyn papers
// describe for memories (large array variables move to memory modules).
#pragma once

#include <string>
#include <vector>

#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::partition {

/// One module assignment: which processes and variables it contains.
struct ModuleAssignment {
  std::string module;
  std::vector<std::string> processes;
  std::vector<std::string> variables;
};

struct PartitionOptions {
  /// Prefix for derived channel names: "CH" gives CH0, CH1, ... (Fig. 3);
  /// "ch" with `channel_number_base`=1 gives ch1, ch2, ... (Fig. 6).
  std::string channel_prefix = "CH";
  int channel_number_base = 0;
};

/// Apply an explicit assignment: create the modules (every process and
/// variable must be assigned exactly once) and derive channels for each
/// cross-module access. Fails if an entity is unknown or doubly assigned.
Status apply_partition(spec::System& system,
                       const std::vector<ModuleAssignment>& assignment,
                       const PartitionOptions& options = {});

/// Derive channels only (modules already present on the system): scan
/// every process body in declaration order and create one channel per
/// (process, remote variable, direction) in first-occurrence order --
/// which reproduces the paper's CH0..CH3 numbering for Fig. 3. Channels
/// get data/address bit sizes from the variable type and static access
/// counts from spec analysis.
Status derive_channels(spec::System& system,
                       const PartitionOptions& options = {});

/// Group every channel into one bus (the paper's examples merge all
/// channels of interest into a single bus B).
Status group_all_channels(spec::System& system, const std::string& bus_name);

/// Group the named channels into a bus; channels may belong to at most
/// one group.
Status group_channels(spec::System& system, const std::string& bus_name,
                      const std::vector<std::string>& channels);

/// Group channels by (accessor module, variable module) pair, one bus per
/// pair, named <prefix><n>. Returns the created bus names.
Result<std::vector<std::string>> group_by_module_pair(
    spec::System& system, const std::string& prefix = "BUS");

/// Memory-partitioning heuristic: arrays of at least `min_bits` total
/// storage move to a memory module (`memory_module`); everything else
/// stays in `main_module`. Then derives channels.
Status auto_partition(spec::System& system, const std::string& main_module,
                      const std::string& memory_module, long long min_bits,
                      const PartitionOptions& options = {});

}  // namespace ifsyn::partition
