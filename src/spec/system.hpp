// ifsyn/spec/system.hpp
//
// Top-level containers of the specification IR: variables, signals,
// procedures, processes, modules, channels, bus groups, and the System
// that owns them all.
//
// A System moves through the flow in three states:
//   1. *Original*: processes access shared variables directly; no
//      channels or buses exist yet.
//   2. *Partitioned*: processes/variables are assigned to modules; every
//      cross-module variable access has become a Channel; channels are
//      grouped into BusGroups (paper Fig. 1, left).
//   3. *Refined*: bus generation chose each group's width, protocol
//      generation added the bus signal, send/receive procedures and
//      variable server processes, and rewrote remote accesses into calls
//      (paper Fig. 1, right / Fig. 5). A refined System is simulatable.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "spec/stmt.hpp"
#include "spec/type.hpp"
#include "spec/value.hpp"
#include "util/status.hpp"

namespace ifsyn::spec {

/// A system-level or process-local variable.
struct Variable {
  std::string name;
  Type type;
  std::optional<Value> init;  ///< zero-initialized when absent

  Variable(std::string name_, Type type_)
      : name(std::move(name_)), type(type_) {}
  Variable(std::string name_, Type type_, Value init_)
      : name(std::move(name_)), type(type_), init(std::move(init_)) {}
};

/// One field of a (record) signal, e.g. DATA : bit_vector(7 downto 0).
struct SignalField {
  std::string name;  ///< empty for scalar signals
  int width = 1;
};

/// A global signal. The generated bus is a record signal
/// (START, DONE, ID, DATA) visible to every process (paper Fig. 4).
struct Signal {
  std::string name;
  std::vector<SignalField> fields;

  const SignalField* field(const std::string& field_name) const;
  int total_width() const;
};

enum class ParamDir { kIn, kOut };

struct Param {
  std::string name;
  ParamDir dir;
  Type type;
};

/// A procedure, e.g. the generated SendCH0/ReceiveCH0 of Fig. 4.
/// Procedures are system-global so every process can call them.
struct Procedure {
  std::string name;
  std::vector<Param> params;
  std::vector<Variable> locals;
  Block body;
};

/// A concurrently executing behavior.
struct Process {
  std::string name;
  std::vector<Variable> locals;
  Block body;
  /// VHDL processes restart after their last statement; one-shot
  /// behaviors (the paper's P, Q) run once. Variable server processes
  /// loop via an explicit ForeverStmt instead.
  bool restarts = false;
};

/// A physical container produced by system partitioning: a chip holding
/// processes, or a memory chip holding array variables (paper Fig. 6).
struct Module {
  std::string name;
  std::vector<std::string> process_names;
  std::vector<std::string> variable_names;
};

enum class ChannelDir {
  kRead,   ///< accessor process reads the remote variable (A < MEM)
  kWrite,  ///< accessor process writes the remote variable (A > MEM)
};

/// An abstract communication channel: one direction of access by one
/// process to one remote variable (paper Sec. 1). Virtual until protocol
/// generation implements it over a bus.
struct Channel {
  std::string name;
  std::string accessor;  ///< process performing the access
  std::string variable;  ///< remote variable being accessed
  ChannelDir dir = ChannelDir::kWrite;
  int data_bits = 0;  ///< scalar width of the variable
  int addr_bits = 0;  ///< ceil(log2(elements)) for arrays, else 0

  /// Number of transfers per activation of the accessor process; used by
  /// the rate estimator. Filled by static analysis (spec/analysis) or set
  /// explicitly by the spec author.
  long long accesses = 0;

  /// One message = address + data, moved as ceil(message/width) bus words.
  /// "the two channels each transfer 16 bits of data and 7 bits of
  /// address" => 23 message bits (paper Sec. 5).
  int message_bits() const { return data_bits + addr_bits; }

  // ---- filled in by synthesis ----
  std::string bus;      ///< owning bus group, set when grouped
  int id = -1;          ///< channel ID on the bus (step 2 of Sec. 4)

  bool is_read() const { return dir == ChannelDir::kRead; }
};

/// Which handshake discipline implements transfers on a bus
/// (paper Sec. 4 step 1).
enum class ProtocolKind {
  kFullHandshake,  ///< START/DONE, 4-phase; 2 cycles per word (Eq. 2)
  kHalfHandshake,  ///< START only; receiver assumed ready; 1 cycle/word
  kFixedDelay,     ///< no control lines; fixed cycles per word
  kHardwiredPort,  ///< dedicated wires per channel; no sharing, no IDs
};

const char* protocol_kind_name(ProtocolKind kind);

/// A group of channels to be implemented as one physical bus.
struct BusGroup {
  std::string name;
  std::vector<std::string> channel_names;

  // ---- decided by bus generation (Sec. 3) ----
  int width = 0;  ///< data lines; 0 = not yet generated
  /// True when bus generation selected `width` (and therefore proved it
  /// Eq.1-feasible); false when the caller pinned the width directly.
  /// Width sweeps and pinned illustrative examples legitimately violate
  /// Eq. 1, so the static checker's rate re-check only audits widths the
  /// generator itself chose.
  bool width_from_generator = false;

  // ---- decided by protocol generation (Sec. 4) ----
  ProtocolKind protocol = ProtocolKind::kFullHandshake;
  int id_bits = 0;
  int control_lines = 0;
  bool arbitrated = false;  ///< our Sec.-6 extension: insert BusLocks
  int fixed_delay_cycles = 2;  ///< per-word delay of the fixed-delay protocol

  bool generated() const { return width > 0; }
  /// Total physical wires: data + control + ID.
  int total_wires() const { return width + control_lines + id_bits; }
};

/// The whole specification. Owns every named entity; lookups are by name.
class System {
 public:
  explicit System(std::string name) : name_(std::move(name)) {}

  // Systems are heavyweight and identity-bearing; copy via clone() only.
  System(const System&) = delete;
  System& operator=(const System&) = delete;
  System(System&&) = default;
  System& operator=(System&&) = default;

  const std::string& name() const { return name_; }

  // ---- construction ----
  Variable& add_variable(Variable v);
  Signal& add_signal(Signal s);
  Procedure& add_procedure(Procedure p);
  Process& add_process(Process p);
  Module& add_module(Module m);
  Channel& add_channel(Channel c);
  BusGroup& add_bus(BusGroup b);

  /// Drop every bus group and reset the channels' grouping state (bus
  /// back-pointer and assigned ID). Used by design-space exploration to
  /// regroup a cloned system under a different channel-to-bus plan. Only
  /// valid before protocol generation (generated signals/procedures are
  /// not removed).
  void clear_buses();

  // ---- lookup (null when absent) ----
  const Variable* find_variable(const std::string& name) const;
  Variable* find_variable(const std::string& name);
  const Signal* find_signal(const std::string& name) const;
  const Procedure* find_procedure(const std::string& name) const;
  const Process* find_process(const std::string& name) const;
  Process* find_process(const std::string& name);
  const Module* find_module(const std::string& name) const;
  Module* find_module(const std::string& name);
  const Channel* find_channel(const std::string& name) const;
  Channel* find_channel(const std::string& name);
  const BusGroup* find_bus(const std::string& name) const;
  BusGroup* find_bus(const std::string& name);

  /// Module that a process / variable was partitioned into; null if the
  /// system has not been partitioned or the entity is unassigned.
  const Module* module_of_process(const std::string& process) const;
  const Module* module_of_variable(const std::string& variable) const;

  /// Channels belonging to a bus group, in group order.
  std::vector<const Channel*> channels_of_bus(const BusGroup& bus) const;

  // ---- iteration ----
  const std::vector<std::unique_ptr<Variable>>& variables() const { return variables_; }
  const std::vector<std::unique_ptr<Signal>>& signals() const { return signals_; }
  const std::vector<std::unique_ptr<Procedure>>& procedures() const { return procedures_; }
  const std::vector<std::unique_ptr<Process>>& processes() const { return processes_; }
  const std::vector<std::unique_ptr<Module>>& modules() const { return modules_; }
  const std::vector<std::unique_ptr<Channel>>& channels() const { return channels_; }
  const std::vector<std::unique_ptr<BusGroup>>& buses() const { return buses_; }

  /// Deep copy. Statement/expression trees are immutable and shared.
  System clone(const std::string& new_name) const;

  /// Structural well-formedness: unique names, channels reference existing
  /// processes/variables, bus groups reference existing channels, modules
  /// reference existing entities. (Semantic checking of statement bodies
  /// happens in the interpreter.)
  Status validate() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Variable>> variables_;
  std::vector<std::unique_ptr<Signal>> signals_;
  std::vector<std::unique_ptr<Procedure>> procedures_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<BusGroup>> buses_;
};

}  // namespace ifsyn::spec
