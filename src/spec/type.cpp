#include "spec/type.hpp"

#include <sstream>

namespace ifsyn::spec {

int bits_to_encode(int n) {
  IFSYN_ASSERT_MSG(n >= 1, "bits_to_encode needs n >= 1, got " << n);
  int bits = 0;
  // smallest b with 2^b >= n
  while ((1LL << bits) < n) ++bits;
  return bits;
}

int Type::address_bits() const {
  if (!is_array()) return 0;
  return bits_to_encode(size_);
}

std::string Type::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kBits:
      os << "bit_vector(" << width_ - 1 << " downto 0)";
      break;
    case Kind::kInt:
      if (width_ == 32) {
        os << "integer";
      } else {
        os << "integer<" << width_ << ">";
      }
      break;
    case Kind::kArray:
      os << "array(0 to " << size_ - 1 << ") of " << element().to_string();
      break;
  }
  return os.str();
}

}  // namespace ifsyn::spec
