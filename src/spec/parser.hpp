// ifsyn/spec/parser.hpp
//
// A textual front end for the specification IR, so systems can be written
// as files instead of C++ builder calls. The language is a compact
// rendering of the paper's VHDL subset:
//
//   system fig3;
//
//   variable X   : bits(16);
//   variable MEM : array[64] of bits(16);
//   signal STAGE { val : 4; }
//
//   process P {
//     variable AD : int(16) = 5;
//     wait 1;
//     X := 32;
//     MEM(AD) := X + 7;
//   }
//
//   process Q {
//     variable COUNT : int(16) = 77;
//     wait 2;
//     MEM(60) := COUNT;
//   }
//
//   module COMP_P   { process P; }
//   module COMP_MEM { variable X; variable MEM; }
//   module COMP_Q   { process Q; }
//
//   bus B { channels all; width 8; }
//
// Statements: `x := e;`, `sig.field <= e;`, `wait N;`,
// `wait until e;`, `wait on sig.field, ...;`, `if e { } else { }`,
// `for i in a .. b { }`, `while e { }`, `loop { }`,
// `Proc(e, out lv, ...);`, `acquire BUS;` / `release BUS;`.
// Expressions: || && = /= < <= > >= + - * / % ~& (concat) unary - !
// with integer literals (decimal, 0x..., 0b...), variables, array
// indexing `a(e)`, bit slices `e[hi:lo]`, and signal fields `S.F` (a bare
// identifier that names a declared signal is a signal read).
//
// After parsing, modules (if any) trigger channel derivation, and each
// `bus` declaration groups channels -- producing the same partitioned
// System the C++ builders produce.
#pragma once

#include <string>
#include <string_view>

#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::spec {

struct ParseOptions {
  /// Channel naming for derivation (see partition::PartitionOptions).
  std::string channel_prefix = "CH";
  int channel_number_base = 0;
};

/// Parse a complete system specification. Errors carry line/column
/// positions in the message.
Result<System> parse_system(std::string_view source,
                            const ParseOptions& options = {});

/// Parse a file on disk.
Result<System> parse_system_file(const std::string& path,
                                 const ParseOptions& options = {});

}  // namespace ifsyn::spec
