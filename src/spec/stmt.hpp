// ifsyn/spec/stmt.hpp
//
// Statements of the specification IR.
//
// The statement set is the VHDL-process subset the paper's figures use:
// variable/signal assignment, `wait until / on / for`, if, for, while,
// infinite loop, and procedure calls -- plus one extension statement,
// BusLock, that implements the bus-arbitration study the paper lists as
// future work (Sec. 6).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "spec/expr.hpp"

namespace ifsyn::spec {

class Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;
using Block = std::vector<StmtPtr>;

/// An assignable location: variable, array element, or bit slice of either.
///   name            -> X := ...
///   name(index)     -> MEM(AD) := ...
///   name(hi..lo)    -> rxdata(8*J-1 downto 8*(J-1)) := ...
struct LValue {
  std::string name;
  ExprPtr index;     ///< array index; null for scalars
  ExprPtr slice_hi;  ///< slice bounds; both null or both set
  ExprPtr slice_lo;

  std::string to_string() const;
};

/// `target := value` (VHDL variable assignment, takes effect immediately).
struct VarAssign {
  LValue target;
  ExprPtr value;
};

/// `signal.field <= value` (VHDL signal assignment: value becomes visible
/// in the next delta cycle). `field` empty for scalar signals.
struct SignalAssign {
  std::string signal;
  std::string field;
  ExprPtr value;
};

/// `wait until cond;` The process resumes at the first delta in which
/// `cond` evaluates true after some signal event occurred.
struct WaitUntil {
  ExprPtr cond;
};

/// One signal field named for sensitivity, e.g. {"B", "ID"}.
struct SignalFieldId {
  std::string signal;
  std::string field;  ///< empty = sensitive to every field of the signal
};

/// `wait on B.ID;` Resumes on the next event (value change) on any of the
/// named signals/fields.
struct WaitOn {
  std::vector<SignalFieldId> sensitivity;
};

/// `wait for N cycles;` Pure time delay, also how specs model computation
/// taking clock cycles.
struct WaitFor {
  ExprPtr cycles;
};

/// `if cond then ... [else ...] end if;` elsif chains nest in else_body.
struct IfStmt {
  ExprPtr cond;
  Block then_body;
  Block else_body;
};

/// `for var in from to to loop ... end loop;` ascending inclusive range;
/// the index variable is created in an inner scope (VHDL semantics).
struct ForStmt {
  std::string var;
  ExprPtr from;
  ExprPtr to;
  Block body;
};

/// `while cond loop ... end loop;`
struct WhileStmt {
  ExprPtr cond;
  Block body;
};

/// `loop ... end loop;` -- runs forever (variable server processes).
struct ForeverStmt {
  Block body;
};

/// One actual in a procedure call: an expression for `in` parameters or an
/// assignable location for `out` parameters. Checked against the callee's
/// parameter directions at call time.
using CallArg = std::variant<ExprPtr, LValue>;

/// `ProcName(arg, ...);` -- calls a (generated or hand-written) procedure.
struct ProcCall {
  std::string proc;
  std::vector<CallArg> args;
};

/// Extension (paper Sec. 6 future work): acquire/release exclusive use of
/// the shared bus, so concurrent masters do not corrupt each other's
/// handshakes. Protocol generation inserts these only when arbitration is
/// enabled; the simulator implements them as a FIFO mutex and records the
/// waiting time so arbitration delay can be measured.
struct BusLock {
  std::string bus;
  bool acquire;  ///< true = acquire (may wait), false = release
};

/// One IR statement; same tagged-variant design as Expr.
class Stmt {
 public:
  using Node = std::variant<VarAssign, SignalAssign, WaitUntil, WaitOn,
                            WaitFor, IfStmt, ForStmt, WhileStmt, ForeverStmt,
                            ProcCall, BusLock>;

  explicit Stmt(Node node) : node_(std::move(node)) {}

  const Node& node() const { return node_; }

  template <typename T>
  const T* as() const {
    return std::get_if<T>(&node_);
  }

 private:
  Node node_;
};

// ---- Factory helpers -------------------------------------------------

inline LValue lv(std::string name) { return LValue{std::move(name), {}, {}, {}}; }
inline LValue lv_idx(std::string name, ExprPtr index) {
  return LValue{std::move(name), std::move(index), {}, {}};
}
inline LValue lv_slice(std::string name, ExprPtr hi, ExprPtr lo) {
  return LValue{std::move(name), {}, std::move(hi), std::move(lo)};
}

inline StmtPtr assign(LValue target, ExprPtr value) {
  return std::make_shared<Stmt>(VarAssign{std::move(target), std::move(value)});
}
inline StmtPtr assign(std::string name, ExprPtr value) {
  return assign(lv(std::move(name)), std::move(value));
}
inline StmtPtr sig_assign(std::string signal, std::string field,
                          ExprPtr value) {
  return std::make_shared<Stmt>(
      SignalAssign{std::move(signal), std::move(field), std::move(value)});
}
inline StmtPtr wait_until(ExprPtr cond) {
  return std::make_shared<Stmt>(WaitUntil{std::move(cond)});
}
inline StmtPtr wait_on(std::vector<SignalFieldId> sensitivity) {
  return std::make_shared<Stmt>(WaitOn{std::move(sensitivity)});
}
inline StmtPtr wait_for(ExprPtr cycles) {
  return std::make_shared<Stmt>(WaitFor{std::move(cycles)});
}
inline StmtPtr wait_for(std::int64_t cycles) { return wait_for(lit(cycles)); }
inline StmtPtr if_stmt(ExprPtr cond, Block then_body, Block else_body = {}) {
  return std::make_shared<Stmt>(
      IfStmt{std::move(cond), std::move(then_body), std::move(else_body)});
}
inline StmtPtr for_stmt(std::string var, ExprPtr from, ExprPtr to,
                        Block body) {
  return std::make_shared<Stmt>(
      ForStmt{std::move(var), std::move(from), std::move(to), std::move(body)});
}
inline StmtPtr while_stmt(ExprPtr cond, Block body) {
  return std::make_shared<Stmt>(WhileStmt{std::move(cond), std::move(body)});
}
inline StmtPtr forever(Block body) {
  return std::make_shared<Stmt>(ForeverStmt{std::move(body)});
}
inline StmtPtr call(std::string proc, std::vector<CallArg> args) {
  return std::make_shared<Stmt>(ProcCall{std::move(proc), std::move(args)});
}
inline StmtPtr bus_acquire(std::string bus) {
  return std::make_shared<Stmt>(BusLock{std::move(bus), true});
}
inline StmtPtr bus_release(std::string bus) {
  return std::make_shared<Stmt>(BusLock{std::move(bus), false});
}

}  // namespace ifsyn::spec
