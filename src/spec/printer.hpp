// ifsyn/spec/printer.hpp
//
// Human-readable rendering of the specification IR in a VHDL-flavored
// pseudocode. Used in diagnostics and golden tests; the faithful VHDL
// backend lives in codegen/vhdl_emitter.
#pragma once

#include <string>

#include "spec/system.hpp"

namespace ifsyn::spec {

/// Render one statement (and its nested blocks) indented by `indent`
/// two-space levels.
std::string print_stmt(const Stmt& stmt, int indent = 0);

/// Render a whole block.
std::string print_block(const Block& block, int indent = 0);

/// Render a procedure declaration with its body.
std::string print_procedure(const Procedure& proc, int indent = 0);

/// Render a process with locals and body.
std::string print_process(const Process& process, int indent = 0);

/// Render the complete system: variables, signals, channels, buses,
/// procedures, processes, modules.
std::string print_system(const System& system);

}  // namespace ifsyn::spec
