#include "spec/stmt.hpp"

namespace ifsyn::spec {

std::string LValue::to_string() const {
  std::string out = name;
  if (index) out += "(" + index->to_string() + ")";
  if (slice_hi) {
    out += "(" + slice_hi->to_string() + " downto " + slice_lo->to_string() +
           ")";
  }
  return out;
}

}  // namespace ifsyn::spec
