// ifsyn/spec/expr.hpp
//
// Expression trees for the specification IR.
//
// Expressions are immutable after construction and shared by
// `std::shared_ptr<const Expr>`, so rewriting passes (protocol generation's
// variable-reference update, Sec. 4 step 4) can rebuild only the spine they
// change and share every untouched subtree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

#include "util/bit_vector.hpp"

namespace ifsyn::spec {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class UnaryOp {
  kNot,     ///< bitwise complement
  kNeg,     ///< arithmetic negation
  kLogNot,  ///< boolean not
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor,
  kConcat,                       ///< VHDL `&`: lhs = high bits
  kEq, kNe, kLt, kLe, kGt, kGe,  ///< comparisons yield 1-bit 0/1
  kLogAnd, kLogOr,               ///< boolean connectives (non-short-circuit)
};

const char* unary_op_name(UnaryOp op);
const char* binary_op_name(BinaryOp op);

/// Integer literal; width is decided by the context it is used in
/// (assignment target / operand), like a VHDL universal integer.
struct IntLit {
  std::int64_t value;
};

/// Bit-string literal with an explicit width, e.g. X"0A".
struct BitsLit {
  BitVector value;
};

/// Reference to a variable, procedure parameter, or for-loop index.
/// Resolution is lexical at runtime: call frame, then process locals,
/// then system-level variables.
struct VarRef {
  std::string name;
};

/// `name(index)` -- one-dimensional array element access.
struct ArrayRef {
  std::string name;
  ExprPtr index;
};

/// `base(hi downto lo)` -- bit slice with (possibly dynamic) bounds,
/// as in the generated `txdata(8*J-1 downto 8*(J-1))` of Fig. 4.
struct SliceExpr {
  ExprPtr base;
  ExprPtr hi;
  ExprPtr lo;
};

/// Read of a signal field, e.g. `B.START`, `B.ID`, `B.DATA`.
/// `field` is empty for scalar (non-record) signals.
struct SignalRef {
  std::string signal;
  std::string field;
};

struct UnaryExpr {
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// One node of an expression tree. A tagged variant rather than a class
/// hierarchy: the interpreter, printer, rewriter and estimator all need to
/// dispatch on the node kind, and std::visit keeps each of them total.
class Expr {
 public:
  using Node = std::variant<IntLit, BitsLit, VarRef, ArrayRef, SliceExpr,
                            SignalRef, UnaryExpr, BinaryExpr>;

  explicit Expr(Node node) : node_(std::move(node)) {}

  const Node& node() const { return node_; }

  /// Downcast helper: pointer to the payload if this node is a T.
  template <typename T>
  const T* as() const {
    return std::get_if<T>(&node_);
  }

  /// Source-like rendering, used by the printer and in diagnostics.
  std::string to_string() const;

 private:
  Node node_;
};

// ---- Factory helpers -------------------------------------------------
// These keep hand-built specs (examples, tests) and generated code
// (protocol generation) readable.

inline ExprPtr lit(std::int64_t value) {
  return std::make_shared<Expr>(IntLit{value});
}
inline ExprPtr bits(BitVector value) {
  return std::make_shared<Expr>(BitsLit{std::move(value)});
}
/// Bit literal from an MSB-first binary string: bin("00") is the 2-bit ID.
inline ExprPtr bin(std::string_view s) {
  return bits(BitVector::from_binary_string(s));
}
inline ExprPtr var(std::string name) {
  return std::make_shared<Expr>(VarRef{std::move(name)});
}
inline ExprPtr aref(std::string name, ExprPtr index) {
  return std::make_shared<Expr>(ArrayRef{std::move(name), std::move(index)});
}
inline ExprPtr slice(ExprPtr base, ExprPtr hi, ExprPtr lo) {
  return std::make_shared<Expr>(
      SliceExpr{std::move(base), std::move(hi), std::move(lo)});
}
inline ExprPtr slice(ExprPtr base, std::int64_t hi, std::int64_t lo) {
  return slice(std::move(base), lit(hi), lit(lo));
}
inline ExprPtr sig(std::string signal, std::string field = {}) {
  return std::make_shared<Expr>(
      SignalRef{std::move(signal), std::move(field)});
}
inline ExprPtr un(UnaryOp op, ExprPtr operand) {
  return std::make_shared<Expr>(UnaryExpr{op, std::move(operand)});
}
inline ExprPtr bin_op(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<Expr>(
      BinaryExpr{op, std::move(lhs), std::move(rhs)});
}

inline ExprPtr add(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kAdd, std::move(a), std::move(b)); }
inline ExprPtr sub(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kSub, std::move(a), std::move(b)); }
inline ExprPtr mul(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kMul, std::move(a), std::move(b)); }
inline ExprPtr div(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kDiv, std::move(a), std::move(b)); }
inline ExprPtr mod(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kMod, std::move(a), std::move(b)); }
inline ExprPtr eq(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kEq, std::move(a), std::move(b)); }
inline ExprPtr ne(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kNe, std::move(a), std::move(b)); }
inline ExprPtr lt(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kLt, std::move(a), std::move(b)); }
inline ExprPtr le(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kLe, std::move(a), std::move(b)); }
inline ExprPtr gt(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kGt, std::move(a), std::move(b)); }
inline ExprPtr ge(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kGe, std::move(a), std::move(b)); }
inline ExprPtr land(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kLogAnd, std::move(a), std::move(b)); }
inline ExprPtr lor(ExprPtr a, ExprPtr b) { return bin_op(BinaryOp::kLogOr, std::move(a), std::move(b)); }
inline ExprPtr lnot(ExprPtr a) { return un(UnaryOp::kLogNot, std::move(a)); }
inline ExprPtr concat(ExprPtr hi, ExprPtr lo) { return bin_op(BinaryOp::kConcat, std::move(hi), std::move(lo)); }

}  // namespace ifsyn::spec
