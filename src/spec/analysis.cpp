#include "spec/analysis.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace ifsyn::spec {

namespace {

std::optional<std::int64_t> const_eval_node(const Expr& expr);

struct ConstEval {
  std::optional<std::int64_t> operator()(const IntLit& e) const {
    return e.value;
  }
  std::optional<std::int64_t> operator()(const BitsLit& e) const {
    if (e.value.width() > 0 && e.value.width() <= 63)
      return static_cast<std::int64_t>(e.value.to_uint());
    return std::nullopt;
  }
  std::optional<std::int64_t> operator()(const VarRef&) const {
    return std::nullopt;
  }
  std::optional<std::int64_t> operator()(const ArrayRef&) const {
    return std::nullopt;
  }
  std::optional<std::int64_t> operator()(const SliceExpr&) const {
    return std::nullopt;
  }
  std::optional<std::int64_t> operator()(const SignalRef&) const {
    return std::nullopt;
  }
  std::optional<std::int64_t> operator()(const UnaryExpr& e) const {
    auto v = const_eval_node(*e.operand);
    if (!v) return std::nullopt;
    switch (e.op) {
      case UnaryOp::kNeg:
        return -*v;
      case UnaryOp::kNot:
        return ~*v;
      case UnaryOp::kLogNot:
        return *v == 0 ? 1 : 0;
    }
    return std::nullopt;
  }
  std::optional<std::int64_t> operator()(const BinaryExpr& e) const {
    auto a = const_eval_node(*e.lhs);
    auto b = const_eval_node(*e.rhs);
    if (!a || !b) return std::nullopt;
    switch (e.op) {
      case BinaryOp::kAdd: return *a + *b;
      case BinaryOp::kSub: return *a - *b;
      case BinaryOp::kMul: return *a * *b;
      case BinaryOp::kDiv: return *b == 0 ? std::nullopt : std::optional(*a / *b);
      case BinaryOp::kMod: return *b == 0 ? std::nullopt : std::optional(*a % *b);
      case BinaryOp::kAnd: return *a & *b;
      case BinaryOp::kOr: return *a | *b;
      case BinaryOp::kXor: return *a ^ *b;
      case BinaryOp::kEq: return *a == *b ? 1 : 0;
      case BinaryOp::kNe: return *a != *b ? 1 : 0;
      case BinaryOp::kLt: return *a < *b ? 1 : 0;
      case BinaryOp::kLe: return *a <= *b ? 1 : 0;
      case BinaryOp::kGt: return *a > *b ? 1 : 0;
      case BinaryOp::kGe: return *a >= *b ? 1 : 0;
      case BinaryOp::kLogAnd: return (*a != 0 && *b != 0) ? 1 : 0;
      case BinaryOp::kLogOr: return (*a != 0 || *b != 0) ? 1 : 0;
      case BinaryOp::kConcat: return std::nullopt;  // width unknown here
    }
    return std::nullopt;
  }
};

std::optional<std::int64_t> const_eval_node(const Expr& expr) {
  return std::visit(ConstEval{}, expr.node());
}

/// Walk every sub-expression of `expr`, calling `fn(expr)` pre-order.
template <typename Fn>
void visit_exprs(const Expr& expr, const Fn& fn) {
  fn(expr);
  std::visit(
      [&fn](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayRef>) {
          visit_exprs(*node.index, fn);
        } else if constexpr (std::is_same_v<T, SliceExpr>) {
          visit_exprs(*node.base, fn);
          visit_exprs(*node.hi, fn);
          visit_exprs(*node.lo, fn);
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          visit_exprs(*node.operand, fn);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          visit_exprs(*node.lhs, fn);
          visit_exprs(*node.rhs, fn);
        }
      },
      expr.node());
}

long long reads_in_expr(const Expr& expr, const std::string& variable) {
  long long count = 0;
  visit_exprs(expr, [&](const Expr& e) {
    if (const auto* v = e.as<VarRef>(); v && v->name == variable) ++count;
    if (const auto* a = e.as<ArrayRef>(); a && a->name == variable) ++count;
  });
  return count;
}

/// Trip count of a for loop with constant bounds; nullopt otherwise.
std::optional<long long> trip_count(const ForStmt& s) {
  auto from = const_eval_node(*s.from);
  auto to = const_eval_node(*s.to);
  if (!from || !to) return std::nullopt;
  return std::max<long long>(0, *to - *from + 1);
}

struct AccessCounter {
  const std::string& variable;
  AccessCounts counts;

  void count_expr(const Expr& expr, long long scale) {
    counts.reads += scale * reads_in_expr(expr, variable);
  }

  void count_lvalue(const LValue& target, long long scale) {
    if (target.name == variable) counts.writes += scale;
    if (target.index) count_expr(*target.index, scale);
    if (target.slice_hi) count_expr(*target.slice_hi, scale);
    if (target.slice_lo) count_expr(*target.slice_lo, scale);
  }

  void count_block(const Block& block, long long scale) {
    for (const auto& stmt : block) count_stmt(*stmt, scale);
  }

  void count_stmt(const Stmt& stmt, long long scale) {
    std::visit(
        [this, scale](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarAssign>) {
            count_lvalue(node.target, scale);
            count_expr(*node.value, scale);
          } else if constexpr (std::is_same_v<T, SignalAssign>) {
            count_expr(*node.value, scale);
          } else if constexpr (std::is_same_v<T, WaitUntil>) {
            // signal conditions only; variable reads here are not data
            // transfers, but count them for completeness
            count_expr(*node.cond, scale);
          } else if constexpr (std::is_same_v<T, WaitFor>) {
            count_expr(*node.cycles, scale);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            count_expr(*node.cond, scale);
            // Branches: assume the heavier branch (worst-case count, the
            // convention performance estimators like [10] use).
            AccessCounter then_counter{variable, {}};
            then_counter.count_block(node.then_body, scale);
            AccessCounter else_counter{variable, {}};
            else_counter.count_block(node.else_body, scale);
            const auto& heavier =
                then_counter.counts.total() >= else_counter.counts.total()
                    ? then_counter.counts
                    : else_counter.counts;
            counts.reads += heavier.reads;
            counts.writes += heavier.writes;
            counts.lower_bound_only |= then_counter.counts.lower_bound_only ||
                                       else_counter.counts.lower_bound_only;
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            count_expr(*node.from, scale);
            count_expr(*node.to, scale);
            auto trips = trip_count(node);
            if (!trips) counts.lower_bound_only = true;
            count_block(node.body, scale * trips.value_or(1));
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            count_expr(*node.cond, scale);
            counts.lower_bound_only = true;
            count_block(node.body, scale);
          } else if constexpr (std::is_same_v<T, ForeverStmt>) {
            counts.lower_bound_only = true;
            count_block(node.body, scale);
          } else if constexpr (std::is_same_v<T, ProcCall>) {
            for (const auto& arg : node.args) {
              if (const auto* e = std::get_if<ExprPtr>(&arg)) {
                count_expr(**e, scale);
              } else {
                count_lvalue(std::get<LValue>(arg), scale);
              }
            }
          }
          // WaitOn, BusLock: no variable accesses
        },
        stmt.node());
  }
};

struct OpCounter {
  long long total = 0;

  static long long ops_in_expr(const Expr& expr) {
    long long count = 0;
    visit_exprs(expr, [&count](const Expr& e) {
      if (e.as<UnaryExpr>() || e.as<BinaryExpr>()) ++count;
    });
    return count;
  }

  void count_block(const Block& block, long long scale) {
    for (const auto& stmt : block) count_stmt(*stmt, scale);
  }

  void count_stmt(const Stmt& stmt, long long scale) {
    std::visit(
        [this, scale](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarAssign>) {
            total += scale * (1 + ops_in_expr(*node.value));
          } else if constexpr (std::is_same_v<T, SignalAssign>) {
            total += scale * (1 + ops_in_expr(*node.value));
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            total += scale * (1 + ops_in_expr(*node.cond));
            OpCounter then_counter, else_counter;
            then_counter.count_block(node.then_body, scale);
            else_counter.count_block(node.else_body, scale);
            total += std::max(then_counter.total, else_counter.total);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            ForStmt copy = node;
            auto trips = trip_count(copy);
            OpCounter body;
            body.count_block(node.body, scale * trips.value_or(1));
            total += body.total + scale * trips.value_or(1);  // index update
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            total += scale * (1 + ops_in_expr(*node.cond));
            count_block(node.body, scale);
          } else if constexpr (std::is_same_v<T, ForeverStmt>) {
            count_block(node.body, scale);
          } else if constexpr (std::is_same_v<T, ProcCall>) {
            total += scale;  // call overhead; callee counted separately
          }
        },
        stmt.node());
  }
};

struct WaitCycleCounter {
  long long total = 0;

  void count_block(const Block& block, long long scale) {
    for (const auto& stmt : block) count_stmt(*stmt, scale);
  }

  void count_stmt(const Stmt& stmt, long long scale) {
    std::visit(
        [this, scale](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, WaitFor>) {
            total += scale * const_eval_node(*node.cycles).value_or(0);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            WaitCycleCounter then_counter, else_counter;
            then_counter.count_block(node.then_body, scale);
            else_counter.count_block(node.else_body, scale);
            total += std::max(then_counter.total, else_counter.total);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            count_block(node.body, scale * trip_count(node).value_or(1));
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            count_block(node.body, scale);
          } else if constexpr (std::is_same_v<T, ForeverStmt>) {
            count_block(node.body, scale);
          }
        },
        stmt.node());
  }
};

}  // namespace

long long wait_cycles(const Block& block) {
  WaitCycleCounter counter;
  counter.count_block(block, 1);
  return counter.total;
}

std::optional<std::int64_t> const_eval(const Expr& expr) {
  return const_eval_node(expr);
}

AccessCounts count_accesses(const Block& block, const std::string& variable) {
  AccessCounter counter{variable, {}};
  counter.count_block(block, 1);
  return counter.counts;
}

AccessCounts count_accesses(const Process& process,
                            const std::string& variable) {
  return count_accesses(process.body, variable);
}

std::vector<SignalFieldId> collect_signal_refs(const Expr& expr) {
  std::vector<SignalFieldId> out;
  visit_exprs(expr, [&out](const Expr& e) {
    if (const auto* s = e.as<SignalRef>()) {
      const bool seen =
          std::any_of(out.begin(), out.end(), [&](const SignalFieldId& id) {
            return id.signal == s->signal && id.field == s->field;
          });
      if (!seen) out.push_back({s->signal, s->field});
    }
  });
  return out;
}

bool expr_reads_variable(const Expr& expr, const std::string& variable) {
  return reads_in_expr(expr, variable) > 0;
}

long long op_count(const Block& block) {
  OpCounter counter;
  counter.count_block(block, 1);
  return counter.total;
}

namespace {

/// Walk a process body in execution order, reporting each access to a
/// system-level variable: fn(variable, is_read). Within an assignment the
/// value is evaluated before the target is written.
class AccessWalker {
 public:
  using Fn = std::function<void(const std::string&, bool is_read)>;
  explicit AccessWalker(Fn fn) : fn_(std::move(fn)) {}

  void walk_expr(const Expr& expr) {
    if (const auto* v = expr.as<VarRef>()) {
      fn_(v->name, /*is_read=*/true);
    } else if (const auto* a = expr.as<ArrayRef>()) {
      walk_expr(*a->index);
      fn_(a->name, /*is_read=*/true);
    } else if (const auto* s = expr.as<SliceExpr>()) {
      walk_expr(*s->base);
      walk_expr(*s->hi);
      walk_expr(*s->lo);
    } else if (const auto* u = expr.as<UnaryExpr>()) {
      walk_expr(*u->operand);
    } else if (const auto* b = expr.as<BinaryExpr>()) {
      walk_expr(*b->lhs);
      walk_expr(*b->rhs);
    }
  }

  void walk_lvalue_write(const LValue& target) {
    if (target.index) walk_expr(*target.index);
    if (target.slice_hi) walk_expr(*target.slice_hi);
    if (target.slice_lo) walk_expr(*target.slice_lo);
    fn_(target.name, /*is_read=*/false);
  }

  void walk_block(const Block& block) {
    for (const auto& stmt : block) walk_stmt(*stmt);
  }

  void walk_stmt(const Stmt& stmt) {
    if (const auto* s = stmt.as<VarAssign>()) {
      walk_expr(*s->value);
      walk_lvalue_write(s->target);
    } else if (const auto* s = stmt.as<SignalAssign>()) {
      walk_expr(*s->value);
    } else if (const auto* s = stmt.as<WaitUntil>()) {
      walk_expr(*s->cond);
    } else if (const auto* s = stmt.as<WaitFor>()) {
      walk_expr(*s->cycles);
    } else if (const auto* s = stmt.as<IfStmt>()) {
      walk_expr(*s->cond);
      walk_block(s->then_body);
      walk_block(s->else_body);
    } else if (const auto* s = stmt.as<ForStmt>()) {
      walk_expr(*s->from);
      walk_expr(*s->to);
      walk_block(s->body);
    } else if (const auto* s = stmt.as<WhileStmt>()) {
      walk_expr(*s->cond);
      walk_block(s->body);
    } else if (const auto* s = stmt.as<ForeverStmt>()) {
      walk_block(s->body);
    } else if (const auto* s = stmt.as<ProcCall>()) {
      for (const auto& arg : s->args) {
        if (const auto* e = std::get_if<ExprPtr>(&arg)) {
          walk_expr(**e);
        } else {
          walk_lvalue_write(std::get<LValue>(arg));
        }
      }
    }
  }

 private:
  Fn fn_;
};

}  // namespace

Status derive_channels(System& system, const std::string& prefix,
                       int number_base) {
  if (system.modules().empty()) {
    return failed_precondition("derive_channels requires modules");
  }

  int next = number_base;
  Status status;
  for (const auto& process : system.processes()) {
    const Module* proc_module = system.module_of_process(process->name);
    if (!proc_module) continue;

    std::set<std::pair<std::string, bool>> seen;  // (variable, is_read)
    AccessWalker walker([&](const std::string& name, bool is_read) {
      if (!status.is_ok()) return;
      const Variable* variable = system.find_variable(name);
      if (!variable) return;  // a process local or loop index
      const Module* var_module = system.module_of_variable(name);
      if (!var_module || var_module == proc_module) return;
      if (!seen.insert({name, is_read}).second) return;

      Channel ch;
      ch.name = prefix + std::to_string(next++);
      ch.accessor = process->name;
      ch.variable = name;
      ch.dir = is_read ? ChannelDir::kRead : ChannelDir::kWrite;
      ch.data_bits = variable->type.scalar_width();
      ch.addr_bits = variable->type.address_bits();
      const AccessCounts counts = count_accesses(*process, name);
      ch.accesses = is_read ? counts.reads : counts.writes;
      if (ch.accesses <= 0) ch.accesses = 1;
      if (system.find_channel(ch.name)) {
        status = invalid_argument("channel name collision: " + ch.name);
        return;
      }
      system.add_channel(std::move(ch));
    });
    walker.walk_block(process->body);
    if (!status.is_ok()) return status;
  }
  return Status::ok();
}

Status annotate_channel_accesses(System& system) {
  for (const auto& ch : system.channels()) {
    if (ch->accesses > 0) continue;  // author-provided
    const Process* proc = system.find_process(ch->accessor);
    if (!proc)
      return not_found("channel " + ch->name + ": accessor process " +
                       ch->accessor + " not found");
    const AccessCounts counts = count_accesses(*proc, ch->variable);
    ch->accesses =
        ch->dir == ChannelDir::kRead ? counts.reads : counts.writes;
    if (ch->accesses == 0) ch->accesses = 1;  // channel exists => >= 1
  }
  return Status::ok();
}

}  // namespace ifsyn::spec
