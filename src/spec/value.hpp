// ifsyn/spec/value.hpp
//
// Runtime values for variables and signals: a scalar bit vector or a
// one-dimensional array of them. Used for variable initializers in the IR
// and for live storage inside the simulator.
#pragma once

#include <vector>

#include "spec/type.hpp"
#include "util/bit_vector.hpp"

namespace ifsyn::spec {

/// A value conforming to a Type: scalars hold one element, arrays hold
/// `array_size()` elements, each of `scalar_width()` bits.
class Value {
 public:
  /// Zero-initialized value of the given type.
  explicit Value(const Type& type)
      : type_(type),
        elems_(static_cast<std::size_t>(type.array_size()),
               BitVector(type.scalar_width())) {}

  /// Scalar value from a bit vector (type = bits(width)).
  static Value scalar(BitVector bv) {
    Value v(Type::bits(bv.width()));
    v.elems_[0] = std::move(bv);
    return v;
  }

  /// Scalar integer value of a given width (default 32).
  static Value integer(std::int64_t x, int width = 32) {
    Value v(Type::integer(width));
    v.elems_[0] = BitVector::from_int(width, x);
    return v;
  }

  /// Re-type to a zero value of `type` in place. Equivalent to
  /// `*this = Value(type)` but reuses the element storage's capacity —
  /// the simulation VM recycles procedure frames through this.
  void reinit(const Type& type) {
    type_ = type;
    elems_.assign(static_cast<std::size_t>(type.array_size()),
                  BitVector(type.scalar_width()));
  }

  const Type& type() const { return type_; }
  bool is_array() const { return type_.is_array(); }

  /// Scalar payload. Asserts the value is scalar.
  const BitVector& get() const {
    IFSYN_ASSERT(!is_array());
    return elems_[0];
  }
  /// Mutable scalar payload, for in-place updates (the simulation VM's
  /// store fast paths and loop counters). Callers must keep the payload
  /// width equal to type().scalar_width(). Asserts the value is scalar.
  BitVector& scalar_bits() {
    IFSYN_ASSERT(!is_array());
    return elems_[0];
  }
  void set(BitVector bv) {
    IFSYN_ASSERT(!is_array());
    IFSYN_ASSERT_MSG(bv.width() == type_.scalar_width(),
                     "width mismatch storing " << bv.width() << " bits into "
                                               << type_.to_string());
    elems_[0] = std::move(bv);
  }

  /// Element access for arrays (and scalars via index 0).
  const BitVector& at(int i) const {
    IFSYN_ASSERT_MSG(i >= 0 && i < static_cast<int>(elems_.size()),
                     "array index " << i << " out of bounds 0.."
                                    << elems_.size() - 1);
    return elems_[static_cast<std::size_t>(i)];
  }
  void set_at(int i, BitVector bv) {
    IFSYN_ASSERT_MSG(i >= 0 && i < static_cast<int>(elems_.size()),
                     "array index " << i << " out of bounds 0.."
                                    << elems_.size() - 1);
    IFSYN_ASSERT(bv.width() == type_.scalar_width());
    elems_[static_cast<std::size_t>(i)] = std::move(bv);
  }

  int size() const { return static_cast<int>(elems_.size()); }

  friend bool operator==(const Value& a, const Value& b) {
    return a.type_ == b.type_ && a.elems_ == b.elems_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  Type type_;
  std::vector<BitVector> elems_;
};

}  // namespace ifsyn::spec
