#include "spec/printer.hpp"

#include <sstream>

namespace ifsyn::spec {

namespace {

std::string pad(int indent) {
  return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

struct StmtPrinter {
  int indent;

  std::string operator()(const VarAssign& s) const {
    return pad(indent) + s.target.to_string() + " := " +
           s.value->to_string() + ";\n";
  }
  std::string operator()(const SignalAssign& s) const {
    std::string target = s.field.empty() ? s.signal : s.signal + "." + s.field;
    return pad(indent) + target + " <= " + s.value->to_string() + ";\n";
  }
  std::string operator()(const WaitUntil& s) const {
    return pad(indent) + "wait until " + s.cond->to_string() + ";\n";
  }
  std::string operator()(const WaitOn& s) const {
    std::string out = pad(indent) + "wait on ";
    for (std::size_t i = 0; i < s.sensitivity.size(); ++i) {
      if (i) out += ", ";
      const auto& sf = s.sensitivity[i];
      out += sf.field.empty() ? sf.signal : sf.signal + "." + sf.field;
    }
    return out + ";\n";
  }
  std::string operator()(const WaitFor& s) const {
    return pad(indent) + "wait for " + s.cycles->to_string() + " cycles;\n";
  }
  std::string operator()(const IfStmt& s) const {
    std::string out =
        pad(indent) + "if " + s.cond->to_string() + " then\n";
    out += print_block(s.then_body, indent + 1);
    if (!s.else_body.empty()) {
      out += pad(indent) + "else\n";
      out += print_block(s.else_body, indent + 1);
    }
    return out + pad(indent) + "end if;\n";
  }
  std::string operator()(const ForStmt& s) const {
    std::string out = pad(indent) + "for " + s.var + " in " +
                      s.from->to_string() + " to " + s.to->to_string() +
                      " loop\n";
    out += print_block(s.body, indent + 1);
    return out + pad(indent) + "end loop;\n";
  }
  std::string operator()(const WhileStmt& s) const {
    std::string out =
        pad(indent) + "while " + s.cond->to_string() + " loop\n";
    out += print_block(s.body, indent + 1);
    return out + pad(indent) + "end loop;\n";
  }
  std::string operator()(const ForeverStmt& s) const {
    std::string out = pad(indent) + "loop\n";
    out += print_block(s.body, indent + 1);
    return out + pad(indent) + "end loop;\n";
  }
  std::string operator()(const ProcCall& s) const {
    std::string out = pad(indent) + s.proc + "(";
    for (std::size_t i = 0; i < s.args.size(); ++i) {
      if (i) out += ", ";
      if (const auto* e = std::get_if<ExprPtr>(&s.args[i])) {
        out += (*e)->to_string();
      } else {
        out += std::get<LValue>(s.args[i]).to_string();
      }
    }
    return out + ");\n";
  }
  std::string operator()(const BusLock& s) const {
    return pad(indent) + (s.acquire ? "acquire " : "release ") + s.bus +
           ";\n";
  }
};

std::string print_variable(const Variable& v, int indent) {
  return pad(indent) + "variable " + v.name + " : " + v.type.to_string() +
         ";\n";
}

}  // namespace

std::string print_stmt(const Stmt& stmt, int indent) {
  return std::visit(StmtPrinter{indent}, stmt.node());
}

std::string print_block(const Block& block, int indent) {
  std::string out;
  for (const auto& s : block) out += print_stmt(*s, indent);
  return out;
}

std::string print_procedure(const Procedure& proc, int indent) {
  std::ostringstream os;
  os << pad(indent) << "procedure " << proc.name << "(";
  for (std::size_t i = 0; i < proc.params.size(); ++i) {
    if (i) os << "; ";
    const Param& p = proc.params[i];
    os << p.name << " : " << (p.dir == ParamDir::kIn ? "in " : "out ")
       << p.type.to_string();
  }
  os << ") is\n";
  for (const auto& v : proc.locals) os << print_variable(v, indent + 1);
  os << pad(indent) << "begin\n"
     << print_block(proc.body, indent + 1) << pad(indent) << "end "
     << proc.name << ";\n";
  return os.str();
}

std::string print_process(const Process& process, int indent) {
  std::ostringstream os;
  os << pad(indent) << "process " << process.name
     << (process.restarts ? " (restarting)" : "") << "\n";
  for (const auto& v : process.locals) os << print_variable(v, indent + 1);
  os << pad(indent) << "begin\n"
     << print_block(process.body, indent + 1) << pad(indent) << "end process "
     << process.name << ";\n";
  return os.str();
}

std::string print_system(const System& system) {
  std::ostringstream os;
  os << "system " << system.name() << "\n";

  for (const auto& v : system.variables()) os << print_variable(*v, 1);

  for (const auto& s : system.signals()) {
    os << pad(1) << "signal " << s->name << " : record";
    for (const auto& f : s->fields) {
      os << " " << (f.name.empty() ? "<scalar>" : f.name) << ":" << f.width;
    }
    os << ";\n";
  }

  for (const auto& c : system.channels()) {
    os << pad(1) << "channel " << c->name << " : " << c->accessor
       << (c->dir == ChannelDir::kRead ? " < " : " > ") << c->variable << " ["
       << c->data_bits << "d+" << c->addr_bits << "a bits, " << c->accesses
       << " accesses]";
    if (!c->bus.empty()) {
      os << " on " << c->bus;
      if (c->id >= 0) os << " id=" << c->id;
    }
    os << ";\n";
  }

  for (const auto& b : system.buses()) {
    os << pad(1) << "bus " << b->name << " {";
    for (std::size_t i = 0; i < b->channel_names.size(); ++i) {
      if (i) os << ", ";
      os << b->channel_names[i];
    }
    os << "}";
    if (b->generated()) {
      os << " width=" << b->width << " protocol="
         << protocol_kind_name(b->protocol) << " id_bits=" << b->id_bits
         << " control=" << b->control_lines;
    }
    os << ";\n";
  }

  for (const auto& m : system.modules()) {
    os << pad(1) << "module " << m->name << " { processes:";
    for (const auto& p : m->process_names) os << " " << p;
    os << "; variables:";
    for (const auto& v : m->variable_names) os << " " << v;
    os << " }\n";
  }

  for (const auto& p : system.procedures()) {
    os << "\n" << print_procedure(*p, 1);
  }
  for (const auto& p : system.processes()) {
    os << "\n" << print_process(*p, 1);
  }
  return os.str();
}

}  // namespace ifsyn::spec
