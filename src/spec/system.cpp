#include "spec/system.hpp"

#include <algorithm>
#include <unordered_set>

namespace ifsyn::spec {

const SignalField* Signal::field(const std::string& field_name) const {
  for (const auto& f : fields) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

int Signal::total_width() const {
  int total = 0;
  for (const auto& f : fields) total += f.width;
  return total;
}

const char* protocol_kind_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kFullHandshake:
      return "full-handshake";
    case ProtocolKind::kHalfHandshake:
      return "half-handshake";
    case ProtocolKind::kFixedDelay:
      return "fixed-delay";
    case ProtocolKind::kHardwiredPort:
      return "hardwired-port";
  }
  return "?";
}

namespace {

template <typename T>
T* find_by_name(const std::vector<std::unique_ptr<T>>& items,
                const std::string& name) {
  for (const auto& item : items) {
    if (item->name == name) return item.get();
  }
  return nullptr;
}

}  // namespace

Variable& System::add_variable(Variable v) {
  IFSYN_ASSERT_MSG(!find_variable(v.name), "duplicate variable " << v.name);
  variables_.push_back(std::make_unique<Variable>(std::move(v)));
  return *variables_.back();
}

Signal& System::add_signal(Signal s) {
  IFSYN_ASSERT_MSG(!find_signal(s.name), "duplicate signal " << s.name);
  signals_.push_back(std::make_unique<Signal>(std::move(s)));
  return *signals_.back();
}

Procedure& System::add_procedure(Procedure p) {
  IFSYN_ASSERT_MSG(!find_procedure(p.name), "duplicate procedure " << p.name);
  procedures_.push_back(std::make_unique<Procedure>(std::move(p)));
  return *procedures_.back();
}

Process& System::add_process(Process p) {
  IFSYN_ASSERT_MSG(!find_process(p.name), "duplicate process " << p.name);
  processes_.push_back(std::make_unique<Process>(std::move(p)));
  return *processes_.back();
}

Module& System::add_module(Module m) {
  IFSYN_ASSERT_MSG(!find_module(m.name), "duplicate module " << m.name);
  modules_.push_back(std::make_unique<Module>(std::move(m)));
  return *modules_.back();
}

Channel& System::add_channel(Channel c) {
  IFSYN_ASSERT_MSG(!find_channel(c.name), "duplicate channel " << c.name);
  channels_.push_back(std::make_unique<Channel>(std::move(c)));
  return *channels_.back();
}

BusGroup& System::add_bus(BusGroup b) {
  IFSYN_ASSERT_MSG(!find_bus(b.name), "duplicate bus " << b.name);
  buses_.push_back(std::make_unique<BusGroup>(std::move(b)));
  for (const auto& ch_name : buses_.back()->channel_names) {
    if (Channel* ch = find_channel(ch_name)) ch->bus = buses_.back()->name;
  }
  return *buses_.back();
}

void System::clear_buses() {
  buses_.clear();
  for (auto& ch : channels_) {
    ch->bus.clear();
    ch->id = -1;
  }
}

const Variable* System::find_variable(const std::string& name) const {
  return find_by_name(variables_, name);
}
Variable* System::find_variable(const std::string& name) {
  return find_by_name(variables_, name);
}
const Signal* System::find_signal(const std::string& name) const {
  return find_by_name(signals_, name);
}
const Procedure* System::find_procedure(const std::string& name) const {
  return find_by_name(procedures_, name);
}
const Process* System::find_process(const std::string& name) const {
  return find_by_name(processes_, name);
}
Process* System::find_process(const std::string& name) {
  return find_by_name(processes_, name);
}
const Module* System::find_module(const std::string& name) const {
  return find_by_name(modules_, name);
}
Module* System::find_module(const std::string& name) {
  return find_by_name(modules_, name);
}
const Channel* System::find_channel(const std::string& name) const {
  return find_by_name(channels_, name);
}
Channel* System::find_channel(const std::string& name) {
  return find_by_name(channels_, name);
}
const BusGroup* System::find_bus(const std::string& name) const {
  return find_by_name(buses_, name);
}
BusGroup* System::find_bus(const std::string& name) {
  return find_by_name(buses_, name);
}

const Module* System::module_of_process(const std::string& process) const {
  for (const auto& m : modules_) {
    if (std::find(m->process_names.begin(), m->process_names.end(),
                  process) != m->process_names.end())
      return m.get();
  }
  return nullptr;
}

const Module* System::module_of_variable(const std::string& variable) const {
  for (const auto& m : modules_) {
    if (std::find(m->variable_names.begin(), m->variable_names.end(),
                  variable) != m->variable_names.end())
      return m.get();
  }
  return nullptr;
}

std::vector<const Channel*> System::channels_of_bus(const BusGroup& bus) const {
  std::vector<const Channel*> out;
  out.reserve(bus.channel_names.size());
  for (const auto& name : bus.channel_names) {
    const Channel* ch = find_channel(name);
    IFSYN_ASSERT_MSG(ch, "bus " << bus.name << " references unknown channel "
                                << name);
    out.push_back(ch);
  }
  return out;
}

System System::clone(const std::string& new_name) const {
  System out(new_name);
  for (const auto& v : variables_) out.add_variable(*v);
  for (const auto& s : signals_) out.add_signal(*s);
  for (const auto& p : procedures_) out.add_procedure(*p);
  for (const auto& p : processes_) out.add_process(*p);
  for (const auto& m : modules_) out.add_module(*m);
  for (const auto& c : channels_) out.add_channel(*c);
  for (const auto& b : buses_) out.add_bus(*b);
  return out;
}

Status System::validate() const {
  std::unordered_set<std::string> names;
  auto check_unique = [&names](const std::string& kind,
                               const std::string& name) -> Status {
    if (!names.insert(kind + ":" + name).second)
      return invalid_argument("duplicate " + kind + " name: " + name);
    return Status::ok();
  };
  for (const auto& v : variables_)
    IFSYN_RETURN_IF_ERROR(check_unique("variable", v->name));
  for (const auto& s : signals_)
    IFSYN_RETURN_IF_ERROR(check_unique("signal", s->name));
  for (const auto& p : procedures_)
    IFSYN_RETURN_IF_ERROR(check_unique("procedure", p->name));
  for (const auto& p : processes_)
    IFSYN_RETURN_IF_ERROR(check_unique("process", p->name));

  for (const auto& c : channels_) {
    if (!find_process(c->accessor))
      return invalid_argument("channel " + c->name +
                              " references unknown process " + c->accessor);
    if (!find_variable(c->variable))
      return invalid_argument("channel " + c->name +
                              " references unknown variable " + c->variable);
    if (c->data_bits <= 0)
      return invalid_argument("channel " + c->name +
                              " has non-positive data_bits");
    if (c->addr_bits < 0)
      return invalid_argument("channel " + c->name + " has negative addr_bits");
  }

  for (const auto& b : buses_) {
    if (b->channel_names.empty())
      return invalid_argument("bus " + b->name + " has no channels");
    std::unordered_set<int> ids;
    for (const auto& ch_name : b->channel_names) {
      const Channel* ch = find_channel(ch_name);
      if (!ch)
        return invalid_argument("bus " + b->name +
                                " references unknown channel " + ch_name);
      if (ch->bus != b->name)
        return invalid_argument("channel " + ch_name +
                                " not marked as belonging to bus " + b->name);
      if (ch->id >= 0 && !ids.insert(ch->id).second)
        return invalid_argument("duplicate channel ID on bus " + b->name);
    }
  }

  for (const auto& m : modules_) {
    for (const auto& pn : m->process_names) {
      if (!find_process(pn))
        return invalid_argument("module " + m->name +
                                " references unknown process " + pn);
    }
    for (const auto& vn : m->variable_names) {
      if (!find_variable(vn))
        return invalid_argument("module " + m->name +
                                " references unknown variable " + vn);
    }
  }

  // An entity must not live in two modules.
  std::unordered_set<std::string> assigned;
  for (const auto& m : modules_) {
    for (const auto& pn : m->process_names) {
      if (!assigned.insert("p:" + pn).second)
        return invalid_argument("process " + pn +
                                " assigned to multiple modules");
    }
    for (const auto& vn : m->variable_names) {
      if (!assigned.insert("v:" + vn).second)
        return invalid_argument("variable " + vn +
                                " assigned to multiple modules");
    }
  }

  return Status::ok();
}

}  // namespace ifsyn::spec
