// ifsyn/spec/type.hpp
//
// Types for specification-level variables, signals and parameters.
//
// The subset mirrors what the paper's examples use (Figs. 1, 3, 6):
//   - integers            `variable COUNT : integer`
//   - bit vectors         `variable X : bit_vector(15 downto 0)`
//   - one-dim arrays      `variable MEM : array(0 to 63) of bit_vector(15..)`
//
// Integers are modeled as signed bit vectors of a fixed width (default 32),
// so every value in the system has a definite size in bits -- which is what
// bus generation needs to compute message sizes.
#pragma once

#include <string>

#include "util/assert.hpp"

namespace ifsyn::spec {

/// Scalar or array type of a variable, signal field, or parameter.
class Type {
 public:
  enum class Kind {
    kBits,   ///< unsigned bit vector of `width` bits
    kInt,    ///< signed (two's complement) integer of `width` bits
    kArray,  ///< array of `size` scalar elements
  };

  /// Unsigned bit vector, VHDL `bit_vector(width-1 downto 0)`.
  static Type bits(int width) {
    IFSYN_ASSERT_MSG(width > 0, "bits type needs positive width");
    return Type(Kind::kBits, width, 0);
  }

  /// Signed integer carried in `width` bits (default 32, like VHDL integer).
  static Type integer(int width = 32) {
    IFSYN_ASSERT_MSG(width > 0, "integer type needs positive width");
    return Type(Kind::kInt, width, 0);
  }

  /// Array of `size` elements of scalar type `elem`.
  static Type array(Type elem, int size) {
    IFSYN_ASSERT_MSG(!elem.is_array(), "nested arrays are not supported");
    IFSYN_ASSERT_MSG(size > 0, "array type needs positive size");
    Type t(Kind::kArray, elem.width_, size);
    t.elem_kind_ = elem.kind_;
    return t;
  }

  Kind kind() const { return kind_; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_scalar() const { return !is_array(); }
  /// For integers: signed two's complement interpretation.
  bool is_signed() const {
    return (is_array() ? elem_kind_ : kind_) == Kind::kInt;
  }

  /// Bit width of the scalar, or of one element for arrays.
  int scalar_width() const { return width_; }

  /// Number of elements; 1 for scalars.
  int array_size() const { return is_array() ? size_ : 1; }

  /// Element type of an array. Asserts is_array().
  Type element() const {
    IFSYN_ASSERT(is_array());
    return Type(elem_kind_, width_, 0);
  }

  /// Bits needed to address one element: ceil(log2(size)); 0 for scalars.
  /// This is the "7 bits of address" in the paper's FLC channels
  /// (arrays of 128 elements).
  int address_bits() const;

  /// Total storage bits (width * size). Used for interconnect accounting.
  long long total_bits() const {
    return static_cast<long long>(width_) * array_size();
  }

  /// "bit_vector(15 downto 0)", "integer", "array(0 to 63) of ...".
  std::string to_string() const;

  friend bool operator==(const Type& a, const Type& b) {
    return a.kind_ == b.kind_ && a.width_ == b.width_ && a.size_ == b.size_ &&
           a.elem_kind_ == b.elem_kind_;
  }
  friend bool operator!=(const Type& a, const Type& b) { return !(a == b); }

 private:
  Type(Kind kind, int width, int size)
      : kind_(kind), width_(width), size_(size) {}

  Kind kind_;
  int width_;
  int size_;
  Kind elem_kind_ = Kind::kBits;  // meaningful only for arrays
};

/// Bits needed to encode `n` distinct values: ceil(log2(n)), min 0.
/// Shared by Type::address_bits and protocol generation's ID assignment
/// ("If there are N channels ... log2(N) lines will be required").
int bits_to_encode(int n);

}  // namespace ifsyn::spec
