#include "spec/parser.hpp"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "spec/analysis.hpp"
#include "util/assert.hpp"

namespace ifsyn::spec {

namespace {

// ---- lexer ----------------------------------------------------------------

enum class TokKind {
  kEnd,
  kIdent,
  kInt,
  kPunct,  // single/multi-char operators and punctuation, text in `text`
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::int64_t value = 0;  // for kInt
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_space_and_comments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (at_end()) {
        token.kind = TokKind::kEnd;
        tokens.push_back(token);
        return tokens;
      }
      const char c = peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        token.kind = TokKind::kIdent;
        while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                             peek() == '_')) {
          token.text.push_back(take());
        }
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        token.kind = TokKind::kInt;
        Status status = lex_number(token);
        if (!status.is_ok()) return status;
      } else {
        token.kind = TokKind::kPunct;
        Status status = lex_punct(token);
        if (!status.is_ok()) return status;
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool at_end() const { return pos_ >= source_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char take() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_space_and_comments() {
    while (!at_end()) {
      if (std::isspace(static_cast<unsigned char>(peek()))) {
        take();
      } else if (peek() == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') take();
      } else if (peek() == '-' && peek(1) == '-') {
        while (!at_end() && peek() != '\n') take();
      } else {
        break;
      }
    }
  }

  Status lex_number(Token& token) {
    std::string digits;
    int base = 10;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      base = 16;
      take();
      take();
    } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
      base = 2;
      take();
      take();
    }
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
      const char c = take();
      if (c == '_') continue;
      digits.push_back(c);
    }
    if (digits.empty()) {
      return invalid_argument("empty numeric literal at line " +
                              std::to_string(token.line));
    }
    try {
      token.value = std::stoll(digits, nullptr, base);
    } catch (const std::exception&) {
      return invalid_argument("bad numeric literal '" + digits + "' at line " +
                              std::to_string(token.line));
    }
    token.text = digits;
    return Status::ok();
  }

  Status lex_punct(Token& token) {
    static const char* kTwoChar[] = {":=", "<=", ">=", "/=", "..",
                                     "&&", "||", "=>"};
    for (const char* two : kTwoChar) {
      if (peek() == two[0] && peek(1) == two[1]) {
        token.text = two;
        take();
        take();
        return Status::ok();
      }
    }
    static const std::string kSingles = ";:,.(){}[]=<>+-*/%&!~";
    const char c = peek();
    if (kSingles.find(c) == std::string::npos) {
      return invalid_argument(std::string("unexpected character '") + c +
                              "' at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
    }
    token.text = std::string(1, take());
    return Status::ok();
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// ---- parser ----------------------------------------------------------------

struct PendingBus {
  std::string name;
  bool all_channels = false;
  std::vector<std::string> channels;
  int width = 0;
  std::optional<ProtocolKind> protocol;
  int line = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParseOptions& options)
      : tokens_(std::move(tokens)), options_(options) {}

  Result<System> run() {
    Result<System> result = parse_spec();
    if (!result.is_ok()) return result;
    if (!error_.is_ok()) return error_;
    return result;
  }

 private:
  // -- token plumbing --
  const Token& cur() const { return tokens_[pos_]; }
  const Token& ahead(std::size_t n = 1) const {
    return tokens_[std::min(pos_ + n, tokens_.size() - 1)];
  }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool at_end() const { return cur().kind == TokKind::kEnd; }

  bool is_punct(const char* text) const {
    return cur().kind == TokKind::kPunct && cur().text == text;
  }
  bool is_ident(const char* text) const {
    return cur().kind == TokKind::kIdent && cur().text == text;
  }

  bool accept_punct(const char* text) {
    if (!is_punct(text)) return false;
    advance();
    return true;
  }
  bool accept_ident(const char* text) {
    if (!is_ident(text)) return false;
    advance();
    return true;
  }

  /// Record the first error; parsing aborts via the failed() checks.
  void fail(const std::string& message) {
    if (error_.is_ok()) {
      error_ = invalid_argument(message + " at line " +
                                std::to_string(cur().line) + ", column " +
                                std::to_string(cur().column) +
                                (cur().kind == TokKind::kEnd
                                     ? " (end of input)"
                                     : " (near '" + cur().text + "')"));
    }
  }
  bool failed() const { return !error_.is_ok(); }

  void expect_punct(const char* text) {
    if (!accept_punct(text)) fail(std::string("expected '") + text + "'");
  }
  std::string expect_ident(const char* what) {
    if (cur().kind != TokKind::kIdent) {
      fail(std::string("expected ") + what);
      return {};
    }
    std::string name = cur().text;
    advance();
    return name;
  }
  std::int64_t expect_int(const char* what) {
    if (cur().kind != TokKind::kInt) {
      fail(std::string("expected ") + what);
      return 0;
    }
    std::int64_t value = cur().value;
    advance();
    return value;
  }

  // -- grammar --

  Result<System> parse_spec() {
    if (!accept_ident("system")) {
      fail("specification must start with 'system <name>;'");
      return error_;
    }
    const std::string name = expect_ident("system name");
    expect_punct(";");
    if (failed()) return error_;

    System system(name);
    while (!at_end() && !failed()) {
      if (is_ident("variable")) {
        parse_variable_into(
            [&system](Variable v) { system.add_variable(std::move(v)); });
      } else if (is_ident("signal")) {
        parse_signal(system);
      } else if (is_ident("process")) {
        parse_process(system);
      } else if (is_ident("module")) {
        parse_module(system);
      } else if (is_ident("bus")) {
        parse_bus();
      } else {
        fail("expected a declaration (variable/signal/process/module/bus)");
      }
    }
    if (failed()) return error_;

    // Channels come from the module assignment; buses then group them.
    if (!system.modules().empty()) {
      Status status = derive_channels(system, options_.channel_prefix,
                                      options_.channel_number_base);
      if (!status.is_ok()) return status;
    }
    for (const PendingBus& pending : pending_buses_) {
      std::vector<std::string> channels = pending.channels;
      if (pending.all_channels) {
        for (const auto& ch : system.channels()) {
          if (ch->bus.empty()) channels.push_back(ch->name);
        }
      }
      if (channels.empty()) {
        return invalid_argument("bus " + pending.name +
                                " has no channels (declared at line " +
                                std::to_string(pending.line) + ")");
      }
      for (const std::string& ch_name : channels) {
        const Channel* ch = system.find_channel(ch_name);
        if (!ch) {
          return not_found("bus " + pending.name +
                           " references unknown channel " + ch_name);
        }
        if (!ch->bus.empty()) {
          return invalid_argument("channel " + ch_name +
                                  " grouped into two buses");
        }
      }
      BusGroup bus;
      bus.name = pending.name;
      bus.channel_names = std::move(channels);
      bus.width = pending.width;
      if (pending.protocol) bus.protocol = *pending.protocol;
      system.add_bus(std::move(bus));
    }

    Status status = system.validate();
    if (!status.is_ok()) return status;
    return system;
  }

  // variable NAME : type [= init] ;
  template <typename Sink>
  void parse_variable_into(const Sink& sink) {
    accept_ident("variable");
    const std::string name = expect_ident("variable name");
    expect_punct(":");
    Type type = parse_type();
    if (failed()) return;

    std::optional<Value> init;
    if (accept_punct("=")) init = parse_init(type);
    expect_punct(";");
    if (failed()) return;

    Variable variable(name, type);
    variable.init = std::move(init);
    sink(std::move(variable));
  }

  // bits(N) | int[(N)] | array[N] of <scalar>
  Type parse_type() {
    if (accept_ident("bits")) {
      expect_punct("(");
      const int width = static_cast<int>(expect_int("bit width"));
      expect_punct(")");
      if (failed() || width <= 0) {
        fail("bit width must be positive");
        return Type::bits(1);
      }
      return Type::bits(width);
    }
    if (accept_ident("int")) {
      int width = 32;
      if (accept_punct("(")) {
        width = static_cast<int>(expect_int("integer width"));
        expect_punct(")");
      }
      if (failed() || width <= 0) {
        fail("integer width must be positive");
        return Type::integer();
      }
      return Type::integer(width);
    }
    if (accept_ident("array")) {
      expect_punct("[");
      const int size = static_cast<int>(expect_int("array size"));
      expect_punct("]");
      if (!accept_ident("of")) fail("expected 'of' after array size");
      Type element = parse_type();
      if (failed() || size <= 0) {
        fail("array size must be positive");
        return Type::array(Type::bits(1), 1);
      }
      if (element.is_array()) {
        fail("nested arrays are not supported");
        return Type::array(Type::bits(1), 1);
      }
      return Type::array(element, size);
    }
    fail("expected a type (bits(N) / int / array[N] of ...)");
    return Type::bits(1);
  }

  // N  |  [ N, N, ... ]   (remaining array elements stay zero)
  Value parse_init(const Type& type) {
    Value value(type);
    if (accept_punct("[")) {
      if (!type.is_array()) {
        fail("list initializer on a scalar variable");
        return value;
      }
      int index = 0;
      if (!is_punct("]")) {
        do {
          const std::int64_t element = parse_signed_int("array element");
          if (failed()) return value;
          if (index >= type.array_size()) {
            fail("too many initializer elements");
            return value;
          }
          value.set_at(index++,
                       BitVector::from_int(type.scalar_width(), element));
        } while (accept_punct(","));
      }
      expect_punct("]");
      return value;
    }
    const std::int64_t scalar = parse_signed_int("initializer");
    if (failed()) return value;
    if (type.is_array()) {
      // Scalar init on an array fills every element.
      for (int i = 0; i < type.array_size(); ++i) {
        value.set_at(i, BitVector::from_int(type.scalar_width(), scalar));
      }
    } else {
      value.set(BitVector::from_int(type.scalar_width(), scalar));
    }
    return value;
  }

  std::int64_t parse_signed_int(const char* what) {
    const bool negative = accept_punct("-");
    const std::int64_t magnitude = expect_int(what);
    return negative ? -magnitude : magnitude;
  }

  // signal NAME { FIELD : WIDTH ; ... }   (empty field name via `_`)
  void parse_signal(System& system) {
    accept_ident("signal");
    Signal signal;
    signal.name = expect_ident("signal name");
    expect_punct("{");
    while (!failed() && !is_punct("}")) {
      SignalField field;
      field.name = expect_ident("field name");
      if (field.name == "_") field.name.clear();  // scalar signal
      expect_punct(":");
      field.width = static_cast<int>(expect_int("field width"));
      expect_punct(";");
      if (field.width <= 0) fail("field width must be positive");
      signal.fields.push_back(std::move(field));
    }
    expect_punct("}");
    if (failed()) return;
    if (signal.fields.empty()) {
      fail("signal needs at least one field");
      return;
    }
    signal_names_.insert(signal.name);
    system.add_signal(std::move(signal));
  }

  // process NAME [restarts] { locals... stmts... }
  void parse_process(System& system) {
    accept_ident("process");
    Process process;
    process.name = expect_ident("process name");
    process.restarts = accept_ident("restarts");
    expect_punct("{");
    while (!failed() && is_ident("variable")) {
      parse_variable_into([&process](Variable v) {
        process.locals.push_back(std::move(v));
      });
    }
    process.body = parse_block_until_brace();
    expect_punct("}");
    if (!failed()) system.add_process(std::move(process));
  }

  // module NAME { (process P; | variable V;)* }
  void parse_module(System& system) {
    accept_ident("module");
    Module module;
    module.name = expect_ident("module name");
    expect_punct("{");
    while (!failed() && !is_punct("}")) {
      if (accept_ident("process")) {
        module.process_names.push_back(expect_ident("process name"));
      } else if (accept_ident("variable")) {
        module.variable_names.push_back(expect_ident("variable name"));
      } else {
        fail("expected 'process NAME;' or 'variable NAME;' in module");
      }
      expect_punct(";");
    }
    expect_punct("}");
    if (!failed()) system.add_module(std::move(module));
  }

  // bus NAME { channels all; | channels a, b; width N; protocol P; }
  void parse_bus() {
    accept_ident("bus");
    PendingBus bus;
    bus.line = cur().line;
    bus.name = expect_ident("bus name");
    expect_punct("{");
    while (!failed() && !is_punct("}")) {
      if (accept_ident("channels")) {
        if (accept_ident("all")) {
          bus.all_channels = true;
        } else {
          do {
            bus.channels.push_back(expect_ident("channel name"));
          } while (accept_punct(","));
        }
        expect_punct(";");
      } else if (accept_ident("width")) {
        bus.width = static_cast<int>(expect_int("bus width"));
        expect_punct(";");
      } else if (accept_ident("protocol")) {
        const std::string protocol = expect_ident("protocol name");
        if (protocol == "full") {
          bus.protocol = ProtocolKind::kFullHandshake;
        } else if (protocol == "half") {
          bus.protocol = ProtocolKind::kHalfHandshake;
        } else if (protocol == "fixed") {
          bus.protocol = ProtocolKind::kFixedDelay;
        } else if (protocol == "wired") {
          bus.protocol = ProtocolKind::kHardwiredPort;
        } else {
          fail("unknown protocol '" + protocol +
               "' (full/half/fixed/wired)");
        }
        expect_punct(";");
      } else {
        fail("expected 'channels', 'width' or 'protocol' in bus");
      }
    }
    expect_punct("}");
    if (!failed()) pending_buses_.push_back(std::move(bus));
  }

  // -- statements --

  Block parse_block_until_brace() {
    Block block;
    while (!failed() && !is_punct("}") && !at_end()) {
      StmtPtr stmt = parse_stmt();
      if (failed()) break;
      block.push_back(std::move(stmt));
    }
    return block;
  }

  Block parse_braced_block() {
    expect_punct("{");
    Block block = parse_block_until_brace();
    expect_punct("}");
    return block;
  }

  StmtPtr parse_stmt() {
    if (is_ident("wait")) return parse_wait();
    if (is_ident("if")) return parse_if();
    if (is_ident("for")) return parse_for();
    if (is_ident("while")) return parse_while();
    if (is_ident("loop")) return parse_loop();
    if (is_ident("acquire") || is_ident("release")) return parse_bus_lock();

    // assignment, signal assignment, or procedure call: starts with IDENT
    if (cur().kind != TokKind::kIdent) {
      fail("expected a statement");
      return wait_for(0);
    }

    // Signal-field assignment: IDENT . IDENT <= expr ;
    if (ahead().kind == TokKind::kPunct && ahead().text == "." &&
        signal_names_.count(cur().text)) {
      const std::string signal = expect_ident("signal");
      expect_punct(".");
      const std::string field = expect_ident("field");
      expect_punct("<=");
      ExprPtr value = parse_expr();
      expect_punct(";");
      return sig_assign(signal, field, std::move(value));
    }
    // Scalar signal assignment: IDENT <= expr ;
    if (signal_names_.count(cur().text) && ahead().kind == TokKind::kPunct &&
        ahead().text == "<=") {
      const std::string signal = expect_ident("signal");
      expect_punct("<=");
      ExprPtr value = parse_expr();
      expect_punct(";");
      return sig_assign(signal, "", std::move(value));
    }
    // Procedure call: IDENT ( args ) ;
    if (ahead().kind == TokKind::kPunct && ahead().text == "(" &&
        looks_like_call()) {
      return parse_call();
    }

    // Variable assignment: lvalue := expr ;
    LValue target = parse_lvalue();
    expect_punct(":=");
    ExprPtr value = parse_expr();
    expect_punct(";");
    return assign(std::move(target), std::move(value));
  }

  /// Distinguish `Foo(...);` (call) from `Foo(i) := e;` (array element
  /// assignment) by scanning to the matching ')': a following ':=' means
  /// assignment.
  bool looks_like_call() const {
    std::size_t p = pos_ + 1;  // at '('
    int depth = 0;
    while (p < tokens_.size() && tokens_[p].kind != TokKind::kEnd) {
      const Token& t = tokens_[p];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++depth;
        if (t.text == ")") {
          --depth;
          if (depth == 0) {
            const Token& next = tokens_[std::min(p + 1, tokens_.size() - 1)];
            return !(next.kind == TokKind::kPunct &&
                     (next.text == ":=" || next.text == "["));
          }
        }
      }
      ++p;
    }
    return false;
  }

  StmtPtr parse_call() {
    const std::string name = expect_ident("procedure name");
    expect_punct("(");
    std::vector<CallArg> args;
    if (!is_punct(")")) {
      do {
        if (accept_ident("out")) {
          args.emplace_back(parse_lvalue());
        } else {
          args.emplace_back(parse_expr());
        }
      } while (accept_punct(","));
    }
    expect_punct(")");
    expect_punct(";");
    return call(name, std::move(args));
  }

  StmtPtr parse_wait() {
    accept_ident("wait");
    if (accept_ident("until")) {
      ExprPtr cond = parse_expr();
      expect_punct(";");
      return wait_until(std::move(cond));
    }
    if (accept_ident("on")) {
      std::vector<SignalFieldId> sensitivity;
      do {
        SignalFieldId id;
        id.signal = expect_ident("signal name");
        if (accept_punct(".")) id.field = expect_ident("field name");
        sensitivity.push_back(std::move(id));
      } while (accept_punct(","));
      expect_punct(";");
      return wait_on(std::move(sensitivity));
    }
    ExprPtr cycles = parse_expr();
    expect_punct(";");
    return wait_for(std::move(cycles));
  }

  StmtPtr parse_if() {
    accept_ident("if");
    ExprPtr cond = parse_expr();
    Block then_body = parse_braced_block();
    Block else_body;
    if (accept_ident("else")) {
      if (is_ident("if")) {
        else_body.push_back(parse_if());
      } else {
        else_body = parse_braced_block();
      }
    }
    return if_stmt(std::move(cond), std::move(then_body),
                   std::move(else_body));
  }

  StmtPtr parse_for() {
    accept_ident("for");
    const std::string var_name = expect_ident("loop variable");
    if (!accept_ident("in")) fail("expected 'in' in for loop");
    ExprPtr from = parse_expr();
    expect_punct("..");
    ExprPtr to = parse_expr();
    Block body = parse_braced_block();
    return for_stmt(var_name, std::move(from), std::move(to),
                    std::move(body));
  }

  StmtPtr parse_while() {
    accept_ident("while");
    ExprPtr cond = parse_expr();
    Block body = parse_braced_block();
    return while_stmt(std::move(cond), std::move(body));
  }

  StmtPtr parse_loop() {
    accept_ident("loop");
    Block body = parse_braced_block();
    return forever(std::move(body));
  }

  StmtPtr parse_bus_lock() {
    const bool acquire = is_ident("acquire");
    advance();
    const std::string bus = expect_ident("bus name");
    expect_punct(";");
    return acquire ? bus_acquire(bus) : bus_release(bus);
  }

  LValue parse_lvalue() {
    LValue lvalue;
    lvalue.name = expect_ident("assignable name");
    if (accept_punct("(")) {
      lvalue.index = parse_expr();
      expect_punct(")");
    }
    if (accept_punct("[")) {
      lvalue.slice_hi = parse_expr();
      expect_punct(":");
      lvalue.slice_lo = parse_expr();
      expect_punct("]");
    }
    return lvalue;
  }

  // -- expressions (precedence climbing) --
  //   1: ||        2: &&        3: = /= < <= > >= (left)
  //   4: or xor    5: and       6: & (concat)
  //   7: + -       8: * / %     unary: - ! ~

  ExprPtr parse_expr() { return parse_logical_or(); }

  ExprPtr parse_logical_or() {
    ExprPtr left = parse_logical_and();
    while (accept_punct("||")) left = lor(std::move(left), parse_logical_and());
    return left;
  }
  ExprPtr parse_logical_and() {
    ExprPtr left = parse_comparison();
    while (accept_punct("&&")) left = land(std::move(left), parse_comparison());
    return left;
  }
  ExprPtr parse_comparison() {
    ExprPtr left = parse_bit_or();
    while (true) {
      BinaryOp op;
      if (is_punct("=")) op = BinaryOp::kEq;
      else if (is_punct("/=")) op = BinaryOp::kNe;
      else if (is_punct("<")) op = BinaryOp::kLt;
      else if (is_punct("<=")) op = BinaryOp::kLe;
      else if (is_punct(">")) op = BinaryOp::kGt;
      else if (is_punct(">=")) op = BinaryOp::kGe;
      else return left;
      advance();
      left = bin_op(op, std::move(left), parse_bit_or());
    }
  }
  ExprPtr parse_bit_or() {
    ExprPtr left = parse_bit_and();
    while (true) {
      if (accept_ident("or")) {
        left = bin_op(BinaryOp::kOr, std::move(left), parse_bit_and());
      } else if (accept_ident("xor")) {
        left = bin_op(BinaryOp::kXor, std::move(left), parse_bit_and());
      } else {
        return left;
      }
    }
  }
  ExprPtr parse_bit_and() {
    ExprPtr left = parse_concat();
    while (accept_ident("and")) {
      left = bin_op(BinaryOp::kAnd, std::move(left), parse_concat());
    }
    return left;
  }
  ExprPtr parse_concat() {
    ExprPtr left = parse_additive();
    while (accept_punct("&")) {
      left = concat(std::move(left), parse_additive());
    }
    return left;
  }
  ExprPtr parse_additive() {
    ExprPtr left = parse_multiplicative();
    while (true) {
      if (accept_punct("+")) {
        left = add(std::move(left), parse_multiplicative());
      } else if (accept_punct("-")) {
        left = sub(std::move(left), parse_multiplicative());
      } else {
        return left;
      }
    }
  }
  ExprPtr parse_multiplicative() {
    ExprPtr left = parse_unary();
    while (true) {
      if (accept_punct("*")) {
        left = mul(std::move(left), parse_unary());
      } else if (accept_punct("/")) {
        left = spec::div(std::move(left), parse_unary());
      } else if (accept_punct("%")) {
        left = mod(std::move(left), parse_unary());
      } else {
        return left;
      }
    }
  }
  ExprPtr parse_unary() {
    if (accept_punct("-")) return un(UnaryOp::kNeg, parse_unary());
    if (accept_punct("!")) return un(UnaryOp::kLogNot, parse_unary());
    if (accept_punct("~")) return un(UnaryOp::kNot, parse_unary());
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    while (accept_punct("[")) {
      ExprPtr hi = parse_expr();
      expect_punct(":");
      ExprPtr lo = parse_expr();
      expect_punct("]");
      expr = slice(std::move(expr), std::move(hi), std::move(lo));
    }
    return expr;
  }

  ExprPtr parse_primary() {
    if (cur().kind == TokKind::kInt) {
      const std::int64_t value = cur().value;
      advance();
      return lit(value);
    }
    if (accept_punct("(")) {
      ExprPtr expr = parse_expr();
      expect_punct(")");
      return expr;
    }
    if (cur().kind == TokKind::kIdent) {
      const std::string name = expect_ident("identifier");
      // Signal field: S.F (S must be a declared signal).
      if (is_punct(".") && signal_names_.count(name)) {
        advance();
        const std::string field = expect_ident("signal field");
        return sig(name, field);
      }
      // Bare declared-signal name: scalar signal read.
      if (signal_names_.count(name)) return sig(name, "");
      // Array access: NAME ( expr )
      if (accept_punct("(")) {
        ExprPtr index = parse_expr();
        expect_punct(")");
        return aref(name, std::move(index));
      }
      return var(name);
    }
    fail("expected an expression");
    return lit(0);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ParseOptions options_;
  std::set<std::string> signal_names_;
  std::vector<PendingBus> pending_buses_;
  Status error_;
};

}  // namespace

Result<System> parse_system(std::string_view source,
                            const ParseOptions& options) {
  Lexer lexer(source);
  Result<std::vector<Token>> tokens = lexer.run();
  if (!tokens.is_ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), options);
  return parser.run();
}

Result<System> parse_system_file(const std::string& path,
                                 const ParseOptions& options) {
  std::ifstream in(path);
  if (!in) return not_found("cannot open spec file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<System> parsed = parse_system(buffer.str(), options);
  if (!parsed.is_ok()) {
    // Errors carry line:column; prefix the file so multi-spec drivers
    // (batch manifests, CI sweeps) yield actionable diagnostics.
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace ifsyn::spec
