#include "spec/expr.hpp"

#include <sstream>

namespace ifsyn::spec {

const char* unary_op_name(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "not";
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kLogNot:
      return "not";
  }
  return "?";
}

const char* binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "mod";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
    case BinaryOp::kXor: return "xor";
    case BinaryOp::kConcat: return "&";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "/=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kLogAnd: return "and";
    case BinaryOp::kLogOr: return "or";
  }
  return "?";
}

namespace {

struct ToString {
  std::string operator()(const IntLit& e) const {
    return std::to_string(e.value);
  }
  std::string operator()(const BitsLit& e) const {
    return "\"" + e.value.to_binary_string() + "\"";
  }
  std::string operator()(const VarRef& e) const { return e.name; }
  std::string operator()(const ArrayRef& e) const {
    return e.name + "(" + e.index->to_string() + ")";
  }
  std::string operator()(const SliceExpr& e) const {
    return e.base->to_string() + "(" + e.hi->to_string() + " downto " +
           e.lo->to_string() + ")";
  }
  std::string operator()(const SignalRef& e) const {
    return e.field.empty() ? e.signal : e.signal + "." + e.field;
  }
  std::string operator()(const UnaryExpr& e) const {
    return std::string("(") + unary_op_name(e.op) + " " +
           e.operand->to_string() + ")";
  }
  std::string operator()(const BinaryExpr& e) const {
    return "(" + e.lhs->to_string() + " " + binary_op_name(e.op) + " " +
           e.rhs->to_string() + ")";
  }
};

}  // namespace

std::string Expr::to_string() const { return std::visit(ToString{}, node_); }

}  // namespace ifsyn::spec
