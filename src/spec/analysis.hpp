// ifsyn/spec/analysis.hpp
//
// Static analyses over the specification IR.
//
// The rate estimator (estimate/) needs to know how many times a process
// accesses each remote variable per activation; count_accesses derives
// that from the process body, multiplying by the trip counts of enclosing
// for-loops (constant bounds). This replaces the profiling/estimation
// machinery of the paper's reference [8] for the statically analyzable
// specs used in all of its experiments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "spec/system.hpp"

namespace ifsyn::spec {

/// Reads/writes of one variable by one process, statically counted.
struct AccessCounts {
  long long reads = 0;
  long long writes = 0;
  /// True when the body contains a while/forever loop around an access,
  /// so the static count is a lower bound (one iteration assumed).
  bool lower_bound_only = false;

  long long total() const { return reads + writes; }
};

/// Evaluate an expression that involves only literals and arithmetic.
/// Returns nullopt if the expression references variables or signals.
std::optional<std::int64_t> const_eval(const Expr& expr);

/// Count accesses to `variable` in `block`, scaling by for-loop trip
/// counts. An access is: reading the variable anywhere in an expression,
/// or assigning to it (whole or element).
AccessCounts count_accesses(const Block& block, const std::string& variable);

/// Convenience overload over a process body.
AccessCounts count_accesses(const Process& process,
                            const std::string& variable);

/// All signal fields referenced by an expression (for wait-until
/// sensitivity lists).
std::vector<SignalFieldId> collect_signal_refs(const Expr& expr);

/// True if the expression reads the given variable anywhere.
bool expr_reads_variable(const Expr& expr, const std::string& variable);

/// Approximate number of operation "work units" in a block, used as a
/// compute-cycles proxy by the performance estimator: each assignment and
/// each arithmetic/logic operator costs one unit, scaled by loop trip
/// counts. Wait statements are not counted (their cost is timing, handled
/// by the estimator's communication model).
long long op_count(const Block& block);

/// Total simulated cycles consumed by `wait for` statements in a block,
/// scaled by for-loop trip counts (constant expressions only; unknown
/// waits/trip counts contribute their one-iteration lower bound). This is
/// how specs express computation delay, so compute-time estimation reads
/// it back out.
long long wait_cycles(const Block& block);

/// Fill `channel.accesses` for every channel in the system from static
/// analysis of the accessor process, unless the spec author already set a
/// positive count. Returns kNotFound if a channel references a missing
/// process.
Status annotate_channel_accesses(System& system);

/// Derive channels from the module assignment: scan every process body in
/// execution order and create one channel per (process, remote variable,
/// direction) in first-occurrence order -- the numbering that reproduces
/// the paper's CH0..CH3 on Fig. 3. Channels get data/address widths from
/// the variable type and static access counts. (partition::derive_channels
/// and the spec parser both delegate here.)
Status derive_channels(System& system, const std::string& prefix = "CH",
                       int number_base = 0);

}  // namespace ifsyn::spec
