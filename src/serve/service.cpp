#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "check/checker.hpp"
#include "check/trace_miner.hpp"
#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "core/report.hpp"
#include "explore/explorer.hpp"
#include "explore/report.hpp"
#include "obs/trace_sink.hpp"
#include "sim/bytecode/optimizer.hpp"
#include "sim/interpreter.hpp"
#include "util/assert.hpp"

namespace ifsyn::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

Response error_response(const Request& request, std::string code,
                        std::string message) {
  Response response;
  response.id = request.id;
  response.op = request_op_name(request.op);
  response.ok = false;
  response.error = {std::move(code), std::move(message)};
  return response;
}

Response status_response(const Request& request, const Status& status) {
  return error_response(request, status_error_code(status.code()),
                        status.message());
}

/// The estimation store's scope: anything beyond the group-signature key
/// that changes what an estimate *means* — the spec identity and the
/// calibration it was computed under.
std::string estimation_scope(const InternedSpec& spec,
                             const std::map<std::string, long long>& cycles) {
  std::string scope = spec.hash;
  for (const auto& [process, value] : cycles) {
    scope += "|" + process + "=" + std::to_string(value);
  }
  return scope;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      interner_(options_.spec_cache_capacity,
                &registry_.counter("serve.spec_cache.hits",
                                   obs::Determinism::kWallClock),
                &registry_.counter("serve.spec_cache.misses",
                                   obs::Determinism::kWallClock),
                &registry_.counter("serve.spec_cache.evictions",
                                   obs::Determinism::kWallClock)),
      estimation_cache_(&registry_.counter("serve.estimation_cache.hits",
                                           obs::Determinism::kWallClock),
                        &registry_.counter("serve.estimation_cache.misses",
                                           obs::Determinism::kWallClock),
                        &registry_.counter("serve.estimation_cache.evictions",
                                           obs::Determinism::kWallClock),
                        options_.estimation_cache_capacity),
      program_cache_(options_.program_cache_capacity,
                     &registry_.counter("serve.program_cache.hits",
                                        obs::Determinism::kWallClock),
                     &registry_.counter("serve.program_cache.misses",
                                        obs::Determinism::kWallClock),
                     &registry_.counter("serve.program_cache.evictions",
                                        obs::Determinism::kWallClock)),
      native_cache_(options_.native_cache_capacity,
                    &registry_.counter("serve.native_cache.hits",
                                       obs::Determinism::kWallClock),
                    &registry_.counter("serve.native_cache.misses",
                                       obs::Determinism::kWallClock),
                    &registry_.counter("serve.native_cache.evictions",
                                       obs::Determinism::kWallClock),
                    &registry_.counter("serve.native_cache.compiles",
                                       obs::Determinism::kWallClock)),
      c_submitted_(registry_.counter("serve.requests.submitted",
                                     obs::Determinism::kWallClock)),
      c_ok_(registry_.counter("serve.responses.ok",
                              obs::Determinism::kWallClock)),
      c_error_(registry_.counter("serve.responses.error",
                                 obs::Determinism::kWallClock)),
      c_rejected_(registry_.counter("serve.requests.admission_rejected",
                                    obs::Determinism::kWallClock)),
      c_deadline_(registry_.counter("serve.requests.deadline_exceeded",
                                    obs::Determinism::kWallClock)),
      c_conform_requests_(registry_.counter("check.conform.requests",
                                            obs::Determinism::kWallClock)),
      c_conform_clean_(registry_.counter("check.conform.clean",
                                         obs::Determinism::kWallClock)),
      c_conform_disagreements_(registry_.counter(
          "check.conform.disagreements", obs::Determinism::kWallClock)),
      g_queue_depth_(registry_.gauge("serve.queue.depth",
                                     obs::Determinism::kWallClock)),
      h_latency_us_(registry_.histogram("serve.request_latency_us",
                                        obs::exponential_bounds(100'000'000),
                                        obs::Determinism::kWallClock)),
      h_queue_wait_us_(registry_.histogram("serve.queue_wait_us",
                                           obs::exponential_bounds(100'000'000),
                                           obs::Determinism::kWallClock)),
      h_execute_us_(registry_.histogram("serve.execute_us",
                                        obs::exponential_bounds(100'000'000),
                                        obs::Determinism::kWallClock)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_request_threads < 1) options_.max_request_threads = 1;
  // Every simulation this process runs from now on — cosim legs,
  // validation runs, across all workers — shares compiled bytecode, and
  // (under IFSYN_SIM_ENGINE=native) dlopen'd native artifacts.
  sim::bytecode::install_process_cache(&program_cache_);
  sim::native::install_native_cache(&native_cache_);
  // The effective engine for this process's simulations, alongside the
  // opt level /stats already reports: 0=vm, 1=ast, 2=native.
  registry_.gauge("serve.sim_engine", obs::Determinism::kWallClock)
      .set(static_cast<std::int64_t>(sim::engine_from_env()));
}

Service::~Service() {
  stop();
  if (sim::bytecode::process_cache() == &program_cache_) {
    sim::bytecode::install_process_cache(nullptr);
  }
  if (sim::native::process_native_cache() == &native_cache_) {
    sim::native::install_native_cache(nullptr);
  }
}

void Service::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!workers_.empty()) return;
  stopping_ = false;
  {
    std::lock_guard<std::mutex> slots_lock(slots_mu_);
    slots_.assign(static_cast<std::size_t>(options_.workers), WorkerSlot{});
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
  if (options_.watchdog_poll_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  if (options_.event_log) {
    options_.event_log->log(
        obs::Severity::kInfo, "serve.service", "service started",
        {{"workers", std::to_string(options_.workers)},
         {"queue_capacity", std::to_string(options_.queue_capacity)}});
  }
}

void Service::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  if (options_.event_log) {
    options_.event_log->log(obs::Severity::kInfo, "serve.service",
                            "service stopped");
  }
}

std::future<Response> Service::submit(Request request) {
  c_submitted_.add(1);
  Pending pending;
  pending.enqueued = Clock::now();
  const std::uint64_t deadline_ms =
      request.deadline_ms ? request.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0) {
    pending.deadline =
        pending.enqueued + std::chrono::milliseconds(deadline_ms);
  }
  // Trace identity, stamped at admission: the id every span of this
  // request carries, and the numeric id binding its flow/async events.
  const std::uint64_t seq = ++trace_seq_;
  if (request.trace_id.empty()) request.trace_id = "t" + std::to_string(seq);
  pending.ctx.trace_id = request.trace_id;
  pending.ctx.flow_id = seq;
  const obs::RequestContext ctx = pending.ctx;
  const std::string request_id = request.id;
  pending.request = std::move(request);
  std::future<Response> future = pending.promise.get_future();

  obs::TraceSink* trace = options_.trace;
  std::uint64_t submit_ts = 0;
  if (trace) {
    // The lifecycle events must be recorded *before* the queue push:
    // once the request is visible a worker may dequeue it and record
    // the flow end, and the sink's pairing validator requires the start
    // to precede it.
    submit_ts = trace->now_us();
    trace->async_begin("request", "serve", ctx.flow_id, &ctx);
    trace->flow_begin("request", "serve", ctx.flow_id);
  }
  const auto reject = [&](Response response) {
    c_rejected_.add(1);
    response.trace_id = ctx.trace_id;
    if (trace) {
      // Close the just-opened flow/async pair so the trace stays valid.
      trace->flow_end("request", "serve", ctx.flow_id);
      trace->instant_event("admission_rejected", "serve", &ctx);
      trace->async_end("request", "serve", ctx.flow_id, &ctx);
    }
    pending.promise.set_value(std::move(response));
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || workers_.empty()) {
      reject(error_response(
          pending.request, "admission_rejected",
          workers_.empty() ? "service not started" : "service stopping"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      reject(error_response(
          pending.request, "admission_rejected",
          "queue full (" + std::to_string(options_.queue_capacity) +
              " pending)"));
      return future;
    }
    queue_.push_back(std::move(pending));
    g_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
  if (trace) {
    trace->duration_event("submit " + request_id, "serve", submit_ts,
                          trace->now_us() - submit_ts, &ctx);
  }
  return future;
}

void Service::worker_loop(std::size_t worker_index) {
  if (options_.trace) {
    options_.trace->set_thread_name("serve worker " +
                                    std::to_string(worker_index));
  }
  while (true) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      g_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }

    const Clock::time_point start = Clock::now();
    obs::TraceSink* trace = options_.trace;
    std::uint64_t execute_ts = 0;
    if (trace) {
      execute_ts = trace->now_us();
      // Lands the submitter's flow arrow on this worker's execute slice.
      trace->flow_end("request", "serve", pending.ctx.flow_id);
    }
    {
      std::lock_guard<std::mutex> slots_lock(slots_mu_);
      WorkerSlot& slot = slots_[worker_index];
      slot.busy = true;
      slot.request_id = pending.request.id;
      slot.trace_id = pending.ctx.trace_id;
      slot.op = request_op_name(pending.request.op);
      slot.start = start;
      slot.deadline = pending.deadline;
    }

    const bool slow_capture =
        options_.slow_trace_ms > 0 && !options_.slow_trace_dir.empty();
    std::string engine_trace_json;
    Response response;
    if (pending.deadline && start > *pending.deadline) {
      // Expired while queued: answer without burning a worker on it.
      c_deadline_.add(1);
      response = error_response(pending.request, "deadline_exceeded",
                                "deadline expired while queued");
    } else {
      response = execute_traced(pending.request,
                                slow_capture ? &engine_trace_json : nullptr);
      if (pending.deadline && Clock::now() > *pending.deadline) {
        c_deadline_.add(1);
        response = error_response(pending.request, "deadline_exceeded",
                                  "deadline expired during execution");
      }
    }
    const Clock::time_point end = Clock::now();
    {
      std::lock_guard<std::mutex> slots_lock(slots_mu_);
      slots_[worker_index] = WorkerSlot{};
    }
    response.queue_us = us_between(pending.enqueued, start);
    response.elapsed_us = us_between(start, end);
    response.trace_id = pending.ctx.trace_id;
    const std::uint64_t total_us = us_between(pending.enqueued, end);
    h_latency_us_.observe(total_us);
    h_queue_wait_us_.observe(response.queue_us);
    h_execute_us_.observe(response.elapsed_us);
    registry_
        .histogram("serve.latency." + response.op + "_us",
                   obs::exponential_bounds(100'000'000),
                   obs::Determinism::kWallClock)
        .observe(total_us);
    (response.ok ? c_ok_ : c_error_).add(1);
    if (trace) {
      trace->duration_event(
          "execute " + response.op + " " + pending.request.id, "serve",
          execute_ts, trace->now_us() - execute_ts, &pending.ctx);
      trace->async_end("request", "serve", pending.ctx.flow_id,
                       &pending.ctx);
    }
    if (slow_capture) maybe_capture_slow(response, total_us, engine_trace_json);
    pending.promise.set_value(std::move(response));
  }
}

void Service::watchdog_loop() {
  const auto interval = std::chrono::milliseconds(options_.watchdog_poll_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    watchdog_poll();
    lock.lock();
  }
  lock.unlock();
  // A service stopped before the first interval elapsed would otherwise
  // never export its liveness gauges; poll once on the way out so they
  // exist whenever a watchdog ran at all.
  watchdog_poll();
}

void Service::watchdog_poll() {
  const Clock::time_point now = Clock::now();
  std::int64_t busy_workers = 0;
  std::uint64_t oldest_age_us = 0;
  std::uint64_t oldest_overdue_us = 0;
  struct Overdue {
    std::size_t worker;
    std::string request_id;
    std::string trace_id;
    std::uint64_t overdue_us;
  };
  std::vector<Overdue> overdue;
  {
    std::lock_guard<std::mutex> slots_lock(slots_mu_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const WorkerSlot& slot = slots_[i];
      const std::uint64_t age_us =
          slot.busy ? us_between(slot.start, now) : 0;
      const std::uint64_t overdue_us =
          slot.busy && slot.deadline && now > *slot.deadline
              ? us_between(*slot.deadline, now)
              : 0;
      const std::string prefix = "serve.worker." + std::to_string(i);
      registry_.gauge(prefix + ".inflight_age_us",
                      obs::Determinism::kWallClock)
          .set(static_cast<std::int64_t>(age_us));
      registry_.gauge(prefix + ".deadline_overdue_us",
                      obs::Determinism::kWallClock)
          .set(static_cast<std::int64_t>(overdue_us));
      if (slot.busy) ++busy_workers;
      oldest_age_us = std::max(oldest_age_us, age_us);
      oldest_overdue_us = std::max(oldest_overdue_us, overdue_us);
      if (overdue_us > 0 && options_.event_log) {
        overdue.push_back({i, slot.request_id, slot.trace_id, overdue_us});
      }
    }
  }
  registry_.gauge("serve.workers.busy", obs::Determinism::kWallClock)
      .set(busy_workers);
  registry_.gauge("serve.inflight.oldest_age_us",
                  obs::Determinism::kWallClock)
      .set(static_cast<std::int64_t>(oldest_age_us));
  registry_.gauge("serve.inflight.oldest_deadline_overdue_us",
                  obs::Determinism::kWallClock)
      .set(static_cast<std::int64_t>(oldest_overdue_us));
  for (const Overdue& o : overdue) {
    // The EventLog's per-(severity, component) rate limit keeps a worker
    // stuck for many polls from flooding the log.
    options_.event_log->log(
        obs::Severity::kWarn, "serve.watchdog",
        "worker past request deadline on uninterruptible engine work",
        {{"worker", std::to_string(o.worker)},
         {"request_id", o.request_id},
         {"trace_id", o.trace_id},
         {"overdue_us", std::to_string(o.overdue_us)}});
  }
}

void Service::maybe_capture_slow(const Response& response,
                                 std::uint64_t total_us,
                                 const std::string& engine_trace_json) {
  if (total_us < options_.slow_trace_ms * 1000) return;
  if (options_.slow_trace_keep == 0) return;
  std::string json = engine_trace_json;
  if (json.empty()) {
    // The engine spans already live in the service-wide trace; this
    // capture records the request's lifecycle shape (see service.hpp).
    obs::TraceSink summary;
    obs::RequestContext ctx{response.trace_id, 0};
    summary.set_thread_name("request " + response.trace_id);
    summary.duration_event("queued", "serve", 0, response.queue_us, &ctx);
    summary.duration_event("execute " + response.op, "serve",
                           response.queue_us, response.elapsed_us, &ctx);
    json = summary.to_json();
  }
  const std::string path =
      options_.slow_trace_dir + "/slow-" + response.trace_id + ".json";
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_captures_.size() >= options_.slow_trace_keep) {
    if (slow_captures_.front().total_us >= total_us) return;
    std::remove(slow_captures_.front().path.c_str());
    slow_captures_.erase(slow_captures_.begin());
  }
  {
    std::ofstream out(path);
    if (!out) {
      if (options_.event_log) {
        options_.event_log->log(obs::Severity::kError, "serve.slow",
                                "cannot write slow-trace capture",
                                {{"path", path}});
      }
      return;
    }
    out << json;
  }
  const auto insert_at = std::upper_bound(
      slow_captures_.begin(), slow_captures_.end(), total_us,
      [](std::uint64_t value, const SlowCapture& capture) {
        return value < capture.total_us;
      });
  slow_captures_.insert(insert_at, SlowCapture{total_us, path});
  if (options_.event_log) {
    options_.event_log->log(obs::Severity::kWarn, "serve.slow",
                            "slow request captured",
                            {{"trace_id", response.trace_id},
                             {"total_us", std::to_string(total_us)},
                             {"path", path}});
  }
}

Response Service::execute(const Request& request) {
  return execute_traced(request, nullptr);
}

Response Service::execute_traced(const Request& request,
                                 std::string* trace_json) {
  // Trace identity: submit() stamps it at admission; a direct execute()
  // call (tests, benches) gets one here so attribution always works.
  obs::RequestContext ctx;
  ctx.trace_id = request.trace_id.empty()
                     ? "t" + std::to_string(++trace_seq_)
                     : request.trace_id;
  const auto with_trace_id = [&](Response response) {
    response.trace_id = ctx.trace_id;
    return response;
  };
  try {
    if (request.op == RequestOp::kMetrics ||
        request.op == RequestOp::kStats) {
      Response response;
      response.id = request.id;
      response.op = request_op_name(request.op);
      response.ok = true;
      response.report =
          request.op == RequestOp::kMetrics ? metrics_text() : stats_json();
      return with_trace_id(std::move(response));
    }

    Result<InternedSpec> interned =
        request.target.empty() ? interner_.intern_source(request.spec_text)
                               : interner_.intern_target(request.target);
    if (!interned.is_ok()) {
      return with_trace_id(status_response(request, interned.status()));
    }

    // Per-request observability: a private registry so the report's
    // deterministic metrics section describes this request alone (the
    // determinism contract), plus a trace destination resolved by the
    // precedence documented on Request::trace_file — per-request file
    // first, then the service-wide sink, then a private sink kept only
    // if the request turns out slow.
    obs::MetricsRegistry request_registry;
    obs::TraceSink private_sink;
    // The service event log rides along so engine-level warnings (e.g.
    // the sim's native-to-VM fallback) surface in the service's
    // structured log, rate-limited at the log itself.
    obs::ObsContext obs{&request_registry, nullptr, &ctx,
                        options_.event_log};
    std::optional<std::ofstream> trace_out;
    if (!request.trace_file.empty()) {
      // Open before running the engine: an unwritable path is a
      // structured error, and failing early wastes no work.
      trace_out.emplace(request.trace_file);
      if (!*trace_out) {
        return with_trace_id(error_response(
            request, "trace_unwritable",
            "cannot open trace_file '" + request.trace_file +
                "' for writing"));
      }
      obs.trace = &private_sink;
    } else if (options_.trace) {
      obs.trace = options_.trace;
    } else if (trace_json) {
      obs.trace = &private_sink;
    }

    Response response;
    switch (request.op) {
      case RequestOp::kSynth:
        response = execute_synth(request, *interned, obs, request_registry);
        break;
      case RequestOp::kExplore:
        response = execute_explore(request, *interned, obs);
        break;
      case RequestOp::kCheck:
        response = execute_check(request, *interned, obs);
        break;
      case RequestOp::kMetrics:
      case RequestOp::kStats:
        break;  // handled above
    }
    response.spec_hash = interned->hash;

    if (obs.trace == &private_sink) {
      const std::string json = private_sink.to_json();
      if (trace_out) {
        *trace_out << json;
        trace_out->flush();
        if (!*trace_out) {
          response.ok = false;
          response.error = {"trace_unwritable",
                            "write to trace_file '" + request.trace_file +
                                "' failed"};
        }
      }
      if (trace_json) *trace_json = json;
    }
    return with_trace_id(std::move(response));
  } catch (const InternalError& e) {
    return with_trace_id(error_response(request, "internal", e.what()));
  } catch (const std::exception& e) {
    return with_trace_id(error_response(request, "internal", e.what()));
  }
}

Response Service::execute_synth(const Request& request,
                                const InternedSpec& spec,
                                const obs::ObsContext& obs,
                                obs::MetricsRegistry& registry) {
  const RequestOptions& ro = request.options;
  core::SynthesisOptions options;
  if (ro.protocol) options.protocol = *ro.protocol;
  if (ro.fixed_delay_cycles) options.fixed_delay_cycles = *ro.fixed_delay_cycles;
  options.arbitrate = ro.arbitrate.value_or(spec.defaults.arbitrate);
  options.compute_cycles_override = spec.defaults.compute_cycles_override;
  options.obs = obs;

  const spec::System& original = *spec.system;
  spec::System refined = original.clone(original.name() + "_refined");
  core::InterfaceSynthesizer synthesizer(options);
  Result<core::SynthesisReport> report = synthesizer.run(refined);
  if (!report.is_ok()) return status_response(request, report.status());

  std::optional<core::EquivalenceReport> equivalence;
  if (ro.cosim.value_or(true)) {
    Result<core::EquivalenceReport> eq = core::check_equivalence(
        original, refined, ro.max_time.value_or(10'000'000), {}, obs);
    if (!eq.is_ok()) return status_response(request, eq.status());
    equivalence = std::move(eq).value();
  }

  core::ReportInputs inputs;
  inputs.refined = &refined;
  inputs.synthesis = &*report;
  inputs.equivalence = equivalence ? &*equivalence : nullptr;
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  inputs.metrics = &snapshot;

  Response response;
  response.id = request.id;
  response.op = request_op_name(request.op);
  response.report = core::render_markdown_report(inputs);
  if (equivalence && !equivalence->equivalent) {
    response.ok = false;
    response.error = {"not_equivalent",
                      "co-simulation found " +
                          std::to_string(equivalence->mismatches.size()) +
                          " mismatch(es); see report"};
  } else {
    response.ok = true;
  }
  return response;
}

Response Service::execute_explore(const Request& request,
                                  const InternedSpec& spec,
                                  const obs::ObsContext& obs) {
  const RequestOptions& ro = request.options;
  explore::ExploreOptions options;
  options.threads = std::clamp(ro.threads.value_or(1), 1,
                               options_.max_request_threads);
  options.top_k = ro.top_k.value_or(0);
  if (ro.sim_max_time) options.sim_max_time = *ro.sim_max_time;
  // Unlike synth, exploration keeps ExploreOptions' own arbitrate
  // default (true): validation co-simulates with the arbitrated bus
  // model, which is correct for any channel mix. The per-spec default
  // only describes the single-design synthesis flow.
  if (ro.arbitrate) options.arbitrate = *ro.arbitrate;
  if (ro.protocols) options.space.protocols = *ro.protocols;
  if (ro.fixed_delay_cycles) {
    options.space.fixed_delay_cycles = *ro.fixed_delay_cycles;
  }
  if (ro.min_width) options.space.min_width = *ro.min_width;
  if (ro.max_width) options.space.max_width = *ro.max_width;
  if (ro.alt_groupings) options.space.alternative_groupings = *ro.alt_groupings;
  options.max_execution_clocks = ro.max_clocks;
  options.compute_cycles_override = spec.defaults.compute_cycles_override;
  options.shared_cache = &estimation_cache_;
  options.cache_scope =
      estimation_scope(spec, options.compute_cycles_override);
  options.obs = obs;

  explore::Explorer explorer(*spec.system, options);
  Result<explore::ExplorationResult> result = explorer.run();
  if (!result.is_ok()) return status_response(request, result.status());

  Response response;
  response.id = request.id;
  response.op = request_op_name(request.op);
  response.report =
      ro.exploration_json
          ? explore::render_exploration_json(*spec.system, options, *result)
          : explore::render_exploration_markdown(*spec.system, options,
                                                 *result);
  response.ok = true;
  for (std::size_t index : result->validated) {
    const explore::PointResult& point = result->points[index];
    if (!point.sim_ok || !point.equivalent) {
      response.ok = false;
      response.error = {"check_failed",
                        "validated point " + std::to_string(point.point.index) +
                            " failed co-simulation; see report"};
      break;
    }
  }
  return response;
}

Response Service::execute_check(const Request& request,
                                const InternedSpec& spec,
                                const obs::ObsContext& obs) {
  const RequestOptions& ro = request.options;
  core::SynthesisOptions options;
  if (ro.protocol) options.protocol = *ro.protocol;
  if (ro.fixed_delay_cycles) options.fixed_delay_cycles = *ro.fixed_delay_cycles;
  options.arbitrate = ro.arbitrate.value_or(spec.defaults.arbitrate);
  options.compute_cycles_override = spec.defaults.compute_cycles_override;
  options.obs = obs;
  // As in the check subcommand: collect the full diagnostic list instead
  // of failing synthesis on the first finding.
  options.run_checker = false;

  spec::System system = spec.system->clone(spec.system->name());
  const std::map<std::string, long long> compute_snapshot =
      check::snapshot_compute_cycles(system, options.compute_cycles_override);

  core::InterfaceSynthesizer synthesizer(options);
  Result<core::SynthesisReport> synthesized = synthesizer.run(system);
  if (!synthesized.is_ok()) {
    return status_response(request, synthesized.status());
  }

  check::CheckOptions check_options;
  check_options.compute_cycles_override = compute_snapshot;
  const check::CheckReport report =
      check::run_checks(system, check_options, obs);

  Response response;
  response.id = request.id;
  response.op = request_op_name(request.op);
  if (report.clean()) {
    std::size_t refined_buses = 0;
    for (const auto& bus : system.buses()) {
      if (bus->generated()) ++refined_buses;
    }
    std::ostringstream os;
    os << "check clean: " << refined_buses << " bus(es), "
       << system.channels().size() << " channel(s), 0 diagnostics\n";
    response.report = os.str();
    response.ok = true;
  } else {
    response.report = report.to_string();
    response.ok = false;
    response.error = {"check_failed",
                      std::to_string(report.errors()) + " error(s), " +
                          std::to_string(report.warnings()) + " warning(s)"};
  }

  // Opt-in dynamic conformance: run the refined system and diff the
  // trace-mined protocol automaton against the static extraction. The
  // mined report is deterministic for a given spec/options/engine, so it
  // stays inside the response's determinism contract.
  if (ro.conform.value_or(false)) {
    c_conform_requests_.add(1);
    sim::SimulationRun run = sim::simulate(
        system, ro.max_time.value_or(10'000'000), /*trace=*/true, obs);
    if (!run.result.status.is_ok()) {
      return status_response(request, run.result.status);
    }
    const check::ConformanceReport mined =
        check::mine_and_diff(system, run.kernel->trace(), obs);
    c_conform_disagreements_.add(
        static_cast<long long>(mined.disagreements.size()));
    std::ostringstream os;
    std::string detail = mined.to_string();
    if (!detail.empty()) os << detail << "\n";
    os << "conform " << (mined.clean() ? "clean" : "FAILED") << ": "
       << mined.lanes_mined << " lane(s), " << mined.transactions_mined
       << " transaction(s), " << mined.edges_checked << " edge(s), "
       << mined.disagreements.size() << " disagreement(s), "
       << mined.skipped.size() << " skipped\n";
    response.report += os.str();
    if (mined.clean()) {
      c_conform_clean_.add(1);
    } else if (response.ok) {
      response.ok = false;
      response.error = {"conform_failed",
                        std::to_string(mined.disagreements.size()) +
                            " trace/static disagreement(s); see report"};
    }
  }
  return response;
}

std::string Service::metrics_text() const {
  return registry_.snapshot().to_prometheus_text();
}

std::string Service::stats_json() const {
  const Clock::time_point now = Clock::now();
  JsonObject root;
  {
    std::lock_guard<std::mutex> lock(mu_);
    root["queue_depth"] = static_cast<double>(queue_.size());
    root["workers"] = static_cast<double>(workers_.size());
    root["stopping"] = stopping_;
  }
  JsonArray inflight;
  {
    std::lock_guard<std::mutex> slots_lock(slots_mu_);
    for (const WorkerSlot& slot : slots_) {
      JsonObject worker;
      worker["busy"] = slot.busy;
      if (slot.busy) {
        worker["request_id"] = slot.request_id;
        worker["trace_id"] = slot.trace_id;
        worker["op"] = slot.op;
        worker["age_us"] = static_cast<double>(us_between(slot.start, now));
        worker["deadline_overdue_us"] = static_cast<double>(
            slot.deadline && now > *slot.deadline
                ? us_between(*slot.deadline, now)
                : 0);
      }
      inflight.push_back(Json(std::move(worker)));
    }
  }
  root["inflight"] = Json(std::move(inflight));
  JsonObject program_cache;
  program_cache["size"] = static_cast<double>(program_cache_.size());
  program_cache["capacity"] = static_cast<double>(program_cache_.capacity());
  program_cache["hits"] = static_cast<double>(program_cache_.hits());
  program_cache["misses"] = static_cast<double>(program_cache_.misses());
  program_cache["evictions"] =
      static_cast<double>(program_cache_.evictions());
  // The level new simulations compile at (IFSYN_SIM_OPT, read live).
  // Artifacts are keyed per level, so mixed-level clients coexist in the
  // same cache without ever sharing an artifact across levels.
  program_cache["opt_level"] = static_cast<double>(
      static_cast<int>(sim::bytecode::opt_level_from_env()));
  root["program_cache"] = Json(std::move(program_cache));
  // The engine new simulations select (IFSYN_SIM_ENGINE, read live, like
  // opt_level above). "native" may still fall back to the VM per run —
  // sim.native.fallbacks / the event log carry that story.
  root["sim_engine"] = std::string(sim::engine_name(sim::engine_from_env()));
  JsonObject native_cache;
  native_cache["size"] = static_cast<double>(native_cache_.size());
  native_cache["capacity"] = static_cast<double>(native_cache_.capacity());
  native_cache["hits"] = static_cast<double>(native_cache_.hits());
  native_cache["misses"] = static_cast<double>(native_cache_.misses());
  native_cache["evictions"] = static_cast<double>(native_cache_.evictions());
  native_cache["compiles"] = static_cast<double>(native_cache_.compiles());
  root["native_cache"] = Json(std::move(native_cache));
  JsonObject counters;
  counters["submitted"] = static_cast<double>(c_submitted_.value());
  counters["ok"] = static_cast<double>(c_ok_.value());
  counters["error"] = static_cast<double>(c_error_.value());
  counters["admission_rejected"] = static_cast<double>(c_rejected_.value());
  counters["deadline_exceeded"] = static_cast<double>(c_deadline_.value());
  counters["conform_requests"] = static_cast<double>(c_conform_requests_.value());
  counters["conform_clean"] = static_cast<double>(c_conform_clean_.value());
  counters["conform_disagreements"] =
      static_cast<double>(c_conform_disagreements_.value());
  root["counters"] = Json(std::move(counters));
  return Json(std::move(root)).dump();
}

}  // namespace ifsyn::serve
