#include "serve/service.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "check/checker.hpp"
#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "core/report.hpp"
#include "explore/explorer.hpp"
#include "explore/report.hpp"
#include "obs/trace_sink.hpp"
#include "util/assert.hpp"

namespace ifsyn::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

Response error_response(const Request& request, std::string code,
                        std::string message) {
  Response response;
  response.id = request.id;
  response.op = request_op_name(request.op);
  response.ok = false;
  response.error = {std::move(code), std::move(message)};
  return response;
}

Response status_response(const Request& request, const Status& status) {
  return error_response(request, status_error_code(status.code()),
                        status.message());
}

/// The estimation store's scope: anything beyond the group-signature key
/// that changes what an estimate *means* — the spec identity and the
/// calibration it was computed under.
std::string estimation_scope(const InternedSpec& spec,
                             const std::map<std::string, long long>& cycles) {
  std::string scope = spec.hash;
  for (const auto& [process, value] : cycles) {
    scope += "|" + process + "=" + std::to_string(value);
  }
  return scope;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      interner_(options_.spec_cache_capacity,
                &registry_.counter("serve.spec_cache.hits",
                                   obs::Determinism::kWallClock),
                &registry_.counter("serve.spec_cache.misses",
                                   obs::Determinism::kWallClock),
                &registry_.counter("serve.spec_cache.evictions",
                                   obs::Determinism::kWallClock)),
      estimation_cache_(&registry_.counter("serve.estimation_cache.hits",
                                           obs::Determinism::kWallClock),
                        &registry_.counter("serve.estimation_cache.misses",
                                           obs::Determinism::kWallClock),
                        &registry_.counter("serve.estimation_cache.evictions",
                                           obs::Determinism::kWallClock),
                        options_.estimation_cache_capacity),
      program_cache_(options_.program_cache_capacity,
                     &registry_.counter("serve.program_cache.hits",
                                        obs::Determinism::kWallClock),
                     &registry_.counter("serve.program_cache.misses",
                                        obs::Determinism::kWallClock),
                     &registry_.counter("serve.program_cache.evictions",
                                        obs::Determinism::kWallClock)),
      c_submitted_(registry_.counter("serve.requests.submitted",
                                     obs::Determinism::kWallClock)),
      c_ok_(registry_.counter("serve.responses.ok",
                              obs::Determinism::kWallClock)),
      c_error_(registry_.counter("serve.responses.error",
                                 obs::Determinism::kWallClock)),
      c_rejected_(registry_.counter("serve.requests.admission_rejected",
                                    obs::Determinism::kWallClock)),
      c_deadline_(registry_.counter("serve.requests.deadline_exceeded",
                                    obs::Determinism::kWallClock)),
      g_queue_depth_(registry_.gauge("serve.queue.depth",
                                     obs::Determinism::kWallClock)),
      h_latency_us_(registry_.histogram("serve.request_latency_us",
                                        obs::exponential_bounds(100'000'000),
                                        obs::Determinism::kWallClock)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_request_threads < 1) options_.max_request_threads = 1;
  // Every simulation this process runs from now on — cosim legs,
  // validation runs, across all workers — shares compiled bytecode.
  sim::bytecode::install_process_cache(&program_cache_);
}

Service::~Service() {
  stop();
  if (sim::bytecode::process_cache() == &program_cache_) {
    sim::bytecode::install_process_cache(nullptr);
  }
}

void Service::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!workers_.empty()) return;
  stopping_ = false;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Service::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

std::future<Response> Service::submit(Request request) {
  c_submitted_.add(1);
  Pending pending;
  pending.enqueued = Clock::now();
  const std::uint64_t deadline_ms =
      request.deadline_ms ? request.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0) {
    pending.deadline =
        pending.enqueued + std::chrono::milliseconds(deadline_ms);
  }
  pending.request = std::move(request);
  std::future<Response> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || workers_.empty()) {
      c_rejected_.add(1);
      pending.promise.set_value(error_response(
          pending.request, "admission_rejected",
          workers_.empty() ? "service not started" : "service stopping"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      c_rejected_.add(1);
      pending.promise.set_value(error_response(
          pending.request, "admission_rejected",
          "queue full (" + std::to_string(options_.queue_capacity) +
              " pending)"));
      return future;
    }
    queue_.push_back(std::move(pending));
    g_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

void Service::worker_loop() {
  while (true) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      g_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }

    const Clock::time_point start = Clock::now();
    Response response;
    if (pending.deadline && start > *pending.deadline) {
      // Expired while queued: answer without burning a worker on it.
      c_deadline_.add(1);
      response = error_response(pending.request, "deadline_exceeded",
                                "deadline expired while queued");
    } else {
      response = execute(pending.request);
      if (pending.deadline && Clock::now() > *pending.deadline) {
        c_deadline_.add(1);
        response = error_response(pending.request, "deadline_exceeded",
                                  "deadline expired during execution");
      }
    }
    const Clock::time_point end = Clock::now();
    response.queue_us = us_between(pending.enqueued, start);
    response.elapsed_us = us_between(start, end);
    h_latency_us_.observe(us_between(pending.enqueued, end));
    (response.ok ? c_ok_ : c_error_).add(1);
    pending.promise.set_value(std::move(response));
  }
}

Response Service::execute(const Request& request) {
  try {
    if (request.op == RequestOp::kMetrics) {
      Response response;
      response.id = request.id;
      response.op = request_op_name(request.op);
      response.ok = true;
      response.report = metrics_text();
      return response;
    }

    Result<InternedSpec> interned =
        request.target.empty() ? interner_.intern_source(request.spec_text)
                               : interner_.intern_target(request.target);
    if (!interned.is_ok()) return status_response(request, interned.status());

    // Per-request observability: a private registry so the report's
    // deterministic metrics section describes this request alone (the
    // determinism contract), plus an optional private Chrome trace.
    obs::MetricsRegistry request_registry;
    obs::TraceSink trace_sink;
    obs::ObsContext obs{&request_registry, nullptr};
    if (!request.trace_file.empty()) obs.trace = &trace_sink;

    Response response;
    switch (request.op) {
      case RequestOp::kSynth:
        response = execute_synth(request, *interned, obs, request_registry);
        break;
      case RequestOp::kExplore:
        response = execute_explore(request, *interned, obs);
        break;
      case RequestOp::kCheck:
        response = execute_check(request, *interned, obs);
        break;
      case RequestOp::kMetrics:
        break;  // handled above
    }
    response.spec_hash = interned->hash;

    if (!request.trace_file.empty()) {
      // Advisory output; an unwritable path must not fail the request.
      std::ofstream out(request.trace_file);
      if (out) out << trace_sink.to_json();
    }
    return response;
  } catch (const InternalError& e) {
    return error_response(request, "internal", e.what());
  } catch (const std::exception& e) {
    return error_response(request, "internal", e.what());
  }
}

Response Service::execute_synth(const Request& request,
                                const InternedSpec& spec,
                                const obs::ObsContext& obs,
                                obs::MetricsRegistry& registry) {
  const RequestOptions& ro = request.options;
  core::SynthesisOptions options;
  if (ro.protocol) options.protocol = *ro.protocol;
  if (ro.fixed_delay_cycles) options.fixed_delay_cycles = *ro.fixed_delay_cycles;
  options.arbitrate = ro.arbitrate.value_or(spec.defaults.arbitrate);
  options.compute_cycles_override = spec.defaults.compute_cycles_override;
  options.obs = obs;

  const spec::System& original = *spec.system;
  spec::System refined = original.clone(original.name() + "_refined");
  core::InterfaceSynthesizer synthesizer(options);
  Result<core::SynthesisReport> report = synthesizer.run(refined);
  if (!report.is_ok()) return status_response(request, report.status());

  std::optional<core::EquivalenceReport> equivalence;
  if (ro.cosim.value_or(true)) {
    Result<core::EquivalenceReport> eq = core::check_equivalence(
        original, refined, ro.max_time.value_or(10'000'000), {}, obs);
    if (!eq.is_ok()) return status_response(request, eq.status());
    equivalence = std::move(eq).value();
  }

  core::ReportInputs inputs;
  inputs.refined = &refined;
  inputs.synthesis = &*report;
  inputs.equivalence = equivalence ? &*equivalence : nullptr;
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  inputs.metrics = &snapshot;

  Response response;
  response.id = request.id;
  response.op = request_op_name(request.op);
  response.report = core::render_markdown_report(inputs);
  if (equivalence && !equivalence->equivalent) {
    response.ok = false;
    response.error = {"not_equivalent",
                      "co-simulation found " +
                          std::to_string(equivalence->mismatches.size()) +
                          " mismatch(es); see report"};
  } else {
    response.ok = true;
  }
  return response;
}

Response Service::execute_explore(const Request& request,
                                  const InternedSpec& spec,
                                  const obs::ObsContext& obs) {
  const RequestOptions& ro = request.options;
  explore::ExploreOptions options;
  options.threads = std::clamp(ro.threads.value_or(1), 1,
                               options_.max_request_threads);
  options.top_k = ro.top_k.value_or(0);
  if (ro.sim_max_time) options.sim_max_time = *ro.sim_max_time;
  // Unlike synth, exploration keeps ExploreOptions' own arbitrate
  // default (true): validation co-simulates with the arbitrated bus
  // model, which is correct for any channel mix. The per-spec default
  // only describes the single-design synthesis flow.
  if (ro.arbitrate) options.arbitrate = *ro.arbitrate;
  if (ro.protocols) options.space.protocols = *ro.protocols;
  if (ro.fixed_delay_cycles) {
    options.space.fixed_delay_cycles = *ro.fixed_delay_cycles;
  }
  if (ro.min_width) options.space.min_width = *ro.min_width;
  if (ro.max_width) options.space.max_width = *ro.max_width;
  if (ro.alt_groupings) options.space.alternative_groupings = *ro.alt_groupings;
  options.max_execution_clocks = ro.max_clocks;
  options.compute_cycles_override = spec.defaults.compute_cycles_override;
  options.shared_cache = &estimation_cache_;
  options.cache_scope =
      estimation_scope(spec, options.compute_cycles_override);
  options.obs = obs;

  explore::Explorer explorer(*spec.system, options);
  Result<explore::ExplorationResult> result = explorer.run();
  if (!result.is_ok()) return status_response(request, result.status());

  Response response;
  response.id = request.id;
  response.op = request_op_name(request.op);
  response.report =
      ro.exploration_json
          ? explore::render_exploration_json(*spec.system, options, *result)
          : explore::render_exploration_markdown(*spec.system, options,
                                                 *result);
  response.ok = true;
  for (std::size_t index : result->validated) {
    const explore::PointResult& point = result->points[index];
    if (!point.sim_ok || !point.equivalent) {
      response.ok = false;
      response.error = {"check_failed",
                        "validated point " + std::to_string(point.point.index) +
                            " failed co-simulation; see report"};
      break;
    }
  }
  return response;
}

Response Service::execute_check(const Request& request,
                                const InternedSpec& spec,
                                const obs::ObsContext& obs) {
  const RequestOptions& ro = request.options;
  core::SynthesisOptions options;
  if (ro.protocol) options.protocol = *ro.protocol;
  if (ro.fixed_delay_cycles) options.fixed_delay_cycles = *ro.fixed_delay_cycles;
  options.arbitrate = ro.arbitrate.value_or(spec.defaults.arbitrate);
  options.compute_cycles_override = spec.defaults.compute_cycles_override;
  options.obs = obs;
  // As in the check subcommand: collect the full diagnostic list instead
  // of failing synthesis on the first finding.
  options.run_checker = false;

  spec::System system = spec.system->clone(spec.system->name());
  const std::map<std::string, long long> compute_snapshot =
      check::snapshot_compute_cycles(system, options.compute_cycles_override);

  core::InterfaceSynthesizer synthesizer(options);
  Result<core::SynthesisReport> synthesized = synthesizer.run(system);
  if (!synthesized.is_ok()) {
    return status_response(request, synthesized.status());
  }

  check::CheckOptions check_options;
  check_options.compute_cycles_override = compute_snapshot;
  const check::CheckReport report =
      check::run_checks(system, check_options, obs);

  Response response;
  response.id = request.id;
  response.op = request_op_name(request.op);
  if (report.clean()) {
    std::size_t refined_buses = 0;
    for (const auto& bus : system.buses()) {
      if (bus->generated()) ++refined_buses;
    }
    std::ostringstream os;
    os << "check clean: " << refined_buses << " bus(es), "
       << system.channels().size() << " channel(s), 0 diagnostics\n";
    response.report = os.str();
    response.ok = true;
  } else {
    response.report = report.to_string();
    response.ok = false;
    response.error = {"check_failed",
                      std::to_string(report.errors()) + " error(s), " +
                          std::to_string(report.warnings()) + " warning(s)"};
  }
  return response;
}

std::string Service::metrics_text() const {
  return registry_.snapshot().to_prometheus_text();
}

}  // namespace ifsyn::serve
