// ifsyn/serve/request.hpp
//
// The serve front end's wire format: one JSON object per line in, one
// per line out (JSONL). A request names an operation and a spec and
// optionally overrides synthesis/exploration options:
//
//   {"id": "r1", "op": "synth", "spec": "examples/specs/pipeline.ifs",
//    "options": {"protocol": "half", "arbitrate": true},
//    "deadline_ms": 2000}
//   {"id": "r2", "op": "explore", "spec": "builtin:flc",
//    "options": {"top_k": 4, "protocols": ["full", "fixed"]}}
//   {"id": "r3", "op": "check", "spec": "builtin:ethernet",
//    "options": {"conform": true}}
//   {"id": "r4", "op": "metrics"}
//   {"id": "r5", "op": "stats"}
//
// Spec targets: a `.ifs` path, "builtin:flc|am|ethernet|fig3", or inline
// text via "spec_text". Responses echo the id, carry ok/error plus the
// operation's deterministic report, and wall-clock latency fields that
// are explicitly *outside* the determinism contract:
//
//   {"id": "r1", "ok": true, "op": "synth", "spec_hash": "…",
//    "report": "…", "elapsed_us": 1234, "queue_us": 7}
//   {"id": "rX", "ok": false, "error": {"code": "deadline_exceeded",
//    "message": "…"}}
//
// `report` and `spec_hash` are byte-identical for a given request
// whether it runs alone, concurrently, or entirely from warm caches —
// the serve determinism contract. Tests compare them verbatim.
//
// Option fields are all optional; absent fields take the spec's builtin
// defaults (see serve/spec_intern) then the engine defaults. Unknown
// fields and unknown ops are structured errors, not crashes: the input
// side is hardened against untrusted bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/json.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::serve {

enum class RequestOp { kSynth, kExplore, kCheck, kMetrics, kStats };

const char* request_op_name(RequestOp op);

/// Request-level option overrides. Optionals distinguish "absent" (use
/// the spec's defaults) from an explicit value.
struct RequestOptions {
  std::optional<spec::ProtocolKind> protocol;
  std::optional<int> fixed_delay_cycles;
  std::optional<bool> arbitrate;
  std::optional<bool> cosim;                    // synth only
  std::optional<bool> conform;                  // check only: mine the trace
  std::optional<std::uint64_t> max_time;        // synth cosim / conform budget
  // ---- explore ----
  std::optional<int> threads;
  std::optional<int> top_k;
  std::optional<std::vector<spec::ProtocolKind>> protocols;
  std::optional<int> min_width;
  std::optional<int> max_width;
  std::optional<bool> alt_groupings;
  std::optional<std::uint64_t> sim_max_time;
  std::map<std::string, long long> max_clocks;
  bool exploration_json = false;  // JSON report instead of Markdown
};

struct Request {
  std::string id;
  RequestOp op = RequestOp::kSynth;
  std::string target;     ///< spec path or builtin:<name>; empty if inline
  std::string spec_text;  ///< inline source; used when target is empty
  RequestOptions options;
  /// Per-request deadline in wall milliseconds; 0 = service default. A
  /// request past its deadline yields a structured deadline_exceeded
  /// error — never a hang.
  std::uint64_t deadline_ms = 0;
  /// Optional path: write this request's Chrome trace there. Precedence
  /// vs the service-wide sink: when set, the request's *engine* phase
  /// spans go to a private sink written to this path and are NOT
  /// duplicated into the service-wide trace; the request's lifecycle
  /// events (submit/execute spans, flow arrows, async request span)
  /// always go to the service-wide sink when one is configured, so the
  /// service trace stays complete. An unwritable path is a structured
  /// "trace_unwritable" error response, not a silent drop — the check
  /// runs *before* execution so no engine work is wasted.
  std::string trace_file;
  /// Service-assigned trace ID ("t1", "t2", ...), stamped at admission
  /// (submit) or on direct execute() if unset. Not a wire field:
  /// parse_request rejects it in incoming JSON; it is echoed on the
  /// response (timing section) and tags every span of this request in
  /// the service-wide Chrome trace (args.trace_id).
  std::string trace_id;
};

struct ErrorInfo {
  std::string code;     ///< stable identifier, e.g. "deadline_exceeded"
  std::string message;  ///< human-readable detail
};

struct Response {
  std::string id;
  std::string op;
  bool ok = false;
  ErrorInfo error;        ///< set when !ok
  std::string spec_hash;  ///< interned content hash (when resolved)
  std::string report;     ///< deterministic payload (see file comment)
  // Wall-clock, excluded from the determinism contract (rendered only
  // when include_timing):
  std::uint64_t elapsed_us = 0;  ///< execution time
  std::uint64_t queue_us = 0;    ///< time spent queued before a worker
  std::string trace_id;          ///< service-assigned request trace ID
};

/// Stable error code for a Status ("invalid_argument", "not_found", …).
std::string status_error_code(StatusCode code);

/// Parse one request object. Unknown op / malformed fields are
/// kInvalidArgument.
Result<Request> parse_request(const Json& json);

/// Serialize a response as one compact JSON object (no newline).
/// Deterministic fields first-class; latency fields included only when
/// `include_timing` (tests compare byte-identical responses without it).
std::string render_response(const Response& response,
                            bool include_timing = true);

}  // namespace ifsyn::serve
