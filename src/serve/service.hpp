// ifsyn/serve/service.hpp
//
// Synthesis-as-a-service: a worker pool executing synth / explore /
// check requests against a set of process-wide shared artifact stores —
// the piece that turns the one-shot CLI flow into a front end that can
// drain a batch manifest or sit behind a JSONL loop.
//
// Architecture
// ------------
//   submit() ── admission control ──> bounded queue ──> N workers
//                    │ (queue full: structured                │
//                    │  admission_rejected, immediately)      v
//                    │                            execute(): resolve spec
//                    v                            via the interner, run
//             deadline stamped                    the engine, render the
//             at submission                       deterministic report
//
// Three shared stores, all content-addressed, LRU-bounded, counter-
// instrumented in the service registry:
//
//   - SpecInterner        parsed spec::Systems by content hash
//   - EstimationCache     per-group Eq. 1 estimates, scope-qualified by
//                         spec hash + calibration fingerprint
//   - sim ProgramCache    compiled bytecode, installed process-wide so
//                         every simulation (cosim legs, validation runs)
//                         reuses compiled artifacts across requests
//
// Determinism contract: a request's `report` and `spec_hash` are
// byte-identical whether the request runs alone, concurrently with
// others, or entirely from warm caches. Everything load-dependent —
// latencies, queue depth, shared-store hit rates — lives in the service
// registry (wall-clock class) and in the timing fields of the response,
// never in the report. Each request gets a private MetricsRegistry, so
// its report's deterministic metrics section reflects that request
// alone.
//
// Deadlines: checked when a worker dequeues the request and again after
// execution; a request past its deadline yields a structured
// deadline_exceeded error. In-flight engine work is never interrupted
// mid-run (the engines have no cancellation points), so a deadline
// bounds *response* usefulness, not worker occupancy — size the pool
// accordingly. No code path hangs or throws across the API boundary:
// engine exceptions surface as code "internal" error responses.
//
// Observability (all wall-clock class, outside the determinism
// contract):
//
//   - Tracing: every request is stamped with a trace ID ("t<seq>") at
//     admission. With a service-wide TraceSink configured
//     (ServiceOptions::trace), the service records the request's
//     lifecycle as one async span ("b"/"e") plus a flow arrow ("s"/"f")
//     from the submitter thread's submit slice to the worker's execute
//     slice, and threads a RequestContext into the engines so every
//     phase span lands in the same trace tagged args.trace_id.
//   - Quantiles: per-op latency (serve.latency.<op>_us), queue wait and
//     execute-time histograms feed p50/p95/p99 summaries in
//     metrics_text() (see obs/quantiles.hpp for the error bound).
//   - Watchdog: with watchdog_poll_ms > 0, a monitor thread polls the
//     per-worker in-flight table and exports serve.worker.<i>.* gauges
//     (in-flight request age, deadline overdue) plus aggregate
//     serve.inflight.* gauges — making the documented "worker stuck on
//     in-flight engine work past its deadline" hazard visible. Overdue
//     workers are reported to the EventLog (rate-limited).
//   - stats op: a request {"op":"stats"} answers with a JSON snapshot
//     of queue depth, per-worker in-flight state, and counters, over
//     the normal wire format — live introspection without a sidecar.
//   - Slow-request capture: with slow_trace_ms > 0 and a
//     slow_trace_dir, the slowest slow_trace_keep requests above the
//     threshold get their trace written to
//     <slow_trace_dir>/slow-<trace_id>.json. When no service-wide sink
//     is configured the capture carries full engine phase spans;
//     otherwise those spans are already in the service trace and the
//     capture holds the request's lifecycle summary.
//
// One Service per process: the bytecode program cache installs itself as
// the process-wide store (sim/bytecode/program_cache) for its lifetime.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "explore/estimation_cache.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "serve/request.hpp"
#include "serve/spec_intern.hpp"
#include "sim/bytecode/program_cache.hpp"
#include "sim/native/artifact_cache.hpp"
#include "util/status.hpp"

namespace ifsyn::serve {

struct ServiceOptions {
  /// Worker pool size.
  int workers = 1;
  /// Bounded request queue; submissions beyond this are rejected with a
  /// structured admission_rejected error (never blocked).
  std::size_t queue_capacity = 64;
  /// Shared-store bounds (entries; 0 = unbounded).
  std::size_t spec_cache_capacity = 64;
  std::size_t estimation_cache_capacity = 4096;
  std::size_t program_cache_capacity = 128;
  /// Native .so artifacts (memory-resident modules AND on-disk files) —
  /// smaller than program_cache_capacity because each entry is a mapped
  /// shared object, not a bytecode vector. Only consulted when requests
  /// run with IFSYN_SIM_ENGINE=native.
  std::size_t native_cache_capacity = 32;
  /// Default per-request deadline (ms); 0 = no deadline. A request's own
  /// deadline_ms overrides.
  std::uint64_t default_deadline_ms = 0;
  /// Cap on a single explore request's worker threads, so one request
  /// cannot oversubscribe the pool. Explore output is thread-count
  /// invariant, so capping never changes a report.
  int max_request_threads = 4;

  // ---- observability (all optional; non-owning pointers must outlive
  // the Service) ----
  /// Service-wide Chrome trace sink recording every request's lifecycle
  /// and (absent a per-request trace_file) its engine phase spans.
  obs::TraceSink* trace = nullptr;
  /// Structured event log for watchdog findings and service lifecycle.
  obs::EventLog* event_log = nullptr;
  /// Watchdog poll interval; 0 disables the monitor thread.
  std::uint64_t watchdog_poll_ms = 0;
  /// Capture traces of requests slower than this (total latency, ms);
  /// 0 disables. Requires slow_trace_dir.
  std::uint64_t slow_trace_ms = 0;
  /// Keep the N slowest captures; older/faster ones are deleted.
  std::size_t slow_trace_keep = 4;
  /// Directory receiving slow-<trace_id>.json captures.
  std::string slow_trace_dir;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawn the worker pool. Idempotent.
  void start();

  /// Drain the queue, then join the workers. Requests already submitted
  /// are completed (their futures resolve); new submissions are rejected.
  void stop();

  /// Enqueue a request. The future always resolves — with the result, or
  /// with a structured admission/deadline/internal error.
  std::future<Response> submit(Request request);

  /// Execute synchronously on the caller's thread, bypassing the queue
  /// (the workers' inner path; also the deterministic unit-test surface).
  Response execute(const Request& request);

  /// Service-level metrics (queue, latencies, shared-store counters).
  obs::MetricsSnapshot metrics_snapshot() const { return registry_.snapshot(); }
  /// Prometheus-style text exposition of metrics_snapshot().
  std::string metrics_text() const;
  /// JSON introspection snapshot (the "stats" op's report): queue depth,
  /// per-worker in-flight state, request counters. Wall-clock surface.
  std::string stats_json() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Pending {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    obs::RequestContext ctx;  ///< lifecycle trace identity
  };

  /// What a worker is doing right now, published for the watchdog and
  /// the stats op. Guarded by slots_mu_ (never the queue lock, so
  /// introspection cannot contend with admission).
  struct WorkerSlot {
    bool busy = false;
    std::string request_id;
    std::string trace_id;
    std::string op;
    std::chrono::steady_clock::time_point start{};
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void worker_loop(std::size_t worker_index);
  void watchdog_loop();
  void watchdog_poll();
  /// execute() plus an optional out-param receiving the private
  /// engine-span trace JSON (set when a private sink was used and the
  /// caller asked for it — the slow-capture path).
  Response execute_traced(const Request& request, std::string* trace_json);
  void maybe_capture_slow(const Response& response, std::uint64_t total_us,
                          const std::string& engine_trace_json);
  Response execute_synth(const Request& request, const InternedSpec& spec,
                         const obs::ObsContext& obs,
                         obs::MetricsRegistry& registry);
  Response execute_explore(const Request& request, const InternedSpec& spec,
                           const obs::ObsContext& obs);
  Response execute_check(const Request& request, const InternedSpec& spec,
                         const obs::ObsContext& obs);

  ServiceOptions options_;
  obs::MetricsRegistry registry_;
  std::atomic<std::uint64_t> trace_seq_{0};

  // Shared stores (counters live in registry_, wall-clock class).
  SpecInterner interner_;
  explore::EstimationCache estimation_cache_;
  sim::bytecode::ProgramCache program_cache_;
  sim::native::NativeArtifactCache native_cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::thread watchdog_;

  mutable std::mutex slots_mu_;
  std::vector<WorkerSlot> slots_;

  // Slow-request capture state: the kept captures sorted ascending by
  // latency, so the cheapest to evict is front.
  struct SlowCapture {
    std::uint64_t total_us = 0;
    std::string path;
  };
  std::mutex slow_mu_;
  std::vector<SlowCapture> slow_captures_;

  obs::Counter& c_submitted_;
  obs::Counter& c_ok_;
  obs::Counter& c_error_;
  obs::Counter& c_rejected_;
  obs::Counter& c_deadline_;
  // Trace-conformance mining on the check path (options.conform):
  // requests that opted in, how many came back clean, and the total
  // disagreements surfaced across the service's lifetime.
  obs::Counter& c_conform_requests_;
  obs::Counter& c_conform_clean_;
  obs::Counter& c_conform_disagreements_;
  obs::Gauge& g_queue_depth_;
  obs::Histogram& h_latency_us_;
  obs::Histogram& h_queue_wait_us_;
  obs::Histogram& h_execute_us_;
};

}  // namespace ifsyn::serve
