// ifsyn/serve/service.hpp
//
// Synthesis-as-a-service: a worker pool executing synth / explore /
// check requests against a set of process-wide shared artifact stores —
// the piece that turns the one-shot CLI flow into a front end that can
// drain a batch manifest or sit behind a JSONL loop.
//
// Architecture
// ------------
//   submit() ── admission control ──> bounded queue ──> N workers
//                    │ (queue full: structured                │
//                    │  admission_rejected, immediately)      v
//                    │                            execute(): resolve spec
//                    v                            via the interner, run
//             deadline stamped                    the engine, render the
//             at submission                       deterministic report
//
// Three shared stores, all content-addressed, LRU-bounded, counter-
// instrumented in the service registry:
//
//   - SpecInterner        parsed spec::Systems by content hash
//   - EstimationCache     per-group Eq. 1 estimates, scope-qualified by
//                         spec hash + calibration fingerprint
//   - sim ProgramCache    compiled bytecode, installed process-wide so
//                         every simulation (cosim legs, validation runs)
//                         reuses compiled artifacts across requests
//
// Determinism contract: a request's `report` and `spec_hash` are
// byte-identical whether the request runs alone, concurrently with
// others, or entirely from warm caches. Everything load-dependent —
// latencies, queue depth, shared-store hit rates — lives in the service
// registry (wall-clock class) and in the timing fields of the response,
// never in the report. Each request gets a private MetricsRegistry, so
// its report's deterministic metrics section reflects that request
// alone.
//
// Deadlines: checked when a worker dequeues the request and again after
// execution; a request past its deadline yields a structured
// deadline_exceeded error. In-flight engine work is never interrupted
// mid-run (the engines have no cancellation points), so a deadline
// bounds *response* usefulness, not worker occupancy — size the pool
// accordingly. No code path hangs or throws across the API boundary:
// engine exceptions surface as code "internal" error responses.
//
// One Service per process: the bytecode program cache installs itself as
// the process-wide store (sim/bytecode/program_cache) for its lifetime.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "explore/estimation_cache.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "serve/spec_intern.hpp"
#include "sim/bytecode/program_cache.hpp"
#include "util/status.hpp"

namespace ifsyn::serve {

struct ServiceOptions {
  /// Worker pool size.
  int workers = 1;
  /// Bounded request queue; submissions beyond this are rejected with a
  /// structured admission_rejected error (never blocked).
  std::size_t queue_capacity = 64;
  /// Shared-store bounds (entries; 0 = unbounded).
  std::size_t spec_cache_capacity = 64;
  std::size_t estimation_cache_capacity = 4096;
  std::size_t program_cache_capacity = 128;
  /// Default per-request deadline (ms); 0 = no deadline. A request's own
  /// deadline_ms overrides.
  std::uint64_t default_deadline_ms = 0;
  /// Cap on a single explore request's worker threads, so one request
  /// cannot oversubscribe the pool. Explore output is thread-count
  /// invariant, so capping never changes a report.
  int max_request_threads = 4;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawn the worker pool. Idempotent.
  void start();

  /// Drain the queue, then join the workers. Requests already submitted
  /// are completed (their futures resolve); new submissions are rejected.
  void stop();

  /// Enqueue a request. The future always resolves — with the result, or
  /// with a structured admission/deadline/internal error.
  std::future<Response> submit(Request request);

  /// Execute synchronously on the caller's thread, bypassing the queue
  /// (the workers' inner path; also the deterministic unit-test surface).
  Response execute(const Request& request);

  /// Service-level metrics (queue, latencies, shared-store counters).
  obs::MetricsSnapshot metrics_snapshot() const { return registry_.snapshot(); }
  /// Prometheus-style text exposition of metrics_snapshot().
  std::string metrics_text() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Pending {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void worker_loop();
  Response execute_synth(const Request& request, const InternedSpec& spec,
                         const obs::ObsContext& obs,
                         obs::MetricsRegistry& registry);
  Response execute_explore(const Request& request, const InternedSpec& spec,
                           const obs::ObsContext& obs);
  Response execute_check(const Request& request, const InternedSpec& spec,
                         const obs::ObsContext& obs);

  ServiceOptions options_;
  obs::MetricsRegistry registry_;

  // Shared stores (counters live in registry_, wall-clock class).
  SpecInterner interner_;
  explore::EstimationCache estimation_cache_;
  sim::bytecode::ProgramCache program_cache_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  obs::Counter& c_submitted_;
  obs::Counter& c_ok_;
  obs::Counter& c_error_;
  obs::Counter& c_rejected_;
  obs::Counter& c_deadline_;
  obs::Gauge& g_queue_depth_;
  obs::Histogram& h_latency_us_;
};

}  // namespace ifsyn::serve
