// ifsyn/serve/spec_intern.hpp
//
// Content-addressed interning of specifications for the serve front end.
// Every request names a spec — a `.ifs` file path, inline source text, or
// a `builtin:` case-study name — and many requests name the *same* spec:
// a batch manifest sweeping options over one design, a serve loop fed by
// CI. The interner resolves each to a parsed, validated, immutable
// spec::System exactly once per content hash and shares it (requests
// clone their own mutable copy; the interned System itself is never
// mutated).
//
// The content hash doubles as the request's `spec_hash` — the scope
// qualifier for the cross-request estimation store (explore/
// estimation_cache) and the identity echoed in responses. File targets
// hash the file *bytes*, so editing a spec on disk naturally misses the
// cache; builtins hash a versioned sentinel (they are compiled in and
// immutable for the process lifetime).
//
// Bounded LRU, same discipline as the other shared stores: capacity 0 =
// unbounded; hit/miss/eviction counters are obs-registry-backed.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/interface_synthesizer.hpp"
#include "obs/metrics.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::serve {

/// 128-bit hex content hash (two independently seeded 64-bit FNV-1a
/// passes) plus a length tag — the same shape as the bytecode program
/// cache's key.
std::string content_hash(std::string_view text);

/// Per-spec synthesis defaults a builtin carries with it: the calibration
/// and arbitration its case study is defined with (mirrors the check
/// subcommand's load_check_target). Explicit request options override
/// these.
struct SpecDefaults {
  bool arbitrate = false;
  std::map<std::string, long long> compute_cycles_override;
};

struct InternedSpec {
  std::string hash;  ///< content hash; the request's spec_hash
  std::shared_ptr<const spec::System> system;
  SpecDefaults defaults;
};

class SpecInterner {
 public:
  /// Null counters are replaced with private ones. `capacity` == 0 means
  /// unbounded.
  explicit SpecInterner(std::size_t capacity = 0,
                        obs::Counter* hits = nullptr,
                        obs::Counter* misses = nullptr,
                        obs::Counter* evictions = nullptr);

  /// Resolve a request target: "builtin:<name>" or a spec file path.
  Result<InternedSpec> intern_target(const std::string& target);

  /// Intern inline spec source text.
  Result<InternedSpec> intern_source(const std::string& source);

  std::size_t size() const;

 private:
  struct Entry {
    InternedSpec spec;
    std::list<std::string>::iterator lru;
  };

  /// Insert-or-get under the lock; parsing happened outside. Two racing
  /// parsers of the same content produce identical systems, so first
  /// insert wins and the loser's work is discarded — simpler than the
  /// future idiom and harmless for a parse-bound cache.
  InternedSpec insert_locked(InternedSpec spec);
  Result<InternedSpec> lookup(const std::string& hash, bool* found);

  mutable std::mutex mu_;
  std::map<std::string, Entry> map_;
  std::list<std::string> lru_;  // front = most recent
  std::size_t capacity_;
  obs::Counter own_hits_, own_misses_, own_evictions_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
};

}  // namespace ifsyn::serve
