#include "serve/request.hpp"

#include <cmath>

namespace ifsyn::serve {

namespace {

Status parse_protocol(const Json& value, spec::ProtocolKind& out) {
  if (!value.is_string()) return invalid_argument("protocol must be a string");
  const std::string& name = value.as_string();
  if (name == "full") out = spec::ProtocolKind::kFullHandshake;
  else if (name == "half") out = spec::ProtocolKind::kHalfHandshake;
  else if (name == "fixed") out = spec::ProtocolKind::kFixedDelay;
  else if (name == "wired") out = spec::ProtocolKind::kHardwiredPort;
  else return invalid_argument("unknown protocol '" + name + "'");
  return Status::ok();
}

/// JSON numbers arrive as double; request integers must be whole and in
/// range (untrusted input — reject rather than truncate).
Status parse_int(const Json& value, const char* field, long long min,
                 long long max, long long& out) {
  if (!value.is_number() || value.as_number() != std::floor(value.as_number())) {
    return invalid_argument(std::string(field) + " must be an integer");
  }
  const double n = value.as_number();
  if (n < static_cast<double>(min) || n > static_cast<double>(max)) {
    return invalid_argument(std::string(field) + " out of range");
  }
  out = static_cast<long long>(n);
  return Status::ok();
}

Status parse_options(const Json& json, RequestOptions& out) {
  if (!json.is_object()) return invalid_argument("options must be an object");
  for (const auto& [key, value] : json.as_object()) {
    long long n = 0;
    if (key == "protocol") {
      spec::ProtocolKind kind;
      IFSYN_RETURN_IF_ERROR(parse_protocol(value, kind));
      out.protocol = kind;
    } else if (key == "fixed_delay") {
      IFSYN_RETURN_IF_ERROR(parse_int(value, "fixed_delay", 1, 1 << 20, n));
      out.fixed_delay_cycles = static_cast<int>(n);
    } else if (key == "arbitrate") {
      if (!value.is_bool()) return invalid_argument("arbitrate must be a bool");
      out.arbitrate = value.as_bool();
    } else if (key == "cosim") {
      if (!value.is_bool()) return invalid_argument("cosim must be a bool");
      out.cosim = value.as_bool();
    } else if (key == "conform") {
      if (!value.is_bool()) return invalid_argument("conform must be a bool");
      out.conform = value.as_bool();
    } else if (key == "max_time") {
      IFSYN_RETURN_IF_ERROR(parse_int(value, "max_time", 1, 1ll << 50, n));
      out.max_time = static_cast<std::uint64_t>(n);
    } else if (key == "threads") {
      IFSYN_RETURN_IF_ERROR(parse_int(value, "threads", 1, 256, n));
      out.threads = static_cast<int>(n);
    } else if (key == "top_k") {
      IFSYN_RETURN_IF_ERROR(parse_int(value, "top_k", 0, 1 << 20, n));
      out.top_k = static_cast<int>(n);
    } else if (key == "protocols") {
      if (!value.is_array()) {
        return invalid_argument("protocols must be an array");
      }
      std::vector<spec::ProtocolKind> kinds;
      for (const Json& item : value.as_array()) {
        spec::ProtocolKind kind;
        IFSYN_RETURN_IF_ERROR(parse_protocol(item, kind));
        kinds.push_back(kind);
      }
      if (kinds.empty()) return invalid_argument("protocols must be non-empty");
      out.protocols = std::move(kinds);
    } else if (key == "min_width") {
      IFSYN_RETURN_IF_ERROR(parse_int(value, "min_width", 1, 1 << 16, n));
      out.min_width = static_cast<int>(n);
    } else if (key == "max_width") {
      IFSYN_RETURN_IF_ERROR(parse_int(value, "max_width", 1, 1 << 16, n));
      out.max_width = static_cast<int>(n);
    } else if (key == "alt_groupings") {
      if (!value.is_bool()) {
        return invalid_argument("alt_groupings must be a bool");
      }
      out.alt_groupings = value.as_bool();
    } else if (key == "sim_max_time") {
      IFSYN_RETURN_IF_ERROR(parse_int(value, "sim_max_time", 1, 1ll << 50, n));
      out.sim_max_time = static_cast<std::uint64_t>(n);
    } else if (key == "max_clocks") {
      if (!value.is_object()) {
        return invalid_argument("max_clocks must be an object");
      }
      for (const auto& [process, limit] : value.as_object()) {
        IFSYN_RETURN_IF_ERROR(parse_int(limit, "max_clocks", 1, 1ll << 50, n));
        out.max_clocks[process] = n;
      }
    } else if (key == "format") {
      if (!value.is_string() ||
          (value.as_string() != "markdown" && value.as_string() != "json")) {
        return invalid_argument("format must be \"markdown\" or \"json\"");
      }
      out.exploration_json = value.as_string() == "json";
    } else {
      return invalid_argument("unknown option '" + key + "'");
    }
  }
  return Status::ok();
}

}  // namespace

const char* request_op_name(RequestOp op) {
  switch (op) {
    case RequestOp::kSynth: return "synth";
    case RequestOp::kExplore: return "explore";
    case RequestOp::kCheck: return "check";
    case RequestOp::kMetrics: return "metrics";
    case RequestOp::kStats: return "stats";
  }
  return "?";
}

std::string status_error_code(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kInfeasible: return "infeasible";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kUnsupported: return "unsupported";
    case StatusCode::kSimulationError: return "simulation_error";
    case StatusCode::kCheckFailed: return "check_failed";
  }
  return "internal";
}

Result<Request> parse_request(const Json& json) {
  if (!json.is_object()) return invalid_argument("request must be an object");
  Request request;
  for (const auto& [key, value] : json.as_object()) {
    if (key == "id") {
      if (!value.is_string()) return invalid_argument("id must be a string");
      request.id = value.as_string();
    } else if (key == "op") {
      if (!value.is_string()) return invalid_argument("op must be a string");
      const std::string& op = value.as_string();
      if (op == "synth") request.op = RequestOp::kSynth;
      else if (op == "explore") request.op = RequestOp::kExplore;
      else if (op == "check") request.op = RequestOp::kCheck;
      else if (op == "metrics") request.op = RequestOp::kMetrics;
      else if (op == "stats") request.op = RequestOp::kStats;
      else return invalid_argument("unknown op '" + op + "'");
    } else if (key == "spec") {
      if (!value.is_string()) return invalid_argument("spec must be a string");
      request.target = value.as_string();
    } else if (key == "spec_text") {
      if (!value.is_string()) {
        return invalid_argument("spec_text must be a string");
      }
      request.spec_text = value.as_string();
    } else if (key == "options") {
      IFSYN_RETURN_IF_ERROR(parse_options(value, request.options));
    } else if (key == "deadline_ms") {
      long long n = 0;
      IFSYN_RETURN_IF_ERROR(parse_int(value, "deadline_ms", 0, 1ll << 40, n));
      request.deadline_ms = static_cast<std::uint64_t>(n);
    } else if (key == "trace_file") {
      if (!value.is_string()) {
        return invalid_argument("trace_file must be a string");
      }
      request.trace_file = value.as_string();
    } else {
      return invalid_argument("unknown request field '" + key + "'");
    }
  }
  if (json.find("op") == nullptr) return invalid_argument("missing op");
  const bool introspection =
      request.op == RequestOp::kMetrics || request.op == RequestOp::kStats;
  if (!introspection && request.target.empty() && request.spec_text.empty()) {
    return invalid_argument("missing spec (or spec_text)");
  }
  if (!request.target.empty() && !request.spec_text.empty()) {
    return invalid_argument("spec and spec_text are mutually exclusive");
  }
  return request;
}

std::string render_response(const Response& response, bool include_timing) {
  JsonObject object;
  object["id"] = response.id;
  object["op"] = response.op;
  object["ok"] = response.ok;
  if (!response.ok) {
    JsonObject error;
    error["code"] = response.error.code;
    error["message"] = response.error.message;
    object["error"] = std::move(error);
  }
  if (!response.spec_hash.empty()) object["spec_hash"] = response.spec_hash;
  if (!response.report.empty()) object["report"] = response.report;
  if (include_timing) {
    object["elapsed_us"] = response.elapsed_us;
    object["queue_us"] = response.queue_us;
    if (!response.trace_id.empty()) object["trace_id"] = response.trace_id;
  }
  return Json(std::move(object)).dump();
}

}  // namespace ifsyn::serve
