#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ifsyn::serve {

namespace {

/// Untrusted input: bound recursion so a deeply nested document cannot
/// blow the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    Json value;
    IFSYN_RETURN_IF_ERROR(parse_value(value, 0));
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return value;
  }

 private:
  Status error(const std::string& what) const {
    return invalid_argument("json: " + what + " at offset " +
                            std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      std::string s;
      IFSYN_RETURN_IF_ERROR(parse_string(s));
      out = Json(std::move(s));
      return Status::ok();
    }
    if (consume_word("true")) {
      out = Json(true);
      return Status::ok();
    }
    if (consume_word("false")) {
      out = Json(false);
      return Status::ok();
    }
    if (consume_word("null")) {
      out = Json(nullptr);
      return Status::ok();
    }
    return parse_number(out);
  }

  Status parse_object(Json& out, int depth) {
    consume('{');
    JsonObject object;
    skip_ws();
    if (consume('}')) {
      out = Json(std::move(object));
      return Status::ok();
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key");
      }
      std::string key;
      IFSYN_RETURN_IF_ERROR(parse_string(key));
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      Json value;
      IFSYN_RETURN_IF_ERROR(parse_value(value, depth + 1));
      object[std::move(key)] = std::move(value);  // last duplicate wins
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return error("expected ',' or '}'");
    }
    out = Json(std::move(object));
    return Status::ok();
  }

  Status parse_array(Json& out, int depth) {
    consume('[');
    JsonArray array;
    skip_ws();
    if (consume(']')) {
      out = Json(std::move(array));
      return Status::ok();
    }
    while (true) {
      Json value;
      IFSYN_RETURN_IF_ERROR(parse_value(value, depth + 1));
      array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return error("expected ',' or ']'");
    }
    out = Json(std::move(array));
    return Status::ok();
  }

  Status parse_string(std::string& out) {
    consume('"');
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return error("bad \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return error("bad \\u escape");
          }
          // Encode as UTF-8; surrogate pairs are out of scope for the
          // request protocol (ids and paths are ASCII in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return error("bad escape");
      }
    }
  }

  Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return error("unexpected character");
    const std::string token(text_.substr(start, pos_ - start));
    // strtod is laxer than JSON: it accepts a leading '+', which the
    // grammar forbids.
    if (token[0] != '-' && (token[0] < '0' || token[0] > '9')) {
      pos_ = start;
      return error("bad number");
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return error("bad number");
    }
    out = Json(value);
    return Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_to(const Json& value, std::string& out) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kNumber: {
      const double n = value.as_number();
      // Integers (the common case: ids, counts, microseconds) print
      // without a decimal point so responses are stable and compact.
      if (n == std::floor(n) && std::fabs(n) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(n));
        out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", n);
        out += buf;
      }
      return;
    }
    case Json::Kind::kString:
      out += json_quote(value.as_string());
      return;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : value.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_to(item, out);
      }
      out += ']';
      return;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) out += ',';
        first = false;
        out += json_quote(key);
        out += ':';
        dump_to(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const JsonObject& object = as_object();
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string Json::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

Result<Json> parse_json(std::string_view text) {
  return Parser(text).parse();
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace ifsyn::serve
