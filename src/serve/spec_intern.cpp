#include "serve/spec_intern.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "spec/parser.hpp"
#include "suite/answering_machine.hpp"
#include "suite/ethernet_coprocessor.hpp"
#include "suite/fig3_example.hpp"
#include "suite/flc.hpp"

namespace ifsyn::serve {

namespace {

std::uint64_t fnv1a(std::uint64_t seed, std::string_view text) {
  std::uint64_t h = seed;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

struct BuiltinSpec {
  spec::System (*make)();
  SpecDefaults defaults;
};

/// The check subcommand's builtin table, shared with serve: same names,
/// same calibration, same arbitration defaults.
Result<BuiltinSpec> find_builtin(const std::string& name) {
  if (name == "flc") {
    return BuiltinSpec{
        &suite::make_flc_kernel,
        {false,
         {{"EVAL_R3", suite::FlcCalibration::kEvalR3ComputeCycles},
          {"CONV_R2", suite::FlcCalibration::kConvR2ComputeCycles}}}};
  }
  if (name == "am") {
    // Concurrent masters share AMBUS.
    return BuiltinSpec{&suite::make_answering_machine, {true, {}}};
  }
  if (name == "ethernet") {
    return BuiltinSpec{&suite::make_ethernet_coprocessor, {true, {}}};
  }
  if (name == "fig3") {
    // Fig. 3 runs two concurrent masters; equivalence co-simulation
    // needs the arbitrated bus model (same default the spec file's
    // header comment prescribes for the CLI).
    return BuiltinSpec{[] { return suite::make_fig3_system(); },
                       {/*arbitrate=*/true, {}}};
  }
  return invalid_argument("unknown builtin '" + name +
                          "' (flc, am, ethernet, fig3)");
}

}  // namespace

std::string content_hash(std::string_view text) {
  return hex64(fnv1a(14695981039346656037ull, text)) +
         hex64(fnv1a(0x9e3779b97f4a7c15ull, text)) + "-" +
         std::to_string(text.size());
}

SpecInterner::SpecInterner(std::size_t capacity, obs::Counter* hits,
                           obs::Counter* misses, obs::Counter* evictions)
    : capacity_(capacity),
      hits_(hits ? hits : &own_hits_),
      misses_(misses ? misses : &own_misses_),
      evictions_(evictions ? evictions : &own_evictions_) {}

Result<InternedSpec> SpecInterner::lookup(const std::string& hash,
                                          bool* found) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(hash);
  if (it == map_.end()) {
    *found = false;
    misses_->add(1);
    return invalid_argument("miss");  // caller ignores; *found is false
  }
  *found = true;
  hits_->add(1);
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.spec;
}

InternedSpec SpecInterner::insert_locked(InternedSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(spec.hash);
  if (it != map_.end()) {
    // A racing intern of the same content won; its system is identical.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.spec;
  }
  lru_.push_front(spec.hash);
  Entry entry{spec, lru_.begin()};
  map_.emplace(spec.hash, std::move(entry));
  while (capacity_ > 0 && map_.size() > capacity_ && lru_.size() > 1) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evictions_->add(1);
  }
  return spec;
}

Result<InternedSpec> SpecInterner::intern_target(const std::string& target) {
  if (target.rfind("builtin:", 0) == 0) {
    const std::string name = target.substr(8);
    Result<BuiltinSpec> builtin = find_builtin(name);
    if (!builtin.is_ok()) return builtin.status();
    // Builtins are compiled in: their content is fixed for the process,
    // so a versioned sentinel is an honest content hash.
    const std::string hash = content_hash("builtin:" + name + "|v1");
    bool found = false;
    Result<InternedSpec> cached = lookup(hash, &found);
    if (found) return cached;
    InternedSpec spec;
    spec.hash = hash;
    spec.system =
        std::make_shared<const spec::System>(builtin->make());
    spec.defaults = builtin->defaults;
    return insert_locked(std::move(spec));
  }

  std::ifstream in(target, std::ios::binary);
  if (!in) return not_found("cannot read spec file " + target);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<InternedSpec> interned = intern_source(buffer.str());
  if (!interned.is_ok()) {
    // Parse errors carry line:column; prefix the file so a batch of many
    // specs yields actionable diagnostics.
    return Status(interned.status().code(),
                  target + ": " + interned.status().message());
  }
  return interned;
}

Result<InternedSpec> SpecInterner::intern_source(const std::string& source) {
  const std::string hash = content_hash(source);
  bool found = false;
  Result<InternedSpec> cached = lookup(hash, &found);
  if (found) return cached;

  Result<spec::System> parsed = spec::parse_system(source);
  if (!parsed.is_ok()) return parsed.status();
  InternedSpec spec;
  spec.hash = hash;
  spec.system =
      std::make_shared<const spec::System>(std::move(parsed).value());
  return insert_locked(std::move(spec));
}

std::size_t SpecInterner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace ifsyn::serve
