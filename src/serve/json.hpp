// ifsyn/serve/json.hpp
//
// A minimal JSON value type plus a recursive-descent parser and a
// deterministic serializer — just enough for the serve front end's
// newline-delimited request/response protocol. Deliberately not a general
// JSON library:
//
//   - numbers are stored as double (plenty for ids, cycle budgets and
//     latencies; 2^53 integer range);
//   - objects are std::map, so members serialize in sorted key order and
//     a value's dump() is a pure function of its content — the property
//     the serve determinism contract ("byte-identical responses") leans
//     on;
//   - the parser caps nesting depth and rejects trailing garbage, because
//     serve input is untrusted (ISSUE: hardened ingestion).
//
// No external dependency — the repo builds offline.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace ifsyn::serve {

class Json;

using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}        // NOLINT
  Json(bool b) : value_(b) {}                      // NOLINT
  Json(double n) : value_(n) {}                    // NOLINT
  Json(int n) : value_(static_cast<double>(n)) {}  // NOLINT
  Json(std::int64_t n) : value_(static_cast<double>(n)) {}   // NOLINT
  Json(std::uint64_t n) : value_(static_cast<double>(n)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}      // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}     // NOLINT

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object member lookup; null when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Compact serialization (no whitespace). Object members in sorted key
  /// order; equal values always produce equal bytes.
  std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Parse one JSON document. The whole input must be consumed (trailing
/// whitespace allowed). Errors are kInvalidArgument with a byte offset
/// and a description — structured enough for a serve error response.
Result<Json> parse_json(std::string_view text);

/// Escape and quote a string for inclusion in JSON output.
std::string json_quote(const std::string& s);

}  // namespace ifsyn::serve
