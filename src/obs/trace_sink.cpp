#include "obs/trace_sink.hpp"

#include <cctype>
#include <sstream>

namespace ifsyn::obs {

// ---- recording -----------------------------------------------------------

int TraceSink::tid_locked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

int TraceSink::current_tid() {
  std::lock_guard<std::mutex> lock(mu_);
  return tid_locked(std::this_thread::get_id());
}

void TraceSink::set_thread_name(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid_locked(std::this_thread::get_id())] = name;
}

void TraceSink::push(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = tid_locked(std::this_thread::get_id());
  events_.push_back(std::move(event));
}

void TraceSink::duration_event(const std::string& name,
                               const std::string& category,
                               std::uint64_t ts_us, std::uint64_t dur_us,
                               const RequestContext* request) {
  Event e{'X', name, category, ts_us, dur_us, 0, 0, "", 0};
  if (request) e.trace_id = request->trace_id;
  push(std::move(e));
}

void TraceSink::instant_event(const std::string& name,
                              const std::string& category,
                              const RequestContext* request) {
  Event e{'i', name, category, now_us(), 0, 0, 0, "", 0};
  if (request) e.trace_id = request->trace_id;
  push(std::move(e));
}

void TraceSink::counter_event(const std::string& name, std::int64_t value) {
  push(Event{'C', name, "", now_us(), 0, value, 0, "", 0});
}

void TraceSink::flow_begin(const std::string& name,
                           const std::string& category,
                           std::uint64_t flow_id) {
  push(Event{'s', name, category, now_us(), 0, 0, flow_id, "", 0});
}

void TraceSink::flow_end(const std::string& name, const std::string& category,
                         std::uint64_t flow_id) {
  push(Event{'f', name, category, now_us(), 0, 0, flow_id, "", 0});
}

void TraceSink::async_begin(const std::string& name,
                            const std::string& category, std::uint64_t id,
                            const RequestContext* request) {
  Event e{'b', name, category, now_us(), 0, 0, id, "", 0};
  if (request) e.trace_id = request->trace_id;
  push(std::move(e));
}

void TraceSink::async_end(const std::string& name,
                          const std::string& category, std::uint64_t id,
                          const RequestContext* request) {
  Event e{'e', name, category, now_us(), 0, 0, id, "", 0};
  if (request) e.trace_id = request->trace_id;
  push(std::move(e));
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

// ---- serialization -------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string TraceSink::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [tid, name] : thread_names_) {
    sep();
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": "
       << tid << ", \"args\": {\"name\": \"" << json_escape(name) << "\"}}";
  }
  for (const Event& e : events_) {
    sep();
    os << "  {\"name\": \"" << json_escape(e.name) << "\", \"ph\": \"" << e.ph
       << "\", \"ts\": " << e.ts << ", \"pid\": 1, \"tid\": " << e.tid;
    if (!e.category.empty()) {
      os << ", \"cat\": \"" << json_escape(e.category) << "\"";
    }
    switch (e.ph) {
      case 'X':
        os << ", \"dur\": " << e.dur;
        break;
      case 'i':
        os << ", \"s\": \"t\"";
        break;
      case 'C':
        os << ", \"args\": {\"value\": " << e.value << "}";
        break;
      case 's':
      case 'f':
      case 'b':
      case 'e':
        os << ", \"id\": " << e.id;
        if (e.ph == 'f') os << ", \"bp\": \"e\"";
        break;
      default:
        break;
    }
    if (!e.trace_id.empty() && e.ph != 'C') {
      os << ", \"args\": {\"trace_id\": \"" << json_escape(e.trace_id)
         << "\"}";
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

// ---- validation ----------------------------------------------------------
//
// A minimal recursive-descent JSON reader: just enough structure to prove
// the document parses and to expose objects/arrays/strings/numbers for the
// schema checks below. Strings decode the full RFC 8259 escape set,
// including \uXXXX (with surrogate pairs re-encoded as UTF-8); malformed
// escapes are positioned schema errors, never silently passed through.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  double number = 0;
  bool boolean = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_ && error_->empty()) {
      *error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return parse_string(&out->string);
    }
    if (c == 't' || c == 'f') return parse_literal(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  /// Four hex digits of a \uXXXX escape; fails with position on anything
  /// shorter or non-hex.
  bool parse_hex4(unsigned* out) {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return fail("truncated \\u escape");
      const char c = text_[pos_];
      unsigned digit;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
      else return fail("non-hex digit in \\u escape");
      value = value * 16 + digit;
      ++pos_;
    }
    *out = value;
    return true;
  }

  static void append_utf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("bad escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          unsigned cp;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate in \\u escape");
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            unsigned low;
            if (!parse_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("high surrogate not followed by a low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail(std::string("unknown escape \\") + esc);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    out->type = JsonValue::Type::kNumber;
    try {
      out->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return fail("malformed number");
    }
    return true;
  }

  bool parse_literal(JsonValue* out) {
    out->type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("expected true/false");
  }

  bool parse_null(JsonValue* out) {
    out->type = JsonValue::Type::kNull;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("expected null");
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool event_error(std::string* error, std::size_t index,
                 const std::string& why) {
  if (error && error->empty()) {
    *error = "traceEvents[" + std::to_string(index) + "]: " + why;
  }
  return false;
}

bool is_flow_phase(char ph) { return ph == 's' || ph == 't' || ph == 'f'; }
bool is_async_phase(char ph) { return ph == 'b' || ph == 'n' || ph == 'e'; }

bool check_event(const JsonValue& event, std::size_t index,
                 std::string* error) {
  if (event.type != JsonValue::Type::kObject) {
    return event_error(error, index, "not an object");
  }
  const JsonValue* name = event.get("name");
  if (!name || name->type != JsonValue::Type::kString) {
    return event_error(error, index, "missing string \"name\"");
  }
  const JsonValue* ph = event.get("ph");
  if (!ph || ph->type != JsonValue::Type::kString || ph->string.size() != 1) {
    return event_error(error, index, "missing one-char \"ph\"");
  }
  for (const char* key : {"pid", "tid"}) {
    const JsonValue* v = event.get(key);
    if (!v || v->type != JsonValue::Type::kNumber) {
      return event_error(error, index,
                         std::string("missing numeric \"") + key + "\"");
    }
  }
  const char phase = ph->string[0];
  if (phase != 'M') {  // metadata events are timestamp-free
    const JsonValue* ts = event.get("ts");
    if (!ts || ts->type != JsonValue::Type::kNumber) {
      return event_error(error, index, "missing numeric \"ts\"");
    }
  }
  if (phase == 'X') {
    const JsonValue* dur = event.get("dur");
    if (!dur || dur->type != JsonValue::Type::kNumber) {
      return event_error(error, index, "complete event missing \"dur\"");
    }
  }
  if (phase == 'C' || phase == 'M') {
    const JsonValue* args = event.get("args");
    if (!args || args->type != JsonValue::Type::kObject) {
      return event_error(error, index, "missing object \"args\"");
    }
  }
  if (is_flow_phase(phase) || is_async_phase(phase)) {
    const JsonValue* id = event.get("id");
    if (!id || (id->type != JsonValue::Type::kNumber &&
                id->type != JsonValue::Type::kString)) {
      return event_error(error, index,
                         std::string("phase \"") + phase +
                             "\" missing \"id\" (number or string)");
    }
    if (is_async_phase(phase)) {
      const JsonValue* cat = event.get("cat");
      if (!cat || cat->type != JsonValue::Type::kString) {
        return event_error(error, index,
                           std::string("async phase \"") + phase +
                               "\" missing string \"cat\"");
      }
    }
  }
  return true;
}

std::string event_id_string(const JsonValue& event) {
  const JsonValue* id = event.get("id");
  if (id->type == JsonValue::Type::kString) return id->string;
  std::ostringstream os;
  os << id->number;
  return os.str();
}

/// Cross-event pairing rules: flows must form s -> [t...] -> f chains per
/// id (no double-start, no end or step without a start, no id left open),
/// and async begins/ends must balance per (category, id, name).
bool check_bindings(const std::vector<JsonValue>& events,
                    std::string* error) {
  std::map<std::string, std::size_t> open_flows;  // id -> start index
  std::map<std::string, int> open_async;  // cat|id|name -> nesting depth
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events[i];
    const char phase = event.get("ph")->string[0];
    if (is_flow_phase(phase)) {
      const std::string id = event_id_string(event);
      if (phase == 's') {
        if (open_flows.count(id)) {
          return event_error(error, i,
                             "flow id " + id + " started twice without an "
                             "\"f\" in between");
        }
        open_flows.emplace(id, i);
      } else {  // 't' step or 'f' end both need a live flow
        auto it = open_flows.find(id);
        if (it == open_flows.end()) {
          return event_error(error, i,
                             std::string("flow \"") + phase + "\" with id " +
                                 id + " has no matching \"s\" start");
        }
        if (phase == 'f') open_flows.erase(it);
      }
    } else if (is_async_phase(phase)) {
      const std::string key = event.get("cat")->string + "|" +
                              event_id_string(event) + "|" +
                              event.get("name")->string;
      if (phase == 'b') {
        ++open_async[key];
      } else if (phase == 'e') {
        auto it = open_async.find(key);
        if (it == open_async.end() || it->second == 0) {
          return event_error(error, i,
                             "async end (" + key +
                                 ") has no matching \"b\" begin");
        }
        if (--it->second == 0) open_async.erase(it);
      }
    }
  }
  if (!open_flows.empty()) {
    const auto& [id, index] = *open_flows.begin();
    return event_error(error, index,
                       "flow id " + id + " started (\"s\") but never "
                       "finished (\"f\")");
  }
  if (!open_async.empty()) {
    if (error && error->empty()) {
      *error = "async span (" + open_async.begin()->first +
               ") begun but never ended";
    }
    return false;
  }
  return true;
}

}  // namespace

bool validate_trace_json(const std::string& json, std::string* error) {
  if (error) error->clear();
  JsonValue root;
  JsonParser parser(json, error);
  if (!parser.parse(&root)) return false;
  if (root.type != JsonValue::Type::kObject) {
    if (error && error->empty()) *error = "top level is not an object";
    return false;
  }
  const JsonValue* events = root.get("traceEvents");
  if (!events || events->type != JsonValue::Type::kArray) {
    if (error && error->empty()) *error = "missing \"traceEvents\" array";
    return false;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    if (!check_event(events->array[i], i, error)) return false;
  }
  return check_bindings(events->array, error);
}

}  // namespace ifsyn::obs
