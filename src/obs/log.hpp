// ifsyn/obs/log.hpp
//
// Bounded structured event log for the service path: a thread-safe ring
// of {timestamp, severity, component, message, fields} records that
// serializes to JSONL (one JSON object per line), the format the serve
// front end's --event-log flag writes.
//
// Two protections keep it safe to leave on in a long-running service:
//
//   - Bounded memory: the ring holds at most `capacity` records; older
//     records are evicted FIFO and counted (evicted()).
//   - Rate limiting: per (severity, component) key, at most
//     `max_per_window` records are accepted per `window_us` of host
//     time; excess records are counted (suppressed()) and dropped, so a
//     watchdog firing every poll on a stuck worker cannot flood the log.
//
// Records below the minimum severity are ignored for free. Timestamps
// are host microseconds since log construction — this is wall-clock
// observability surface, never report material, mirroring the
// TraceSink's stance.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ifsyn::obs {

enum class Severity { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug" / "info" / "warn" / "error".
const char* severity_name(Severity severity);

struct LogEvent {
  std::uint64_t ts_us = 0;
  Severity severity = Severity::kInfo;
  std::string component;  ///< subsystem, e.g. "serve.watchdog"
  std::string message;
  /// Extra structured context, serialized as an object in input order.
  std::vector<std::pair<std::string, std::string>> fields;
};

class EventLog {
 public:
  struct Options {
    std::size_t capacity = 1024;        ///< ring size; 0 accepts nothing
    Severity min_severity = Severity::kInfo;
    std::size_t max_per_window = 32;    ///< per (severity, component) key
    std::uint64_t window_us = 1000000;  ///< rate-limit window (1 s)
  };

  EventLog() : EventLog(Options{}) {}
  explicit EventLog(Options options)
      : options_(options), t0_(std::chrono::steady_clock::now()) {}
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Host microseconds since the log was created.
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Records an event stamped at now. Returns false if it was filtered
  /// (below min severity), suppressed (rate limit), or capacity is 0.
  bool log(Severity severity, std::string component, std::string message,
           std::vector<std::pair<std::string, std::string>> fields = {}) {
    return log_at(now_us(), severity, std::move(component),
                  std::move(message), std::move(fields));
  }

  /// As log(), with an explicit timestamp — the testing seam for the
  /// rate limiter, and what callers holding a consistent clock use.
  bool log_at(std::uint64_t ts_us, Severity severity, std::string component,
              std::string message,
              std::vector<std::pair<std::string, std::string>> fields = {});

  /// Events currently in the ring, oldest first.
  std::vector<LogEvent> recent() const;

  std::size_t size() const;
  /// Records dropped because the ring was full.
  std::uint64_t evicted() const;
  /// Records dropped by the per-key rate limit.
  std::uint64_t suppressed() const;

  /// One JSON object per line, oldest first:
  ///   {"ts_us":N,"severity":"warn","component":"...","message":"...",
  ///    "fields":{"k":"v",...}}
  /// ("fields" is omitted when empty.)
  std::string to_jsonl() const;

  /// Writes to_jsonl() to `path`. On failure returns false and, if
  /// `error` is non-null, explains why.
  bool write_jsonl(const std::string& path, std::string* error) const;

 private:
  struct Window {
    std::uint64_t start_us = 0;
    std::size_t count = 0;
  };

  const Options options_;
  const std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::deque<LogEvent> events_;
  std::map<std::pair<int, std::string>, Window> windows_;
  std::uint64_t evicted_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace ifsyn::obs
