// ifsyn/obs/quantiles.hpp
//
// Shared quantile helpers, so benches and the serve front end agree on
// one definition of "p95" instead of growing private copies.
//
// Two estimators live here:
//
//   - percentile(values, p): exact nearest-rank over raw samples. This is
//     what benches use when they hold every latency in memory.
//   - MetricsSnapshot::HistogramData::quantile(q) (see metrics.hpp):
//     sketch estimate from a log-bucketed histogram — what a running
//     service exposes, where keeping raw samples is off the table.
//
// With exponential_bounds() buckets (powers of two), the sketch returns
// the upper bound of the bucket holding the q-th observation, so the
// estimate e of a true value v satisfies v <= e < 2v — a factor-of-2
// (one-octave) error bound. Benches assert exactly this envelope when
// cross-checking the service's sketch against their exact percentiles.
#pragma once

#include <vector>

namespace ifsyn::obs {

/// Exact nearest-rank percentile of `values` (p in [0, 1]; p=0.5 is the
/// median). Takes its argument by value and sorts internally; an empty
/// input yields 0.
double percentile(std::vector<double> values, double p);

}  // namespace ifsyn::obs
