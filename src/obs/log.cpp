#include "obs/log.hpp"

#include <fstream>
#include <sstream>

namespace ifsyn::obs {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kDebug:
      return "debug";
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "info";
}

bool EventLog::log_at(
    std::uint64_t ts_us, Severity severity, std::string component,
    std::string message,
    std::vector<std::pair<std::string, std::string>> fields) {
  if (severity < options_.min_severity) return false;
  if (options_.capacity == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  Window& window =
      windows_[{static_cast<int>(severity), component}];
  if (ts_us >= window.start_us + options_.window_us) {
    window.start_us = ts_us;
    window.count = 0;
  }
  if (window.count >= options_.max_per_window) {
    ++suppressed_;
    return false;
  }
  ++window.count;
  if (events_.size() >= options_.capacity) {
    events_.pop_front();
    ++evicted_;
  }
  events_.push_back(LogEvent{ts_us, severity, std::move(component),
                             std::move(message), std::move(fields)});
  return true;
}

std::vector<LogEvent> EventLog::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t EventLog::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::uint64_t EventLog::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string EventLog::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const LogEvent& e : events_) {
    os << "{\"ts_us\":" << e.ts_us << ",\"severity\":\""
       << severity_name(e.severity) << "\",\"component\":\""
       << json_escape(e.component) << "\",\"message\":\""
       << json_escape(e.message) << "\"";
    if (!e.fields.empty()) {
      os << ",\"fields\":{";
      bool first = true;
      for (const auto& [key, value] : e.fields) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(key) << "\":\"" << json_escape(value)
           << "\"";
      }
      os << "}";
    }
    os << "}\n";
  }
  return os.str();
}

bool EventLog::write_jsonl(const std::string& path,
                           std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << to_jsonl();
  out.flush();
  if (!out) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace ifsyn::obs
