#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace ifsyn::obs {

// ---- Histogram -----------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  IFSYN_ASSERT_MSG(!bounds_.empty(), "histogram needs at least one bound");
  IFSYN_ASSERT_MSG(
      std::is_sorted(bounds_.begin(), bounds_.end()) &&
          std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
      "histogram bounds must be strictly increasing");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() → overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<std::uint64_t> exponential_bounds(std::uint64_t max) {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= max; b *= 2) {
    bounds.push_back(b);
    if (b > max / 2) break;  // avoid overflow on the doubling
  }
  if (bounds.empty()) bounds.push_back(1);
  return bounds;
}

// ---- MetricsRegistry -----------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name, Determinism det) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m{MetricKind::kCounter, det, std::make_unique<Counter>(), nullptr,
             nullptr};
    it = metrics_.emplace(name, std::move(m)).first;
  }
  IFSYN_ASSERT_MSG(it->second.kind == MetricKind::kCounter,
                   "metric " << name << " is not a counter");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Determinism det) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m{MetricKind::kGauge, det, nullptr, std::make_unique<Gauge>(),
             nullptr};
    it = metrics_.emplace(name, std::move(m)).first;
  }
  IFSYN_ASSERT_MSG(it->second.kind == MetricKind::kGauge,
                   "metric " << name << " is not a gauge");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds,
                                      Determinism det) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m{MetricKind::kHistogram, det, nullptr, nullptr,
             std::make_unique<Histogram>(std::move(bounds))};
    it = metrics_.emplace(name, std::move(m)).first;
  }
  IFSYN_ASSERT_MSG(it->second.kind == MetricKind::kHistogram,
                   "metric " << name << " is not a histogram");
  return *it->second.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.entries.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    MetricsSnapshot::Entry entry;
    entry.name = name;
    entry.kind = metric.kind;
    entry.determinism = metric.determinism;
    switch (metric.kind) {
      case MetricKind::kCounter:
        entry.counter = metric.counter->value();
        break;
      case MetricKind::kGauge:
        entry.gauge = metric.gauge->value();
        break;
      case MetricKind::kHistogram: {
        MetricsSnapshot::HistogramData data;
        data.bounds = metric.histogram->bounds();
        data.counts = metric.histogram->bucket_counts();
        data.count = metric.histogram->count();
        data.sum = metric.histogram->sum();
        entry.histogram = std::move(data);
        break;
      }
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

// ---- snapshot serialization ----------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void render_entry(std::ostringstream& os, const MetricsSnapshot::Entry& e) {
  os << "    \"" << json_escape(e.name) << "\": ";
  switch (e.kind) {
    case MetricKind::kCounter:
      os << e.counter;
      return;
    case MetricKind::kGauge:
      os << e.gauge;
      return;
    case MetricKind::kHistogram: {
      const MetricsSnapshot::HistogramData& h = *e.histogram;
      os << "{\"count\": " << h.count << ", \"sum\": " << h.sum
         << ", \"bounds\": [";
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        os << (i ? ", " : "") << h.bounds[i];
      }
      os << "], \"counts\": [";
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        os << (i ? ", " : "") << h.counts[i];
      }
      os << "]}";
      return;
    }
  }
}

void render_section(std::ostringstream& os, const MetricsSnapshot& snap,
                    Determinism det) {
  bool first = true;
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    if (e.determinism != det) continue;
    if (!first) os << ",\n";
    first = false;
    render_entry(os, e);
  }
  if (!first) os << "\n";
}

}  // namespace

double MetricsSnapshot::HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             q * static_cast<double>(count) + 0.9999999));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      if (i < bounds.size()) return static_cast<double>(bounds[i]);
      // Overflow bucket: no upper bound recorded; report one octave past
      // the last finite bound, keeping the factor-of-2 envelope for
      // observations that only just overflowed.
      return bounds.empty() ? 0.0 : 2.0 * static_cast<double>(bounds.back());
    }
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"deterministic\": {\n";
  render_section(os, *this, Determinism::kDeterministic);
  os << "  },\n  \"wall_clock\": {\n";
  render_section(os, *this, Determinism::kWallClock);
  os << "  }\n}\n";
  return os.str();
}

std::string MetricsSnapshot::deterministic_json() const {
  std::ostringstream os;
  os << "{\n";
  render_section(os, *this, Determinism::kDeterministic);
  os << "}\n";
  return os.str();
}

std::string MetricsSnapshot::deterministic_markdown() const {
  std::ostringstream os;
  bool any = false;
  for (const Entry& e : entries) {
    if (e.determinism != Determinism::kDeterministic) continue;
    if (!any) {
      os << "| metric | value |\n|---|---|\n";
      any = true;
    }
    os << "| " << e.name << " | ";
    switch (e.kind) {
      case MetricKind::kCounter:
        os << e.counter;
        break;
      case MetricKind::kGauge:
        os << e.gauge;
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = *e.histogram;
        os << "count " << h.count << ", sum " << h.sum;
        // The highest non-empty bucket bounds the max observation.
        for (std::size_t i = h.counts.size(); i-- > 0;) {
          if (h.counts[i] == 0) continue;
          if (i < h.bounds.size()) {
            os << ", max bucket <= " << h.bounds[i];
          } else if (!h.bounds.empty()) {
            os << ", max bucket > " << h.bounds.back();
          }
          break;
        }
        break;
      }
    }
    os << " |\n";
  }
  return os.str();
}

namespace {

/// "serve.queue.depth" -> "ifsyn_serve_queue_depth".
std::string prometheus_name(const std::string& name) {
  std::string out = "ifsyn_";
  for (char c : name) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    out += word ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus_text() const {
  std::ostringstream os;
  for (const Entry& e : entries) {
    const std::string name = prometheus_name(e.name);
    switch (e.kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << name << "_total counter\n"
           << name << "_total " << e.counter << "\n";
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << e.gauge << "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = *e.histogram;
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += i < h.counts.size() ? h.counts[i] : 0;
          os << name << "_bucket{le=\"" << h.bounds[i] << "\"} "
             << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
           << name << "_sum " << h.sum << "\n"
           << name << "_count " << h.count << "\n";
        if (h.count > 0) {
          os << "# TYPE " << name << "_summary summary\n";
          for (const double q : {0.5, 0.95, 0.99}) {
            std::ostringstream label;
            label << q;
            os << name << "_summary{quantile=\"" << label.str() << "\"} "
               << static_cast<std::uint64_t>(h.quantile(q)) << "\n";
          }
        }
        break;
      }
    }
  }
  return os.str();
}

}  // namespace ifsyn::obs
