// ifsyn/obs/trace_sink.hpp
//
// Structured event sink serializing to the Chrome/Perfetto `trace_event`
// JSON format, so a whole run — per-thread work-queue spans, per-point
// validation spans, fresh estimations as instant events — can be opened in
// chrome://tracing or ui.perfetto.dev.
//
// Schema emitted (the "JSON Object Format" of the trace-event spec):
//
//   { "traceEvents": [
//       {"name": "...", "cat": "...", "ph": "X", "ts": µs, "dur": µs,
//        "pid": 1, "tid": N},                         // complete span
//       {"name": "...", "cat": "...", "ph": "i", "ts": µs, "s": "t",
//        "pid": 1, "tid": N},                         // instant event
//       {"name": "...", "ph": "C", "ts": µs, "pid": 1, "tid": N,
//        "args": {"value": V}},                       // counter track
//       {"name": "thread_name", "ph": "M", "pid": 1, "tid": N,
//        "args": {"name": "..."}}                     // thread metadata
//     ],
//     "displayTimeUnit": "ms" }
//
// Timestamps are host microseconds since sink construction (Chrome traces
// are wall-clock artifacts by nature; deterministic numbers belong in the
// MetricsRegistry instead). Thread ids are small integers assigned in
// registration order; name a thread's track with set_thread_name.
//
// Thread safety: all recording methods may be called concurrently; events
// append under one mutex. Recording is intended for opt-in runs (a CLI
// --chrome-trace flag), not the always-on hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ifsyn::obs {

class TraceSink {
 public:
  TraceSink() : t0_(std::chrono::steady_clock::now()) {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Host microseconds since the sink was created.
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Small integer id for the calling thread (assigned on first use).
  int current_tid();
  /// Names the calling thread's track in the trace viewer.
  void set_thread_name(const std::string& name);

  /// Complete span ("ph":"X") on the calling thread's track.
  void duration_event(const std::string& name, const std::string& category,
                      std::uint64_t ts_us, std::uint64_t dur_us);
  /// Thread-scoped instant event ("ph":"i") at now.
  void instant_event(const std::string& name, const std::string& category);
  /// Counter-track sample ("ph":"C") at now.
  void counter_event(const std::string& name, std::int64_t value);

  std::size_t event_count() const;

  /// The full JSON document (see file comment).
  std::string to_json() const;

 private:
  struct Event {
    char ph;  // 'X', 'i', 'C'
    std::string name;
    std::string category;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;    // 'X' only
    std::int64_t value = 0;   // 'C' only
    int tid = 0;
  };

  int tid_locked(std::thread::id id);

  const std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> tids_;
  std::map<int, std::string> thread_names_;
};

/// Validates that `json` is a syntactically well-formed trace-event
/// document Perfetto will load: a top-level object with a "traceEvents"
/// array whose elements carry the per-phase required keys ("name", "ph",
/// "pid", "tid", and "ts"/"dur"/"args" where the phase demands them).
/// On failure returns false and, if `error` is non-null, explains why.
bool validate_trace_json(const std::string& json, std::string* error);

}  // namespace ifsyn::obs
