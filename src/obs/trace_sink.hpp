// ifsyn/obs/trace_sink.hpp
//
// Structured event sink serializing to the Chrome/Perfetto `trace_event`
// JSON format, so a whole run — per-thread work-queue spans, per-point
// validation spans, fresh estimations as instant events, and whole
// service requests hopping from the submitter thread to a worker — can be
// opened in chrome://tracing or ui.perfetto.dev.
//
// Schema emitted (the "JSON Object Format" of the trace-event spec):
//
//   { "traceEvents": [
//       {"name": "...", "cat": "...", "ph": "X", "ts": µs, "dur": µs,
//        "pid": 1, "tid": N},                         // complete span
//       {"name": "...", "cat": "...", "ph": "i", "ts": µs, "s": "t",
//        "pid": 1, "tid": N},                         // instant event
//       {"name": "...", "ph": "C", "ts": µs, "pid": 1, "tid": N,
//        "args": {"value": V}},                       // counter track
//       {"name": "...", "cat": "...", "ph": "s", "id": F, ...},
//       {"name": "...", "cat": "...", "ph": "f", "bp": "e", "id": F, ...},
//                                  // flow arrow: start -> binding end
//       {"name": "...", "cat": "...", "ph": "b"/"e", "id": A, ...},
//                                  // async span begin/end (cross-thread)
//       {"name": "thread_name", "ph": "M", "pid": 1, "tid": N,
//        "args": {"name": "..."}}                     // thread metadata
//     ],
//     "displayTimeUnit": "ms" }
//
// Flow events ("s"/"f") draw an arrow from one slice to another — the
// serve front end uses one flow per request to link the submitter
// thread's admission slice to the worker thread's execute slice. Async
// events ("b"/"e") describe a span that is not bound to one thread — one
// per request covers submit -> respond. Both are matched by "id" (flows
// globally, async spans per (category, id, name) per the spec).
//
// Request attribution: events recorded with a RequestContext carry
// {"args": {"trace_id": "..."}} so every phase span inside an engine run
// can be grepped back to the owning request in a service-wide trace.
//
// Timestamps are host microseconds since sink construction (Chrome traces
// are wall-clock artifacts by nature; deterministic numbers belong in the
// MetricsRegistry instead). Thread ids are small integers assigned in
// registration order; name a thread's track with set_thread_name.
//
// Thread safety: all recording methods may be called concurrently; events
// append under one mutex. Recording is intended for opt-in runs (a CLI
// --chrome-trace / serve --trace flag), not the always-on hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ifsyn::obs {

/// Request-scoped identity threaded (by pointer, inside ObsContext)
/// through the engine entry points, so phase spans recorded on a shared
/// service-wide sink attach to the owning request. `trace_id` is the
/// stable id stamped at admission; `flow_id` is the numeric id binding
/// the request's flow events. Both empty/zero = no attribution.
struct RequestContext {
  std::string trace_id;
  std::uint64_t flow_id = 0;
};

class TraceSink {
 public:
  TraceSink() : t0_(std::chrono::steady_clock::now()) {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Host microseconds since the sink was created.
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Small integer id for the calling thread (assigned on first use).
  int current_tid();
  /// Names the calling thread's track in the trace viewer.
  void set_thread_name(const std::string& name);

  /// Complete span ("ph":"X") on the calling thread's track. A non-null
  /// `request` tags the event with its trace_id in "args".
  void duration_event(const std::string& name, const std::string& category,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      const RequestContext* request = nullptr);
  /// Thread-scoped instant event ("ph":"i") at now.
  void instant_event(const std::string& name, const std::string& category,
                     const RequestContext* request = nullptr);
  /// Counter-track sample ("ph":"C") at now.
  void counter_event(const std::string& name, std::int64_t value);

  /// Flow arrow start ("ph":"s") at now on the calling thread. The arrow
  /// lands wherever flow_end is later called with the same id.
  void flow_begin(const std::string& name, const std::string& category,
                  std::uint64_t flow_id);
  /// Flow arrow end ("ph":"f", "bp":"e") at now: binds to the enclosing
  /// slice on the calling thread, so call it inside the receiving span.
  void flow_end(const std::string& name, const std::string& category,
                std::uint64_t flow_id);

  /// Async span begin/end ("ph":"b"/"e"): a span matched by
  /// (category, id, name) rather than pinned to one thread — the request
  /// lifetime from submit to respond. `request` tags args as above.
  void async_begin(const std::string& name, const std::string& category,
                   std::uint64_t id, const RequestContext* request = nullptr);
  void async_end(const std::string& name, const std::string& category,
                 std::uint64_t id, const RequestContext* request = nullptr);

  std::size_t event_count() const;

  /// The full JSON document (see file comment).
  std::string to_json() const;

 private:
  struct Event {
    char ph;  // 'X', 'i', 'C', 's', 'f', 'b', 'e'
    std::string name;
    std::string category;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;    // 'X' only
    std::int64_t value = 0;   // 'C' only
    std::uint64_t id = 0;     // 's'/'f'/'b'/'e' only
    std::string trace_id;     // non-empty => args.trace_id
    int tid = 0;
  };

  void push(Event event);
  int tid_locked(std::thread::id id);

  const std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> tids_;
  std::map<int, std::string> thread_names_;
};

/// Validates that `json` is a syntactically well-formed trace-event
/// document Perfetto will load: a top-level object with a "traceEvents"
/// array whose elements carry the per-phase required keys ("name", "ph",
/// "pid", "tid", and "ts"/"dur"/"args" where the phase demands them;
/// "id" for flow and async phases). Additionally checks flow/async
/// pairing across the whole document: every flow end ("f") must bind to
/// an earlier start ("s") with the same id, no flow may start twice or
/// stay open, and async begins/ends must balance per (category, id,
/// name). On failure returns false and, if `error` is non-null, explains
/// why. scripts/validate_trace_json.py applies the same rules to trace
/// artifacts in CI.
bool validate_trace_json(const std::string& json, std::string* error);

}  // namespace ifsyn::obs
