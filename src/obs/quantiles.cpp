#include "obs/quantiles.hpp"

#include <algorithm>
#include <cstddef>

namespace ifsyn::obs {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

}  // namespace ifsyn::obs
