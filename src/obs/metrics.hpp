// ifsyn/obs/metrics.hpp
//
// Always-on metrics for the simulation kernel, the synthesis pipeline and
// the exploration engine: named counters, gauges and fixed-bucket
// histograms collected in a MetricsRegistry and serialized to JSON.
//
// Determinism contract
// --------------------
// Every metric declares a Determinism class at registration:
//
//   - kDeterministic: the value is a pure function of the input system and
//     options — typically derived from *simulated* time or from counts of
//     work items. Deterministic values are byte-identical across explorer
//     thread counts, like the engine's reports (the integration test
//     asserts this at 1/2/4/8 threads). Instrumented code may update them
//     from several threads because every update is an order-independent
//     accumulation (sum, bucket count) over a thread-count-invariant set
//     of events.
//   - kWallClock: the value depends on the host clock or on scheduling
//     (phase durations, per-worker busy time) and legitimately varies run
//     to run.
//
// Snapshots keep the two classes apart so reports can embed the
// deterministic section verbatim without breaking their own byte-identity
// guarantee.
//
// Cost: counter/gauge updates are one relaxed atomic RMW; histogram
// observation is a branchless-ish bucket search plus two RMWs. All are
// cheap enough to leave enabled in the sim hot path; the kernel
// additionally batches its per-event counts in plain integers and flushes
// once per run (see sim/kernel.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ifsyn::obs {

enum class Determinism {
  kDeterministic,  ///< pure function of inputs; identical across threads
  kWallClock,      ///< host-time or schedule dependent
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotone counter. All operations are relaxed atomics: totals are exact,
/// ordering between distinct counters is not promised.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed value (queue depths, configuration echoes).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over unsigned integer observations (simulated
/// cycles, microseconds). Bucket i counts observations <= bounds[i]; one
/// overflow bucket counts the rest.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value);

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Exponential bucket bounds 1, 2, 4, ... up to `max` (inclusive) — the
/// default shape for cycle- and latency-valued histograms.
std::vector<std::uint64_t> exponential_bounds(std::uint64_t max);

/// Point-in-time copy of one registry, ordered by metric name.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1, overflow last
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Sketch quantile (q in [0, 1]): the upper bound of the bucket
    /// holding the ceil(q * count)-th observation. With
    /// exponential_bounds() buckets the estimate e of a true value v
    /// obeys v <= e < 2v (see obs/quantiles.hpp). Observations in the
    /// overflow bucket estimate as 2 * bounds.back(); an empty histogram
    /// yields 0.
    double quantile(double q) const;
  };
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    Determinism determinism = Determinism::kDeterministic;
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    std::optional<HistogramData> histogram;
  };

  std::vector<Entry> entries;  ///< sorted by name

  const Entry* find(const std::string& name) const;

  /// {"deterministic": {...}, "wall_clock": {...}} — see metrics_json.
  std::string to_json() const;
  /// Only the deterministic object — byte-identical across thread counts
  /// for the same inputs, so safe to embed in deterministic reports and to
  /// compare verbatim in tests.
  std::string deterministic_json() const;

  /// Markdown table of the deterministic entries (same byte-identity
  /// property), for the "Metrics" section of the synthesis/exploration
  /// reports. Histograms render as count/sum/max-bucket. Empty snapshot →
  /// empty string.
  std::string deterministic_markdown() const;

  /// Prometheus-style text exposition of every entry (both determinism
  /// classes — this is a service-monitoring surface, not report
  /// material). Names are prefixed with "ifsyn_" and mangled to
  /// [a-zA-Z0-9_]; histograms render as cumulative _bucket{le=...}
  /// series plus _sum and _count, counters get a _total suffix.
  /// Non-empty histograms additionally export a companion
  /// <name>_summary series with {quantile="0.5"/"0.95"/"0.99"} sketch
  /// estimates (see HistogramData::quantile). Output order follows
  /// `entries` (sorted by name), so the snapshot of a given state
  /// always serializes identically.
  std::string to_prometheus_text() const;
};

/// Thread-safe named-metric registry. Lookup by name registers on first
/// use and returns a stable reference afterwards; handles stay valid for
/// the registry's lifetime, so hot paths resolve names once and keep the
/// pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registering an existing name returns the existing metric; the kind
  /// must match (program error otherwise). The determinism class of the
  /// first registration wins.
  Counter& counter(const std::string& name,
                   Determinism det = Determinism::kDeterministic);
  Gauge& gauge(const std::string& name,
               Determinism det = Determinism::kDeterministic);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds,
                       Determinism det = Determinism::kDeterministic);

  MetricsSnapshot snapshot() const;
  std::size_t size() const;

 private:
  struct Metric {
    MetricKind kind;
    Determinism determinism;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Metric> metrics_;  // sorted => sorted snapshots
};

}  // namespace ifsyn::obs
