// ifsyn/obs/scoped_timer.hpp
//
// RAII phase timers over the metrics registry and the trace sink, plus
// ObsContext — the pair of non-owning pointers every instrumented layer
// (sim kernel, synthesis pipeline, exploration engine) accepts through its
// options struct. Both pointers are optional; a default ObsContext makes
// every instrumentation site a no-op, so observability stays zero-cost
// when unused.
//
//   obs::Span span(ctx.trace, "P3 bus generation", "synth");
//     — emits one Chrome complete event covering the scope.
//
//   obs::ScopedTimer timer(ctx, "synth.phase.p3_bus_generation_us",
//                          "P3 bus generation", "synth");
//     — same span, and additionally accumulates the elapsed host
//       microseconds into a kWallClock counter of that name.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace ifsyn::obs {

class EventLog;

/// Non-owning observability hooks, passed by value through option structs.
/// Callers own the registry/sink and keep them alive across the call.
/// `request`, when set by a service front end, attributes every span the
/// instrumented code emits to the owning request (args.trace_id in the
/// Chrome trace); engine code never reads it directly. `log` (optional,
/// rate-limited — see obs/log.hpp) carries structured warnings such as the
/// sim engine's native-to-VM fallback notices.
struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  const RequestContext* request = nullptr;
  EventLog* log = nullptr;

  bool enabled() const { return metrics != nullptr || trace != nullptr; }
};

/// Emits one complete ("ph":"X") trace event spanning the enclosing scope.
/// A null sink makes construction and destruction free of clock reads.
class Span {
 public:
  Span(TraceSink* sink, std::string name, std::string category = "",
       const RequestContext* request = nullptr)
      : sink_(sink),
        request_(request),
        name_(std::move(name)),
        category_(std::move(category)) {
    if (sink_) start_us_ = sink_->now_us();
  }
  ~Span() {
    if (sink_) {
      sink_->duration_event(name_, category_, start_us_,
                            sink_->now_us() - start_us_, request_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink* sink_;
  const RequestContext* request_;
  std::string name_;
  std::string category_;
  std::uint64_t start_us_ = 0;
};

/// Span + wall-clock accounting: accumulates the scope's elapsed host
/// microseconds into `ctx.metrics`' counter `metric_name` (registered as
/// kWallClock) and emits the same trace span as Span.
class ScopedTimer {
 public:
  ScopedTimer(const ObsContext& ctx, const std::string& metric_name,
              std::string span_name, std::string category = "")
      : trace_(ctx.trace),
        request_(ctx.request),
        counter_(ctx.metrics ? &ctx.metrics->counter(metric_name,
                                                     Determinism::kWallClock)
                             : nullptr),
        name_(std::move(span_name)),
        category_(std::move(category)) {
    if (trace_ || counter_) start_ = std::chrono::steady_clock::now();
    if (trace_) trace_start_us_ = trace_->now_us();
  }

  ~ScopedTimer() {
    if (!trace_ && !counter_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const std::uint64_t us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
    if (counter_) counter_->add(us);
    if (trace_) {
      trace_->duration_event(name_, category_, trace_start_us_, us, request_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TraceSink* trace_;
  const RequestContext* request_;
  Counter* counter_;
  std::string name_;
  std::string category_;
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t trace_start_us_ = 0;
};

}  // namespace ifsyn::obs
