// ifsyn/explore/estimation_cache.hpp
//
// Thread-safe memoization of per-group estimation results, keyed by
// (group signature, width, protocol, fixed delay). Grouping plans overlap
// heavily — the same channel set shows up in "as-grouped" and
// "single-bus", and every plan revisits every width — so the exploration
// engine would otherwise recompute identical Eq. 1 evaluations many times
// over.
//
// Each key is computed exactly once: the first thread to miss installs a
// shared future and computes the value outside the lock; concurrent
// requesters for the same key block on that future instead of duplicating
// the work. Because "who computes" never changes *what* is computed, and
// every key misses exactly once, the hit/miss counters are themselves
// deterministic across thread counts — they can appear in reports without
// breaking the engine's byte-identical-output guarantee.
//
// Hit/miss accounting is registry-backed (obs::Counter), the same
// instrumentation idiom as the rest of the system: pass the registry's
// counters to the constructor to surface them under your chosen names, or
// default-construct to use private counters nobody else sees.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "spec/system.hpp"

namespace ifsyn::explore {

struct EstimationKey {
  std::string group_signature;  ///< GroupingPlan::group_signature
  int width = 0;
  spec::ProtocolKind protocol = spec::ProtocolKind::kFullHandshake;
  int fixed_delay_cycles = 2;

  friend bool operator==(const EstimationKey&,
                         const EstimationKey&) = default;
};

struct EstimationKeyHash {
  std::size_t operator()(const EstimationKey& key) const {
    std::size_t h = std::hash<std::string>{}(key.group_signature);
    const auto mix = [&h](std::size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::size_t>(key.width));
    mix(static_cast<std::size_t>(key.protocol));
    mix(static_cast<std::size_t>(key.fixed_delay_cycles));
    return h;
  }
};

/// What one (group, width, protocol) evaluation yields: the Eq. 1 verdict
/// plus the wire budget and the slowest accessor, everything a DesignPoint
/// aggregates from its groups.
struct GroupEstimate {
  bool feasible = false;
  double bus_rate = 0;           ///< Eq. 2
  double sum_average_rates = 0;  ///< right side of Eq. 1
  int id_bits = 0;
  int control_lines = 0;
  int total_wires = 0;  ///< width + control + id
  /// Worst execution time among the processes accessing this group's
  /// channels (each accessor pays for *all* its channels at this width).
  long long worst_accessor_clocks = 0;
  std::string worst_accessor;
};

class EstimationCache {
 public:
  /// Default: private counters. Pass registry-owned counters (which must
  /// outlive the cache) to surface hit/miss alongside other metrics.
  EstimationCache() : hits_(&own_hits_), misses_(&own_misses_) {}
  EstimationCache(obs::Counter* hits, obs::Counter* misses)
      : hits_(hits ? hits : &own_hits_),
        misses_(misses ? misses : &own_misses_) {}

  /// Returns the cached estimate for `key`, computing it via `compute` on
  /// the first request. `compute` must be pure with respect to the key.
  /// `was_hit` (optional) reports whether this lookup was served from
  /// memory — e.g. to emit a trace instant event at the call site.
  GroupEstimate get_or_compute(
      const EstimationKey& key,
      const std::function<GroupEstimate()>& compute,
      bool* was_hit = nullptr);

  /// Lookups served from memory. Deterministic (see file comment).
  std::uint64_t hits() const { return hits_->value(); }
  /// Lookups that computed: exactly one per distinct key.
  std::uint64_t misses() const { return misses_->value(); }
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<EstimationKey, std::shared_future<GroupEstimate>,
                     EstimationKeyHash>
      map_;
  obs::Counter own_hits_;
  obs::Counter own_misses_;
  obs::Counter* hits_;    // never null
  obs::Counter* misses_;  // never null
};

}  // namespace ifsyn::explore
