// ifsyn/explore/estimation_cache.hpp
//
// Thread-safe memoization of per-group estimation results, keyed by
// (scope, group signature, width, protocol, fixed delay). Grouping plans
// overlap heavily — the same channel set shows up in "as-grouped" and
// "single-bus", and every plan revisits every width — so the exploration
// engine would otherwise recompute identical Eq. 1 evaluations many times
// over.
//
// Each key is computed exactly once: the first thread to miss installs a
// shared future and computes the value outside the lock; concurrent
// requesters for the same key block on that future instead of duplicating
// the work. Because "who computes" never changes *what* is computed, and
// every key misses exactly once, the hit/miss counters are themselves
// deterministic across thread counts — they can appear in reports without
// breaking the engine's byte-identical-output guarantee.
//
// Two deployment shapes:
//
//   - Per-run (the explorer's default): unbounded, scope left empty, the
//     cache lives for one Explorer::run. Hit/miss counters stay
//     deterministic (see above).
//   - Process-wide shared store (src/serve): one cache outlives many
//     requests, keys carry a `scope` (the interned spec's content hash
//     plus an option fingerprint) so identical group signatures from
//     different specs never collide, and a capacity bounds memory: least
//     recently used entries are evicted, counted on the eviction counter.
//     Shared hit/miss counts depend on request interleaving, so they are
//     service metrics, not report material.
//
// Hit/miss accounting is registry-backed (obs::Counter), the same
// instrumentation idiom as the rest of the system: pass the registry's
// counters to the constructor to surface them under your chosen names, or
// default-construct to use private counters nobody else sees.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "spec/system.hpp"

namespace ifsyn::explore {

struct EstimationKey {
  /// Distinguishes identical group signatures from different systems in a
  /// shared store (spec content hash + option fingerprint). Empty for
  /// per-run caches, where every lookup concerns the same system.
  std::string scope;
  std::string group_signature;  ///< GroupingPlan::group_signature
  int width = 0;
  spec::ProtocolKind protocol = spec::ProtocolKind::kFullHandshake;
  int fixed_delay_cycles = 2;

  friend bool operator==(const EstimationKey&,
                         const EstimationKey&) = default;
};

struct EstimationKeyHash {
  std::size_t operator()(const EstimationKey& key) const {
    std::size_t h = std::hash<std::string>{}(key.group_signature);
    const auto mix = [&h](std::size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(std::hash<std::string>{}(key.scope));
    mix(static_cast<std::size_t>(key.width));
    mix(static_cast<std::size_t>(key.protocol));
    mix(static_cast<std::size_t>(key.fixed_delay_cycles));
    return h;
  }
};

/// What one (group, width, protocol) evaluation yields: the Eq. 1 verdict
/// plus the wire budget and the slowest accessor, everything a DesignPoint
/// aggregates from its groups.
struct GroupEstimate {
  bool feasible = false;
  double bus_rate = 0;           ///< Eq. 2
  double sum_average_rates = 0;  ///< right side of Eq. 1
  int id_bits = 0;
  int control_lines = 0;
  int total_wires = 0;  ///< width + control + id
  /// Worst execution time among the processes accessing this group's
  /// channels (each accessor pays for *all* its channels at this width).
  long long worst_accessor_clocks = 0;
  std::string worst_accessor;
};

class EstimationCache {
 public:
  /// Default: private counters, unbounded. Pass registry-owned counters
  /// (which must outlive the cache) to surface hit/miss/eviction alongside
  /// other metrics. `capacity` > 0 bounds the entry count with LRU
  /// eviction; 0 keeps the cache unbounded (the per-run shape).
  EstimationCache()
      : hits_(&own_hits_), misses_(&own_misses_),
        evictions_(&own_evictions_) {}
  EstimationCache(obs::Counter* hits, obs::Counter* misses,
                  obs::Counter* evictions = nullptr,
                  std::size_t capacity = 0)
      : capacity_(capacity),
        hits_(hits ? hits : &own_hits_),
        misses_(misses ? misses : &own_misses_),
        evictions_(evictions ? evictions : &own_evictions_) {}

  /// Returns the cached estimate for `key`, computing it via `compute` on
  /// the first request. `compute` must be pure with respect to the key.
  /// `was_hit` (optional) reports whether this lookup was served from
  /// memory — e.g. to emit a trace instant event at the call site.
  GroupEstimate get_or_compute(
      const EstimationKey& key,
      const std::function<GroupEstimate()>& compute,
      bool* was_hit = nullptr);

  /// Lookups served from memory. Deterministic for a per-run cache (see
  /// file comment); load-dependent for a shared store.
  std::uint64_t hits() const { return hits_->value(); }
  /// Lookups that computed: exactly one per distinct live key.
  std::uint64_t misses() const { return misses_->value(); }
  /// Entries dropped by the LRU bound (0 for unbounded caches).
  std::uint64_t evictions() const { return evictions_->value(); }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_future<GroupEstimate> future;
    std::list<EstimationKey>::iterator lru;  ///< position in lru_
    std::uint64_t gen = 0;  ///< installation id, for the exception path
  };

  using Map = std::unordered_map<EstimationKey, Entry, EstimationKeyHash>;

  mutable std::mutex mu_;
  Map map_;
  /// Most recently used at the front. Only maintained when bounded — the
  /// per-run shape skips the list upkeep entirely.
  std::list<EstimationKey> lru_;
  std::size_t capacity_ = 0;
  std::uint64_t gen_ = 0;  ///< guarded by mu_
  obs::Counter own_hits_;
  obs::Counter own_misses_;
  obs::Counter own_evictions_;
  obs::Counter* hits_;       // never null
  obs::Counter* misses_;     // never null
  obs::Counter* evictions_;  // never null
};

}  // namespace ifsyn::explore
