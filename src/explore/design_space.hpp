// ifsyn/explore/design_space.hpp
//
// Enumeration side of design-space exploration: a DesignPoint is one
// complete implementation decision for a partitioned system — how the
// channels are grouped onto buses, how wide the shared data path is, and
// which handshake protocol moves the words. The paper evaluates such
// points one at a time (Figs. 7-8 sweep the buswidth of one grouping by
// hand); DesignSpace enumerates the whole cross product
//
//   grouping plan x protocol kind x buswidth
//
// in a fixed order so the Explorer can fan evaluation out across threads
// and still merge results deterministically (point index = enumeration
// order, always).
//
// Pruning is pluggable: a PruningPolicy may skip points that provably
// cannot be feasible. The default Eq1LowerBoundPruner uses the paper's
// Eq. 1 arithmetic: a channel's average rate AveRate(C, w) = bits / T(w)
// is smallest at w = 1 (T is largest there), so any width whose bus rate
// is below the sum of those lower bounds is dominated — it can never
// satisfy Eq. 1 — and is skipped without a full evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "estimate/performance_estimator.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::explore {

/// One way of assigning channels to buses. `bus_names[i]` names the bus
/// implementing `groups[i]`; names are stable across runs so reports and
/// refined systems are reproducible.
struct GroupingPlan {
  std::string name;  ///< "as-grouped", "single-bus", "per-accessor", ...
  std::vector<std::string> bus_names;
  std::vector<std::vector<std::string>> groups;  ///< channel names per bus

  /// Order-insensitive identity of one group, used as the memoization key
  /// prefix: the same channel set costs the same wherever it appears.
  static std::string group_signature(const std::vector<std::string>& group);
};

/// Candidate grouping plans for a system:
///   - "as-grouped": the system's existing bus groups (when present);
///   - with `alternatives`, additionally "single-bus" (all channels on one
///     bus), "per-accessor" (one bus per accessing process) and
///     "per-channel" (a dedicated bus per channel), skipping duplicates of
///     plans already listed.
std::vector<GroupingPlan> make_grouping_plans(const spec::System& system,
                                              bool alternatives);

/// One candidate implementation: plan `grouping` with every bus at
/// `width` data lines under `protocol`.
struct DesignPoint {
  std::size_t index = 0;     ///< position in enumeration order
  std::size_t grouping = 0;  ///< index into DesignSpace::groupings()
  int width = 0;
  spec::ProtocolKind protocol = spec::ProtocolKind::kFullHandshake;
  int fixed_delay_cycles = 2;
};

struct DesignSpaceOptions {
  /// Protocols to enumerate. kHardwiredPort is not explorable (it has no
  /// width dimension) and is rejected by DesignSpace::validate.
  std::vector<spec::ProtocolKind> protocols = {
      spec::ProtocolKind::kFullHandshake};
  int fixed_delay_cycles = 2;
  /// Width range; 0 = derive from the channels (1 .. largest message).
  int min_width = 0;
  int max_width = 0;
  /// Also enumerate single-bus / per-accessor / per-channel groupings.
  bool alternative_groupings = false;
};

class DesignSpace;

/// Decides, before full evaluation, that a point cannot win. Must be pure
/// (same answer for the same point regardless of evaluation order or
/// thread count) — the Explorer's determinism guarantee depends on it.
class PruningPolicy {
 public:
  virtual ~PruningPolicy() = default;
  virtual const char* name() const = 0;
  virtual bool should_skip(const DesignSpace& space,
                           const DesignPoint& point) const = 0;
};

/// The default policy described in the file comment: skip widths whose
/// bus rate undercuts the Eq. 1 demand lower bound of some group.
class Eq1LowerBoundPruner : public PruningPolicy {
 public:
  const char* name() const override { return "eq1-lower-bound"; }
  bool should_skip(const DesignSpace& space,
                   const DesignPoint& point) const override;
};

class DesignSpace {
 public:
  /// `system` must outlive the space; channel access counts must already
  /// be annotated (spec::annotate_channel_accesses).
  DesignSpace(const spec::System& system,
              const estimate::PerformanceEstimator& estimator,
              DesignSpaceOptions options);

  /// Rejects empty protocol lists, kHardwiredPort, systems without
  /// channels, and inverted width ranges.
  Status validate() const;

  const std::vector<GroupingPlan>& groupings() const { return groupings_; }
  const DesignSpaceOptions& options() const { return options_; }
  const spec::System& system() const { return system_; }
  const estimate::PerformanceEstimator& estimator() const {
    return estimator_;
  }

  /// The width search range (step 1 of Sec. 3 generalized to the whole
  /// system: 1 .. largest message any channel sends), or the explicit
  /// override from the options.
  std::pair<int, int> width_range() const;

  /// The full cross product in deterministic order: grouping-major, then
  /// protocol, then ascending width. Indices are assigned 0..N-1.
  std::vector<DesignPoint> enumerate() const;

 private:
  const spec::System& system_;
  const estimate::PerformanceEstimator& estimator_;
  DesignSpaceOptions options_;
  std::vector<GroupingPlan> groupings_;
};

}  // namespace ifsyn::explore
