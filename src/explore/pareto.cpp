#include "explore/pareto.hpp"

#include <algorithm>

namespace ifsyn::explore {

ParetoFront ParetoFront::build(std::vector<ParetoEntry> candidates) {
  // Sort by (wires, clocks, index): after this, an entry can only be
  // dominated by an earlier one, and ties collapse onto the lowest index.
  std::sort(candidates.begin(), candidates.end(),
            [](const ParetoEntry& a, const ParetoEntry& b) {
              if (a.total_wires != b.total_wires)
                return a.total_wires < b.total_wires;
              if (a.worst_case_clocks != b.worst_case_clocks)
                return a.worst_case_clocks < b.worst_case_clocks;
              return a.point_index < b.point_index;
            });

  ParetoFront front;
  long long best_clocks = 0;
  bool have_best = false;
  for (const ParetoEntry& entry : candidates) {
    // Entries arrive in ascending wire order, so `entry` survives iff it
    // strictly improves the best clock count seen so far. (Equal clocks
    // at higher wire cost = dominated; equal everything = duplicate.)
    if (have_best && entry.worst_case_clocks >= best_clocks) continue;
    best_clocks = entry.worst_case_clocks;
    have_best = true;
    front.entries_.push_back(entry);
  }
  return front;
}

const ParetoEntry* ParetoFront::knee() const {
  const ParetoEntry* best = nullptr;
  for (const ParetoEntry& entry : entries_) {
    if (!best || entry.worst_case_clocks < best->worst_case_clocks) {
      best = &entry;
    }
  }
  return best;
}

}  // namespace ifsyn::explore
