#include "explore/design_space.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "estimate/rate_model.hpp"
#include "util/assert.hpp"

namespace ifsyn::explore {

std::string GroupingPlan::group_signature(
    const std::vector<std::string>& group) {
  std::vector<std::string> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  std::string sig;
  for (const std::string& name : sorted) {
    if (!sig.empty()) sig += '+';
    sig += name;
  }
  return sig;
}

namespace {

/// Order-insensitive identity of a whole plan, for duplicate elimination.
std::string plan_signature(const GroupingPlan& plan) {
  std::vector<std::string> sigs;
  for (const auto& group : plan.groups) {
    sigs.push_back(GroupingPlan::group_signature(group));
  }
  std::sort(sigs.begin(), sigs.end());
  std::string sig;
  for (const std::string& s : sigs) {
    sig += s;
    sig += '|';
  }
  return sig;
}

}  // namespace

std::vector<GroupingPlan> make_grouping_plans(const spec::System& system,
                                              bool alternatives) {
  std::vector<GroupingPlan> plans;
  std::set<std::string> seen;

  auto add_plan = [&plans, &seen](GroupingPlan plan) {
    if (plan.groups.empty()) return;
    if (!seen.insert(plan_signature(plan)).second) return;  // duplicate
    plans.push_back(std::move(plan));
  };

  if (!system.buses().empty()) {
    GroupingPlan as_grouped;
    as_grouped.name = "as-grouped";
    for (const auto& bus : system.buses()) {
      if (bus->channel_names.empty()) continue;
      as_grouped.bus_names.push_back(bus->name);
      as_grouped.groups.push_back(bus->channel_names);
    }
    add_plan(std::move(as_grouped));
  }

  if (system.buses().empty() || alternatives) {
    GroupingPlan single;
    single.name = "single-bus";
    single.bus_names.push_back("XBUS");
    single.groups.emplace_back();
    for (const auto& ch : system.channels()) {
      single.groups.back().push_back(ch->name);
    }
    add_plan(std::move(single));
  }

  if (alternatives) {
    // One bus per accessing process, in first-channel order.
    GroupingPlan per_accessor;
    per_accessor.name = "per-accessor";
    std::map<std::string, std::size_t> accessor_group;
    for (const auto& ch : system.channels()) {
      auto [it, inserted] = accessor_group.try_emplace(
          ch->accessor, per_accessor.groups.size());
      if (inserted) {
        per_accessor.bus_names.push_back(
            "XBUS_" + std::to_string(per_accessor.groups.size()));
        per_accessor.groups.emplace_back();
      }
      per_accessor.groups[it->second].push_back(ch->name);
    }
    add_plan(std::move(per_accessor));

    GroupingPlan per_channel;
    per_channel.name = "per-channel";
    for (const auto& ch : system.channels()) {
      per_channel.bus_names.push_back(
          "XBUS_" + std::to_string(per_channel.groups.size()));
      per_channel.groups.push_back({ch->name});
    }
    add_plan(std::move(per_channel));
  }

  return plans;
}

bool Eq1LowerBoundPruner::should_skip(const DesignSpace& space,
                                      const DesignPoint& point) const {
  const GroupingPlan& plan = space.groupings()[point.grouping];
  const double rate = estimate::bus_rate(point.width, point.protocol,
                                         point.fixed_delay_cycles);
  for (const auto& group : plan.groups) {
    // Lower bound on the group's Eq. 1 demand: each channel's average
    // rate at width 1, where the accessor's execution time T(w) — the
    // denominator of AveRate — is at its maximum.
    double demand_floor = 0;
    for (const std::string& name : group) {
      const spec::Channel* ch = space.system().find_channel(name);
      IFSYN_ASSERT_MSG(ch, "unknown channel " << name);
      demand_floor += space.estimator().average_rate(
          *ch, /*width=*/1, point.protocol, point.fixed_delay_cycles);
    }
    if (rate < demand_floor) return true;
  }
  return false;
}

DesignSpace::DesignSpace(const spec::System& system,
                         const estimate::PerformanceEstimator& estimator,
                         DesignSpaceOptions options)
    : system_(system),
      estimator_(estimator),
      options_(std::move(options)),
      groupings_(
          make_grouping_plans(system, options_.alternative_groupings)) {}

Status DesignSpace::validate() const {
  if (options_.protocols.empty()) {
    return invalid_argument("design space needs at least one protocol");
  }
  for (spec::ProtocolKind kind : options_.protocols) {
    if (kind == spec::ProtocolKind::kHardwiredPort) {
      return invalid_argument(
          "hardwired ports have no width dimension to explore");
    }
  }
  if (system_.channels().empty()) {
    return failed_precondition(
        "system has no channels; partition it before exploring");
  }
  if (groupings_.empty()) {
    return failed_precondition("no grouping plan covers the channels");
  }
  const auto [lo, hi] = width_range();
  if (lo > hi) {
    return invalid_argument("empty width range [" + std::to_string(lo) +
                            ", " + std::to_string(hi) + "]");
  }
  return Status::ok();
}

std::pair<int, int> DesignSpace::width_range() const {
  int largest_message = 1;
  for (const auto& ch : system_.channels()) {
    largest_message = std::max(largest_message, ch->message_bits());
  }
  const int lo = options_.min_width > 0 ? options_.min_width : 1;
  const int hi =
      options_.max_width > 0 ? options_.max_width : largest_message;
  return {lo, hi};
}

std::vector<DesignPoint> DesignSpace::enumerate() const {
  const auto [lo, hi] = width_range();
  std::vector<DesignPoint> points;
  for (std::size_t g = 0; g < groupings_.size(); ++g) {
    for (spec::ProtocolKind kind : options_.protocols) {
      for (int width = lo; width <= hi; ++width) {
        DesignPoint point;
        point.index = points.size();
        point.grouping = g;
        point.width = width;
        point.protocol = kind;
        point.fixed_delay_cycles = options_.fixed_delay_cycles;
        points.push_back(point);
      }
    }
  }
  return points;
}

}  // namespace ifsyn::explore
