#include "explore/report.hpp"

#include <sstream>

namespace ifsyn::explore {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

const char* protocol_short_name(spec::ProtocolKind kind) {
  switch (kind) {
    case spec::ProtocolKind::kFullHandshake: return "full";
    case spec::ProtocolKind::kHalfHandshake: return "half";
    case spec::ProtocolKind::kFixedDelay: return "fixed";
    case spec::ProtocolKind::kHardwiredPort: return "wired";
  }
  return "?";
}

void render_metrics_markdown(std::ostringstream& os,
                             const obs::MetricsSnapshot& metrics) {
  const std::string table = metrics.deterministic_markdown();
  if (table.empty()) return;
  os << "\n## Metrics\n\n";
  os << "_Deterministic metrics only (byte-identical across thread "
        "counts); wall-clock timings live in the --metrics JSON._\n\n";
  os << table;
}

}  // namespace

std::string render_exploration_markdown(const spec::System& system,
                                        const ExploreOptions& options,
                                        const ExplorationResult& result) {
  std::ostringstream os;
  os << "# Design-space exploration: " << system.name() << "\n\n";

  os << "## Space\n\n";
  os << "- channels: " << system.channels().size() << "\n";
  os << "- protocols:";
  for (spec::ProtocolKind kind : options.space.protocols) {
    os << " " << protocol_short_name(kind);
  }
  os << "\n";
  os << "- points: " << result.stats.total_points << " enumerated, "
     << result.stats.pruned_points << " pruned, "
     << result.stats.evaluated_points << " evaluated\n";
  os << "- feasible (Eq. 1): " << result.stats.feasible_points
     << "; within constraints: " << result.stats.candidate_points << "\n";
  os << "- estimation cache: " << result.stats.cache_hits << " hits, "
     << result.stats.cache_misses << " misses\n";
  if (!options.max_execution_clocks.empty()) {
    os << "- constraints:";
    for (const auto& [process, limit] : options.max_execution_clocks) {
      os << " " << process << " <= " << limit << " clk;";
    }
    os << "\n";
  }
  os << "\n";

  os << "## Pareto front (total wires vs. worst-case clocks)\n\n";
  if (result.front.empty()) {
    os << "_No feasible design point satisfies the constraints._\n";
    render_metrics_markdown(os, result.metrics);
    return os.str();
  }
  const ParetoEntry* knee = result.front.knee();
  os << "| wires | data pins | clocks | limiting process | protocol | "
        "width | grouping | validated |\n";
  os << "|---|---|---|---|---|---|---|---|\n";
  for (const ParetoEntry& entry : result.front.entries()) {
    const PointResult& point = result.result_for(entry);
    os << "| " << entry.total_wires;
    if (knee && entry.point_index == knee->point_index) {
      os << " **(knee)**";
    }
    os << " | " << point.data_pins << " | "
       << entry.worst_case_clocks << " | " << point.limiting_process
       << " | " << protocol_short_name(point.point.protocol) << " | "
       << point.point.width << " | " << point.grouping_name << " | ";
    if (!point.validated) {
      os << "-";
    } else if (!point.sim_ok) {
      os << "sim FAILED";
    } else {
      os << (point.equivalent ? "equivalent" : "NOT equivalent") << ", t="
         << point.simulated_clocks;
    }
    os << " |\n";
  }
  os << "\n";
  if (knee) {
    const PointResult& point = result.result_for(*knee);
    os << "Knee point: **" << point.data_pins
       << " pins** (grouping " << point.grouping_name << ", "
       << protocol_short_name(point.point.protocol) << " handshake, "
       << knee->total_wires << " total wires) reaches the clock minimum of "
       << knee->worst_case_clocks
       << "; wider buses buy no further speedup.\n";
  }
  render_metrics_markdown(os, result.metrics);
  return os.str();
}

std::string render_exploration_json(const spec::System& system,
                                    const ExploreOptions& options,
                                    const ExplorationResult& result) {
  (void)options;
  std::ostringstream os;
  os << "{\n";
  os << "  \"system\": \"" << json_escape(system.name()) << "\",\n";
  os << "  \"stats\": {"
     << "\"total\": " << result.stats.total_points
     << ", \"pruned\": " << result.stats.pruned_points
     << ", \"evaluated\": " << result.stats.evaluated_points
     << ", \"feasible\": " << result.stats.feasible_points
     << ", \"candidates\": " << result.stats.candidate_points
     << ", \"validated\": " << result.stats.validated_points
     << ", \"cache_hits\": " << result.stats.cache_hits
     << ", \"cache_misses\": " << result.stats.cache_misses << "},\n";

  // Deterministic section only — the JSON report carries the same
  // byte-identity guarantee as the markdown one.
  std::string metrics_json = result.metrics.deterministic_json();
  while (!metrics_json.empty() && metrics_json.back() == '\n') {
    metrics_json.pop_back();
  }
  os << "  \"metrics\": " << metrics_json << ",\n";

  const ParetoEntry* knee = result.front.knee();
  os << "  \"front\": [\n";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    const ParetoEntry& entry = result.front.entries()[i];
    const PointResult& point = result.result_for(entry);
    os << "    {\"wires\": " << entry.total_wires
       << ", \"data_pins\": " << point.data_pins
       << ", \"clocks\": " << entry.worst_case_clocks
       << ", \"width\": " << point.point.width << ", \"protocol\": \""
       << protocol_short_name(point.point.protocol) << "\", \"grouping\": \""
       << json_escape(point.grouping_name) << "\", \"knee\": "
       << ((knee && entry.point_index == knee->point_index) ? "true"
                                                            : "false");
    if (point.validated) {
      os << ", \"sim_ok\": " << (point.sim_ok ? "true" : "false")
         << ", \"equivalent\": " << (point.equivalent ? "true" : "false")
         << ", \"simulated_clocks\": " << point.simulated_clocks;
    }
    os << "}" << (i + 1 < result.front.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointResult& point = result.points[i];
    os << "    {\"index\": " << point.point.index << ", \"grouping\": \""
       << json_escape(point.grouping_name) << "\", \"width\": "
       << point.point.width << ", \"protocol\": \""
       << protocol_short_name(point.point.protocol) << "\", \"pruned\": "
       << (point.pruned ? "true" : "false")
       << ", \"feasible\": " << (point.feasible ? "true" : "false")
       << ", \"meets_constraints\": "
       << (point.meets_constraints ? "true" : "false");
    if (!point.pruned) {
      os << ", \"wires\": " << point.total_wires
         << ", \"clocks\": " << point.worst_case_clocks
         << ", \"limiting_process\": \""
         << json_escape(point.limiting_process) << "\"";
    }
    os << "}" << (i + 1 < result.points.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace ifsyn::explore
