// ifsyn/explore/work_queue.hpp
//
// Deterministic fan-out over an indexed work list: N worker threads pull
// indices from an atomic counter and each writes only its own result
// slot. Which thread processes which index varies run to run; *what* is
// computed for each index does not, and results are merged by index, so
// the output is identical for any thread count — the exploration engine's
// core determinism guarantee.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace ifsyn::explore {

/// Invoke `work(i)` for every i in [0, count) using up to `threads`
/// workers (1 = run inline on the caller). `work` must only touch state
/// owned by index i (typically `results[i]`) or thread-safe shared state.
inline void run_indexed(std::size_t count, int threads,
                        const std::function<void(std::size_t)>& work) {
  if (count == 0) return;
  const std::size_t workers =
      threads <= 1
          ? 1
          : std::min<std::size_t>(static_cast<std::size_t>(threads), count);
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) work(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&next, count, &work] {
    for (std::size_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      work(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(drain);
  drain();  // the caller is worker 0
  for (std::thread& t : pool) t.join();
}

}  // namespace ifsyn::explore
