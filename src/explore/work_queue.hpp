// ifsyn/explore/work_queue.hpp
//
// Deterministic fan-out over an indexed work list: N worker threads pull
// indices from an atomic counter and each writes only its own result
// slot. Which thread processes which index varies run to run; *what* is
// computed for each index does not, and results are merged by index, so
// the output is identical for any thread count — the exploration engine's
// core determinism guarantee.
//
// Observability (opt-in via WorkQueueObs): each worker's drain becomes a
// named span on its own trace track, the remaining queue depth is sampled
// onto a counter track as indices are claimed, and per-worker busy time
// accumulates into a kWallClock counter. None of this affects what `work`
// computes, so the determinism guarantee is untouched.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/scoped_timer.hpp"

namespace ifsyn::explore {

/// Optional instrumentation for one run_indexed call. `label` names the
/// worker tracks and the queue-depth counter in the trace.
struct WorkQueueObs {
  obs::TraceSink* trace = nullptr;
  /// Accumulates every worker's busy microseconds (wall clock).
  obs::Counter* busy_us = nullptr;
  const char* label = "worker";
  /// Owning request, when this run happens inside a service request —
  /// tags the drain spans with its trace id.
  const obs::RequestContext* request = nullptr;
};

/// Invoke `work(i)` for every i in [0, count) using up to `threads`
/// workers (1 = run inline on the caller). `work` must only touch state
/// owned by index i (typically `results[i]`) or thread-safe shared state.
inline void run_indexed(std::size_t count, int threads,
                        const std::function<void(std::size_t)>& work,
                        const WorkQueueObs& wq_obs = {}) {
  if (count == 0) return;
  const std::size_t workers =
      threads <= 1
          ? 1
          : std::min<std::size_t>(static_cast<std::size_t>(threads), count);

  std::atomic<std::size_t> next{0};
  auto drain = [&next, count, &work, &wq_obs](std::size_t worker) {
    const auto start = std::chrono::steady_clock::now();
    if (wq_obs.trace) {
      wq_obs.trace->set_thread_name(std::string(wq_obs.label) + " " +
                                    std::to_string(worker));
    }
    {
      obs::Span span(wq_obs.trace, std::string(wq_obs.label) + " drain",
                     "work_queue", wq_obs.request);
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        if (wq_obs.trace) {
          wq_obs.trace->counter_event(
              std::string(wq_obs.label) + " queue_depth",
              static_cast<std::int64_t>(count - std::min(i, count)));
        }
        work(i);
      }
      if (wq_obs.trace) {
        wq_obs.trace->counter_event(
            std::string(wq_obs.label) + " queue_depth", 0);
      }
    }
    if (wq_obs.busy_us) {
      wq_obs.busy_us->add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
  };

  if (workers == 1) {
    drain(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    pool.emplace_back([&drain, t] { drain(t); });
  }
  drain(0);  // the caller is worker 0
  for (std::thread& t : pool) t.join();
}

}  // namespace ifsyn::explore
