// ifsyn/explore/report.hpp
//
// Rendering of exploration results, in the same Markdown dialect as
// core/report (the synthesis report this extends) plus a JSON form for
// tooling. Both renderers iterate only in deterministic orders (point
// index, front order) and print nothing schedule- or wall-clock-derived,
// so their output is byte-identical across thread counts — the property
// the determinism test asserts.
#pragma once

#include <string>

#include "explore/explorer.hpp"

namespace ifsyn::explore {

/// Markdown document: design-space summary, stats, the Pareto front with
/// the knee flagged, and the sim-validation verdicts.
std::string render_exploration_markdown(const spec::System& system,
                                        const ExploreOptions& options,
                                        const ExplorationResult& result);

/// JSON object with the same content plus every evaluated point.
std::string render_exploration_json(const spec::System& system,
                                    const ExploreOptions& options,
                                    const ExplorationResult& result);

}  // namespace ifsyn::explore
