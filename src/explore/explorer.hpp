// ifsyn/explore/explorer.hpp
//
// The design-space exploration engine: enumerate candidate
// implementations (explore/design_space), evaluate every point with the
// analytic PerformanceEstimator across a fixed-size thread pool with
// per-group memoization (explore/estimation_cache), collect the
// (total wires, worst-case clocks) Pareto front (explore/pareto), and
// validate the top-K survivors by actually generating their protocols and
// co-simulating the refined system against the original in the
// discrete-event sim — the paper's Fig. 7/8 methodology, industrialized
// into one parallel search.
//
// Determinism guarantee: for a given system and options, every byte of
// ExplorationResult is identical regardless of `threads`. Work is fanned
// out by point index and merged in index order (explore/work_queue); the
// memo cache computes each key exactly once; pruning and top-K selection
// are pure functions of the estimates. Nothing in the result depends on
// wall-clock time or scheduling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "explore/design_space.hpp"
#include "explore/estimation_cache.hpp"
#include "explore/pareto.hpp"
#include "obs/scoped_timer.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::explore {

struct ExploreOptions {
  DesignSpaceOptions space;
  /// Fixed-size worker pool; 1 = fully sequential. Does not change any
  /// output (see file comment).
  int threads = 1;
  /// Pareto-front survivors to validate in the discrete-event simulator
  /// (ascending wire count). 0 disables validation.
  int top_k = 0;
  /// Simulation budget per validation run (cycles).
  std::uint64_t sim_max_time = 50'000'000;
  /// Serialize concurrent bus masters in the generated protocols.
  bool arbitrate = true;
  /// Per-process execution-time constraints (estimator clocks): points
  /// whose estimate exceeds a limit are excluded from the front — Fig. 7's
  /// "2000-clock constraint on CONV_R2" as a first-class input.
  std::map<std::string, long long> max_execution_clocks;
  /// Calibration, as in core::SynthesisOptions.
  std::map<std::string, long long> compute_cycles_override;
  /// Pruning policy; null = Eq1LowerBoundPruner. Share one instance to
  /// explore with a custom policy.
  std::shared_ptr<const PruningPolicy> pruning;
  /// Optional process-wide estimation store shared across runs (the serve
  /// front end's cross-request cache). The explorer still keeps its
  /// per-run cache — whose hit/miss counts stay deterministic and feed
  /// the report — and consults the shared store only on per-run misses,
  /// under keys qualified by `cache_scope`. Must outlive the run; null =
  /// no sharing (the one-shot CLI shape).
  EstimationCache* shared_cache = nullptr;
  /// Key qualifier for `shared_cache` entries: anything that changes what
  /// an estimate means for the same group signature (spec content hash,
  /// compute-cycle overrides). Ignored without a shared cache.
  std::string cache_scope;
  /// Optional instrumentation. With a registry attached, "explore.*"
  /// counters (points, cache hits, worker busy time) and the validated
  /// runs' "sim.*" metrics accumulate there; with a trace sink attached,
  /// phases and worker drains become Chrome-trace spans. When no registry
  /// is given the explorer uses a private one, so ExplorationResult::
  /// metrics is populated either way.
  obs::ObsContext obs;
};

/// Everything known about one design point after the run.
struct PointResult {
  DesignPoint point;
  std::string grouping_name;  ///< plan name, for reports
  bool pruned = false;        ///< skipped by the pruning policy
  bool feasible = false;      ///< every bus group satisfies Eq. 1
  bool meets_constraints = false;  ///< per-process clock limits hold
  int total_wires = 0;             ///< data + control + id over all buses
  int data_pins = 0;               ///< data lines only (Fig. 7's "pins")
  long long worst_case_clocks = 0;
  std::string limiting_process;  ///< process attaining worst_case_clocks

  // ---- filled for validated (top-K) points ----
  bool validated = false;
  bool sim_ok = false;        ///< refinement + simulation succeeded
  bool equivalent = false;    ///< co-simulation matched the original
  std::uint64_t simulated_clocks = 0;  ///< refined run's end-to-end time
};

/// Per-run convenience view of the "explore.*" registry metrics (the
/// registry is the source of truth; these are the deltas this run added).
/// All values are deterministic across thread counts.
struct ExplorationStats {
  std::size_t total_points = 0;
  std::size_t pruned_points = 0;
  std::size_t evaluated_points = 0;
  std::size_t feasible_points = 0;
  std::size_t candidate_points = 0;  ///< feasible and within constraints
  std::size_t validated_points = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

struct ExplorationResult {
  /// Every enumerated point, in enumeration (index) order.
  std::vector<PointResult> points;
  /// Front over the candidate points (feasible + constraints met).
  ParetoFront front;
  /// Indices of the points validated in the sim, ascending wire count.
  std::vector<std::size_t> validated;
  ExplorationStats stats;
  /// Snapshot of the metrics registry at the end of the run (the attached
  /// one, or the explorer's private registry when none was attached). The
  /// deterministic section is byte-identical across thread counts.
  obs::MetricsSnapshot metrics;

  const PointResult& result_for(const ParetoEntry& entry) const {
    return points[entry.point_index];
  }
};

class Explorer {
 public:
  /// `system` is the partitioned (and typically grouped) original; it is
  /// cloned internally and never mutated. It must outlive the explorer.
  Explorer(const spec::System& system, ExploreOptions options = {});

  Result<ExplorationResult> run() const;

 private:
  const spec::System& system_;
  ExploreOptions options_;
};

}  // namespace ifsyn::explore
