#include "explore/explorer.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <string>

#include "bus/bus_generator.hpp"
#include "core/equivalence.hpp"
#include "estimate/rate_model.hpp"
#include "explore/work_queue.hpp"
#include "partition/partitioner.hpp"
#include "protocol/id_assignment.hpp"
#include "protocol/protocol_generator.hpp"
#include "spec/analysis.hpp"
#include "util/assert.hpp"

namespace ifsyn::explore {

namespace {

/// Full estimation of one (group, width, protocol) unit — the memoized
/// computation. Deterministic: accessor iteration is name-sorted.
GroupEstimate estimate_group(const spec::System& system,
                             const estimate::PerformanceEstimator& estimator,
                             const bus::BusGenerator& generator,
                             const std::vector<std::string>& group,
                             const DesignPoint& point) {
  spec::BusGroup trial;
  trial.name = "__explore_trial";
  trial.channel_names = group;

  bus::BusGenOptions gen_options;
  gen_options.protocol = point.protocol;
  gen_options.fixed_delay_cycles = point.fixed_delay_cycles;
  const bus::WidthEvaluation eval =
      generator.evaluate_width(trial, point.width, gen_options);

  GroupEstimate est;
  est.feasible = eval.feasible;
  est.bus_rate = eval.bus_rate;
  est.sum_average_rates = eval.sum_average_rates;
  est.id_bits = protocol::id_bits_for(static_cast<int>(group.size()));
  est.control_lines =
      estimate::protocol_timing(point.protocol, point.fixed_delay_cycles)
          .control_lines;
  est.total_wires = point.width + est.control_lines + est.id_bits;

  std::set<std::string> accessors;
  for (const std::string& name : group) {
    const spec::Channel* ch = system.find_channel(name);
    IFSYN_ASSERT_MSG(ch, "unknown channel " << name);
    accessors.insert(ch->accessor);
  }
  for (const std::string& accessor : accessors) {
    const long long t = estimator.execution_time(
        accessor, point.width, point.protocol, point.fixed_delay_cycles);
    if (t > est.worst_accessor_clocks) {
      est.worst_accessor_clocks = t;
      est.worst_accessor = accessor;
    }
  }
  return est;
}

}  // namespace

Explorer::Explorer(const spec::System& system, ExploreOptions options)
    : system_(system), options_(std::move(options)) {}

Result<ExplorationResult> Explorer::run() const {
  // Work on an annotated clone; the caller's system is never touched.
  spec::System base = system_.clone(system_.name());
  IFSYN_RETURN_IF_ERROR(base.validate());
  IFSYN_RETURN_IF_ERROR(spec::annotate_channel_accesses(base));

  estimate::PerformanceEstimator estimator(base);
  for (const auto& [process, cycles] : options_.compute_cycles_override) {
    estimator.set_compute_cycles(process, cycles);
  }

  const DesignSpace space(base, estimator, options_.space);
  IFSYN_RETURN_IF_ERROR(space.validate());
  for (const auto& [process, limit] : options_.max_execution_clocks) {
    if (!base.find_process(process)) {
      return invalid_argument("constraint names unknown process " + process);
    }
    if (limit <= 0) {
      return invalid_argument("non-positive clock limit for " + process);
    }
  }

  const std::vector<DesignPoint> points = space.enumerate();
  const std::shared_ptr<const PruningPolicy> pruning =
      options_.pruning ? options_.pruning
                       : std::make_shared<Eq1LowerBoundPruner>();

  const bus::BusGenerator generator(base, estimator);

  // Metrics are always collected: into the caller's registry when one is
  // attached (so they merge with sim/synth metrics), else a private one.
  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry& reg =
      options_.obs.metrics ? *options_.obs.metrics : local_registry;
  obs::ObsContext obs{&reg, options_.obs.trace, options_.obs.request};
  obs::Counter& c_total = reg.counter("explore.points.total");
  obs::Counter& c_pruned = reg.counter("explore.points.pruned");
  obs::Counter& c_evaluated = reg.counter("explore.points.evaluated");
  obs::Counter& c_feasible = reg.counter("explore.points.feasible");
  obs::Counter& c_candidates = reg.counter("explore.points.candidates");
  obs::Counter& c_validated = reg.counter("explore.points.validated");
  obs::Counter& c_hits = reg.counter("explore.cache.hits");
  obs::Counter& c_misses = reg.counter("explore.cache.misses");
  obs::Counter& c_busy = reg.counter("explore.worker_busy_us",
                                     obs::Determinism::kWallClock);
  // The registry may be shared across runs; stats report this run's delta.
  const std::uint64_t hits0 = c_hits.value();
  const std::uint64_t misses0 = c_misses.value();
  EstimationCache cache(&c_hits, &c_misses);

  ExplorationResult out;
  out.points.resize(points.size());
  out.stats.total_points = points.size();
  c_total.add(points.size());

  const WorkQueueObs estimate_obs{options_.obs.trace, &c_busy, "estimate",
                                  options_.obs.request};
  std::optional<obs::ScopedTimer> phase_timer;
  phase_timer.emplace(obs, "explore.phase.estimate_us", "explore: estimate",
                      "explore");

  // ---- phase 1: estimate every point across the pool -------------------
  run_indexed(points.size(), options_.threads, [&](std::size_t i) {
    const DesignPoint& point = points[i];
    const GroupingPlan& plan = space.groupings()[point.grouping];
    PointResult result;
    result.point = point;
    result.grouping_name = plan.name;

    if (pruning->should_skip(space, point)) {
      result.pruned = true;
      out.points[i] = std::move(result);
      return;
    }

    result.feasible = true;
    for (const auto& group : plan.groups) {
      EstimationKey key;
      key.group_signature = GroupingPlan::group_signature(group);
      key.width = point.width;
      key.protocol = point.protocol;
      key.fixed_delay_cycles = point.fixed_delay_cycles;
      bool was_hit = false;
      const GroupEstimate est = cache.get_or_compute(
          key,
          [&] {
            // Per-run miss: consult the cross-run shared store (when one
            // is attached) before computing. The shared store's hit rate
            // depends on what other runs did, but the *value* per key
            // never does, so the run's output stays deterministic.
            if (options_.shared_cache) {
              EstimationKey shared_key = key;
              shared_key.scope = options_.cache_scope;
              return options_.shared_cache->get_or_compute(shared_key, [&] {
                return estimate_group(base, estimator, generator, group,
                                      point);
              });
            }
            return estimate_group(base, estimator, generator, group, point);
          },
          &was_hit);
      if (options_.obs.trace && !was_hit) {
        options_.obs.trace->instant_event(
            "estimate " + key.group_signature + " w" +
                std::to_string(key.width),
            "explore");
      }
      result.feasible = result.feasible && est.feasible;
      result.total_wires += est.total_wires;
      result.data_pins += point.width;
      if (est.worst_accessor_clocks > result.worst_case_clocks) {
        result.worst_case_clocks = est.worst_accessor_clocks;
        result.limiting_process = est.worst_accessor;
      }
    }

    result.meets_constraints = true;
    for (const auto& [process, limit] : options_.max_execution_clocks) {
      if (estimator.execution_time(process, point.width, point.protocol,
                                   point.fixed_delay_cycles) > limit) {
        result.meets_constraints = false;
        break;
      }
    }
    out.points[i] = std::move(result);
  }, estimate_obs);
  phase_timer.reset();

  // ---- phase 2: merge in point order, build the front ------------------
  phase_timer.emplace(obs, "explore.phase.merge_us", "explore: merge",
                      "explore");
  std::vector<ParetoEntry> candidates;
  for (const PointResult& result : out.points) {
    if (result.pruned) {
      ++out.stats.pruned_points;
      continue;
    }
    ++out.stats.evaluated_points;
    if (!result.feasible) continue;
    ++out.stats.feasible_points;
    if (!result.meets_constraints) continue;
    ++out.stats.candidate_points;
    candidates.push_back(ParetoEntry{result.point.index, result.total_wires,
                                     result.worst_case_clocks});
  }
  out.front = ParetoFront::build(std::move(candidates));
  c_pruned.add(out.stats.pruned_points);
  c_evaluated.add(out.stats.evaluated_points);
  c_feasible.add(out.stats.feasible_points);
  c_candidates.add(out.stats.candidate_points);
  out.stats.cache_hits = c_hits.value() - hits0;
  out.stats.cache_misses = c_misses.value() - misses0;
  phase_timer.reset();

  // ---- phase 3: validate the top-K survivors in the sim ----------------
  if (options_.top_k > 0) {
    phase_timer.emplace(obs, "explore.phase.validate_us",
                        "explore: validate", "explore");
    const WorkQueueObs validate_obs{options_.obs.trace, &c_busy, "validate",
                                    options_.obs.request};
    for (const ParetoEntry& entry : out.front.entries()) {
      if (out.validated.size() >=
          static_cast<std::size_t>(options_.top_k)) {
        break;
      }
      out.validated.push_back(entry.point_index);
    }
    // The original system's run is the same for every candidate, so it is
    // simulated exactly once here and shared (read-only) by the workers
    // below — previously each of the K validations re-simulated it. A
    // failed original leaves every candidate's sim_ok false, matching the
    // old per-point behavior. Uninstrumented, like check_equivalence's
    // original leg: only refined runs feed the "sim." metrics.
    std::optional<sim::SimulationRun> original_run;
    {
      obs::Span span(options_.obs.trace, "simulate original", "explore",
                     options_.obs.request);
      original_run.emplace(sim::simulate(base, options_.sim_max_time));
    }
    run_indexed(out.validated.size(), options_.threads, [&](std::size_t v) {
      PointResult& result = out.points[out.validated[v]];
      const DesignPoint& point = result.point;
      const GroupingPlan& plan = space.groupings()[point.grouping];
      result.validated = true;
      obs::Span span(options_.obs.trace,
                     "validate point " + std::to_string(point.index),
                     "explore", options_.obs.request);

      spec::System refined =
          base.clone(base.name() + "_x" + std::to_string(point.index));
      refined.clear_buses();
      for (std::size_t g = 0; g < plan.groups.size(); ++g) {
        const Status grouped = partition::group_channels(
            refined, plan.bus_names[g], plan.groups[g]);
        if (!grouped.is_ok()) return;  // sim_ok stays false
        refined.find_bus(plan.bus_names[g])->width = point.width;
      }

      protocol::ProtocolGenOptions pg_options;
      pg_options.protocol = point.protocol;
      pg_options.fixed_delay_cycles = point.fixed_delay_cycles;
      pg_options.arbitrate = options_.arbitrate;
      pg_options.obs = obs;
      protocol::ProtocolGenerator pg(pg_options);
      if (!pg.generate_all(refined).is_ok()) return;

      // The refined run simulates under the shared registry: validated
      // points' "sim.*" metrics (bus utilization, handshake latency)
      // accumulate alongside the "explore.*" ones. The event set is a
      // pure function of the point, so the sums stay deterministic.
      const Result<core::EquivalenceReport> eq = core::check_equivalence_with(
          base, *original_run, refined, options_.sim_max_time, {}, obs);
      if (!eq.is_ok()) return;
      result.sim_ok = true;
      result.equivalent = eq->equivalent;
      result.simulated_clocks = eq->refined_time;
    }, validate_obs);
    out.stats.validated_points = out.validated.size();
    c_validated.add(out.validated.size());
    phase_timer.reset();
  }

  out.metrics = reg.snapshot();
  return out;
}

}  // namespace ifsyn::explore
