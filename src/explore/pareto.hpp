// ifsyn/explore/pareto.hpp
//
// Pareto front over the exploration's two objectives, both minimized:
//
//   total wires        — the interconnect cost the paper's Sec. 3 trades
//                        against performance (Fig. 8's designer view);
//   worst-case clocks  — the slowest process's estimated execution time
//                        (the y-axis of Fig. 7).
//
// The front keeps every non-dominated candidate, sorted by ascending wire
// count (hence descending clocks). The *knee* is the narrowest point that
// reaches the global clock minimum: exactly where Fig. 7's curves go flat
// — 23 pins for the FLC, after which "the data transfer cannot be
// parallelized any further" and more wires buy nothing.
#pragma once

#include <cstddef>
#include <vector>

namespace ifsyn::explore {

/// One candidate on (or competing for) the front. `point_index` ties the
/// entry back to the exploration's full PointResult record.
struct ParetoEntry {
  std::size_t point_index = 0;
  int total_wires = 0;
  long long worst_case_clocks = 0;

  /// Strict Pareto dominance: no worse in both objectives, better in one.
  bool dominates(const ParetoEntry& other) const {
    return total_wires <= other.total_wires &&
           worst_case_clocks <= other.worst_case_clocks &&
           (total_wires < other.total_wires ||
            worst_case_clocks < other.worst_case_clocks);
  }
};

class ParetoFront {
 public:
  /// Build the front from candidates. Dominated entries are dropped; of
  /// entries tied on both objectives the lowest point_index survives
  /// (first in enumeration order — deterministic).
  static ParetoFront build(std::vector<ParetoEntry> candidates);

  /// Non-dominated entries, ascending total_wires.
  const std::vector<ParetoEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// The knee (see file comment): the entry with the minimum worst-case
  /// clocks — on a front that is unique, the last/widest entry. Null when
  /// the front is empty.
  const ParetoEntry* knee() const;

 private:
  std::vector<ParetoEntry> entries_;
};

}  // namespace ifsyn::explore
