#include "explore/estimation_cache.hpp"

namespace ifsyn::explore {

GroupEstimate EstimationCache::get_or_compute(
    const EstimationKey& key,
    const std::function<GroupEstimate()>& compute,
    bool* was_hit) {
  std::promise<GroupEstimate> promise;
  std::shared_future<GroupEstimate> future;
  bool owner = false;
  std::uint64_t my_gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      hits_->add(1);
      future = it->second.future;
      if (capacity_ > 0) {
        lru_.splice(lru_.begin(), lru_, it->second.lru);
      }
    } else {
      misses_->add(1);
      owner = true;
      future = promise.get_future().share();
      Entry entry;
      entry.future = future;
      entry.gen = my_gen = ++gen_;
      if (capacity_ > 0) {
        lru_.push_front(key);
        entry.lru = lru_.begin();
      }
      map_.emplace(key, std::move(entry));
      // Evict least-recently-used entries beyond the bound, never the key
      // just inserted. Evicting an entry whose future is still being
      // computed is safe: waiters hold shared_future copies, and a later
      // request for the evicted key simply recomputes (compute is pure).
      while (capacity_ > 0 && map_.size() > capacity_ && lru_.size() > 1) {
        map_.erase(lru_.back());
        lru_.pop_back();
        evictions_->add(1);
      }
    }
  }
  if (was_hit) *was_hit = !owner;
  if (owner) {
    // Compute outside the lock so other keys proceed in parallel; threads
    // that raced on this key block on the shared future below.
    try {
      promise.set_value(compute());
    } catch (...) {
      // Propagate the failure to every waiter (a promise abandoned without
      // a value would block them forever), then drop the poisoned entry so
      // a later attempt re-runs compute instead of rethrowing stale errors.
      promise.set_exception(std::current_exception());
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        // The entry may already be gone (LRU eviction) or belong to a
        // retry that replaced it; only erase the one this call installed.
        if (it != map_.end() && it->second.gen == my_gen) {
          if (capacity_ > 0) lru_.erase(it->second.lru);
          map_.erase(it);
        }
      }
      return future.get();  // rethrows for the owner too
    }
  }
  return future.get();
}

std::size_t EstimationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace ifsyn::explore
