#include "explore/estimation_cache.hpp"

namespace ifsyn::explore {

GroupEstimate EstimationCache::get_or_compute(
    const EstimationKey& key,
    const std::function<GroupEstimate()>& compute,
    bool* was_hit) {
  std::promise<GroupEstimate> promise;
  std::shared_future<GroupEstimate> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      hits_->add(1);
      future = it->second;
    } else {
      misses_->add(1);
      owner = true;
      future = promise.get_future().share();
      map_.emplace(key, future);
    }
  }
  if (was_hit) *was_hit = !owner;
  if (owner) {
    // Compute outside the lock so other keys proceed in parallel; threads
    // that raced on this key block on the shared future below.
    try {
      promise.set_value(compute());
    } catch (...) {
      // Propagate the failure to every waiter (a promise abandoned without
      // a value would block them forever), then drop the poisoned entry so
      // a later attempt re-runs compute instead of rethrowing stale errors.
      promise.set_exception(std::current_exception());
      {
        std::lock_guard<std::mutex> lock(mu_);
        map_.erase(key);
      }
      return future.get();  // rethrows for the owner too
    }
  }
  return future.get();
}

std::size_t EstimationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace ifsyn::explore
