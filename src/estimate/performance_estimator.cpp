#include "estimate/performance_estimator.hpp"

#include "spec/analysis.hpp"
#include "util/assert.hpp"

namespace ifsyn::estimate {

PerformanceEstimator::PerformanceEstimator(const spec::System& system)
    : system_(system) {}

void PerformanceEstimator::set_compute_cycles(const std::string& process,
                                              long long cycles) {
  IFSYN_ASSERT_MSG(cycles >= 0, "negative compute cycles");
  compute_override_[process] = cycles;
}

long long PerformanceEstimator::compute_cycles(
    const std::string& process) const {
  if (auto it = compute_override_.find(process);
      it != compute_override_.end()) {
    return it->second;
  }
  const spec::Process* proc = system_.find_process(process);
  IFSYN_ASSERT_MSG(proc, "unknown process " << process);
  // One clock per operation unit plus explicit wait-for delays: the
  // default compute model when no calibration is provided.
  return spec::op_count(proc->body) + spec::wait_cycles(proc->body);
}

std::vector<const spec::Channel*> PerformanceEstimator::channels_of(
    const std::string& process) const {
  std::vector<const spec::Channel*> out;
  for (const auto& ch : system_.channels()) {
    if (ch->accessor == process) out.push_back(ch.get());
  }
  return out;
}

long long PerformanceEstimator::bits_per_activation(
    const spec::Channel& channel) {
  return channel.accesses * static_cast<long long>(channel.message_bits());
}

long long PerformanceEstimator::execution_time(const std::string& process,
                                               int width,
                                               spec::ProtocolKind kind,
                                               int fixed_delay_cycles) const {
  long long total = compute_cycles(process);
  for (const spec::Channel* ch : channels_of(process)) {
    total += ch->accesses *
             message_transfer_cycles(*ch, width, kind, fixed_delay_cycles);
  }
  return total;
}

double PerformanceEstimator::average_rate(const spec::Channel& channel,
                                          int width, spec::ProtocolKind kind,
                                          int fixed_delay_cycles) const {
  const long long t =
      execution_time(channel.accessor, width, kind, fixed_delay_cycles);
  IFSYN_ASSERT_MSG(t > 0, "process " << channel.accessor
                                     << " has zero execution time");
  return static_cast<double>(bits_per_activation(channel)) /
         static_cast<double>(t);
}

std::vector<ChannelRates> PerformanceEstimator::channel_rates(
    const spec::BusGroup& bus, int width, spec::ProtocolKind kind,
    int fixed_delay_cycles) const {
  std::vector<ChannelRates> out;
  for (const spec::Channel* ch : system_.channels_of_bus(bus)) {
    out.push_back(
        ChannelRates{ch->name,
                     average_rate(*ch, width, kind, fixed_delay_cycles),
                     peak_rate(*ch, width, kind, fixed_delay_cycles)});
  }
  return out;
}

}  // namespace ifsyn::estimate
