// ifsyn/estimate/performance_estimator.hpp
//
// Process execution-time and channel-rate estimation, standing in for the
// paper's references [8] (channel average-rate estimation) and [10]
// (area/performance estimation from system-level specifications).
//
// Model: one activation of a process takes
//
//   T(w) = compute_cycles
//        + sum over its channels of accesses * ceil(message/w) * cyc_word
//
// where compute_cycles is derived from the process body (operation count
// plus explicit `wait for` delays) or pinned by the caller for
// calibration. The channel average rate over the process lifetime is then
//
//   AveRate(C, w) = accesses(C) * message_bits(C) / T(w)   [bits/clock]
//
// which is exactly the quantity Eq. 1 sums: the demand each channel puts
// on the shared bus.
//
// This reproduces Fig. 7's behavior from first principles: T(w) decreases
// monotonically in w and goes flat once w >= message_bits (a message fits
// in one bus word and "the data transfer cannot be parallelized any
// further").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "estimate/rate_model.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::estimate {

/// Average and peak rate of one channel at one candidate buswidth.
struct ChannelRates {
  std::string channel;
  double average = 0;  ///< bits/clock over the accessor's lifetime
  double peak = 0;     ///< bits/clock during a burst
};

class PerformanceEstimator {
 public:
  /// Binds to a system; `system` must outlive the estimator. Channel
  /// access counts must already be populated (see
  /// spec::annotate_channel_accesses).
  explicit PerformanceEstimator(const spec::System& system);

  /// Pin a process's computation time (clock cycles per activation),
  /// overriding the body-derived default. Used to calibrate case studies
  /// against published anchors.
  void set_compute_cycles(const std::string& process, long long cycles);

  /// Computation-only cycles of one activation (no communication).
  long long compute_cycles(const std::string& process) const;

  /// Estimated total execution time (clocks) of one activation when every
  /// channel of the process is implemented on a bus of width `width` with
  /// protocol `kind`. This is the y-axis of Fig. 7. `fixed_delay_cycles`
  /// only matters for kFixedDelay (see rate_model.hpp).
  long long execution_time(const std::string& process, int width,
                           spec::ProtocolKind kind,
                           int fixed_delay_cycles) const;

  /// AveRate(C, w) in bits/clock (see file comment).
  double average_rate(const spec::Channel& channel, int width,
                      spec::ProtocolKind kind, int fixed_delay_cycles) const;

  /// Average and peak rates for every channel of a bus group.
  std::vector<ChannelRates> channel_rates(const spec::BusGroup& bus,
                                          int width, spec::ProtocolKind kind,
                                          int fixed_delay_cycles) const;

  /// Total communication bits a channel moves per activation.
  static long long bits_per_activation(const spec::Channel& channel);

 private:
  /// Channels whose accessor is `process`.
  std::vector<const spec::Channel*> channels_of(
      const std::string& process) const;

  const spec::System& system_;
  std::map<std::string, long long> compute_override_;
};

}  // namespace ifsyn::estimate
