#include "estimate/rate_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ifsyn::estimate {

ProtocolTiming protocol_timing(spec::ProtocolKind kind,
                               int fixed_delay_cycles) {
  switch (kind) {
    case spec::ProtocolKind::kFullHandshake:
      return ProtocolTiming{2, 2, true};
    case spec::ProtocolKind::kHalfHandshake:
      return ProtocolTiming{1, 1, true};
    case spec::ProtocolKind::kFixedDelay:
      IFSYN_ASSERT_MSG(fixed_delay_cycles >= 1,
                       "fixed delay must be >= 1 cycle");
      return ProtocolTiming{fixed_delay_cycles, 1, true};
    case spec::ProtocolKind::kHardwiredPort:
      return ProtocolTiming{2, 2, false};
  }
  IFSYN_ASSERT(false);
  return {};
}

long long words_per_message(int message_bits, int width) {
  IFSYN_ASSERT_MSG(message_bits > 0, "message must have positive size");
  IFSYN_ASSERT_MSG(width > 0, "bus width must be positive");
  return (static_cast<long long>(message_bits) + width - 1) / width;
}

double bus_rate(int width, spec::ProtocolKind kind, int fixed_delay_cycles) {
  const ProtocolTiming timing = protocol_timing(kind, fixed_delay_cycles);
  return static_cast<double>(width) / timing.cycles_per_word;
}

double peak_rate(const spec::Channel& channel, int width,
                 spec::ProtocolKind kind, int fixed_delay_cycles) {
  const ProtocolTiming timing = protocol_timing(kind, fixed_delay_cycles);
  const int effective = std::min(width, channel.message_bits());
  return static_cast<double>(effective) / timing.cycles_per_word;
}

long long message_transfer_cycles(const spec::Channel& channel, int width,
                                  spec::ProtocolKind kind,
                                  int fixed_delay_cycles) {
  const ProtocolTiming timing = protocol_timing(kind, fixed_delay_cycles);
  return words_per_message(channel.message_bits(), width) *
         timing.cycles_per_word;
}

}  // namespace ifsyn::estimate
