// ifsyn/estimate/rate_model.hpp
//
// The timing/rate arithmetic of the paper's Sections 2-3:
//
//   Eq. 1 (feasibility):   BusRate(B) >= sum over channels of AveRate(C)
//   Eq. 2 (bus rate):      BusRate(B) = width / (cycles_per_word) bits/clock
//
// All rates are expressed in bits per clock cycle (the unit of Fig. 8);
// multiply by the clock frequency to obtain bits/second.
#pragma once

#include "spec/system.hpp"

namespace ifsyn::estimate {

/// Per-protocol timing and wire costs (paper Sec. 4 step 1).
struct ProtocolTiming {
  /// Clock cycles to move one bus word. The full handshake's two-phase
  /// rendezvous costs 2 (Eq. 2 has the divisor 2).
  int cycles_per_word = 2;
  /// Dedicated control wires (START/DONE = 2 for the full handshake).
  int control_lines = 2;
  /// Whether channels share wires and therefore need ID lines.
  bool shared_bus = true;
};

/// Timing model of each supported protocol:
///   full-handshake : 2 cycles/word, 2 control lines (START, DONE)
///   half-handshake : 1 cycle/word, 1 control line (START); receiver
///                    assumed always ready
///   fixed-delay    : `fixed_delay_cycles` cycles/word, 1 strobe line in
///                    our simulatable rendition (hardware could use 0 and
///                    count cycles; a simulation needs an observable event)
///   hardwired-port : dedicated message-wide wires per channel, 2 control
///                    lines each, no sharing and hence no ID lines
///
/// `fixed_delay_cycles` is ignored for every kind except kFixedDelay, but
/// the parameter is deliberately mandatory everywhere: an earlier version
/// defaulted it to 2 and every fixed-delay bus with a different delay was
/// silently priced at the default.
ProtocolTiming protocol_timing(spec::ProtocolKind kind,
                               int fixed_delay_cycles);

/// ceil(message_bits / width): bus words per message.
long long words_per_message(int message_bits, int width);

/// Eq. 2 generalized across protocols, in bits/clock.
double bus_rate(int width, spec::ProtocolKind kind, int fixed_delay_cycles);

/// Peak rate of a channel while it is actually transferring: bits moved
/// per clock during a burst = min(width, message) / cycles_per_word.
/// Design A of Fig. 8 pins ch2's peak at 10 bits/clock => width 20 under
/// the full handshake.
double peak_rate(const spec::Channel& channel, int width,
                 spec::ProtocolKind kind, int fixed_delay_cycles);

/// Clock cycles to move one complete message of the channel.
long long message_transfer_cycles(const spec::Channel& channel, int width,
                                  spec::ProtocolKind kind,
                                  int fixed_delay_cycles);

}  // namespace ifsyn::estimate
