#include "suite/flc.hpp"

#include "partition/partitioner.hpp"
#include "util/assert.hpp"

namespace ifsyn::suite {

using namespace spec;

namespace {

// Fixed sensor readings for the deterministic experiment.
constexpr int kTemp = 23;
constexpr int kHumid = 55;

// Membership-function table geometry: 15 triangular functions of 128
// points each = 1920 entries, the paper's InitMemberFunct size.
// Functions 0..3 fuzzify temperature for rules 0..3, functions 4..7
// fuzzify humidity, functions 10..13 shape the rule outputs.
constexpr int kFunctions = 15;
constexpr int kPoints = 128;

/// Reference model of one membership value: a triangle peaking at
/// 9*function with height 64 and slope 4 (clamped at 0).
int membership(int function, int x) {
  int d = x - 9 * function;
  if (d < 0) d = -d;
  int v = 64 - 4 * d;
  return v < 0 ? 0 : v;
}

/// IR statements computing `target := membership(f_expr, x_expr)` using
/// integer temporaries D and V (declared by the caller).
Block membership_stmts(ExprPtr f, ExprPtr x, LValue target) {
  return Block{
      assign("D", sub(std::move(x), mul(lit(9), std::move(f)))),
      if_stmt(lt(var("D"), lit(0)),
              Block{assign("D", sub(lit(0), var("D")))}),
      assign("V", sub(lit(64), mul(lit(4), var("D")))),
      if_stmt(lt(var("V"), lit(0)), Block{assign("V", lit(0))}),
      assign(std::move(target), var("V")),
  };
}

void add_trru_arrays(System& system, bool init_trru2) {
  for (int k = 0; k < 4; ++k) {
    Variable v("trru" + std::to_string(k), Type::array(Type::bits(16), 128));
    if (init_trru2 && k == 2) {
      Value init(v.type);
      for (int i = 0; i < 128; ++i) {
        init.set_at(i, BitVector::from_uint(16,
                                            static_cast<std::uint64_t>(
                                                (i * 5 + 3) % 65536)));
      }
      v.init = std::move(init);
    }
    system.add_variable(std::move(v));
  }
}

}  // namespace

System make_flc_kernel() {
  System system("flc_kernel");

  add_trru_arrays(system, /*init_trru2=*/true);
  system.add_variable(Variable("CONV2_OUT", Type::integer(32)));

  // EVAL_R3: writes all 128 entries of trru0 (the paper's channel ch1
  // statement verbatim), with 6 cycles of rule-evaluation compute per
  // entry -> 768 calibrated compute cycles.
  {
    Process p;
    p.name = "EVAL_R3";
    p.body = Block{for_stmt(
        "i", lit(0), lit(127),
        Block{
            wait_for(6),
            assign(lv_idx("trru0", var("i")), add(mul(var("i"), lit(3)),
                                                  lit(11))),
        })};
    system.add_process(std::move(p));
  }

  // CONV_R2: reads all 128 entries of trru2 (channel ch2), 4 cycles of
  // convolution compute per entry -> 512 calibrated compute cycles.
  {
    Process p;
    p.name = "CONV_R2";
    p.locals.emplace_back("ACC", Type::integer(32));
    p.body = Block{
        for_stmt("i", lit(0), lit(127),
                 Block{
                     wait_for(4),
                     assign("ACC", add(var("ACC"), aref("trru2", var("i")))),
                 }),
        assign("CONV2_OUT", var("ACC")),
    };
    system.add_process(std::move(p));
  }

  partition::PartitionOptions popt;
  popt.channel_prefix = "ch";
  popt.channel_number_base = 1;
  Status status = partition::apply_partition(
      system,
      {
          partition::ModuleAssignment{
              "CHIP1", {"EVAL_R3", "CONV_R2"}, {"CONV2_OUT"}},
          partition::ModuleAssignment{
              "CHIP2", {}, {"trru0", "trru1", "trru2", "trru3"}},
      },
      popt);
  IFSYN_ASSERT_MSG(status.is_ok(), "flc kernel partition failed: " << status);

  status = partition::group_channels(system, "B", {"ch1", "ch2"});
  IFSYN_ASSERT_MSG(status.is_ok(), "flc kernel grouping failed: " << status);
  return system;
}

System make_flc_full() {
  System system("flc");

  // ---- CHIP 2 (memory) variables ----
  system.add_variable(Variable(
      "InitMemberFunct", Type::array(Type::integer(16), kFunctions * kPoints)));
  add_trru_arrays(system, /*init_trru2=*/false);
  system.add_variable(Variable("rule1", Type::array(Type::integer(16), 3)));
  system.add_variable(Variable("rule3", Type::array(Type::integer(16), 3)));

  // ---- CHIP 1 variables ----
  system.add_variable(
      Variable("TEMP", Type::integer(16), Value::integer(kTemp, 16)));
  system.add_variable(
      Variable("HUMID", Type::integer(16), Value::integer(kHumid, 16)));
  system.add_variable(Variable("ALPHA", Type::array(Type::integer(16), 4)));
  system.add_variable(Variable("SUM", Type::array(Type::integer(32), 4)));
  system.add_variable(Variable("WSUM", Type::array(Type::integer(32), 4)));
  system.add_variable(Variable("CTRL_RAW", Type::integer(32)));
  system.add_variable(Variable("CTRL_OUT", Type::integer(32)));

  // Stage sequencing signals (the original Matsushita description would
  // have used handshakes between behaviors; a stage counter is the
  // simplest observable equivalent and survives refinement unchanged).
  {
    Signal stage;
    stage.name = "STAGE";
    stage.fields = {SignalField{"", 4}};
    system.add_signal(std::move(stage));
    Signal evd;
    evd.name = "EVD";  // EVAL_Rk done flags
    evd.fields = {SignalField{"E0", 1}, SignalField{"E1", 1},
                  SignalField{"E2", 1}, SignalField{"E3", 1}};
    system.add_signal(std::move(evd));
    Signal cvd;
    cvd.name = "CVD";  // CONV_Rk done flags
    cvd.fields = {SignalField{"C0", 1}, SignalField{"C1", 1},
                  SignalField{"C2", 1}, SignalField{"C3", 1}};
    system.add_signal(std::move(cvd));
  }

  // ---- INITIALIZE: fill the membership-function memory ----
  {
    Process p;
    p.name = "INITIALIZE";
    p.locals.emplace_back("D", Type::integer(16));
    p.locals.emplace_back("V", Type::integer(16));
    Block inner = membership_stmts(
        var("F"), var("X"),
        lv_idx("InitMemberFunct", add(mul(var("F"), lit(kPoints)), var("X"))));
    inner.insert(inner.begin(), wait_for(1));
    p.body = Block{
        for_stmt("F", lit(0), lit(kFunctions - 1),
                 Block{for_stmt("X", lit(0), lit(kPoints - 1),
                                std::move(inner))}),
        sig_assign("STAGE", "", lit(1)),
    };
    system.add_process(std::move(p));
  }

  // ---- CONVERT_FACTS: fuzzify the two inputs into rule strengths ----
  {
    Process p;
    p.name = "CONVERT_FACTS";
    p.locals.emplace_back("A", Type::integer(16));
    p.locals.emplace_back("Bv", Type::integer(16));
    p.body = Block{
        wait_until(eq(sig("STAGE"), lit(1))),
        for_stmt(
            "K", lit(0), lit(3),
            Block{
                assign("A", aref("InitMemberFunct",
                                 add(mul(var("K"), lit(kPoints)),
                                     var("TEMP")))),
                assign("Bv", aref("InitMemberFunct",
                                  add(mul(add(var("K"), lit(4)),
                                          lit(kPoints)),
                                      var("HUMID")))),
                if_stmt(lt(var("Bv"), var("A")),
                        Block{assign("A", var("Bv"))}),
                assign(lv_idx("ALPHA", var("K")), var("A")),
            }),
        sig_assign("STAGE", "", lit(2)),
    };
    system.add_process(std::move(p));
  }

  // ---- EVAL_R0..R3: clip the rule output shape at the rule strength ----
  for (int k = 0; k < 4; ++k) {
    Process p;
    p.name = "EVAL_R" + std::to_string(k);
    p.locals.emplace_back("M", Type::integer(16));
    p.body = Block{
        wait_until(eq(sig("STAGE"), lit(2))),
        for_stmt(
            "X", lit(0), lit(kPoints - 1),
            Block{
                wait_for(1),
                assign("M", aref("InitMemberFunct",
                                 add(lit((10 + k) * kPoints), var("X")))),
                if_stmt(gt(var("M"), aref("ALPHA", lit(k))),
                        Block{assign("M", aref("ALPHA", lit(k)))}),
                assign(lv_idx("trru" + std::to_string(k), var("X")),
                       var("M")),
            }),
        sig_assign("EVD", "E" + std::to_string(k), lit(1)),
    };
    system.add_process(std::move(p));
  }

  // ---- CONV_R0..R3: accumulate area and moment of each clipped rule ----
  for (int k = 0; k < 4; ++k) {
    Process p;
    p.name = "CONV_R" + std::to_string(k);
    p.locals.emplace_back("V", Type::integer(32));
    p.body = Block{
        wait_until(eq(sig("EVD", "E" + std::to_string(k)), lit(1))),
        for_stmt(
            "X", lit(0), lit(kPoints - 1),
            Block{
                wait_for(1),
                assign("V", aref("trru" + std::to_string(k), var("X"))),
                assign(lv_idx("SUM", lit(k)),
                       add(aref("SUM", lit(k)), var("V"))),
                assign(lv_idx("WSUM", lit(k)),
                       add(aref("WSUM", lit(k)), mul(var("V"), var("X")))),
            }),
        sig_assign("CVD", "C" + std::to_string(k), lit(1)),
    };
    system.add_process(std::move(p));
  }

  // ---- CENTROID: defuzzify ----
  {
    Process p;
    p.name = "CENTROID";
    p.locals.emplace_back("NUM", Type::integer(32));
    p.locals.emplace_back("DEN", Type::integer(32));
    p.body = Block{
        wait_until(land(
            land(eq(sig("CVD", "C0"), lit(1)), eq(sig("CVD", "C1"), lit(1))),
            land(eq(sig("CVD", "C2"), lit(1)),
                 eq(sig("CVD", "C3"), lit(1))))),
        for_stmt("K", lit(0), lit(3),
                 Block{
                     assign("NUM", add(var("NUM"), aref("WSUM", var("K")))),
                     assign("DEN", add(var("DEN"), aref("SUM", var("K")))),
                 }),
        if_stmt(eq(var("DEN"), lit(0)), Block{assign("CTRL_RAW", lit(0))},
                Block{assign("CTRL_RAW", div(var("NUM"), var("DEN")))}),
        sig_assign("STAGE", "", lit(3)),
    };
    system.add_process(std::move(p));
  }

  // ---- CONVERT_CTRL: scale to the actuator range ----
  {
    Process p;
    p.name = "CONVERT_CTRL";
    p.body = Block{
        wait_until(eq(sig("STAGE"), lit(3))),
        assign("CTRL_OUT", mul(var("CTRL_RAW"), lit(2))),
        // Log the rule bookkeeping the paper's memories keep (rule1 and
        // rule3 hold per-rule metadata on CHIP2).
        assign(lv_idx("rule1", lit(0)), var("CTRL_RAW")),
        assign(lv_idx("rule3", lit(0)), var("CTRL_RAW")),
    };
    system.add_process(std::move(p));
  }

  partition::PartitionOptions popt;
  popt.channel_prefix = "ch";
  popt.channel_number_base = 1;
  Status status = partition::apply_partition(
      system,
      {
          partition::ModuleAssignment{
              "CHIP1",
              {"INITIALIZE", "CONVERT_FACTS", "EVAL_R0", "EVAL_R1", "EVAL_R2",
               "EVAL_R3", "CONV_R0", "CONV_R1", "CONV_R2", "CONV_R3",
               "CENTROID", "CONVERT_CTRL"},
              {"TEMP", "HUMID", "ALPHA", "SUM", "WSUM", "CTRL_RAW",
               "CTRL_OUT"}},
          partition::ModuleAssignment{
              "CHIP2",
              {},
              {"InitMemberFunct", "trru0", "trru1", "trru2", "trru3", "rule1",
               "rule3"}},
      },
      popt);
  IFSYN_ASSERT_MSG(status.is_ok(), "flc partition failed: " << status);

  status = partition::group_all_channels(system, "B");
  IFSYN_ASSERT_MSG(status.is_ok(), "flc grouping failed: " << status);
  return system;
}

long long flc_expected_ctrl_out() {
  int alpha[4];
  for (int k = 0; k < 4; ++k) {
    const int a = membership(k, kTemp);
    const int b = membership(k + 4, kHumid);
    alpha[k] = b < a ? b : a;
  }
  long long num = 0;
  long long den = 0;
  for (int k = 0; k < 4; ++k) {
    for (int x = 0; x < kPoints; ++x) {
      int m = membership(10 + k, x);
      if (m > alpha[k]) m = alpha[k];
      den += m;
      num += static_cast<long long>(m) * x;
    }
  }
  const long long raw = den == 0 ? 0 : num / den;
  return raw * 2;
}

}  // namespace ifsyn::suite
