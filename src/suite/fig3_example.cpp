#include "suite/fig3_example.hpp"

#include "partition/partitioner.hpp"
#include "util/assert.hpp"

namespace ifsyn::suite {

using namespace spec;

System make_fig3_system(const Fig3Options& options) {
  System system("fig3");

  system.add_variable(Variable("X", Type::bits(16)));
  system.add_variable(
      Variable("MEM", Type::array(Type::bits(16), 64)));

  // behavior P (Fig. 3 left)
  {
    Process p;
    p.name = "P";
    p.locals.emplace_back("AD", Type::integer(16), Value::integer(5, 16));
    p.body = Block{
        wait_for(options.p_start_delay),
        assign("X", lit(32)),
        assign(lv_idx("MEM", var("AD")), add(var("X"), lit(7))),
    };
    system.add_process(std::move(p));
  }

  // behavior Q (Fig. 3 right)
  {
    Process q;
    q.name = "Q";
    q.locals.emplace_back("COUNT", Type::integer(16),
                          Value::integer(77, 16));
    q.body = Block{
        wait_for(options.q_start_delay),
        assign(lv_idx("MEM", lit(60)), var("COUNT")),
    };
    system.add_process(std::move(q));
  }

  // Partition per the dashed lines of Fig. 3: behaviors on their own
  // components, variables on a shared memory component.
  Status status = partition::apply_partition(
      system,
      {
          partition::ModuleAssignment{"COMP_P", {"P"}, {}},
          partition::ModuleAssignment{"COMP_MEM", {}, {"X", "MEM"}},
          partition::ModuleAssignment{"COMP_Q", {"Q"}, {}},
      });
  IFSYN_ASSERT_MSG(status.is_ok(), "fig3 partition failed: " << status);

  status = partition::group_all_channels(system, "B");
  IFSYN_ASSERT_MSG(status.is_ok(), "fig3 grouping failed: " << status);

  // The paper chooses the 8-bit bus by hand; pin it for protocol
  // generation.
  system.find_bus("B")->width = options.bus_width;
  return system;
}

}  // namespace ifsyn::suite
