#include "suite/answering_machine.hpp"

#include "partition/partitioner.hpp"
#include "util/assert.hpp"

namespace ifsyn::suite {

using namespace spec;

namespace {
constexpr int kAnnBytes = 256;
}

long long AnsweringMachineExpected::message_checksum() {
  long long sum = 0;
  for (int i = 0; i < kMsgBytes; ++i) sum += (13 * i + 7) % 256;
  return sum;
}

System make_answering_machine() {
  System system("answering_machine");

  // ---- CHIP2 (memory) ----
  {
    Variable ann("ann_mem", Type::array(Type::bits(8), kAnnBytes));
    Value init(ann.type);
    for (int i = 0; i < kAnnBytes; ++i) {
      init.set_at(i, BitVector::from_uint(8, static_cast<std::uint64_t>(
                                                 (7 * i + 1) % 256)));
    }
    ann.init = std::move(init);
    system.add_variable(std::move(ann));
  }
  system.add_variable(Variable("msg_mem", Type::array(Type::bits(8), 512)));
  system.add_variable(Variable("msg_len", Type::bits(16)));
  system.add_variable(Variable("status", Type::bits(8)));

  // ---- CHIP1 observables ----
  system.add_variable(Variable("PLAYED", Type::integer(32)));

  {
    Signal stage;
    stage.name = "AMSTAGE";
    stage.fields = {SignalField{"", 4}};
    system.add_signal(std::move(stage));
  }

  // LINE_MONITOR: count rings, then flag the answer state in the shared
  // status byte (a cross-chip scalar write).
  {
    Process p;
    p.name = "LINE_MONITOR";
    p.body = Block{
        for_stmt("R", lit(1), lit(AnsweringMachineExpected::kRings),
                 Block{wait_for(5)}),
        assign("status", lit(1)),
        sig_assign("AMSTAGE", "", lit(1)),
    };
    system.add_process(std::move(p));
  }

  // MAIN_CTRL: read the status back over the bus and start playback.
  {
    Process p;
    p.name = "MAIN_CTRL";
    p.locals.emplace_back("S", Type::bits(8));
    p.body = Block{
        wait_until(eq(sig("AMSTAGE"), lit(1))),
        assign("S", var("status")),
        if_stmt(eq(var("S"), lit(1)),
                Block{sig_assign("AMSTAGE", "", lit(2))}),
    };
    system.add_process(std::move(p));
  }

  // PLAY_ANN: stream the announcement (256 sequential byte reads).
  {
    Process p;
    p.name = "PLAY_ANN";
    p.locals.emplace_back("V", Type::integer(32));
    p.body = Block{
        wait_until(eq(sig("AMSTAGE"), lit(2))),
        for_stmt("I", lit(0), lit(kAnnBytes - 1),
                 Block{
                     wait_for(1),  // one sample period per byte
                     assign("V", aref("ann_mem", var("I"))),
                     assign("PLAYED", add(var("PLAYED"), var("V"))),
                 }),
        sig_assign("AMSTAGE", "", lit(3)),
    };
    system.add_process(std::move(p));
  }

  // RECORD_MSG: record the caller's message and its length.
  {
    Process p;
    p.name = "RECORD_MSG";
    p.body = Block{
        wait_until(eq(sig("AMSTAGE"), lit(3))),
        for_stmt("I", lit(0), lit(AnsweringMachineExpected::kMsgBytes - 1),
                 Block{
                     wait_for(1),
                     assign(lv_idx("msg_mem", var("I")),
                            mod(add(mul(lit(13), var("I")), lit(7)),
                                lit(256))),
                 }),
        assign("msg_len", lit(AnsweringMachineExpected::kMsgBytes)),
        sig_assign("AMSTAGE", "", lit(4)),
    };
    system.add_process(std::move(p));
  }

  Status status = partition::apply_partition(
      system,
      {
          partition::ModuleAssignment{
              "CHIP1",
              {"LINE_MONITOR", "MAIN_CTRL", "PLAY_ANN", "RECORD_MSG"},
              {"PLAYED"}},
          partition::ModuleAssignment{
              "CHIP2", {}, {"ann_mem", "msg_mem", "msg_len", "status"}},
      });
  IFSYN_ASSERT_MSG(status.is_ok(),
                   "answering machine partition failed: " << status);

  status = partition::group_all_channels(system, "AMBUS");
  IFSYN_ASSERT_MSG(status.is_ok(),
                   "answering machine grouping failed: " << status);
  return system;
}

}  // namespace ifsyn::suite
