// ifsyn/suite/ethernet_coprocessor.hpp
//
// The Ethernet network coprocessor case study (paper Sec. 5; like the
// answering machine, only aggregate results are published). Reconstructed
// structure:
//
//   CHIP1: RCV_FRAME, EXEC_UNIT, XMIT_FRAME
//   CHIP2 (buffer memory): rcv_buf  : array(0 to 255) of bit_vector(7..0)
//                          xmit_buf : array(0 to 255) of bit_vector(7..0)
//                          reg_file : array(0 to 15)  of bit_vector(15..0)
//
// Scenario: the receive unit deposits one 256-byte frame; the execution
// unit computes the frame checksum, complements the payload into the
// transmit buffer and records bookkeeping in the register file; the
// transmit unit streams the frame back out. Channel sizes 8d+8a and
// 16d+4a on one shared bus.
#pragma once

#include "spec/system.hpp"

namespace ifsyn::suite {

/// Partitioned + grouped (bus "EBUS"), un-synthesized system.
spec::System make_ethernet_coprocessor();

struct EthernetExpected {
  static constexpr int kFrameBytes = 256;
  static int frame_byte(int i) { return (i * 17 + 3) % 256; }
  static long long frame_checksum();     ///< reg_file(0) value
  static long long transmit_checksum();  ///< XSUM value
};

}  // namespace ifsyn::suite
