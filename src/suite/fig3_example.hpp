// ifsyn/suite/fig3_example.hpp
//
// The protocol-generation walkthrough system of the paper's Figs. 3-5:
//
//   behavior P:  X <= 32;  MEM(AD) := X + 7;     (AD local, init 5)
//   behavior Q:  MEM(60) := COUNT;               (COUNT local, init 77)
//
//   variable X   : bit_vector(15 downto 0)   -- on the memory component
//   variable MEM : array(0 to 63) of bit_vector(15 downto 0)
//
// Partitioning places P and Q on their own components and X/MEM on a
// third; channel derivation yields exactly the paper's four channels:
//   CH0: P writes X    CH1: P reads X
//   CH2: P writes MEM  CH3: Q writes MEM
// grouped into a single 8-bit bus B (the paper's designer-chosen width).
#pragma once

#include "spec/system.hpp"

namespace ifsyn::suite {

struct Fig3Options {
  /// The paper fixes the bus width at 8 bits; pin it so protocol
  /// generation reproduces Fig. 4's two-words-of-8 procedures.
  int bus_width = 8;
  /// Small settle delays inserted into P and Q so the original
  /// (pre-refinement) simulation orders Q's write after P's (the paper's
  /// figures assume an unspecified interleaving; a fixed one makes the
  /// equivalence check exact).
  int p_start_delay = 1;
  int q_start_delay = 2;
};

/// Partitioned, grouped, un-synthesized system (direct variable accesses
/// still in place). Simulate it as-is for the "original" behavior;
/// synthesize it (bus + protocol generation) for the refined behavior.
spec::System make_fig3_system(const Fig3Options& options = {});

/// Expected final state: X = 32, MEM(5) = 39, MEM(60) = 77.
struct Fig3Expected {
  static constexpr int kX = 32;
  static constexpr int kMemAt5 = 39;
  static constexpr int kMemAt60 = 77;
};

}  // namespace ifsyn::suite
