// ifsyn/suite/flc.hpp
//
// The Fuzzy Logic Controller case study (paper Sec. 5, Figs. 6-8), from
// the Matsushita example the paper cites as private communication [9].
// We reconstruct it from everything the paper states:
//
//   - two sensed inputs (temperature, humidity), four rules, one output
//     that drives the air conditioner;
//   - CHIP 1: INITIALIZE, CONVERT_FACTS, EVAL_R0..R3, CONV_R0..R3,
//     CONVERT_CTRL, CENTROID;
//   - CHIP 2 (memory): InitMemberFunct : array(1919 downto 0) of integer,
//     trru0..trru3 : array(127 downto 0) of integer,
//     rule1, rule3 : array(2 downto 0) of integer;
//   - channel ch1: EVAL_R3 writing trru0; channel ch2: CONV_R2 reading
//     trru2; each moves 16 data bits + 7 address bits; ch1 and ch2 are
//     merged into bus B.
//
// Two builders:
//
//   make_flc_kernel() -- just the bus-B experiment: EVAL_R3 and CONV_R2
//     with 128 accesses each, calibrated compute so the published anchor
//     holds (CONV_R2 crosses a 2000-clock execution-time constraint
//     between buswidths 4 and 5; Fig. 7). Drives the Fig. 7 and Fig. 8
//     reproductions.
//
//   make_flc_full() -- the whole controller: triangular membership
//     functions, rule evaluation (clipped min), convolution and centroid
//     defuzzification, with all cross-chip traffic on synthesized buses
//     and processes sequenced by a stage signal. Drives the end-to-end
//     example and the arbitration ablation.
#pragma once

#include "spec/system.hpp"

namespace ifsyn::suite {

/// Calibrated per-activation computation cycles (see DESIGN.md,
/// "Substitutions": the paper's estimator [10] produced absolute clock
/// counts we cannot recover; these constants reproduce its published
/// anchor points).
struct FlcCalibration {
  static constexpr long long kEvalR3ComputeCycles = 768;
  static constexpr long long kConvR2ComputeCycles = 512;
  /// Message size of ch1/ch2: 16 data + 7 address bits.
  static constexpr int kMessageBits = 23;
  /// The execution-time constraint the paper discusses for CONV_R2.
  static constexpr long long kConvR2MaxClocks = 2000;
};

/// Kernel system: EVAL_R3 + CONV_R2 on CHIP1; trru0..trru3 on CHIP2;
/// channels ch1 (write trru0) and ch2 (read trru2) grouped into bus "B".
/// trru2 is pre-initialized so CONV_R2 has real data to read.
spec::System make_flc_kernel();

/// Full controller; all cross-chip channels derived and grouped into one
/// bus "B". Inputs are fixed (temperature/humidity constants); after
/// simulation the defuzzified output lands in variable "CTRL_OUT".
spec::System make_flc_full();

/// The deterministic expected value of CTRL_OUT for the fixed inputs,
/// computed by the same arithmetic the spec performs (kept in one place
/// so tests cannot drift from the builder).
long long flc_expected_ctrl_out();

}  // namespace ifsyn::suite
