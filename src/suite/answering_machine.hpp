// ifsyn/suite/answering_machine.hpp
//
// The answering-machine case study (paper Sec. 5 lists it among the
// designs interface synthesis was applied to; only aggregate results are
// published). Reconstructed structure:
//
//   CHIP1 (controller): LINE_MONITOR, MAIN_CTRL, PLAY_ANN, RECORD_MSG
//   CHIP2 (memory):     ann_mem  : array(0 to 255) of bit_vector(7..0)
//                       msg_mem  : array(0 to 511) of bit_vector(7..0)
//                       msg_len  : bit_vector(15 downto 0)
//                       status   : bit_vector(7 downto 0)
//
// Scenario: the line monitor counts rings and raises the answer status;
// the controller starts the announcement playback (256 sequential reads
// of ann_mem) and then recording (192 byte writes into msg_mem plus the
// length word). Mixed message sizes (8d+8a, 8d+9a, 16d, 8d) exercise the
// generator on a non-uniform channel group.
#pragma once

#include "spec/system.hpp"

namespace ifsyn::suite {

/// Partitioned + grouped (bus "AMBUS"), un-synthesized system.
spec::System make_answering_machine();

/// Expected results for the fixed scenario.
struct AnsweringMachineExpected {
  static constexpr int kRings = 3;       ///< rings before answering
  static constexpr int kMsgBytes = 192;  ///< bytes recorded
  /// msg_mem(i) = (13*i + 7) mod 256; checksum over all recorded bytes.
  static long long message_checksum();
};

}  // namespace ifsyn::suite
