#include "suite/ethernet_coprocessor.hpp"

#include "partition/partitioner.hpp"
#include "util/assert.hpp"

namespace ifsyn::suite {

using namespace spec;

long long EthernetExpected::frame_checksum() {
  long long sum = 0;
  for (int i = 0; i < kFrameBytes; ++i) sum += frame_byte(i);
  return sum % 65536;
}

long long EthernetExpected::transmit_checksum() {
  long long sum = 0;
  for (int i = 0; i < kFrameBytes; ++i) sum += frame_byte(i) ^ 255;
  return sum;
}

System make_ethernet_coprocessor() {
  System system("ethernet_coprocessor");

  system.add_variable(
      Variable("rcv_buf", Type::array(Type::bits(8),
                                      EthernetExpected::kFrameBytes)));
  system.add_variable(
      Variable("xmit_buf", Type::array(Type::bits(8),
                                       EthernetExpected::kFrameBytes)));
  system.add_variable(Variable("reg_file", Type::array(Type::bits(16), 16)));

  system.add_variable(Variable("XSUM", Type::integer(32)));

  {
    Signal stage;
    stage.name = "ESTAGE";
    stage.fields = {SignalField{"", 4}};
    system.add_signal(std::move(stage));
  }

  // RCV_FRAME: deposit one frame, one byte per line cycle.
  {
    Process p;
    p.name = "RCV_FRAME";
    p.body = Block{
        for_stmt("I", lit(0), lit(EthernetExpected::kFrameBytes - 1),
                 Block{
                     wait_for(1),
                     assign(lv_idx("rcv_buf", var("I")),
                            mod(add(mul(var("I"), lit(17)), lit(3)),
                                lit(256))),
                 }),
        sig_assign("ESTAGE", "", lit(1)),
    };
    system.add_process(std::move(p));
  }

  // EXEC_UNIT: checksum the frame, complement it into the transmit
  // buffer, record bookkeeping registers.
  {
    Process p;
    p.name = "EXEC_UNIT";
    p.locals.emplace_back("V", Type::integer(32));
    p.locals.emplace_back("CS", Type::integer(32));
    p.body = Block{
        wait_until(eq(sig("ESTAGE"), lit(1))),
        for_stmt("I", lit(0), lit(EthernetExpected::kFrameBytes - 1),
                 Block{
                     wait_for(1),
                     assign("V", aref("rcv_buf", var("I"))),
                     assign(lv_idx("xmit_buf", var("I")),
                            bin_op(BinaryOp::kXor, var("V"), lit(255))),
                     assign("CS", add(var("CS"), var("V"))),
                 }),
        assign(lv_idx("reg_file", lit(0)), mod(var("CS"), lit(65536))),
        assign(lv_idx("reg_file", lit(1)),
               lit(EthernetExpected::kFrameBytes)),
        sig_assign("ESTAGE", "", lit(2)),
    };
    system.add_process(std::move(p));
  }

  // XMIT_FRAME: stream the processed frame back out, checking the length
  // register first.
  {
    Process p;
    p.name = "XMIT_FRAME";
    p.locals.emplace_back("LEN", Type::integer(32));
    p.body = Block{
        wait_until(eq(sig("ESTAGE"), lit(2))),
        assign("LEN", aref("reg_file", lit(1))),
        for_stmt("I", lit(0), sub(var("LEN"), lit(1)),
                 Block{
                     wait_for(1),
                     assign("XSUM", add(var("XSUM"),
                                        aref("xmit_buf", var("I")))),
                 }),
        sig_assign("ESTAGE", "", lit(3)),
    };
    system.add_process(std::move(p));
  }

  Status status = partition::apply_partition(
      system,
      {
          partition::ModuleAssignment{
              "CHIP1", {"RCV_FRAME", "EXEC_UNIT", "XMIT_FRAME"}, {"XSUM"}},
          partition::ModuleAssignment{
              "CHIP2", {}, {"rcv_buf", "xmit_buf", "reg_file"}},
      });
  IFSYN_ASSERT_MSG(status.is_ok(),
                   "ethernet coprocessor partition failed: " << status);

  status = partition::group_all_channels(system, "EBUS");
  IFSYN_ASSERT_MSG(status.is_ok(),
                   "ethernet coprocessor grouping failed: " << status);

  // XMIT_FRAME's loop bound is the LEN register, which static analysis
  // cannot resolve (it reports the 1-iteration lower bound); the designer
  // knows a frame is 256 bytes, so annotate the channel explicitly --
  // the workflow the paper's estimation reference [8] assumes.
  for (const auto& ch : system.channels()) {
    if (ch->accessor == "XMIT_FRAME" && ch->variable == "xmit_buf") {
      ch->accesses = EthernetExpected::kFrameBytes;
    }
  }
  return system;
}

}  // namespace ifsyn::suite
