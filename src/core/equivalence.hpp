// ifsyn/core/equivalence.hpp
//
// Functional-equivalence check between the original and the refined
// specification -- the operational form of the paper's claim that "the
// rened specication is simulatable and the design functionality after
// insertion of buses and communication protocols can be veried".
//
// Both systems are simulated to quiescence; equivalence holds when
//   - every one-shot process that completed in the original also
//     completes in the refined system, and
//   - every observed variable ends with the same value.
//
// Observed variables default to the variables common to both systems
// (the refined system adds none at system level, so in practice: all of
// the original's variables).
#pragma once

#include <string>
#include <vector>

#include "sim/interpreter.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::core {

struct EquivalenceReport {
  bool equivalent = false;
  std::vector<std::string> mismatches;  ///< human-readable findings
  sim::SimResult original;
  sim::SimResult refined;
  /// End-to-end simulated time of each run (communication makes the
  /// refined one slower; the ratio is the protocol's cost).
  std::uint64_t original_time = 0;
  std::uint64_t refined_time = 0;
};

/// Simulate both systems and diff final state. `observed` empty = every
/// variable present in both systems. `obs` (optional) instruments the
/// *refined* run only — its generated buses and protocols are what the
/// "sim." metrics describe; the unrefined original would dilute them.
Result<EquivalenceReport> check_equivalence(
    const spec::System& original, const spec::System& refined,
    std::uint64_t max_time = 1'000'000,
    const std::vector<std::string>& observed = {},
    const obs::ObsContext& obs = {});

/// Same check against an already-simulated original (`original_run` must
/// come from sim::simulate(original, ...) with an ok status). Callers
/// that diff many refined candidates against one original — the
/// explorer's top-K validation, a warm serve pass — pay for the original
/// run once instead of once per candidate. `original_run` is only read;
/// concurrent calls sharing one run are safe.
Result<EquivalenceReport> check_equivalence_with(
    const spec::System& original, const sim::SimulationRun& original_run,
    const spec::System& refined, std::uint64_t max_time = 1'000'000,
    const std::vector<std::string>& observed = {},
    const obs::ObsContext& obs = {});

}  // namespace ifsyn::core
