// ifsyn/core/report.hpp
//
// Human-readable synthesis report: one Markdown document collecting what
// the flow decided and why -- the channel inventory, every bus group's
// width exploration (Eq. 1 feasibility and cost per candidate), the
// generated wire budget, the co-simulation verdict, and (when a traced
// run is supplied) the measured per-channel traffic. This is the artifact
// a designer would attach to a design review; the CLI writes it with
// --report.
#pragma once

#include <optional>
#include <string>

#include "core/equivalence.hpp"
#include "core/interface_synthesizer.hpp"
#include "obs/metrics.hpp"
#include "protocol/trace_analyzer.hpp"
#include "spec/system.hpp"

namespace ifsyn::core {

struct ReportInputs {
  /// The refined system (after InterfaceSynthesizer::run).
  const spec::System* refined = nullptr;
  /// The synthesis report from the same run.
  const SynthesisReport* synthesis = nullptr;
  /// Optional co-simulation outcome.
  const EquivalenceReport* equivalence = nullptr;
  /// Optional measured traffic (protocol::analyze_trace output).
  const std::vector<protocol::BusTraffic>* traffic = nullptr;
  /// Optional metrics snapshot; only its deterministic section is
  /// rendered, so the report stays reproducible run to run.
  const obs::MetricsSnapshot* metrics = nullptr;
};

/// Render the report as Markdown. All inputs except `refined` and
/// `synthesis` are optional; sections for absent inputs are omitted.
std::string render_markdown_report(const ReportInputs& inputs);

}  // namespace ifsyn::core
