#include "core/interface_synthesizer.hpp"

#include <optional>

#include "check/checker.hpp"
#include "partition/partitioner.hpp"
#include "spec/analysis.hpp"
#include "util/assert.hpp"

namespace ifsyn::core {

InterfaceSynthesizer::InterfaceSynthesizer(SynthesisOptions options)
    : options_(std::move(options)) {}

Result<SynthesisReport> InterfaceSynthesizer::run(spec::System& system) const {
  const obs::ObsContext& obs = options_.obs;

  {
    obs::ScopedTimer t(obs, "synth.phase.p1_validate_us", "P1 validate",
                       "synth");
    IFSYN_RETURN_IF_ERROR(system.validate());
    if (system.buses().empty()) {
      return failed_precondition(
          "system has no bus groups; partition and group channels first");
    }
  }

  {
    obs::ScopedTimer t(obs, "synth.phase.p2_annotate_us", "P2 annotate",
                       "synth");
    IFSYN_RETURN_IF_ERROR(spec::annotate_channel_accesses(system));
  }

  estimate::PerformanceEstimator estimator(system);
  for (const auto& [process, cycles] : options_.compute_cycles_override) {
    estimator.set_compute_cycles(process, cycles);
  }
  bus::BusGenerator generator(system, estimator);

  // Snapshot compute cycles now: the P6 rate re-check must reproduce the
  // Eq. 1 arithmetic bus generation is about to use, and the default
  // compute model reads process bodies that P4 rewrites.
  const std::map<std::string, long long> compute_snapshot =
      check::snapshot_compute_cycles(system, options_.compute_cycles_override);

  SynthesisReport report;

  // ---- bus generation per group (widths), with optional splitting ----
  std::optional<obs::ScopedTimer> bus_gen_timer;
  bus_gen_timer.emplace(obs, "synth.phase.p3_bus_generation_us",
                        "P3 bus generation", "synth");
  // Collect names first: splitting adds new groups while we iterate.
  std::vector<std::string> bus_names;
  for (const auto& b : system.buses()) bus_names.push_back(b->name);

  for (std::size_t i = 0; i < bus_names.size(); ++i) {
    spec::BusGroup* group = system.find_bus(bus_names[i]);
    IFSYN_ASSERT(group);
    if (group->generated()) continue;  // width pinned by the caller

    if (options_.protocol == spec::ProtocolKind::kHardwiredPort) {
      // No width search: every channel keeps dedicated message-wide
      // wires; protocol generation computes the totals. This is the
      // "no merging" baseline for interconnect comparisons.
      BusReport bus_report;
      bus_report.bus = group->name;
      for (const spec::Channel* ch : system.channels_of_bus(*group)) {
        bus_report.generation.total_channel_bits += ch->message_bits();
      }
      report.buses.push_back(std::move(bus_report));
      continue;
    }

    bus::BusGenOptions options;
    options.protocol = options_.protocol;
    options.fixed_delay_cycles = options_.fixed_delay_cycles;
    if (auto it = options_.constraints.find(group->name);
        it != options_.constraints.end()) {
      options.constraints = it->second;
    }

    Result<bus::BusGenResult> result = generator.generate(*group, options);
    if (!result.is_ok()) {
      if (result.status().code() != StatusCode::kInfeasible ||
          !options_.auto_split_infeasible ||
          group->channel_names.size() <= 1) {
        return result.status();
      }
      // Sec. 3 step 5: "One solution ... would be to split the group of
      // channels further to be implemented by more than one bus."
      Result<std::vector<std::vector<std::string>>> split =
          generator.split_group(*group, options);
      if (!split.is_ok()) return split.status();
      IFSYN_ASSERT_MSG(split.value().size() > 1,
                       "split of infeasible group produced one group");
      if (obs.metrics) obs.metrics->counter("synth.groups_split").add(1);

      // Re-point the original group at the first subgroup and create new
      // groups for the rest; all get queued for generation.
      const auto& subgroups = split.value();
      group->channel_names = subgroups[0];
      for (std::size_t g = 1; g < subgroups.size(); ++g) {
        spec::BusGroup extra;
        extra.name = group->name + "_split" + std::to_string(g);
        extra.channel_names = subgroups[g];
        report.split_buses.push_back(extra.name);
        bus_names.push_back(extra.name);
        spec::BusGroup& added = system.add_bus(extra);
        (void)added;
      }
      // Fix channel->bus back-pointers for the re-pointed original group.
      for (const auto& name : group->channel_names) {
        system.find_channel(name)->bus = group->name;
      }
      --i;  // regenerate the (now smaller) original group
      continue;
    }

    group->width = result.value().selected_width;
    group->width_from_generator = true;

    BusReport bus_report;
    bus_report.bus = group->name;
    bus_report.generation = std::move(result).value();
    if (obs.metrics) {
      obs.metrics->counter("synth.buses_generated").add(1);
      obs.metrics->counter("synth.width_evaluations")
          .add(bus_report.generation.evaluations.size());
    }
    report.buses.push_back(std::move(bus_report));
  }
  bus_gen_timer.reset();

  // ---- protocol generation (Sec. 4) over all groups ----
  {
    obs::ScopedTimer t(obs, "synth.phase.p4_protocol_generation_us",
                       "P4 protocol generation", "synth");
    protocol::ProtocolGenOptions pg_options;
    pg_options.protocol = options_.protocol;
    pg_options.fixed_delay_cycles = options_.fixed_delay_cycles;
    pg_options.arbitrate = options_.arbitrate;
    pg_options.obs = obs;
    protocol::ProtocolGenerator pg(pg_options);
    IFSYN_RETURN_IF_ERROR(pg.generate_all(system));
  }

  // ---- wire accounting ----
  {
    obs::ScopedTimer wire_timer(obs, "synth.phase.p5_wire_accounting_us",
                                "P5 wire accounting", "synth");
    for (BusReport& bus_report : report.buses) {
      const spec::BusGroup* group = system.find_bus(bus_report.bus);
      IFSYN_ASSERT(group);
      bus_report.id_bits = group->id_bits;
      bus_report.control_lines = group->control_lines;
      bus_report.total_wires = group->total_wires();
      report.dedicated_data_pins += bus_report.generation.total_channel_bits;
      report.merged_data_pins += group->width;
    }
    if (report.dedicated_data_pins > 0) {
      report.interconnect_reduction =
          1.0 - static_cast<double>(report.merged_data_pins) /
                    report.dedicated_data_pins;
    }
  }

  // ---- static protocol check over the refined system ----
  if (options_.run_checker) {
    obs::ScopedTimer t(obs, "synth.phase.p6_check_us", "P6 check", "synth");
    check::CheckOptions check_options;
    check_options.compute_cycles_override = compute_snapshot;
    const check::CheckReport check_report =
        check::run_checks(system, check_options, obs);
    if (!check_report.clean()) {
      return check_failed("synthesized system failed the static protocol "
                          "check:\n" +
                          check_report.to_string());
    }
  }
  return report;
}

}  // namespace ifsyn::core
