// ifsyn/core/interface_synthesizer.hpp
//
// End-to-end interface synthesis (paper Fig. 1): given a partitioned
// system whose cross-module accesses are abstract channels grouped into
// buses, run bus generation (Sec. 3) and protocol generation (Sec. 4) on
// every group and produce the refined, simulatable specification plus a
// synthesis report with the numbers the paper's evaluation tables print.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bus/bus_generator.hpp"
#include "estimate/performance_estimator.hpp"
#include "obs/scoped_timer.hpp"
#include "protocol/protocol_generator.hpp"
#include "spec/system.hpp"
#include "util/status.hpp"

namespace ifsyn::core {

struct SynthesisOptions {
  /// Constraints per bus group name (absent = unconstrained).
  std::map<std::string, std::vector<bus::BusConstraint>> constraints;
  spec::ProtocolKind protocol = spec::ProtocolKind::kFullHandshake;
  int fixed_delay_cycles = 2;
  bool arbitrate = false;
  /// When a group is infeasible, split it into several buses (the paper's
  /// Sec. 3 escape hatch) instead of failing.
  bool auto_split_infeasible = true;
  /// Calibration: pin compute cycles for named processes.
  std::map<std::string, long long> compute_cycles_override;
  /// Run the static protocol checker (src/check) over the refined system
  /// after wire accounting and fail with kCheckFailed on any diagnostic.
  /// Opt out only when deliberately producing a system the checker
  /// rejects (e.g. a pinned width below the Eq. 1 floor).
  bool run_checker = true;
  /// Optional metrics/trace hooks. Phase timings land as wall-clock
  /// counters synth.phase.p1..p5_*; work counts (buses generated, widths
  /// evaluated, groups split) as deterministic "synth." counters.
  obs::ObsContext obs;
};

struct BusReport {
  std::string bus;
  bus::BusGenResult generation;
  int id_bits = 0;
  int control_lines = 0;
  int total_wires = 0;
};

struct SynthesisReport {
  std::vector<BusReport> buses;
  /// Pins if every channel kept dedicated message-wide wires.
  int dedicated_data_pins = 0;
  /// Data pins after merging (sum of selected widths).
  int merged_data_pins = 0;
  double interconnect_reduction = 0;
  /// Names of buses created by infeasibility splitting (if any).
  std::vector<std::string> split_buses;
};

class InterfaceSynthesizer {
 public:
  explicit InterfaceSynthesizer(SynthesisOptions options = {});

  /// Run the full flow on `system` in place: annotate channel access
  /// counts, generate every bus group's width, then generate protocols
  /// and servers. The system must already be partitioned and grouped.
  Result<SynthesisReport> run(spec::System& system) const;

 private:
  SynthesisOptions options_;
};

}  // namespace ifsyn::core
